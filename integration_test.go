package anonrisk

// End-to-end integration tests closing the loop between the library's
// id-space convention (anonymized item x′ represented by x, the identity of
// the hidden original) and a real attack against a concretely anonymized
// release: the hacker sees only the release and its own belief function over
// ORIGINAL items; cracks are counted through the secret key.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/anonymize"
	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/matching"
)

// hackerGraph builds the consistency graph exactly as a hacker would: from
// the released (anonymized) database's observed frequencies and the belief
// function over original items. Edge (a, x): released id a may be original
// item x.
func hackerGraph(t *testing.T, release *Database, bf *belief.Function) *bipartite.Explicit {
	t.Helper()
	freqs := release.Frequencies()
	n := release.Items()
	adj := make([][]int, n)
	for a := 0; a < n; a++ {
		for x := 0; x < n; x++ {
			if bf.Contains(x, freqs[a]) {
				adj[a] = append(adj[a], x)
			}
		}
	}
	e, err := bipartite.NewExplicit(n, adj)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIdSpaceConventionMatchesRealAttack verifies that the library's
// id-space graph is the hacker's graph with rows permuted by the key, and
// that expected cracks agree between both views.
func TestIdSpaceConventionMatchesRealAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		plan := datagen.GroupPlan{Name: "itg", Items: 8 + rng.Intn(5), Transactions: 60,
			Groups: 5, Singletons: 3, MedianGapFreq: 0.03, MeanGapFreq: 0.08}
		db, err := plan.Database(rng)
		if err != nil {
			t.Fatal(err)
		}
		release, key, err := Anonymize(db, rng)
		if err != nil {
			t.Fatal(err)
		}
		bf := belief.RandomCompliant(db.Frequencies(), 0.05, rng)

		// Library view: id-space graph from the original data.
		idGraph, err := ConsistencyGraph(bf, db)
		if err != nil {
			t.Fatal(err)
		}
		// Hacker view: graph over released ids.
		hg := hackerGraph(t, release, bf)

		// The two must agree through the key: edge (a, x) in the hacker's
		// graph iff edge (ToOrig[a]′, x) in the id-space graph.
		n := db.Items()
		for a := 0; a < n; a++ {
			for x := 0; x < n; x++ {
				want := idGraph.HasEdge(key.ToOrig[a], x)
				if got := hg.HasEdge(a, x); got != want {
					t.Fatalf("trial %d: edge (%d,%d) hacker=%v idspace=%v", trial, a, x, got, want)
				}
			}
		}

		// Expected cracks agree: in the hacker view, a crack is the event
		// that released id a maps to ToOrig[a].
		probs, err := hg.EdgeInclusionProbability()
		if err != nil {
			t.Fatal(err)
		}
		hackerExp := 0.0
		for a := 0; a < n; a++ {
			hackerExp += probs[a][key.ToOrig[a]]
		}
		idExp, err := core.ExactExpectedCracks(idGraph.ToExplicit())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hackerExp-idExp) > 1e-9 {
			t.Fatalf("trial %d: hacker-view E(X) %v vs id-space %v", trial, hackerExp, idExp)
		}
	}
}

// TestConcreteAttackCracksCountThroughKey runs a full concrete attack: the
// hacker samples consistent crack mappings in the id space, converts them to
// guesses about released ids, and the owner scores them with the key. The
// average must match the simulation's own crack counter.
func TestConcreteAttackCracksCountThroughKey(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	plan := datagen.GroupPlan{Name: "atk", Items: 12, Transactions: 80,
		Groups: 6, Singletons: 4, MedianGapFreq: 0.02, MeanGapFreq: 0.06}
	db, err := plan.Database(rng)
	if err != nil {
		t.Fatal(err)
	}
	_, key, err := Anonymize(db, rng)
	if err != nil {
		t.Fatal(err)
	}
	bf := belief.UniformWidth(db.Frequencies(), 0.03)
	g, err := bipartite.Build(bf, dataset.GroupItems(db.Table()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := matching.NewSampler(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 300
	totalScored, totalCounted := 0, 0
	for k := 0; k < samples; k++ {
		for sw := 0; sw < 3; sw++ {
			s.Step()
		}
		m := s.Matching() // m[x] = anonymized twin id (id space)
		// Convert to a guess about released ids: the id-space matching says
		// "item x is hidden behind the same released id as item m[x]", i.e.
		// released id ToAnon[m[x]] is guessed to be x.
		guess := make([]int, db.Items())
		for x, w := range m {
			guess[key.ToAnon[w]] = x
		}
		cm, err := anonymize.NewCrackMapping(guess)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cm.Cracks(key)
		if err != nil {
			t.Fatal(err)
		}
		totalScored += c
		totalCounted += s.Cracks()
	}
	if totalScored != totalCounted {
		t.Fatalf("key-scored cracks %d != sampler-counted cracks %d", totalScored, totalCounted)
	}
}
