#!/bin/sh
# ci.sh — the repo's continuous-integration gate, runnable locally.
#
#   ./ci.sh          vet + build + race-enabled tests
#   ./ci.sh -short   same, with -short tests
#
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

short=""
[ "${1:-}" = "-short" ] && short="-short"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race $short ./...

echo "ci: OK"
