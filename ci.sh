#!/bin/sh
# ci.sh — the repo's continuous-integration gate, runnable locally.
#
#   ./ci.sh          vet + riskvet + build + race-enabled tests
#   ./ci.sh -short   same, with -short tests plus brief fuzz runs of the
#                    two parser fuzzers against their committed corpora
#   ./ci.sh -bench   additionally run the parallel-engine benchmarks at
#                    GOMAXPROCS=1 and GOMAXPROCS=nproc plus the kernel
#                    microbenchmarks (bitset O-estimate scan vs the boolean
#                    loop it replaced) and emit BENCH_parallel.json (one run
#                    object per gomaxprocs with ns/op and speedup vs serial
#                    per worker count, a microbenchmarks section, and — on
#                    single-core machines — a flat_parallel_warning note)
#                    to track the perf trajectory
#   ./ci.sh -serve   additionally run the riskd serving smoke test
#                    (ephemeral port, health probe, assess round-trip,
#                    cached repeat, clean shutdown)
#   ./ci.sh -serve-bench  additionally run cmd/riskbench against a
#                    self-hosted riskd — four deterministic traffic mixes
#                    (hot_digest, cold_digest, delta, degraded), fixed seed —
#                    and emit BENCH_serve.json (p50/p99 latency, throughput,
#                    and a workload digest per mix)
#   ./ci.sh -lint    additionally run staticcheck and govulncheck when they
#                    are installed (each is skipped with a notice otherwise;
#                    this container has no network to fetch them)
#   ./ci.sh -chaos   additionally run the fault-injection chaos suite under
#                    -race (fixed seeds, see internal/chaos) and the riskd
#                    -selfcheck-chaos end-to-end drill, which exits non-zero
#                    on any invariant violation
#   ./ci.sh -registry  additionally exercise the experiment run registry end
#                    to end: record a Quick run of all ten experiments into a
#                    throwaway store, replay every recorded run bit-for-bit,
#                    then diff each fresh run against the committed baseline
#                    under internal/experiments/testdata/registry/ (exit 3
#                    from `experiments diff` — any changed cell — fails CI)
#   ./ci.sh -delta   additionally run the incremental-assessment suite under
#                    -race (delta/full equivalence across dataset, bipartite,
#                    core, recipe; the /v1/assess/delta and subscribe server
#                    tests; the client Retry-After and SSE tests) plus the
#                    riskd -selfcheck smoke, whose delta leg evolves a
#                    release through a subscribe stream end to end
#   ./ci.sh -escape-update  regenerate the kernel escape-analysis baseline
#                    (internal/analysis/escapegate/baseline.txt) before
#                    gating, for use after a deliberate allocation change
#
# riskvet is the repo's own analyzer suite (see internal/analysis and
# DESIGN.md §10/§15): cachetaint, ctxbudget, detrand, errcmp, floateq,
# loopbudget, maporder, retrysleep, streamticker, plus the //lint:allow
# suppression ledger, whose stale or unreasoned entries fail the gate. It
# runs as a standalone binary rather than `go vet -vettool`
# because the unitchecker protocol lives in golang.org/x/tools, which the
# offline build cannot depend on. riskvet -escape is the static
# escape-analysis gate: kernel heap escapes must match the committed
# baseline, in both directions (new escapes and stale entries both fail).
#
# Flags combine in any order: ./ci.sh -short -bench -serve -serve-bench
# -lint -chaos -registry -delta -escape-update. Exits non-zero on the first
# failure.
set -eu
cd "$(dirname "$0")"

short=""
bench=""
serve=""
serve_bench=""
lint=""
chaos=""
registry=""
delta=""
escape_update=""
for arg in "$@"; do
	case "$arg" in
	-short) short="-short" ;;
	-bench) bench="yes" ;;
	-serve) serve="yes" ;;
	-serve-bench) serve_bench="yes" ;;
	-lint) lint="yes" ;;
	-chaos) chaos="yes" ;;
	-registry) registry="yes" ;;
	-delta) delta="yes" ;;
	-escape-update) escape_update="yes" ;;
	*)
		echo "ci.sh: unknown flag: $arg" >&2
		echo "usage: ./ci.sh [-short] [-bench] [-serve] [-serve-bench] [-lint] [-chaos] [-registry] [-delta] [-escape-update]" >&2
		exit 2
		;;
	esac
done

echo "== go vet =="
go vet ./...

echo "== riskvet =="
go build -o riskvet ./cmd/riskvet
./riskvet ./...

echo "== escape gate (kernel heap escapes vs committed baseline) =="
if [ -n "$escape_update" ]; then
	./riskvet -escape-update
fi
./riskvet -escape
rm -f riskvet

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race $short ./...

if [ -n "$short" ]; then
	echo "== fuzz (committed corpora, 5s each) =="
	go test -run '^$' -fuzz '^FuzzReadFIMI$' -fuzztime 5s ./internal/dataset/
	go test -run '^$' -fuzz '^FuzzBeliefParse$' -fuzztime 5s ./internal/belief/
fi

if [ -n "$lint" ]; then
	echo "== lint extras =="
	if command -v staticcheck >/dev/null 2>&1; then
		staticcheck ./...
	else
		echo "ci.sh: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
	fi
	if command -v govulncheck >/dev/null 2>&1; then
		govulncheck ./...
	else
		echo "ci.sh: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
	fi
fi

if [ -n "$bench" ]; then
	echo "== parallel benchmarks =="
	# Measure at GOMAXPROCS=1 (the serial kernel's speed and the baseline
	# every speedup divides by) AND at GOMAXPROCS=nproc (real multi-core
	# scaling). Speedup-vs-serial recorded at a single GOMAXPROCS=1 run is
	# meaningless — every worker count times the same one-core schedule —
	# which is how the pre-flat-kernel numbers could claim "no parallel
	# speedup" without ever running on more than one core. On a one-core
	# machine the two settings coincide and a single run is recorded.
	# The JSON records the gomaxprocs each benchmark process actually used:
	# the testing package appends runtime.GOMAXPROCS(0) as the "-N" suffix
	# of every benchmark name, and the awk below reads it from there rather
	# than trusting the environment or nproc.
	nproc_val="$(nproc 2>/dev/null || echo 1)"
	gmps="1"
	note=""
	if [ "$nproc_val" -gt 1 ]; then
		gmps="1 $nproc_val"
	else
		note="flat_parallel_warning: single-core machine — every worker count shares one core, so speedup_vs_serial is ~1.0 at all widths by construction; only the serial ns_per_op trajectory is meaningful here"
	fi
	printf '{\n  "machine_nproc": %s,\n' "$nproc_val" >BENCH_parallel.tmp
	if [ -n "$note" ]; then
		printf '  "note": "%s",\n' "$note" >>BENCH_parallel.tmp
	fi
	# Kernel microbenchmarks: the word-parallel O-estimate scan vs the
	# historical boolean loop it replaced, recorded with the bitset kernel's
	# speedup so the perf trajectory pins the win (target: >= 2x).
	echo "-- kernel microbenchmarks --"
	go test -run '^$' -bench 'BenchmarkOEstimateScan' -benchtime 2s ./internal/core/ |
		tee BENCH_micro.txt |
		awk '
		/^BenchmarkOEstimateScan\// {
			split($1, parts, "/")
			impl = parts[2]
			sub(/-[0-9]+$/, "", impl)
			ns[impl] = $3 + 0
		}
		END {
			if (!("impl=bitset" in ns) || !("impl=bools" in ns)) {
				print "ci.sh: no microbenchmark output to parse" > "/dev/stderr"
				exit 1
			}
			sp = ns["impl=bitset"] > 0 ? ns["impl=bools"] / ns["impl=bitset"] : 0
			printf "  \"microbenchmarks\": {\n"
			printf "    \"OEstimateScan\": {\n"
			printf "      \"impl=bools\": {\"ns_per_op\": %.0f},\n", ns["impl=bools"]
			printf "      \"impl=bitset\": {\"ns_per_op\": %.0f, \"speedup_vs_bools\": %.3f}\n", ns["impl=bitset"], sp
			printf "    }\n  },\n"
		}' >>BENCH_parallel.tmp
	printf '  "runs": [' >>BENCH_parallel.tmp
	first_run=1
	for gmp in $gmps; do
		[ "$first_run" -eq 1 ] || printf ',' >>BENCH_parallel.tmp
		first_run=0
		echo "-- GOMAXPROCS=$gmp --"
		GOMAXPROCS=$gmp go test -run '^$' -bench 'BenchmarkSamplerParallel|BenchmarkCurveParallel' -benchtime 2s . |
			tee BENCH_parallel.txt |
			awk '
			/^Benchmark(Sampler|Curve)Parallel\// {
				split($1, parts, "/")
				sub(/Benchmark/, "", parts[1])
				if (match(parts[2], /-[0-9]+$/)) {
					gmp = substr(parts[2], RSTART + 1) + 0
					parts[2] = substr(parts[2], 1, RSTART - 1)
				}
				sub(/workers=/, "", parts[2])
				bench = parts[1]; workers = parts[2] + 0; ns = $3 + 0
				nsop[bench "," workers] = ns
				if (workers == 1) serial[bench] = ns
				if (!(bench in seen)) { order[++n] = bench; seen[bench] = 1 }
			}
			END {
				if (n == 0) { print "ci.sh: no benchmark output to parse" > "/dev/stderr"; exit 1 }
				# The testing package omits the "-N" suffix exactly when
				# runtime.GOMAXPROCS(0) == 1, so no captured suffix means 1.
				if (gmp + 0 == 0) gmp = 1
				printf "\n    {\n      \"gomaxprocs\": %d,\n      \"benchmarks\": {", gmp + 0
				for (i = 1; i <= n; i++) {
					b = order[i]
					printf "%s\n        \"%s\": {", (i > 1 ? "," : ""), b
					first = 1
					for (w = 1; w <= 8; w *= 2) {
						if (!((b "," w) in nsop)) continue
						sp = serial[b] > 0 ? serial[b] / nsop[b "," w] : 0
						printf "%s\n          \"workers=%d\": {\"ns_per_op\": %.0f, \"speedup_vs_serial\": %.3f}", \
							(first ? "" : ","), w, nsop[b "," w], sp
						first = 0
					}
					printf "\n        }"
				}
				printf "\n      }\n    }"
			}' >>BENCH_parallel.tmp
	done
	printf '\n  ]\n}\n' >>BENCH_parallel.tmp
	mv BENCH_parallel.tmp BENCH_parallel.json
	rm -f BENCH_parallel.txt BENCH_micro.txt
	echo "wrote BENCH_parallel.json"
fi

if [ -n "$serve" ]; then
	echo "== riskd serving smoke test =="
	go run ./cmd/riskd -selfcheck
fi

if [ -n "$serve_bench" ]; then
	echo "== serving benchmark (cmd/riskbench, self-hosted riskd) =="
	# Fixed (seed, requests): each mix's workload digest in the output is a
	# pure function of these, so consecutive runs replay identical work and
	# the latency/throughput numbers are comparable run over run.
	go run ./cmd/riskbench -requests 200 -concurrency 4 -seed 1 -o BENCH_serve.json
	echo "wrote BENCH_serve.json"
fi

if [ -n "$chaos" ]; then
	echo "== chaos suite (fault injection, -race, fixed seeds) =="
	go test -race -count=1 ./internal/chaos/
	echo "== riskd selfcheck-chaos =="
	go run ./cmd/riskd -selfcheck-chaos
fi

if [ -n "$registry" ]; then
	echo "== experiment registry (record, replay, diff vs baseline) =="
	go build -o experiments_ci ./cmd/experiments
	regdir="$(mktemp -d)"
	trap 'rm -rf "$regdir" experiments_ci' EXIT
	./experiments_ci run -quick -seed 1 -workers 2 -registry "$regdir" >/dev/null
	ids="$(./experiments_ci list -registry "$regdir" -porcelain | cut -f1)"
	# shellcheck disable=SC2086 — ULIDs never contain whitespace
	./experiments_ci replay -registry "$regdir" $ids
	baseline="internal/experiments/testdata/registry/runs"
	if [ -d "$baseline" ]; then
		# Merge the committed baseline into the throwaway store, then diff
		# oldest (baseline — ULIDs sort chronologically) against newest
		# (just recorded) per experiment. diff exits 3 on any changed cell,
		# which set -e turns into a CI failure.
		cp -R "$baseline"/. "$regdir/runs/"
		./experiments_ci list -registry "$regdir" -porcelain | sort |
			awk -F'\t' '{ if (!($2 in first)) first[$2] = $1; last[$2] = $1 }
				END { for (e in first) if (first[e] != last[e]) print first[e], last[e] }' |
			while read -r old new; do
				echo "-- diff $old (baseline) vs $new (fresh) --"
				./experiments_ci diff -registry "$regdir" "$old" "$new"
			done
	else
		echo "ci.sh: no committed baseline at $baseline; skipping drift diff"
	fi
	rm -rf "$regdir" experiments_ci
	trap - EXIT
fi

if [ -n "$delta" ]; then
	echo "== incremental assessment suite (-race) =="
	# The delta path's whole claim is bit-for-bit equivalence with a full
	# rebuild, so this runs the equivalence proofs at every layer plus the
	# serving/client protocol tests in one focused, race-enabled pass.
	go test -race -count=1 \
		-run 'Diff|Delta|Rebin|Subscribe|RetryAfter' \
		./internal/dataset/ ./internal/bipartite/ ./internal/core/ \
		./internal/recipe/ ./internal/server/ ./internal/riskclient/
	echo "== riskd delta + subscribe smoke =="
	go run ./cmd/riskd -selfcheck
fi

echo "ci: OK"
