#!/bin/sh
# ci.sh — the repo's continuous-integration gate, runnable locally.
#
#   ./ci.sh          vet + build + race-enabled tests
#   ./ci.sh -short   same, with -short tests
#   ./ci.sh -bench   additionally run the parallel-engine benchmarks and
#                    emit BENCH_parallel.json (ns/op per worker count and
#                    speedup vs serial) to track the perf trajectory
#
# Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

short=""
bench=""
[ "${1:-}" = "-short" ] && short="-short"
[ "${1:-}" = "-bench" ] && bench="yes"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race $short ./...

if [ -n "$bench" ]; then
	echo "== parallel benchmarks =="
	go test -run '^$' -bench 'BenchmarkSamplerParallel|BenchmarkCurveParallel' -benchtime 2x . |
		tee BENCH_parallel.txt |
		awk -v gmp="$(nproc 2>/dev/null || echo 1)" '
		/^Benchmark(Sampler|Curve)Parallel\// {
			split($1, parts, "/")
			sub(/Benchmark/, "", parts[1]); sub(/-[0-9]+$/, "", parts[2])
			sub(/workers=/, "", parts[2])
			bench = parts[1]; workers = parts[2] + 0; ns = $3 + 0
			nsop[bench "," workers] = ns
			if (workers == 1) serial[bench] = ns
			if (!(bench in seen)) { order[++n] = bench; seen[bench] = 1 }
			ws[workers] = 1
		}
		END {
			printf "{\n  \"gomaxprocs\": %d,\n  \"benchmarks\": {", gmp + 0
			for (i = 1; i <= n; i++) {
				b = order[i]
				printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), b
				first = 1
				for (w = 1; w <= 8; w *= 2) {
					if (!((b "," w) in nsop)) continue
					sp = serial[b] > 0 ? serial[b] / nsop[b "," w] : 0
					printf "%s\n      \"workers=%d\": {\"ns_per_op\": %.0f, \"speedup_vs_serial\": %.3f}", \
						(first ? "" : ","), w, nsop[b "," w], sp
					first = 0
				}
				printf "\n    }"
			}
			printf "\n  }\n}\n"
		}' >BENCH_parallel.json
	rm -f BENCH_parallel.txt
	echo "wrote BENCH_parallel.json"
fi

echo "ci: OK"
