// BigMart walks through every worked example of the paper with the library,
// reproducing the exact numbers the text derives:
//
//   - the Figure 1 database and Figure 2 belief functions f, g, h, k;
//   - Lemmas 1 and 3 on the two extremes (1 crack; g = 3 cracks);
//   - the consistency graph of Figure 3 under h;
//   - the chain of Figure 4(a): exactly 74/45 expected cracks vs the
//     O-estimate 197/120;
//   - the propagation cascade of Figure 6(a): O-estimate 25/12 before
//     propagation, exactly 4 after;
//   - the irrelevant-edge example of Figure 6(b): exact expectation 2.
package main

import (
	"fmt"
	"log"

	anonrisk "repro"
	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemsetrisk"
)

func main() {
	// Figure 1: six items with frequencies (.5, .4, .5, .5, .3, .5)
	// (paper items 1..6 are ids 0..5 here).
	db, err := anonrisk.NewDatabase(6, []anonrisk.Transaction{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 3}, {0, 1, 3}, {0, 3, 5},
		{2, 3, 5}, {2, 4, 5}, {2, 5}, {4, 5}, {3, 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BigMart frequencies:", db.Frequencies())

	// Figure 2's belief functions.
	f := anonrisk.ExactKnowledge(db) // compliant point-valued
	g := anonrisk.Ignorant(6)
	h, err := anonrisk.NewBelief([]anonrisk.Interval{
		{Lo: 0, Hi: 1}, {Lo: 0.4, Hi: 0.5}, {Lo: 0.5, Hi: 0.5},
		{Lo: 0.4, Hi: 0.6}, {Lo: 0.1, Hi: 0.4}, {Lo: 0.5, Hi: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	k, err := anonrisk.NewBelief([]anonrisk.Interval{
		{Lo: 0.6, Hi: 0.7}, {Lo: 0.1, Hi: 0.3}, {Lo: 0.0, Hi: 0.4},
		{Lo: 0.4, Hi: 0.6}, {Lo: 0.1, Hi: 0.4}, {Lo: 0.5, Hi: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compliancy: f=%v g=%v h=%v k=%v (k is 0.5-compliant)\n",
		f.Alpha(db.Frequencies()), g.Alpha(db.Frequencies()),
		h.Alpha(db.Frequencies()), k.Alpha(db.Frequencies()))

	// Section 3: the two extremes.
	fmt.Printf("\nLemma 1 (ignorant):      E(X) = %v\n", anonrisk.ExpectedCracksIgnorant(6))
	fmt.Printf("Lemma 3 (point-valued):  E(X) = g = %v\n", anonrisk.ExpectedCracksExactKnowledge(db))

	// Figure 3: the consistency graph under h. 1' (observed 0.5) can map to
	// items 1,2,3,4,6 of the paper; 2' (0.4) to 1,2,4,5; 5' (0.3) to 1,5.
	graph, err := anonrisk.ConsistencyGraph(h, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 3 bipartite graph under h (paper numbering):")
	for w := 0; w < 6; w++ {
		fmt.Printf("  %d' -> ", w+1)
		for x := 0; x < 6; x++ {
			if graph.HasEdge(w, x) {
				fmt.Printf("%d ", x+1)
			}
		}
		fmt.Println()
	}
	exact, err := core.ExactExpectedCracks(graph.ToExplicit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact E(X) under h via permanents: %.4f\n", exact)

	// Figure 4(a): the chain example.
	chain := core.Figure4aChain()
	ce, _ := chain.ExpectedCracks()
	oe, _ := chain.OEstimate()
	fmt.Printf("\nFigure 4(a) chain: exact E(X) = %.6f (74/45 = %.6f)\n", ce, 74.0/45)
	fmt.Printf("                   O-estimate = %.6f (197/120 = %.6f)\n", oe, 197.0/120)

	// Figure 6(a): the propagation cascade.
	ft, err := dataset.NewTable(8, []int{1, 2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}
	freqs := ft.Frequencies()
	stairs := belief.MustNew([]belief.Interval{
		{Lo: freqs[0], Hi: freqs[0]}, {Lo: freqs[0], Hi: freqs[1]},
		{Lo: freqs[0], Hi: freqs[2]}, {Lo: freqs[0], Hi: freqs[3]},
	})
	plain, err := core.OEstimate(stairs, ft, core.OEOptions{})
	if err != nil {
		log.Fatal(err)
	}
	prop, err := core.OEstimate(stairs, ft, core.OEOptions{Propagate: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 6(a): OE without propagation = %.4f (25/12 = %.4f)\n", plain.Value, 25.0/12)
	fmt.Printf("             OE with propagation    = %.4f (all %d edges forced: every item cracked)\n",
		prop.Value, prop.Forced)

	// Figure 6(b): the irrelevant edge (2', 3).
	e := bipartite.MustExplicit(4, [][]int{{0, 1}, {0, 1, 2}, {2, 3}, {2, 3}})
	exact6b, err := core.ExactExpectedCracks(e)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 6(b): exact E(X) = %v — the edge (2',3) is in no perfect matching\n", exact6b)

	// Section 8.2 (ongoing work): itemset-level knowledge. Within BigMart's
	// 0.5-frequency group the items camouflage each other — until the hacker
	// also knows pairwise supports, which the color refinement exploits.
	cracksPairs, ref, err := itemsetrisk.ExpectedCracksPairAware(db, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n§8.2: item-level E(X) = %v; with exact 2-itemset knowledge: %v (%d classes, %d rounds)\n",
		anonrisk.ExpectedCracksExactKnowledge(db), cracksPairs, ref.Classes, ref.Rounds)
}
