// Quickstart: generate a small transaction database, anonymize it, measure
// what hackers of increasing sophistication would learn, and run the paper's
// Assess-Risk recipe to decide whether the release is safe.
package main

import (
	"fmt"
	"log"
	"math/rand"

	anonrisk "repro"
	"repro/internal/datagen"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A correlated market-basket database: 60 products, 4000 baskets.
	db, err := datagen.Quest(datagen.QuestConfig{Items: 60, Transactions: 4000}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(anonrisk.ComputeStats("quickstart", db))

	// The owner anonymizes and would ship `release`; `key` stays secret.
	release, key, err := anonrisk.Anonymize(db, rng)
	if err != nil {
		log.Fatal(err)
	}
	sets, err := anonrisk.MineFrequentItemsets(release, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe release still mines fine: %d frequent itemsets at 5%% support\n", len(sets))
	_ = key

	// How bad can it get? Three hackers.
	for _, h := range []struct {
		name string
		bf   *anonrisk.BeliefFunction
	}{
		{"ignorant (no prior knowledge)", anonrisk.Ignorant(db.Items())},
		{"ballpark (±δ_med around every true frequency)", anonrisk.BallparkKnowledge(db, 0)},
		{"omniscient (every frequency exactly)", anonrisk.ExactKnowledge(db)},
	} {
		rep, err := anonrisk.Attack(h.bf, db, false, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s expected cracks %6.2f of %d items (%.1f%%), %d forced\n",
			h.name, rep.OEstimate, rep.Items, 100*rep.OEstimateFraction(), rep.ForcedCracks)
	}

	// The owner's decision at a 10% crack tolerance.
	res, err := anonrisk.AssessRisk(db, 0.10, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAssess-Risk at τ=0.10: stage=%q α_max=%.2f\n", res.Stage, res.AlphaMax)
	if res.Disclose {
		fmt.Println("verdict: DISCLOSE — the anonymized release is within tolerance")
	} else {
		fmt.Println("verdict: WITHHOLD — a moderately informed hacker cracks too much")
	}
}
