// Census demonstrates the paper's Section 8.1 claim that the whole analysis
// generalizes beyond frequent-set mining: releasing an anonymized *relation*
// — here (age, ethnicity, car-model) records with names replaced by numbers,
// the task being classification — against a hacker holding per-individual
// partial knowledge. The paper's own example is reproduced literally:
//
//	"if the hacker somehow knows that John is Chinese owning a Toyota, then
//	 edges can be set up between (x′, John) for all anonymized items x′ with
//	 ethnicity being Chinese and car-model being Toyota. Similarly, if the
//	 hacker somehow knows that Mary's age is between 30 and 35 ... And if the
//	 hacker has no knowledge of Bob, Bob is connected to every anonymized
//	 item in the graph. Once the graph is set up, we can re-apply all the
//	 lemmas above."
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/relation"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	schema := relation.Schema{Attrs: []relation.Attribute{
		{Name: "age", Values: []string{"20-25", "25-30", "30-35", "35-40", "40-45"}, Ordered: true},
		{Name: "ethnicity", Values: []string{"Chinese", "Indian", "German", "Brazilian"}},
		{Name: "car", Values: []string{"Toyota", "Honda", "BMW", "Ford"}},
	}}

	// A population of 400 individuals; the released relation carries the
	// attributes with names dropped.
	pop, err := relation.RandomRelation(schema, 400, rng)
	if err != nil {
		log.Fatal(err)
	}
	groups := pop.TupleGroups()
	fmt.Printf("population: %d individuals, %d distinct attribute tuples (anonymity sets), k = %d\n",
		pop.Records(), len(groups), pop.MinAnonymitySet())

	// Lemma 3 transported: a hacker knowing everyone's attributes exactly.
	fmt.Printf("full-knowledge worst case (Lemma 3 over anonymity sets): %.0f expected re-identifications\n\n",
		pop.ExpectedCracksFullKnowledge())

	// The paper's three individuals.
	john := relation.NewKnowledge(schema)
	must(john.Exact(schema, "ethnicity", "Chinese"))
	must(john.Exact(schema, "car", "Toyota"))
	mary := relation.NewKnowledge(schema)
	must(mary.Range(schema, "age", "30-35", "35-40"))
	info := relation.PartialInfo{0: john, 1: mary} // Bob: absent = no knowledge

	rep, err := relation.AssessDisclosure(pop, info, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hacker knows John (Chinese, Toyota) and Mary's age band; nothing about Bob or the rest:\n")
	fmt.Printf("  expected re-identifications (O-estimate with propagation): %.3f of %d\n",
		rep.OEstimate, rep.Individuals)
	fmt.Printf("  individuals pinned down with certainty: %d\n\n", len(rep.PinnedDown))

	// Escalation: the hacker learns one exact attribute about a growing
	// fraction of the population — the relational analogue of Figure 11's
	// compliancy sweep.
	fmt.Println("knowledge coverage vs expected re-identifications:")
	for _, fraction := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		info := relation.PartialInfo{}
		known := int(fraction * float64(pop.Records()))
		for _, x := range rng.Perm(pop.Records())[:known] {
			k := relation.NewKnowledge(schema)
			attr := schema.Attrs[rng.Intn(len(schema.Attrs))]
			ai := schema.AttrIndex(attr.Name)
			must(k.Exact(schema, attr.Name, attr.Values[pop.Value(x, ai)]))
			info[x] = k
		}
		rep, err := relation.AssessDisclosure(pop, info, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f%% of individuals known on one attribute: E(cracks) = %7.2f (%.1f%%)\n",
			fraction*100, rep.OEstimate, 100*rep.OEstimate/float64(rep.Individuals))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
