// Clinicaltrial plays out the paper's "mining as a service" scenario in the
// setting its introduction highlights: clinical-trial data, where
// de-identification (anonymization) is standard practice. A sponsor ships
// de-identified visit records — each visit lists the treatment and
// observation codes that occurred — to an outside analytics firm. The worry:
// a leak at the firm, combined with a partial sample of the original coding
// dictionary usage, could re-identify which code is which.
//
// The example follows the paper's Section 7.4 playbook: the owner simulates
// the leak by sampling its own data at increasing rates (Figure 13),
// measures the compliancy of the leak-derived belief function, and combines
// that curve with the recipe's α_max to make the call.
package main

import (
	"fmt"
	"log"
	"math/rand"

	anonrisk "repro"
	"repro/internal/datagen"
	"repro/internal/recipe"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// The trial: 350 medical codes over 20,000 visit records, with realistic
	// frequency structure (many rare codes, a dense band of routine ones).
	plan := datagen.GroupPlan{
		Name: "TRIAL", Items: 350, Transactions: 20000,
		Groups: 180, Singletons: 140,
		MedianGapFreq: 0.0004, MeanGapFreq: 0.004, MaxGapFreq: 0.08,
	}
	db, err := plan.Database(rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(anonrisk.ComputeStats("trial", db))

	// Step 1 — the recipe: how much correct guessing can the sponsor absorb
	// before the analytics firm's hypothetical leak crosses τ = 0.05?
	res, err := anonrisk.AssessRisk(db, 0.05, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAssess-Risk at τ=0.05: stage=%q", res.Stage)
	fmt.Printf("  g=%d (%.2f of domain)  OE_full=%.1f (%.2f)  α_max=%.2f\n",
		res.Groups, res.FractionPointValued(), res.OEFull, res.FractionOEFull(), res.AlphaMax)

	// Step 2 — similarity by sampling (Figure 13): if a p-fraction of the
	// records leaks, how compliant is the belief function built from it?
	points, err := recipe.SimilarityBySampling(db,
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5}, 10, recipe.UseMedianGap, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nleak size vs hacker compliancy (10 samples each):")
	for _, p := range points {
		marker := ""
		if p.AlphaMean >= res.AlphaMax {
			marker = "  <-- exceeds α_max: UNSAFE at this leak size"
		}
		fmt.Printf("  %5.1f%% leak: α = %.3f ± %.3f%s\n", p.Fraction*100, p.AlphaMean, p.AlphaStd, marker)
	}

	// Step 3 — a concrete attack with the 10% leak, end to end through real
	// anonymization: the hacker's crack guesses are checked against the key.
	release, key, err := anonrisk.Anonymize(db, rng)
	if err != nil {
		log.Fatal(err)
	}
	leak, err := sample(db, 0.1, rng)
	if err != nil {
		log.Fatal(err)
	}
	bf := anonrisk.BeliefFromSample(leak)
	rep, err := anonrisk.Attack(bf, db, true, rng)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Infeasible {
		fmt.Printf("\nattack with a 10%% leak: O-estimate %.1f cracks of %d codes "+
			"(per-item §5.3 estimate; the wrong guesses admit no global mapping)\n",
			rep.OEstimate, rep.Items)
	} else {
		fmt.Printf("\nattack with a 10%% leak: O-estimate %.1f cracks, simulated %.1f ± %.1f (of %d codes)\n",
			rep.OEstimate, rep.Simulated, rep.SimulatedStdDev, rep.Items)
	}

	// Sanity: the released database is still useful to the analytics firm.
	sets, err := anonrisk.MineFrequentItemsets(release, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meanwhile the firm mines %d frequent code-sets at 2%% support from the release\n", len(sets))
	_ = key
}

// sample draws a transaction sample through the public Database API.
func sample(db *anonrisk.Database, fraction float64, rng *rand.Rand) (*anonrisk.Database, error) {
	k := int(float64(db.Transactions())*fraction + 0.5)
	idx := rng.Perm(db.Transactions())[:k]
	txs := make([]anonrisk.Transaction, k)
	for i, j := range idx {
		txs[i] = db.Transaction(j)
	}
	return anonrisk.NewDatabase(db.Items(), txs)
}
