// Consortium plays out the paper's "mining for the common good" scenario:
// three regional retailers pool their transaction data to mine richer
// patterns, releasing the pool under anonymization because any partner may
// one day be a competitor. Each partner then asks the paper's question from
// both sides of the table:
//
//   - as a data owner: is my contribution safe inside the pooled release?
//   - as a hacker: my own regional data is "similar data" — how compliant a
//     belief function does it give me against the pool, and how many of the
//     pooled items could I re-identify?
package main

import (
	"fmt"
	"log"
	"math/rand"

	anonrisk "repro"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Three regions sell from one product catalogue (200 products) to one
	// underlying customer population: model the market as a single QUEST
	// process and the regions as random slices of it — region 0 is the
	// smallest partner, region 2 the largest.
	const items = 200
	market, err := datagen.Quest(datagen.QuestConfig{
		Items:         items,
		Transactions:  12000,
		Patterns:      30,
		PatternsPerTx: 2,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	shuffled := rng.Perm(market.Transactions())
	shares := []int{2000, 4000, 6000}
	regions := make([]*anonrisk.Database, 3)
	next := 0
	for r, share := range shares {
		txs := make([]anonrisk.Transaction, share)
		for i := range txs {
			txs[i] = market.Transaction(shuffled[next])
			next++
		}
		regions[r], err = anonrisk.NewDatabase(items, txs)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Pool the data.
	pool, err := dataset.Merge(regions...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(anonrisk.ComputeStats("pooled", pool))

	// The consortium's motivation: the small partner's own data misses (and
	// hallucinates) patterns that the pooled scale settles.
	poolSets, err := anonrisk.MineFrequentItemsets(pool, 0.04)
	if err != nil {
		log.Fatal(err)
	}
	r0Sets, err := anonrisk.MineFrequentItemsets(regions[0], 0.04)
	if err != nil {
		log.Fatal(err)
	}
	r0Keys := map[string]bool{}
	for _, fs := range r0Sets {
		r0Keys[fs.Items.Key()] = true
	}
	missed := 0
	for _, fs := range poolSets {
		if !r0Keys[fs.Items.Key()] {
			missed++
		}
	}
	fmt.Printf("frequent itemsets at 4%%: pooled %d; region 0 alone misses %d of them and reports %d spurious extras\n\n",
		len(poolSets), missed, len(r0Sets)-(len(poolSets)-missed))

	// Owner side: the recipe on the pooled release.
	res, err := anonrisk.AssessRisk(pool, 0.1, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Assess-Risk on the pooled release (τ=0.1): stage=%q α_max=%.2f disclose=%v\n\n",
		res.Stage, res.AlphaMax, res.Disclose)

	// Hacker side: each partner builds a belief function from its own data
	// (the paper's strongest realistic threat: a consortium member IS the
	// similar-data holder) and attacks the pooled release.
	poolFreqs := pool.Frequencies()
	for r, db := range regions {
		st := db.Table()
		bf := anonrisk.BeliefFromSample(db)
		alpha := bf.Alpha(poolFreqs)
		rep, err := anonrisk.Attack(bf, pool, false, rng)
		if err != nil {
			log.Fatal(err)
		}
		gaps := dataset.GroupItems(st)
		status := "consistent mappings exist"
		if rep.Infeasible {
			status = "no globally consistent mapping; §5.3 per-item estimate"
		}
		fmt.Printf("partner %d as hacker (%d own transactions): compliancy α=%.2f (half-width %.5f)\n",
			r, db.Transactions(), alpha, gaps.MedianGap())
		fmt.Printf("  expected cracks %.1f of %d pooled items (%.1f%%); %s\n",
			rep.OEstimate, rep.Items, 100*rep.OEstimateFraction(), status)
	}

	fmt.Println("\nthe partners' own data makes them far more dangerous than an outsider:")
	out, err := anonrisk.Attack(anonrisk.Ignorant(items), pool, false, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  an outsider with no prior knowledge expects only %.2f cracks (Lemma 1)\n", out.OEstimate)
}
