package anonrisk

// One benchmark per table and figure of the paper's evaluation, each driving
// the same harness as cmd/experiments (in Quick mode, so `go test -bench=.`
// stays minutes-scale), plus micro-benchmarks of the core operations whose
// costs the paper discusses (the O(|D| + n log n) O-estimate, propagation,
// the matching sampler, and the exponential direct method).

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/matching"
	"repro/internal/parallel"
	"repro/internal/recipe"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(context.Background(), experiments.Config{Seed: int64(i + 1), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkTableDelta regenerates the §5.2 chain error table.
func BenchmarkTableDelta(b *testing.B) { benchExperiment(b, "delta") }

// BenchmarkFigure9 regenerates the benchmark statistics table.
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "figure9") }

// BenchmarkFigure10 regenerates the O-estimate accuracy comparison.
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "figure10") }

// BenchmarkFigure11 regenerates the compliancy sweep.
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "figure11") }

// BenchmarkFigure12 regenerates the similarity-by-sampling curves.
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "figure12") }

// BenchmarkRecipe regenerates the §7.3 Assess-Risk walk-through.
func BenchmarkRecipe(b *testing.B) { benchExperiment(b, "recipe") }

// retailSetup prepares the paper's largest benchmark once per benchmark run.
func retailSetup(b *testing.B) (*dataset.FrequencyTable, *belief.Function) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	ft, err := datagen.RETAIL.Counts(rng)
	if err != nil {
		b.Fatal(err)
	}
	gr := dataset.GroupItems(ft)
	return ft, belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
}

// BenchmarkOEstimateRETAIL times the Figure 5 procedure on the 16,470-item
// RETAIL clone — the paper reports "only a few seconds" on 2005 hardware.
func BenchmarkOEstimateRETAIL(b *testing.B) {
	ft, bf := retailSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.OEstimate(bf, ft, core.OEOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagationRETAIL times degree-1 propagation (Figure 7) at scale.
func BenchmarkPropagationRETAIL(b *testing.B) {
	ft, bf := retailSetup(b)
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Propagate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplerSweepRETAIL times one targeted sweep (n proposals) of the
// matching sampler on the RETAIL clone.
func BenchmarkSamplerSweepRETAIL(b *testing.B) {
	ft, bf := retailSetup(b)
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		b.Fatal(err)
	}
	s, err := matching.NewSampler(g, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TargetedSweep()
	}
}

// BenchmarkAssessRiskCHESS times the full recipe on the CHESS clone.
func BenchmarkAssessRiskCHESS(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ft, err := datagen.CHESS.Counts(rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recipe.AssessRisk(ft, recipe.Options{Tolerance: 0.1, Propagate: true, Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectMethod times the permanent-based exact expectation on a
// 16-vertex graph — the #P-complete wall that motivates the O-estimate.
func BenchmarkDirectMethod(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	e := bipartite.RandomExplicit(16, 0.4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExactExpectedCracks(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablation tables.
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkItemsets regenerates the §8.2 itemset-level extension table.
func BenchmarkItemsets(b *testing.B) { benchExperiment(b, "itemsets") }

// BenchmarkKanon regenerates the k-anonymization baseline comparison.
func BenchmarkKanon(b *testing.B) { benchExperiment(b, "kanon") }

// BenchmarkSanitize regenerates the randomization trade-off comparison.
func BenchmarkSanitize(b *testing.B) { benchExperiment(b, "sanitize") }

// BenchmarkOEstimateBudgeted times the same RETAIL O-estimate under an
// active (but never-exhausted) budget. Compare against BenchmarkOEstimateRETAIL:
// the per-item Charge plus the once-per-4096-ops context poll must stay
// within a few percent of the unbudgeted loop.
func BenchmarkOEstimateBudgeted(b *testing.B) {
	ft, bf := retailSetup(b)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.OEstimateCtx(ctx, bf, ft, core.OEOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttackRETAIL and BenchmarkAttackCtxRETAIL bracket the cascade
// plumbing cost at the public API: same O-estimate work, with and without the
// context/budget machinery and panic-recovery wrapper.
func BenchmarkAttackRETAIL(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	db, err := datagen.RETAIL.Database(rng)
	if err != nil {
		b.Fatal(err)
	}
	bf := BallparkKnowledge(db, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Attack(bf, db, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttackCtxRETAIL(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	db, err := datagen.RETAIL.Database(rng)
	if err != nil {
		b.Fatal(err)
	}
	bf := BallparkKnowledge(db, 0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AttackCtx(ctx, bf, db, AttackOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplerParallel times the R-run MCMC crack estimate on the CONNECT
// clone at 1/2/4/8 workers. The estimate is bit-identical at every width (each
// run owns a split-seeded generator and run means reduce in run order); the
// speedup tops out at min(workers, Runs, GOMAXPROCS) — on a single-core host
// all widths time alike.
func BenchmarkSamplerParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ft, err := datagen.CONNECT.Counts(rng)
	if err != nil {
		b.Fatal(err)
	}
	gr := dataset.GroupItems(ft)
	bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
	g, err := bipartite.Build(bf, gr)
	if err != nil {
		b.Fatal(err)
	}
	cfg := matching.Config{SeedSweeps: 20, SampleGap: 2, SamplesPerSeed: 100, Samples: 200, Runs: 8, BatchK: 64}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ctx := parallel.WithWorkers(context.Background(), w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := matching.EstimateCracksCtx(ctx, g, cfg, rand.New(rand.NewSource(7))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCurveParallel times the Figure 11 compliancy curve (11 α-points ×
// runs random subsets, each an independent O-estimate) on the CONNECT clone at
// 1/2/4/8 workers.
func BenchmarkCurveParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ft, err := datagen.CONNECT.Counts(rng)
	if err != nil {
		b.Fatal(err)
	}
	gr := dataset.GroupItems(ft)
	bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
	alphas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ctx := parallel.WithWorkers(context.Background(), w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				search, err := recipe.NewAlphaSearch(ft, bf, 4, true, rand.New(rand.NewSource(7)))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := search.CurveCtx(ctx, alphas); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOEstimateScaling reports how the Figure 5 procedure scales with
// the domain size (the paper: O(|D| + n log n)).
func BenchmarkOEstimateScaling(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000, 64000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			m := 4 * n
			counts := make([]int, n)
			for i := range counts {
				counts[i] = rng.Intn(m + 1)
			}
			ft, err := dataset.NewTable(m, counts)
			if err != nil {
				b.Fatal(err)
			}
			gr := dataset.GroupItems(ft)
			bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.OEstimate(bf, ft, core.OEOptions{Propagate: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
