package anonrisk

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/anonymize"
	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fim"
	"repro/internal/matching"
	"repro/internal/recipe"
)

// Re-exported core types. The aliases make the public API self-contained
// while keeping each concern implemented (and documented in depth) in its
// own internal package.
type (
	// Database is a transaction database over a dense item universe.
	Database = dataset.Database
	// Transaction is one itemset of a database.
	Transaction = dataset.Transaction
	// FrequencyTable is the support-count view of a database — all the
	// paper's risk analyses depend on the data only through it.
	FrequencyTable = dataset.FrequencyTable
	// Stats is a Figure 9-style frequency summary.
	Stats = dataset.Stats

	// BeliefFunction models the hacker's partial information: a frequency
	// interval per original item.
	BeliefFunction = belief.Function
	// Interval is a closed frequency range.
	Interval = belief.Interval

	// Mapping is a secret anonymization bijection.
	Mapping = anonymize.Mapping
	// CrackMapping is a hacker's 1-1 de-anonymization guess.
	CrackMapping = anonymize.CrackMapping

	// Graph is the bipartite consistency graph between anonymized and
	// original items induced by a belief function.
	Graph = bipartite.Graph

	// Assessment is the outcome of the Assess-Risk recipe.
	Assessment = recipe.Result
	// AssessOptions configures the recipe.
	AssessOptions = recipe.Options

	// FrequentItemset pairs an itemset with its support.
	FrequentItemset = fim.FrequentItemset

	// SamplerConfig configures the Section 7.1 matching-space MCMC sampler
	// used by the simulation / degraded tiers of AttackCtx.
	SamplerConfig = matching.Config
)

// Re-exported budget sentinels, so callers can match degradation and
// cancellation outcomes without importing internal packages.
var (
	// ErrBudgetExceeded marks a computation abandoned because its wall-clock
	// deadline or operation limit ran out. The degradation cascade handles it
	// internally; it only escapes when even the floor cannot run.
	ErrBudgetExceeded = budget.ErrBudgetExceeded
	// ErrCanceled marks an explicit context cancellation — a hard abort that
	// is never degraded around.
	ErrCanceled = budget.ErrCanceled
)

// WithMaxOps returns a context carrying an operation-count limit that every
// budgeted computation started under it respects (each bounded individually).
func WithMaxOps(ctx context.Context, maxOps int64) context.Context {
	return budget.WithMaxOps(ctx, maxOps)
}

// Method identifies which tier of the degradation cascade produced an
// estimate.
type Method string

const (
	// MethodExact is the permanent-based exact expectation (Section 4.1).
	MethodExact Method = "exact"
	// MethodSampled is the matching-space MCMC estimate (Section 7.1).
	MethodSampled Method = "sampled"
	// MethodOEstimate is the O(n log n) O-estimate (Figure 5), the cascade
	// floor that always completes.
	MethodOEstimate Method = "oestimate"
)

// recoverToError converts a panic escaping a public entry point into an
// ordinary error, so a malformed input or an internal bug cannot crash the
// embedding process. Use with named return values:
//
//	defer recoverToError("Attack", &err)
func recoverToError(op string, errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("anonrisk: %s: internal panic: %v", op, r)
	}
}

// NewDatabase builds a database over n items; see dataset.New.
func NewDatabase(n int, txs []Transaction) (*Database, error) { return dataset.New(n, txs) }

// ReadFIMI parses a FIMI-format database (one transaction per line).
func ReadFIMI(r io.Reader) (*Database, error) { return dataset.ReadFIMI(r, 0) }

// WriteFIMI writes a database in FIMI format.
func WriteFIMI(w io.Writer, db *Database) error { return dataset.WriteFIMI(w, db) }

// ComputeStats summarizes a database's frequency structure as in Figure 9.
func ComputeStats(name string, db *Database) Stats {
	return dataset.ComputeStats(name, db.Table())
}

// Anonymize draws a uniformly random anonymization bijection and applies it,
// returning the releasable database and the secret key. The release has
// identical support structure and — by the commutation of mining with
// renaming — identical frequent itemsets up to the key.
func Anonymize(db *Database, rng *rand.Rand) (release *Database, key *Mapping, err error) {
	defer recoverToError("Anonymize", &err)
	key = anonymize.NewRandomMapping(db.Items(), rng)
	release, err = key.Apply(db)
	if err != nil {
		return nil, nil, err
	}
	return release, key, nil
}

// AssessRisk runs Algorithm Assess-Risk (Figure 8) on the database with
// tolerance tau and default settings (5 subset runs, propagation on,
// comfort level 0.5). Use AssessRiskOptions for full control.
func AssessRisk(db *Database, tau float64, rng *rand.Rand) (*Assessment, error) {
	return AssessRiskCtx(context.Background(), db, tau, rng)
}

// AssessRiskCtx is AssessRisk under a work budget. When the budget runs out
// mid-search the assessment degrades gracefully: the result carries the
// largest α proven safe so far (a conservative lower bound) with Degraded
// set, instead of failing.
func AssessRiskCtx(ctx context.Context, db *Database, tau float64, rng *rand.Rand) (a *Assessment, err error) {
	defer recoverToError("AssessRisk", &err)
	return recipe.AssessRiskCtx(ctx, db.Table(), recipe.Options{
		Tolerance: tau,
		Propagate: true,
		Rng:       rng,
	})
}

// AssessRiskOptions runs the recipe with explicit options.
func AssessRiskOptions(db *Database, opts AssessOptions) (*Assessment, error) {
	return AssessRiskOptionsCtx(context.Background(), db, opts)
}

// AssessRiskOptionsCtx is AssessRiskOptions under a work budget; see
// AssessRiskCtx for the degradation semantics.
func AssessRiskOptionsCtx(ctx context.Context, db *Database, opts AssessOptions) (a *Assessment, err error) {
	defer recoverToError("AssessRisk", &err)
	return recipe.AssessRiskCtx(ctx, db.Table(), opts)
}

// NewBelief builds a belief function from one frequency interval per item.
func NewBelief(intervals []Interval) (*BeliefFunction, error) { return belief.New(intervals) }

// Ignorant returns the no-knowledge belief function over n items (every
// interval [0,1]; expected cracks exactly 1 by Lemma 1).
func Ignorant(n int) *BeliefFunction { return belief.Ignorant(n) }

// ExactKnowledge returns the compliant point-valued belief function for a
// database: the hacker knows every frequency exactly (expected cracks = the
// number of distinct frequencies, Lemma 3).
func ExactKnowledge(db *Database) *BeliefFunction {
	return belief.PointValued(db.Frequencies())
}

// BallparkKnowledge returns the compliant interval belief function the
// recipe uses: every item's frequency guessed within ±delta. Pass delta <= 0
// to use δ_med, the database's median frequency-group gap.
func BallparkKnowledge(db *Database, delta float64) *BeliefFunction {
	if delta <= 0 {
		delta = dataset.GroupItems(db.Table()).MedianGap()
	}
	return belief.UniformWidth(db.Frequencies(), delta)
}

// BeliefFromSample builds the hacker's belief function from a sample of the
// data (Section 7.4): intervals of half-width equal to the sample's median
// frequency-group gap around the sampled frequencies.
func BeliefFromSample(sample *Database) *BeliefFunction {
	st := sample.Table()
	return belief.FromSample(st.Frequencies(), dataset.GroupItems(st).MedianGap())
}

// ConsistencyGraph builds the bipartite graph of consistent crack mappings
// for a belief function against the database's observed frequencies.
func ConsistencyGraph(bf *BeliefFunction, db *Database) (*Graph, error) {
	return bipartite.Build(bf, dataset.GroupItems(db.Table()))
}

// Attack quantifies what a hacker holding bf achieves against the database's
// anonymized release: the O-estimate of expected cracks and, when simulate is
// true, a matching-space simulation estimate with its standard deviation.
//
// The O-estimate applies degree-1 propagation when the consistency graph
// admits a perfect matching. When it does not — common for partially wrong
// (α-compliant) belief functions — the report's Infeasible flag is set, the
// O-estimate falls back to the paper's Section 5.3 per-item form
// Σ_{compliant} 1/O_x (which needs no global matching), and simulation is
// skipped.
func Attack(bf *BeliefFunction, db *Database, simulate bool, rng *rand.Rand) (AttackReport, error) {
	return AttackCtx(context.Background(), bf, db, AttackOptions{Simulate: simulate, Rng: rng})
}

// AttackOptions configures AttackCtx.
type AttackOptions struct {
	// Exact requests the permanent-based exact expectation (Section 4.1) as
	// the preferred tier. It is #P-complete, so it only runs for domains with
	// at most bipartite.MaxExactN items and degrades to sampling (then to the
	// O-estimate) when the budget runs out.
	Exact bool
	// Simulate requests the matching-space MCMC estimate (Section 7.1),
	// either as the preferred tier (when Exact is false) or as the first
	// fallback.
	Simulate bool
	// Sampler configures the MCMC sampler; zero value means matching's
	// defaults.
	Sampler SamplerConfig
	// Rng seeds the sampler. Nil is fine when neither Exact nor Simulate is
	// set.
	Rng *rand.Rand
}

// AttackCtx is Attack under a work budget, with a degradation cascade instead
// of an error when the budget runs out:
//
//	exact (permanent DP)  →  sampled (MCMC)  →  O-estimate
//
// Each tier is attempted under whatever budget remains; on
// budget.ErrBudgetExceeded the cascade falls through to the next tier. The
// O-estimate floor is O(n log n) and always completes, so an expired deadline
// yields a report with Degraded set rather than an error. An explicitly
// canceled context is a hard abort (ErrCanceled) — cancellation means "stop",
// not "hurry up".
//
// The report's Method records the tier that produced Expected; Degraded and
// DegradedReason record whether (and why) a preferred tier was abandoned.
func AttackCtx(ctx context.Context, bf *BeliefFunction, db *Database, opts AttackOptions) (AttackReport, error) {
	return AttackTableCtx(ctx, bf, db.Table(), opts)
}

// AttackTableCtx is AttackCtx against a frequency table directly. Every tier
// of the cascade depends on the data only through its support counts, so
// callers that never materialize transactions — the riskd service, streaming
// CLI paths — run the identical cascade on the lighter representation.
func AttackTableCtx(ctx context.Context, bf *BeliefFunction, ft *FrequencyTable, opts AttackOptions) (rep AttackReport, err error) {
	defer recoverToError("Attack", &err)
	if cerr := ctx.Err(); cerr != nil && !errors.Is(cerr, context.DeadlineExceeded) {
		return rep, budget.WrapContextErr(cerr)
	}

	rep = AttackReport{Items: ft.NItems, Method: MethodOEstimate}

	// Floor first: the O-estimate must be available whatever happens to the
	// expensive tiers, so it runs detached from the deadline (but aborts on
	// explicit cancellation, checked above and inside the cascade below).
	floorCtx := context.WithoutCancel(ctx)
	oe, oerr := core.OEstimateCtx(floorCtx, bf, ft, core.OEOptions{Propagate: true})
	if errors.Is(oerr, bipartite.ErrInfeasible) {
		rep.Infeasible = true
		oe, oerr = core.OEstimateCtx(floorCtx, bf, ft, core.OEOptions{})
	}
	if oerr != nil {
		return rep, oerr
	}
	rep.OEstimate = oe.Value
	rep.ForcedCracks = oe.Forced
	rep.Expected = oe.Value

	if rep.Infeasible || (!opts.Exact && !opts.Simulate) {
		return rep, nil
	}

	g, gerr := bipartite.Build(bf, dataset.GroupItems(ft))
	if gerr != nil {
		return rep, gerr
	}

	// Exact tier.
	if opts.Exact && ft.NItems <= bipartite.MaxExactN {
		v, eerr := core.ExactExpectedCracksCtx(ctx, g.ToExplicit())
		switch {
		case eerr == nil:
			rep.Expected = v
			rep.Method = MethodExact
			return rep, nil
		case budget.Degradable(eerr):
			rep.Degraded = true
			rep.DegradedReason = "exact tier: " + eerr.Error()
		default:
			return rep, eerr
		}
	} else if opts.Exact {
		rep.Degraded = true
		rep.DegradedReason = fmt.Sprintf("exact tier: %d items exceed MaxExactN=%d",
			ft.NItems, bipartite.MaxExactN)
	}

	// Sampling tier — the first fallback of the cascade, and the preferred
	// tier when only Simulate was requested.
	est, serr := matching.EstimateCracksCtx(ctx, g, opts.Sampler, opts.Rng)
	switch {
	case errors.Is(serr, bipartite.ErrInfeasible):
		rep.Infeasible = true
		return rep, nil
	case serr == nil:
		rep.Simulated = est.Mean
		rep.SimulatedStdDev = est.StdDev
		rep.Expected = est.Mean
		rep.Method = MethodSampled
		return rep, nil
	case budget.Degradable(serr):
		rep.Degraded = true
		if rep.DegradedReason != "" {
			rep.DegradedReason += "; "
		}
		rep.DegradedReason += "sampling tier: " + serr.Error()
		// Fall through to the O-estimate floor already in the report.
		return rep, nil
	default:
		return rep, serr
	}
}

// AttackReport summarizes an Attack run.
type AttackReport struct {
	Items           int     // domain size
	OEstimate       float64 // O-estimate of expected cracks
	ForcedCracks    int     // propagation-forced assignments (certain knowledge)
	Simulated       float64 // simulation estimate (0 unless the sampler ran)
	SimulatedStdDev float64
	// Infeasible marks that no globally consistent perfect matching exists;
	// OEstimate then carries the Section 5.3 per-item fallback.
	Infeasible bool

	// Expected is the best available estimate of the expected number of
	// cracks; Method records which cascade tier produced it.
	Expected float64
	Method   Method
	// Degraded marks that a preferred tier was requested but abandoned for
	// budget reasons; DegradedReason says which and why.
	Degraded       bool
	DegradedReason string
}

// OEstimateFraction returns the O-estimate as a fraction of the domain.
func (r AttackReport) OEstimateFraction() float64 { return r.OEstimate / float64(r.Items) }

// AttackSubset is Attack restricted to the owner's items of interest — only
// the marked items count toward the estimate, the Lemma 2/4 view (e.g. only
// the top sellers matter). Simulation is not run; interest[x] marks counted
// items.
func AttackSubset(bf *BeliefFunction, db *Database, interest []bool, rng *rand.Rand) (AttackReport, error) {
	return AttackSubsetCtx(context.Background(), bf, db, interest)
}

// AttackSubsetCtx is AttackSubset under a work budget.
func AttackSubsetCtx(ctx context.Context, bf *BeliefFunction, db *Database, interest []bool) (rep AttackReport, err error) {
	defer recoverToError("AttackSubset", &err)
	ft := db.Table()
	rep = AttackReport{Items: ft.NItems, Method: MethodOEstimate}
	// The facade keeps its []bool signature; the kernels take packed words.
	// A nil interest slice means "count every item", the kernels' zero Set.
	var marked bitset.Set
	if interest != nil {
		marked = bitset.FromBools(interest)
	}
	oe, err := core.OEstimateCtx(ctx, bf, ft, core.OEOptions{Propagate: true, Interest: marked})
	if errors.Is(err, bipartite.ErrInfeasible) {
		rep.Infeasible = true
		oe, err = core.OEstimateCtx(ctx, bf, ft, core.OEOptions{Interest: marked})
	}
	if err != nil {
		return rep, err
	}
	rep.OEstimate = oe.Value
	rep.ForcedCracks = oe.Forced
	rep.Expected = oe.Value
	return rep, nil
}

// CrackDistribution returns the exact distribution P(X = k) of the number of
// cracks under the given belief function, by enumerating the consistent
// crack mappings — feasible for small domains only (the direct method of
// Section 4.1 is #P-complete).
func CrackDistribution(bf *BeliefFunction, db *Database) ([]float64, error) {
	return CrackDistributionCtx(context.Background(), bf, db)
}

// CrackDistributionCtx is CrackDistribution under a work budget. The
// enumeration is exponential and has no cheaper substitute, so there is no
// cascade here: when the budget runs out the error is returned
// (budget.IsBudgetError reports true) and the caller decides what to do.
func CrackDistributionCtx(ctx context.Context, bf *BeliefFunction, db *Database) (dist []float64, err error) {
	defer recoverToError("CrackDistribution", &err)
	g, err := ConsistencyGraph(bf, db)
	if err != nil {
		return nil, err
	}
	return core.CrackDistributionCtx(ctx, g.ToExplicit())
}

// ExpectedCracksIgnorant is Lemma 1: exactly 1 for any domain size.
func ExpectedCracksIgnorant(n int) float64 { return core.ExpectedCracksIgnorant(n) }

// ExpectedCracksExactKnowledge is Lemma 3: the number of distinct observed
// frequencies of the database.
func ExpectedCracksExactKnowledge(db *Database) float64 {
	return core.ExpectedCracksPointValued(dataset.GroupItems(db.Table()))
}

// DigestTable returns the stable content address of a frequency table — the
// dataset half of an assessment cache key (internal/riskcache). Two tables
// digest equal exactly when every analysis in this package scores them
// identically.
func DigestTable(ft *FrequencyTable) string { return ft.Digest() }

// DigestDatabase is DigestTable on the database's support-count view.
func DigestDatabase(db *Database) string { return db.Table().Digest() }

// DigestBelief returns the stable content address of a canonicalized belief
// function — the belief half of an assessment cache key. Textually different
// specs that parse to the same prior digest equal.
func DigestBelief(bf *BeliefFunction) string { return bf.Digest() }

// MineFrequentItemsets mines all itemsets with at least the given fractional
// support, using FP-Growth.
func MineFrequentItemsets(db *Database, minSupportFraction float64) (fis []FrequentItemset, err error) {
	defer recoverToError("MineFrequentItemsets", &err)
	abs, err := fim.AbsoluteSupport(db, minSupportFraction)
	if err != nil {
		return nil, err
	}
	return fim.FPGrowth(db, abs)
}
