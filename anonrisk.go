package anonrisk

import (
	"io"
	"math/rand"

	"repro/internal/anonymize"
	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fim"
	"repro/internal/matching"
	"repro/internal/recipe"
)

// Re-exported core types. The aliases make the public API self-contained
// while keeping each concern implemented (and documented in depth) in its
// own internal package.
type (
	// Database is a transaction database over a dense item universe.
	Database = dataset.Database
	// Transaction is one itemset of a database.
	Transaction = dataset.Transaction
	// FrequencyTable is the support-count view of a database — all the
	// paper's risk analyses depend on the data only through it.
	FrequencyTable = dataset.FrequencyTable
	// Stats is a Figure 9-style frequency summary.
	Stats = dataset.Stats

	// BeliefFunction models the hacker's partial information: a frequency
	// interval per original item.
	BeliefFunction = belief.Function
	// Interval is a closed frequency range.
	Interval = belief.Interval

	// Mapping is a secret anonymization bijection.
	Mapping = anonymize.Mapping
	// CrackMapping is a hacker's 1-1 de-anonymization guess.
	CrackMapping = anonymize.CrackMapping

	// Graph is the bipartite consistency graph between anonymized and
	// original items induced by a belief function.
	Graph = bipartite.Graph

	// Assessment is the outcome of the Assess-Risk recipe.
	Assessment = recipe.Result
	// AssessOptions configures the recipe.
	AssessOptions = recipe.Options

	// FrequentItemset pairs an itemset with its support.
	FrequentItemset = fim.FrequentItemset
)

// NewDatabase builds a database over n items; see dataset.New.
func NewDatabase(n int, txs []Transaction) (*Database, error) { return dataset.New(n, txs) }

// ReadFIMI parses a FIMI-format database (one transaction per line).
func ReadFIMI(r io.Reader) (*Database, error) { return dataset.ReadFIMI(r, 0) }

// WriteFIMI writes a database in FIMI format.
func WriteFIMI(w io.Writer, db *Database) error { return dataset.WriteFIMI(w, db) }

// ComputeStats summarizes a database's frequency structure as in Figure 9.
func ComputeStats(name string, db *Database) Stats {
	return dataset.ComputeStats(name, db.Table())
}

// Anonymize draws a uniformly random anonymization bijection and applies it,
// returning the releasable database and the secret key. The release has
// identical support structure and — by the commutation of mining with
// renaming — identical frequent itemsets up to the key.
func Anonymize(db *Database, rng *rand.Rand) (release *Database, key *Mapping, err error) {
	key = anonymize.NewRandomMapping(db.Items(), rng)
	release, err = key.Apply(db)
	if err != nil {
		return nil, nil, err
	}
	return release, key, nil
}

// AssessRisk runs Algorithm Assess-Risk (Figure 8) on the database with
// tolerance tau and default settings (5 subset runs, propagation on,
// comfort level 0.5). Use AssessRiskOptions for full control.
func AssessRisk(db *Database, tau float64, rng *rand.Rand) (*Assessment, error) {
	return recipe.AssessRisk(db.Table(), recipe.Options{
		Tolerance: tau,
		Propagate: true,
		Rng:       rng,
	})
}

// AssessRiskOptions runs the recipe with explicit options.
func AssessRiskOptions(db *Database, opts AssessOptions) (*Assessment, error) {
	return recipe.AssessRisk(db.Table(), opts)
}

// NewBelief builds a belief function from one frequency interval per item.
func NewBelief(intervals []Interval) (*BeliefFunction, error) { return belief.New(intervals) }

// Ignorant returns the no-knowledge belief function over n items (every
// interval [0,1]; expected cracks exactly 1 by Lemma 1).
func Ignorant(n int) *BeliefFunction { return belief.Ignorant(n) }

// ExactKnowledge returns the compliant point-valued belief function for a
// database: the hacker knows every frequency exactly (expected cracks = the
// number of distinct frequencies, Lemma 3).
func ExactKnowledge(db *Database) *BeliefFunction {
	return belief.PointValued(db.Frequencies())
}

// BallparkKnowledge returns the compliant interval belief function the
// recipe uses: every item's frequency guessed within ±delta. Pass delta <= 0
// to use δ_med, the database's median frequency-group gap.
func BallparkKnowledge(db *Database, delta float64) *BeliefFunction {
	if delta <= 0 {
		delta = dataset.GroupItems(db.Table()).MedianGap()
	}
	return belief.UniformWidth(db.Frequencies(), delta)
}

// BeliefFromSample builds the hacker's belief function from a sample of the
// data (Section 7.4): intervals of half-width equal to the sample's median
// frequency-group gap around the sampled frequencies.
func BeliefFromSample(sample *Database) *BeliefFunction {
	st := sample.Table()
	return belief.FromSample(st.Frequencies(), dataset.GroupItems(st).MedianGap())
}

// ConsistencyGraph builds the bipartite graph of consistent crack mappings
// for a belief function against the database's observed frequencies.
func ConsistencyGraph(bf *BeliefFunction, db *Database) (*Graph, error) {
	return bipartite.Build(bf, dataset.GroupItems(db.Table()))
}

// Attack quantifies what a hacker holding bf achieves against the database's
// anonymized release: the O-estimate of expected cracks and, when simulate is
// true, a matching-space simulation estimate with its standard deviation.
//
// The O-estimate applies degree-1 propagation when the consistency graph
// admits a perfect matching. When it does not — common for partially wrong
// (α-compliant) belief functions — the report's Infeasible flag is set, the
// O-estimate falls back to the paper's Section 5.3 per-item form
// Σ_{compliant} 1/O_x (which needs no global matching), and simulation is
// skipped.
func Attack(bf *BeliefFunction, db *Database, simulate bool, rng *rand.Rand) (AttackReport, error) {
	ft := db.Table()
	rep := AttackReport{Items: ft.NItems}
	oe, err := core.OEstimate(bf, ft, core.OEOptions{Propagate: true})
	if err == bipartite.ErrInfeasible {
		rep.Infeasible = true
		oe, err = core.OEstimate(bf, ft, core.OEOptions{})
	}
	if err != nil {
		return rep, err
	}
	rep.OEstimate = oe.Value
	rep.ForcedCracks = oe.Forced
	if simulate && !rep.Infeasible {
		g, err := bipartite.Build(bf, dataset.GroupItems(ft))
		if err != nil {
			return rep, err
		}
		est, err := matching.EstimateCracks(g, matching.Config{}, rng)
		if err == bipartite.ErrInfeasible {
			rep.Infeasible = true
			return rep, nil
		}
		if err != nil {
			return rep, err
		}
		rep.Simulated = est.Mean
		rep.SimulatedStdDev = est.StdDev
	}
	return rep, nil
}

// AttackReport summarizes an Attack run.
type AttackReport struct {
	Items           int     // domain size
	OEstimate       float64 // O-estimate of expected cracks
	ForcedCracks    int     // propagation-forced assignments (certain knowledge)
	Simulated       float64 // simulation estimate (0 unless simulate was set)
	SimulatedStdDev float64
	// Infeasible marks that no globally consistent perfect matching exists;
	// OEstimate then carries the Section 5.3 per-item fallback.
	Infeasible bool
}

// OEstimateFraction returns the O-estimate as a fraction of the domain.
func (r AttackReport) OEstimateFraction() float64 { return r.OEstimate / float64(r.Items) }

// AttackSubset is Attack restricted to the owner's items of interest — only
// the marked items count toward the estimate, the Lemma 2/4 view (e.g. only
// the top sellers matter). Simulation is not run; interest[x] marks counted
// items.
func AttackSubset(bf *BeliefFunction, db *Database, interest []bool, rng *rand.Rand) (AttackReport, error) {
	ft := db.Table()
	rep := AttackReport{Items: ft.NItems}
	oe, err := core.OEstimate(bf, ft, core.OEOptions{Propagate: true, Interest: interest})
	if err == bipartite.ErrInfeasible {
		rep.Infeasible = true
		oe, err = core.OEstimate(bf, ft, core.OEOptions{Interest: interest})
	}
	if err != nil {
		return rep, err
	}
	rep.OEstimate = oe.Value
	rep.ForcedCracks = oe.Forced
	return rep, nil
}

// CrackDistribution returns the exact distribution P(X = k) of the number of
// cracks under the given belief function, by enumerating the consistent
// crack mappings — feasible for small domains only (the direct method of
// Section 4.1 is #P-complete).
func CrackDistribution(bf *BeliefFunction, db *Database) ([]float64, error) {
	g, err := ConsistencyGraph(bf, db)
	if err != nil {
		return nil, err
	}
	return core.CrackDistribution(g.ToExplicit())
}

// ExpectedCracksIgnorant is Lemma 1: exactly 1 for any domain size.
func ExpectedCracksIgnorant(n int) float64 { return core.ExpectedCracksIgnorant(n) }

// ExpectedCracksExactKnowledge is Lemma 3: the number of distinct observed
// frequencies of the database.
func ExpectedCracksExactKnowledge(db *Database) float64 {
	return core.ExpectedCracksPointValued(dataset.GroupItems(db.Table()))
}

// MineFrequentItemsets mines all itemsets with at least the given fractional
// support, using FP-Growth.
func MineFrequentItemsets(db *Database, minSupportFraction float64) ([]FrequentItemset, error) {
	abs, err := fim.AbsoluteSupport(db, minSupportFraction)
	if err != nil {
		return nil, err
	}
	return fim.FPGrowth(db, abs)
}
