// Command datagen writes synthetic transaction databases in FIMI format:
// either a clone of one of the paper's six benchmarks (matched to the
// Figure 9 statistics) or a QUEST-style correlated database for mining demos.
//
// Usage:
//
//	datagen -profile RETAIL [-seed 1] [-timeout 30s] [-o retail.fimi]
//	datagen -quest -items 100 -trans 5000 [-o quest.fimi]
//
// Exit status: 0 ok, 4 when the -timeout budget runs out mid-generation,
// 1 for other errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/internal/budget"
	"repro/internal/cliutil"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	profile := flag.String("profile", "", "benchmark profile: CONNECT, PUMSB, ACCIDENTS, RETAIL, MUSHROOM, CHESS")
	quest := flag.Bool("quest", false, "generate QUEST-style correlated data instead")
	items := flag.Int("items", 100, "quest: domain size")
	trans := flag.Int("trans", 5000, "quest: number of transactions")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	budgetCtx := cliutil.BudgetFlags()
	flag.Parse()
	ctx, cancel := budgetCtx()
	defer cancel()

	rng := rand.New(rand.NewSource(*seed))
	var db *dataset.Database
	err := budget.Run(ctx, func() error {
		var gerr error
		switch {
		case *quest:
			db, gerr = datagen.Quest(datagen.QuestConfig{Items: *items, Transactions: *trans}, rng)
		case *profile != "":
			plan, ok := datagen.ByName(strings.ToUpper(*profile))
			if !ok {
				var names []string
				for _, p := range datagen.Benchmarks() {
					names = append(names, p.Name)
				}
				return fmt.Errorf("unknown profile %q; available: %s", *profile, strings.Join(names, ", "))
			}
			db, gerr = plan.Database(rng)
		default:
			return fmt.Errorf("pass -profile <name> or -quest; see -help")
		}
		return gerr
	})
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := dataset.WriteFIMI(w, db); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, dataset.ComputeStats("generated", db.Table()))
}

func fatal(err error) {
	cliutil.Fatal("datagen", err)
}
