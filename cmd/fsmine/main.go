// Command fsmine mines frequent itemsets from a FIMI-format transaction
// database — the data-mining task the paper's disclosure scenarios revolve
// around. Both miners produce identical results; -algo switches between them.
//
// Usage:
//
//	fsmine [-minsup 0.1] [-algo apriori|fpgrowth] [-top n] [-timeout 30s] [file]
//
// Exit status: 0 ok, 4 when the -timeout budget runs out mid-mine, 1 for
// other errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/budget"
	"repro/internal/cliutil"
	"repro/internal/dataset"
	"repro/internal/fim"
)

func main() {
	minsup := flag.Float64("minsup", 0.1, "minimum support as a fraction of transactions")
	algo := flag.String("algo", "fpgrowth", "mining algorithm: apriori, fpgrowth or eclat")
	top := flag.Int("top", 0, "print only the n most frequent itemsets (0 = all)")
	minconf := flag.Float64("rules", 0, "also derive association rules with at least this confidence (0 = off)")
	budgetCtx := cliutil.BudgetFlags()
	flag.Parse()
	ctx, cancel := budgetCtx()
	defer cancel()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	db, err := dataset.ReadFIMI(in, 0)
	if err != nil {
		fatal(err)
	}
	abs, err := fim.AbsoluteSupport(db, *minsup)
	if err != nil {
		fatal(err)
	}

	// The miners are not context-aware; budget.Run bounds them from outside,
	// which is fine because exhaustion exits the process.
	var sets []fim.FrequentItemset
	err = budget.Run(ctx, func() error {
		var merr error
		switch *algo {
		case "apriori":
			sets, merr = fim.Apriori(db, abs)
		case "fpgrowth":
			sets, merr = fim.FPGrowth(db, abs)
		case "eclat":
			sets, merr = fim.Eclat(db, abs)
		default:
			merr = fmt.Errorf("unknown algorithm %q (want apriori, fpgrowth or eclat)", *algo)
		}
		return merr
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# %d transactions, %d items, minimum support %d (%.4f)\n",
		db.Transactions(), db.Items(), abs, *minsup)
	fmt.Printf("# %d frequent itemsets\n", len(sets))
	allSets := sets
	if *top > 0 && *top < len(sets) {
		byCount := append([]fim.FrequentItemset(nil), sets...)
		sort.Slice(byCount, func(i, j int) bool { return byCount[i].Support > byCount[j].Support })
		sets = byCount[:*top]
	}
	for _, fs := range sets {
		fmt.Printf("%s %d\n", fs.Items.Key(), fs.Support)
	}

	if *minconf > 0 {
		rules, err := fim.Rules(allSets, db.Transactions(), *minconf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %d association rules at confidence >= %.2f\n", len(rules), *minconf)
		for _, r := range rules {
			fmt.Println(r)
		}
	}
}

func fatal(err error) {
	cliutil.Fatal("fsmine", err)
}
