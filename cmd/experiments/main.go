// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run id[,id...]] [-seed n] [-quick] [-csv dir]
//
// With no -run flag every experiment executes in paper order. IDs: delta,
// figure9, figure10, figure11, figure12, recipe, ablation, itemsets, kanon,
// sanitize. With -csv, every result table is additionally written as
// <dir>/<experiment>-<k>.csv for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id to run (default: all)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced simulation scale")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	var list []experiments.Experiment
	if *run == "" {
		list = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", id)
				for _, e := range experiments.All() {
					fmt.Fprintf(os.Stderr, "  %-9s %s\n", e.ID, e.Title)
				}
				os.Exit(2)
			}
			list = append(list, e)
		}
	}
	for _, e := range list {
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		if *csvDir != "" {
			for k, tb := range rep.Tables {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s-%d.csv", rep.ID, k))
				if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
