// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run id[,id...]] [-seed n] [-quick] [-timeout 5m] [-workers n] [-csv dir]
//	            [-cpuprofile cpu.out] [-memprofile mem.out]
//
// With no -run flag every experiment executes in paper order. IDs: delta,
// figure9, figure10, figure11, figure12, recipe, ablation, itemsets, kanon,
// sanitize. With -csv, every result table is additionally written as
// <dir>/<experiment>-<k>.csv for external plotting.
//
// Exit status: 0 ok, 2 for an unknown experiment id, 4 when the -timeout
// budget runs out, 1 for other errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	run := flag.String("run", "", "experiment id to run (default: all)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced simulation scale")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	timing := flag.Bool("timing", false, "print wall/CPU time per experiment to stderr")
	budgetCtx := cliutil.BudgetFlags()
	withWorkers := cliutil.WorkersFlag()
	profile := cliutil.ProfileFlags()
	flag.Parse()
	ctx, cancel := budgetCtx()
	defer cancel()
	ctx = withWorkers(ctx)
	stopProfile, err := profile()
	if err != nil {
		fatal(err)
	}
	defer stopProfile()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	var list []experiments.Experiment
	if *run == "" {
		list = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", id)
				for _, e := range experiments.All() {
					fmt.Fprintf(os.Stderr, "  %-9s %s\n", e.ID, e.Title)
				}
				os.Exit(2)
			}
			list = append(list, e)
		}
	}
	for _, e := range list {
		startWall, startCPU := time.Now(), parallel.CPUTime()
		rep, err := e.Run(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(budget.ExitCode(err))
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "%s: workers=%d wall=%v cpu=%v\n",
				e.ID, parallel.Workers(ctx), time.Since(startWall).Round(time.Millisecond),
				(parallel.CPUTime() - startCPU).Round(time.Millisecond))
		}
		fmt.Println(rep)
		if *csvDir != "" {
			for k, tb := range rep.Tables {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s-%d.csv", rep.ID, k))
				if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func fatal(err error) {
	cliutil.Fatal("experiments", err)
}
