// Command experiments regenerates the paper's tables and figures, and keeps
// a persistent, content-addressed registry of every recorded run so results
// become a trajectory instead of ephemeral terminal output.
//
// Usage:
//
//	experiments run    [-run id[,id...]] [-seed n] [-quick] [-workers n]
//	                   [-timeout 5m] [-max-work n] [-csv dir] [-timing]
//	                   [-registry dir] [-cpuprofile cpu.out] [-memprofile mem.out]
//	experiments list   [-registry dir] [-porcelain]
//	experiments show   [-registry dir] <run-id>
//	experiments diff   [-registry dir] [-eps v] <run-a> <run-b>
//	experiments replay [-registry dir] <run-id> [<run-id>...]
//
// `run` executes experiments in paper order (all ten, or the -run subset)
// and records each as one registry run: manifest.json with a CRC-checked
// identity (experiment, seed, quick, workers, git rev, input digests),
// per-table CSVs, and timing.json. `replay` re-executes a recorded run from
// its manifest and verifies the tables byte-for-byte; `diff` compares two
// runs cell by cell with ε-aware float comparison plus wall/CPU deltas and
// provenance changes. The registry directory defaults to .riskruns (flag
// -registry); `run -registry ""` disables recording.
//
// Invoking the command with flags but no subcommand keeps the historical
// behavior: run everything, print tables, record nothing.
//
// Exit status: 0 ok, 1 error, 2 usage (unknown experiment, subcommand, or
// missing argument), 3 when replay diverges or diff finds changes, 4 when
// the -timeout/-max-work budget runs out.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/registry"
)

// defaultRegistry is where subcommand invocations keep their runs unless
// told otherwise.
const defaultRegistry = ".riskruns"

// exitDiverged is the exit status for "the comparison ran fine and found
// real differences" — distinct from 1 (error) and 4 (budget).
const exitDiverged = 3

func main() {
	args := os.Args[1:]
	sub := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, args = args[0], args[1:]
	}
	switch sub {
	case "":
		// Legacy flag-only invocation: run everything, record nothing.
		runMain(args, false)
	case "run":
		runMain(args, true)
	case "list":
		listMain(args)
	case "show":
		showMain(args)
	case "diff":
		diffMain(args)
	case "replay":
		replayMain(args)
	case "help", "-h", "--help":
		flag.CommandLine.Usage()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown subcommand %q (want run, list, show, diff, or replay)\n", sub)
		os.Exit(2)
	}
}

// parseFlags finishes a subcommand's flag registration and parses args with
// the shared default flag set (exactly one subcommand runs per process).
func parseFlags(args []string) {
	if err := flag.CommandLine.Parse(args); err != nil {
		os.Exit(2)
	}
}

func runMain(args []string, record bool) {
	run := flag.String("run", "", "experiment id to run (default: all)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced simulation scale")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	timing := flag.Bool("timing", false, "print wall/CPU time per experiment to stderr")
	registryDir := flag.String("registry", registryDefault(record),
		"record each experiment as a registry run under this directory (empty = don't record)")
	budgetCtx := cliutil.BudgetFlags()
	withWorkers := cliutil.WorkersFlag()
	profile := cliutil.ProfileFlags()
	parseFlags(args)

	ctx, cancel := budgetCtx()
	defer cancel()
	ctx = withWorkers(ctx)
	stopProfile, err := profile()
	if err != nil {
		fatal(err)
	}
	defer stopProfile()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	var store *registry.Store
	gitRev := ""
	if *registryDir != "" {
		if store, err = registry.Open(*registryDir); err != nil {
			fatal(err)
		}
		gitRev = registry.GitRev(".")
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	var list []experiments.Experiment
	if *run == "" {
		list = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", id)
				for _, e := range experiments.All() {
					fmt.Fprintf(os.Stderr, "  %-9s %s\n", e.ID, e.Title)
				}
				os.Exit(2)
			}
			list = append(list, e)
		}
	}
	for _, e := range list {
		startWall, startCPU := time.Now(), parallel.CPUTime()
		rep, err := e.Run(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(budget.ExitCode(err))
		}
		wall, cpu := time.Since(startWall), parallel.CPUTime()-startCPU
		if *timing {
			fmt.Fprintf(os.Stderr, "%s: workers=%d wall=%v cpu=%v\n",
				e.ID, parallel.Workers(ctx), wall.Round(time.Millisecond), cpu.Round(time.Millisecond))
		}
		fmt.Println(rep)
		if *csvDir != "" {
			for k, tb := range rep.Tables {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s-%d.csv", rep.ID, k))
				// Atomic, same as the registry: a run killed mid-write must
				// not leave a partial CSV at its final name.
				if err := registry.AtomicWriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		if store != nil {
			rec, err := experiments.RecordRun(store, rep, cfg, parallel.Workers(ctx), gitRev, wall, cpu)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("recorded %s %s\n", rec.ID(), rep.ID)
		}
	}
}

// registryDefault: subcommand `run` records by default; the legacy spelling
// stays side-effect free.
func registryDefault(record bool) string {
	if record {
		return defaultRegistry
	}
	return ""
}

func fatal(err error) {
	cliutil.Fatal("experiments", err)
}
