// The registry-facing subcommands: list, show, diff, replay. `run` lives in
// main.go beside the legacy entry point; everything here only reads the
// store (replay re-executes, but records nothing).
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/belief"
	"repro/internal/budget"
	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/registry"
)

func registryFlag() *string {
	return flag.String("registry", defaultRegistry, "registry directory")
}

func openStore(dir string) *registry.Store {
	s, err := registry.Open(dir)
	if err != nil {
		fatal(err)
	}
	return s
}

func listMain(args []string) {
	dir := registryFlag()
	porcelain := flag.Bool("porcelain", false,
		"machine-readable output: one run per line, tab-separated id/experiment/seed/quick/workers/gitrev")
	parseFlags(args)
	entries, err := openStore(*dir).List()
	if err != nil {
		fatal(err)
	}
	bad := 0
	if !*porcelain {
		fmt.Printf("%-26s  %-9s  %5s  %-5s  %7s  %-12s  %6s  %8s  %s\n",
			"RUN", "EXP", "SEED", "QUICK", "WORKERS", "GITREV", "TABLES", "WALL", "CREATED")
	}
	for _, e := range entries {
		if e.Err != nil {
			// A corrupt record is skipped with a diagnostic, never half-shown.
			fmt.Fprintf(os.Stderr, "experiments: skipping %s: %v\n", e.ID, e.Err)
			bad++
			continue
		}
		m := e.Run.Manifest
		if *porcelain {
			fmt.Printf("%s\t%s\t%d\t%t\t%d\t%s\n", m.RunID, m.Experiment, m.Seed, m.Quick, m.Workers, m.GitRev)
			continue
		}
		created := time.UnixMilli(e.Run.Timing.CreatedUnixMS).UTC().Format("2006-01-02 15:04:05")
		fmt.Printf("%-26s  %-9s  %5d  %-5t  %7d  %-12s  %6d  %7dms  %s\n",
			m.RunID, m.Experiment, m.Seed, m.Quick, m.Workers, m.GitRev,
			len(m.Tables), e.Run.Timing.WallMS, created)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func showMain(args []string) {
	dir := registryFlag()
	parseFlags(args)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments show [-registry dir] <run-id>")
		os.Exit(2)
	}
	store := openStore(*dir)
	run, err := store.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m := run.Manifest
	fmt.Printf("run         %s\n", m.RunID)
	fmt.Printf("experiment  %s: %s\n", m.Experiment, m.Title)
	fmt.Printf("identity    seed=%d quick=%t workers=%d gitrev=%s\n", m.Seed, m.Quick, m.Workers, m.GitRev)
	fmt.Printf("content key %s\n", m.ContentKey)
	fmt.Printf("created     %s  wall=%dms cpu=%dms\n",
		time.UnixMilli(run.Timing.CreatedUnixMS).UTC().Format(time.RFC3339), run.Timing.WallMS, run.Timing.CPUMS)
	for _, in := range m.Inputs {
		fmt.Printf("input       %-8s %-24s %s\n", in.Kind, in.Name, in.Digest)
	}
	for k, tf := range m.Tables {
		raw, err := store.ReadTable(run, k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n-- %s", tf.File)
		if tf.Title != "" {
			fmt.Printf(": %s", tf.Title)
		}
		fmt.Printf(" (%d bytes, crc %08x) --\n", tf.Bytes, tf.CRC32)
		printAligned(raw)
	}
	if len(m.Provenance) > 0 {
		var pretty any
		if err := json.Unmarshal(m.Provenance, &pretty); err == nil {
			data, _ := json.MarshalIndent(pretty, "", "  ")
			fmt.Printf("\n-- provenance --\n%s\n", data)
		}
	}
	for _, n := range m.Notes {
		fmt.Printf("\nnote: %s\n", n)
	}
}

// printAligned re-renders a stored CSV as padded columns for terminals.
func printAligned(raw []byte) {
	r := csv.NewReader(strings.NewReader(string(raw)))
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil || len(records) == 0 {
		os.Stdout.Write(raw)
		return
	}
	var widths []int
	for _, rec := range records {
		for i, cell := range rec {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, rec := range records {
		for i, cell := range rec {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%-*s", widths[i], cell)
		}
		fmt.Println()
	}
}

func diffMain(args []string) {
	dir := registryFlag()
	eps := flag.Float64("eps", belief.Epsilon,
		"float tolerance: cells that parse as numbers count as equal when |a-b| <= eps")
	parseFlags(args)
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: experiments diff [-registry dir] [-eps v] <run-a> <run-b>")
		os.Exit(2)
	}
	store := openStore(*dir)
	a, err := store.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := store.Load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	d, err := store.Diff(a, b, *eps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("diff %s (%s) -> %s (%s)\n", d.AID, a.Manifest.GitRev, d.BID, b.Manifest.GitRev)
	for _, s := range d.Structural {
		fmt.Printf("structural: %s\n", s)
	}
	for _, td := range d.Tables {
		for _, c := range td.Cells {
			loc := fmt.Sprintf("row %d", c.Row)
			if c.Row < 0 {
				loc = "header"
			} else if c.RowLabel != "" {
				loc = fmt.Sprintf("row %d (%s)", c.Row, c.RowLabel)
			}
			if c.IsFloat {
				fmt.Printf("%s %s col %d (%s): %s -> %s (delta %+g)\n",
					c.Table, loc, c.Col, c.Column, c.A, c.B, c.Delta)
			} else {
				fmt.Printf("%s %s col %d (%s): %q -> %q\n",
					c.Table, loc, c.Col, c.Column, c.A, c.B)
			}
		}
	}
	for _, p := range d.Provenance {
		fmt.Printf("provenance: %s\n", p)
	}
	fmt.Printf("%d cells changed; wall %+dms cpu %+dms\n",
		d.CellCount(), d.BWallMS-d.AWallMS, d.BCPUMS-d.ACPUMS)
	if d.Changed() {
		os.Exit(exitDiverged)
	}
}

func replayMain(args []string) {
	dir := registryFlag()
	budgetCtx := cliutil.BudgetFlags()
	parseFlags(args)
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments replay [-registry dir] <run-id> [<run-id>...]")
		os.Exit(2)
	}
	store := openStore(*dir)
	ctx, cancel := budgetCtx()
	defer cancel()
	diverged := false
	for _, id := range flag.Args() {
		run, divs, err := experiments.ReplayRun(ctx, store, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: replay %s: %v\n", id, err)
			os.Exit(budget.ExitCode(err))
		}
		if len(divs) == 0 {
			fmt.Printf("replay %s %s: ok (%d tables byte-identical)\n",
				id, run.Manifest.Experiment, len(run.Manifest.Tables))
			continue
		}
		diverged = true
		for _, dv := range divs {
			fmt.Printf("replay %s %s: %s DIVERGED\n--- recorded ---\n%s--- replayed ---\n%s",
				id, run.Manifest.Experiment, dv.File, dv.Want, dv.Got)
		}
	}
	if diverged {
		os.Exit(exitDiverged)
	}
}
