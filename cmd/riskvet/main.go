// Command riskvet runs the repo's analyzer suite (cachetaint, ctxbudget,
// detrand, errcmp, floateq, loopbudget, maporder, retrysleep,
// streamticker — see internal/analysis) over the given package patterns
// and exits non-zero when any unsuppressed diagnostic remains. ci.sh
// builds it and runs it as part of the default gate:
//
//	go build -o riskvet ./cmd/riskvet
//	./riskvet ./...
//	./riskvet -escape
//
// Output format matches go vet: file:line:col: [check] message. With
// -json, findings are emitted to stdout as a JSON array of
// {file, line, col, analyzer, message} objects instead, for tooling.
// Findings are suppressed with an inline or preceding-line comment
//
//	//lint:allow <check> <reason>
//
// where the reason is mandatory and a suppression that stops matching
// anything ("stale") is itself an error, so the allow ledger stays honest.
//
// -escape runs the static escape-analysis gate instead of the analyzer
// suite: it compiles the kernel packages with -gcflags=-m and diffs the
// escape diagnostics against the committed baseline
// (internal/analysis/escapegate/baseline.txt); new escapes AND stale
// baseline entries both fail. -escape-update regenerates the baseline
// after a deliberate change.
//
// Exit codes:
//
//	0  no findings; the gate passes
//	1  findings remain, or the escape gate diff is non-empty
//	2  operational error (load/typecheck failure, compile failure,
//	   unreadable baseline, bad flags)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/escapegate"
	"repro/internal/analysis/riskvet"
)

// finding is the -json output shape, one object per diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout instead of vet-style text on stderr")
	escape := flag.Bool("escape", false, "run the kernel escape-analysis gate instead of the analyzer suite")
	escapeUpdate := flag.Bool("escape-update", false, "regenerate the escape-gate baseline from a fresh compile")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: riskvet [-json] [packages]\n       riskvet -escape | -escape-update\n\nchecks:\n")
		for _, a := range riskvet.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", "escapegate",
			"kernel heap escapes must match the committed baseline (-escape)")
	}
	flag.Parse()

	switch {
	case *escapeUpdate:
		if err := escapegate.Update("."); err != nil {
			fmt.Fprintln(os.Stderr, "riskvet:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "riskvet: wrote", escapegate.BaselinePath)
	case *escape:
		problems, err := escapegate.Check(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "riskvet:", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "riskvet: escapegate:", p)
		}
		if len(problems) > 0 {
			fmt.Fprintf(os.Stderr, "riskvet: escape gate: %d problem(s)\n", len(problems))
			os.Exit(1)
		}
	default:
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		diags, fset, err := riskvet.Check(".", patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "riskvet:", err)
			os.Exit(2)
		}
		if *jsonOut {
			findings := make([]finding, 0, len(diags))
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				findings = append(findings, finding{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: d.Check,
					Message:  d.Message,
				})
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(findings); err != nil {
				fmt.Fprintln(os.Stderr, "riskvet:", err)
				os.Exit(2)
			}
		} else {
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, analysis.Format(fset, d))
			}
		}
		if len(diags) > 0 {
			if !*jsonOut {
				fmt.Fprintf(os.Stderr, "riskvet: %d finding(s)\n", len(diags))
			}
			os.Exit(1)
		}
	}
}
