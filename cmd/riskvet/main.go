// Command riskvet runs the repo's analyzer suite (ctxbudget, detrand,
// errcmp, floateq — see internal/analysis) over the given package patterns
// and exits non-zero when any unsuppressed diagnostic remains. ci.sh builds
// it and runs it as part of the default gate:
//
//	go build -o riskvet ./cmd/riskvet
//	./riskvet ./...
//
// Output format matches go vet: file:line:col: [check] message. Findings
// are suppressed with an inline or preceding-line comment
//
//	//lint:allow <check> <reason>
//
// where the reason is mandatory and a suppression that stops matching
// anything ("stale") is itself an error, so the allow ledger stays honest.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/riskvet"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: riskvet [packages]\n\nchecks:\n")
		for _, a := range riskvet.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, fset, err := riskvet.Check(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riskvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, analysis.Format(fset, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "riskvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
