// Command relrisk assesses the re-identification risk of releasing an
// anonymized relation (Section 8.1 of the paper) and, optionally, compares
// against a k-anonymized release of the same data.
//
// Input is CSV-like: a header row of attribute names, then one row of
// categorical values per individual. Attribute vocabularies are inferred;
// attributes whose name ends in '*' are treated as ordered (the marker is
// stripped).
//
// The hacker's partial knowledge is given with -know FILE, one fact per
// line:
//
//	<individual-index> <attr>=<value>       exact knowledge
//	<individual-index> <attr>=<v1>|<v2>     one-of
//	<individual-index> <attr>=<lo>..<hi>    range (ordered attributes)
//
// Usage:
//
//	relrisk [-know facts.txt] [-k 5] [-timeout 30s] [-max-work n] [-workers n] data.csv
//
// Exit status: 0 ok, 4 when the budget prevents even a degraded answer,
// 1 otherwise.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/budget"
	"repro/internal/cliutil"
	"repro/internal/kanon"
	"repro/internal/relation"
)

func main() {
	knowPath := flag.String("know", "", "partial-knowledge facts file")
	k := flag.Int("k", 0, "also report a k-anonymized release (0 = off)")
	budgetCtx := cliutil.BudgetFlags()
	withWorkers := cliutil.WorkersFlag()
	flag.Parse()
	ctx, cancel := budgetCtx()
	defer cancel()
	ctx = withWorkers(ctx)
	if flag.NArg() < 1 {
		fatal(fmt.Errorf("usage: relrisk [-know facts] [-k n] data.csv"))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rel, err := readCSV(f)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("relation: %d individuals, %d attributes, %d anonymity sets (k = %d)\n",
		rel.Records(), len(rel.Schema.Attrs), len(rel.TupleGroups()), rel.MinAnonymitySet())
	fmt.Printf("full-knowledge worst case (Lemma 3 over anonymity sets): %.0f expected re-identifications (%.1f%%)\n",
		rel.ExpectedCracksFullKnowledge(), 100*rel.ExpectedCracksFullKnowledge()/float64(rel.Records()))

	info := relation.PartialInfo{}
	if *knowPath != "" {
		kf, err := os.Open(*knowPath)
		if err != nil {
			fatal(err)
		}
		defer kf.Close()
		info, err = readKnowledge(kf, rel.Schema)
		if err != nil {
			fatal(err)
		}
	}
	rep, err := relation.AssessDisclosureCtx(ctx, rel, info, rel.Records() <= 20)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hacker with %d known individuals: expected re-identifications %.3f (%.2f%%), %d pinned down\n",
		len(info), rep.OEstimate, 100*rep.OEstimate/float64(rep.Individuals), len(rep.PinnedDown))
	if rep.HasExact {
		fmt.Printf("  exact (permanent-based): %.3f\n", rep.Exact)
	}
	if rep.Infeasible {
		fmt.Println("  note: the facts admit no globally consistent assignment; per-item §5.3 estimate shown")
	}
	if rep.Degraded {
		fmt.Printf("  note: exact tier abandoned (%s); O-estimate shown\n", rep.DegradedReason)
	}

	if *k > 1 {
		hierarchies := make([]kanon.Hierarchy, len(rel.Schema.Attrs))
		for a, attr := range rel.Schema.Attrs {
			hierarchies[a] = kanon.AutoHierarchy(attr)
		}
		var res *kanon.Result
		err := budget.Run(ctx, func() error {
			var kerr error
			res, kerr = kanon.Anonymize(rel, hierarchies, *k)
			return kerr
		})
		if err != nil {
			fatal(err)
		}
		view := res.Relation
		fmt.Printf("\n%d-anonymized alternative: %d anonymity sets (min %d), full-knowledge E(X) %.0f (%.1f%%), precision %.3f\n",
			*k, len(view.TupleGroups()), res.AchievedK,
			view.ExpectedCracksFullKnowledge(),
			100*view.ExpectedCracksFullKnowledge()/float64(view.Records()),
			res.Precision)
		fmt.Printf("  generalization: %s\n", kanon.LevelString(view, res.Levels))
	}
}

// readCSV parses the simple comma-separated relation format.
func readCSV(r io.Reader) (*relation.Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("relrisk: empty input")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	attrs := make([]relation.Attribute, len(header))
	vocab := make([]map[string]int, len(header))
	for a, name := range header {
		name = strings.TrimSpace(name)
		ordered := strings.HasSuffix(name, "*")
		attrs[a] = relation.Attribute{Name: strings.TrimSuffix(name, "*"), Ordered: ordered}
		vocab[a] = map[string]int{}
	}
	var rows [][]int
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != len(attrs) {
			return nil, fmt.Errorf("relrisk: line %d has %d fields, want %d", line, len(fields), len(attrs))
		}
		row := make([]int, len(attrs))
		for a, fv := range fields {
			fv = strings.TrimSpace(fv)
			idx, ok := vocab[a][fv]
			if !ok {
				idx = len(attrs[a].Values)
				attrs[a].Values = append(attrs[a].Values, fv)
				vocab[a][fv] = idx
			}
			row[a] = idx
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return relation.New(relation.Schema{Attrs: attrs}, nil, rows)
}

// readKnowledge parses the facts file into per-individual knowledge.
func readKnowledge(r io.Reader, schema relation.Schema) (relation.PartialInfo, error) {
	info := relation.PartialInfo{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, " ", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("relrisk: facts line %d: want '<individual> <attr>=<spec>'", line)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("relrisk: facts line %d: bad individual %q", line, parts[0])
		}
		eq := strings.SplitN(parts[1], "=", 2)
		if len(eq) != 2 {
			return nil, fmt.Errorf("relrisk: facts line %d: missing '='", line)
		}
		attr, spec := strings.TrimSpace(eq[0]), strings.TrimSpace(eq[1])
		k := info[id]
		if k == nil {
			k = relation.NewKnowledge(schema)
			info[id] = k
		}
		switch {
		case strings.Contains(spec, ".."):
			lohi := strings.SplitN(spec, "..", 2)
			err = k.Range(schema, attr, strings.TrimSpace(lohi[0]), strings.TrimSpace(lohi[1]))
		case strings.Contains(spec, "|"):
			var vals []string
			for _, v := range strings.Split(spec, "|") {
				vals = append(vals, strings.TrimSpace(v))
			}
			err = k.OneOf(schema, attr, vals...)
		default:
			err = k.Exact(schema, attr, spec)
		}
		if err != nil {
			return nil, fmt.Errorf("relrisk: facts line %d: %w", line, err)
		}
	}
	return info, sc.Err()
}

func fatal(err error) {
	cliutil.Fatal("relrisk", err)
}
