package main

import (
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "age*,ethnicity\n20,Chinese\n30,Indian\n20,Chinese\n"
	rel, err := readCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Records() != 3 {
		t.Fatalf("records = %d", rel.Records())
	}
	if !rel.Schema.Attrs[0].Ordered || rel.Schema.Attrs[0].Name != "age" {
		t.Errorf("attr 0 = %+v, want ordered 'age'", rel.Schema.Attrs[0])
	}
	if rel.Schema.Attrs[1].Ordered {
		t.Error("ethnicity should be unordered")
	}
	if rel.Value(0, 0) != rel.Value(2, 0) || rel.Value(0, 0) == rel.Value(1, 0) {
		t.Error("value interning wrong")
	}
	groups := rel.TupleGroups()
	if len(groups) != 2 {
		t.Errorf("tuple groups = %d, want 2", len(groups))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",             // no header
		"a,b\n1\n",     // short row
		"a,b\n1,2,3\n", // long row
		"a,b\n",        // no records
	}
	for _, in := range cases {
		if _, err := readCSV(strings.NewReader(in)); err == nil {
			t.Errorf("readCSV(%q): want error", in)
		}
	}
	// Blank lines are skipped.
	rel, err := readCSV(strings.NewReader("a,b\n\n1,2\n\n"))
	if err != nil || rel.Records() != 1 {
		t.Errorf("blank-line handling: %v records=%v", err, rel)
	}
}

func TestReadKnowledge(t *testing.T) {
	csv := "age*,ethnicity,car\n20-25,Chinese,Toyota\n30-35,Indian,Honda\n35-40,German,BMW\n"
	rel, err := readCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	facts := `
# comments and blanks are fine
0 ethnicity=Chinese
0 car=Toyota
1 age=30-35..35-40
2 car=Toyota|BMW
`
	info, err := readKnowledge(strings.NewReader(facts), rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(info) != 3 {
		t.Fatalf("parsed %d individuals, want 3", len(info))
	}
	if !info[0].Compliant(rel, 0) || info[0].Compliant(rel, 1) {
		t.Error("individual 0 knowledge wrong")
	}
	if !info[1].Compliant(rel, 1) || info[1].Compliant(rel, 0) {
		t.Error("individual 1 range wrong")
	}
	if !info[2].Compliant(rel, 2) {
		t.Error("individual 2 one-of wrong")
	}
}

func TestReadKnowledgeErrors(t *testing.T) {
	csv := "age*,car\n20,Toyota\n"
	rel, err := readCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"nofact\n",
		"x age=20\n",
		"0 age\n",
		"0 nope=20\n",
		"0 age=19\n",
		"0 car=20..30\n", // range on unordered attribute
	}
	for _, in := range cases {
		if _, err := readKnowledge(strings.NewReader(in), rel.Schema); err == nil {
			t.Errorf("readKnowledge(%q): want error", in)
		}
	}
}
