// Command riskbench replays deterministic traffic mixes (internal/loadgen)
// against a riskd and reports p50/p99 latency and throughput per mix as
// JSON. With -addr it targets an already-running service; without, it
// self-hosts one in-process on an ephemeral localhost port (the same
// configuration surface as riskd), so `riskbench -o BENCH_serve.json` is a
// one-command serving benchmark.
//
// Usage:
//
//	riskbench [-addr url] [-mixes hot_digest,cold_digest,delta,degraded]
//	          [-requests 200] [-concurrency 4] [-seed 1]
//	          [-timeout 30s] [-max-work n] [-workers n] [-cache-entries 256]
//	          [-o file]
//
// Every mix is a pure function of (seed, requests): the report carries a
// workload digest per mix, and two runs with equal digests replayed
// byte-identical request streams. ci.sh -serve-bench runs this and commits
// the result as BENCH_serve.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/server"
)

// report is the BENCH_serve.json schema.
type report struct {
	Tool         string                     `json:"tool"`
	Seed         int64                      `json:"seed"`
	Requests     int                        `json:"requests"`
	Concurrency  int                        `json:"concurrency"`
	MachineNproc int                        `json:"machine_nproc"`
	Gomaxprocs   int                        `json:"gomaxprocs"`
	SelfHosted   bool                       `json:"self_hosted"`
	Mixes        map[string]*loadgen.Result `json:"mixes"`
}

func main() {
	addr := flag.String("addr", "", "base URL of a running riskd (empty: self-host in-process)")
	mixes := flag.String("mixes", strings.Join(loadgen.Mixes, ","), "comma-separated traffic mixes to replay")
	requests := flag.Int("requests", 200, "requests per mix")
	concurrency := flag.Int("concurrency", 4, "in-flight requests (the delta mix is chained and always sequential)")
	seed := flag.Int64("seed", 1, "workload seed: same (seed, requests) replays the identical stream")
	timeout := flag.Duration("timeout", 30*time.Second, "self-hosted server's per-request budget (0 = unlimited)")
	maxWork := flag.Int64("max-work", 0, "self-hosted server's operation-count budget (0 = unlimited)")
	workers := flag.Int("workers", 0, "self-hosted server's workers per assessment (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 256, "self-hosted server's cache capacity")
	out := flag.String("o", "", "write the JSON report to this file (empty: stdout)")
	flag.Parse()

	if err := run(*addr, *mixes, *requests, *concurrency, *seed, *timeout, *maxWork, *workers, *cacheEntries, *out); err != nil {
		fmt.Fprintln(os.Stderr, "riskbench:", err)
		os.Exit(1)
	}
}

func run(addr, mixList string, requests, concurrency int, seed int64, timeout time.Duration, maxWork int64, workers, cacheEntries int, out string) error {
	base := addr
	var shutdown func() error
	if base == "" {
		var err error
		base, shutdown, err = selfHost(server.Config{
			Timeout:      timeout,
			MaxOps:       maxWork,
			Workers:      workers,
			CacheEntries: cacheEntries,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "riskbench: self-hosting riskd on %s\n", base)
	}

	rep := &report{
		Tool:         "riskbench",
		Seed:         seed,
		Requests:     requests,
		Concurrency:  concurrency,
		MachineNproc: runtime.NumCPU(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
		SelfHosted:   shutdown != nil,
		Mixes:        map[string]*loadgen.Result{},
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	var runErr error
	for _, mix := range strings.Split(mixList, ",") {
		mix = strings.TrimSpace(mix)
		if mix == "" {
			continue
		}
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:     base,
			Mix:         mix,
			Requests:    requests,
			Concurrency: concurrency,
			Seed:        seed,
			Client:      client,
		})
		if err != nil {
			runErr = err
			break
		}
		rep.Mixes[mix] = res
		fmt.Fprintf(os.Stderr,
			"riskbench: %-12s %4d req  p50 %8.2fms  p99 %8.2fms  %7.1f req/s  (cached %d, degraded %d, throttled %d, incremental %d, errors %d)\n",
			mix, res.Answered, res.P50MS, res.P99MS, res.ThroughputRPS,
			res.Cached+res.Coalesced, res.Degraded, res.Throttled, res.Incremental, res.Errors)
		if res.Errors > 0 && runErr == nil {
			runErr = fmt.Errorf("mix %s: %d transport errors (first: %s)", mix, res.Errors, res.ErrorSample)
		}
	}
	if shutdown != nil {
		if err := shutdown(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		return runErr
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// selfHost starts a riskd handler on an ephemeral localhost port and returns
// its base URL plus a clean shutdown.
func selfHost(cfg server.Config) (string, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: server.New(cfg).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
