package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
)

// TestServeDrainsInflight is the process-level graceful-shutdown contract:
// a stop signal with N assessments mid-computation must flip /readyz to 503
// while liveness stays 200, finish all N as 200s with provenance, write the
// final snapshot, and only then return.
func TestServeDrainsInflight(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	snap := filepath.Join(dir, "cache.snap")
	started := make(chan struct{}, n)
	block := make(chan struct{})
	cfg := server.Config{
		SnapshotPath: snap,
		MaxInflight:  n,
		AssessFn: func(ctx context.Context, job *server.Job) (*server.Outcome, error) {
			started <- struct{}{}
			<-block
			return &server.Outcome{Mode: "recipe", Method: "stub"}, nil
		},
	}

	ready := make(chan string, 1)
	stop := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(cfg, "127.0.0.1:0", 10*time.Second, &serveHooks{ready: ready, stop: stop}) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-serveErr:
		t.Fatalf("serve exited before ready: %v", err)
	}
	client := &http.Client{Timeout: time.Minute}

	status := func(path string) int {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := status("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: HTTP %d, want 200", code)
	}

	// N distinct requests, all blocked mid-computation.
	type reply struct {
		code int
		resp server.AssessResponse
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			counts := make([]int, 10+i)
			for j := range counts {
				counts[j] = j + 1
			}
			body, _ := json.Marshal(server.AssessRequest{
				Dataset: server.DatasetRef{Transactions: 2 * len(counts), Counts: counts},
			})
			resp, err := client.Post(base+"/v1/assess", "application/json", bytes.NewReader(body))
			if err != nil {
				replies <- reply{code: -1}
				return
			}
			defer resp.Body.Close()
			var out server.AssessResponse
			json.NewDecoder(resp.Body).Decode(&out)
			replies <- reply{code: resp.StatusCode, resp: out}
		}(i)
	}
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d computations started", i, n)
		}
	}

	// "SIGTERM": the drain begins, readiness flips, liveness does not, and
	// the listener keeps serving while the blocked work finishes.
	close(stop)
	deadline := time.After(5 * time.Second)
	for status("/readyz") != http.StatusServiceUnavailable {
		select {
		case <-deadline:
			t.Fatal("readyz never flipped to 503 after the stop signal")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if code := status("/healthz"); code != http.StatusOK {
		t.Errorf("healthz during drain: HTTP %d, want 200 (liveness is not readiness)", code)
	}
	select {
	case r := <-replies:
		t.Fatalf("a blocked request returned during the drain: %+v", r)
	default:
	}

	close(block)
	for i := 0; i < n; i++ {
		select {
		case r := <-replies:
			if r.code != http.StatusOK {
				t.Errorf("drained request: HTTP %d, want 200 (no request may be dropped)", r.code)
			}
			if r.resp.Mode != "recipe" || r.resp.Method != "stub" {
				t.Errorf("drained request lost provenance: mode=%q method=%q", r.resp.Mode, r.resp.Method)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("drained request never completed")
		}
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v after a clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after the drain completed")
	}
	if _, err := os.Stat(snap); err != nil {
		t.Errorf("no final snapshot written on shutdown: %v", err)
	}
}

// TestServeDrainTimeout: a computation that outlives the drain budget makes
// serve report the failed drain instead of hanging forever.
func TestServeDrainTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{}, 1)
	cfg := server.Config{
		AssessFn: func(ctx context.Context, job *server.Job) (*server.Outcome, error) {
			started <- struct{}{}
			<-block
			return &server.Outcome{Mode: "recipe", Method: "stub"}, nil
		},
	}
	ready := make(chan string, 1)
	stop := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(cfg, "127.0.0.1:0", 50*time.Millisecond, &serveHooks{ready: ready, stop: stop})
	}()
	base := "http://" + <-ready

	go func() {
		body := []byte(`{"dataset": {"transactions": 4, "counts": [1, 2]}}`)
		resp, err := http.Post(base+"/v1/assess", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("computation never started")
	}
	close(stop)
	select {
	case err := <-serveErr:
		if err == nil {
			t.Error("serve returned nil despite an undrainable computation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not give up after the drain timeout")
	}
}

// TestSelfcheckChaosRuns: the flag path behind -selfcheck-chaos passes on
// the default schedule.
func TestSelfcheckChaosRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos selfcheck is not a -short test")
	}
	if err := runSelfcheckChaos(1, ""); err != nil {
		t.Fatalf("selfcheck-chaos: %v", err)
	}
}
