// Command riskd serves re-identification risk assessments over HTTP: the
// paper's Assess-Risk recipe (Figure 8) and the hacker-side attack cascade
// (exact → sampled → O-estimate), behind a content-addressed cache so
// repeated assessments of the same release are O(1).
//
// Usage:
//
//	riskd [-addr :8321] [-data dir] [-cache-entries 256]
//	      [-timeout 30s] [-max-work n] [-workers n] [-max-inflight n]
//	      [-snapshot file] [-snapshot-interval 1m] [-drain-timeout 10s]
//	      [-fault-schedule s] [-fault-seed n]
//	      [-selfcheck] [-selfcheck-chaos]
//
// Endpoints: POST /v1/assess, POST /v1/assess/delta,
// GET /v1/assess/subscribe, GET /healthz, GET /readyz, GET /debug/vars —
// see internal/server. -timeout and -max-work carry the CLI budget
// convention per request: an expiring budget first degrades the assessment
// (the result reports Degraded and the tier that answered), and only when
// even the O-estimate floor cannot run does the request fail with HTTP 503
// and a Retry-After hint derived from observed compute latency.
//
// -snapshot enables crash-safe cache persistence: the file is loaded on
// boot, rewritten atomically every -snapshot-interval, and written one last
// time after the shutdown drain, so a restarted riskd serves hot releases
// warm. On SIGINT/SIGTERM the service flips /readyz to 503, finishes every
// in-flight assessment (bounded by -drain-timeout), then closes — no
// accepted request is dropped.
//
// -selfcheck starts the service on an ephemeral localhost port, runs a
// health probe and one assess round-trip twice — asserting the repeat is
// served from cache — then evolves the release through /v1/assess/delta
// while watching it on a /v1/assess/subscribe stream (the incremental
// verdict must both answer the POST and arrive on the stream), and shuts
// down cleanly; the exit status reports the outcome. ci.sh -serve and
// ci.sh -delta use it as the serving smoke test.
//
// -selfcheck-chaos runs one seeded fault-injection scenario end to end
// (internal/chaos): faults from -fault-schedule (default: the standard mix)
// under -fault-seed, asserting the service's robustness invariants; any
// violation exits nonzero. ci.sh -chaos uses it after the chaos test suite.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cliutil"
	"repro/internal/riskclient"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address (host:port; port 0 picks one)")
	data := flag.String("data", "", "directory dataset path references resolve under (empty: inline datasets only)")
	cacheEntries := flag.Int("cache-entries", 256, "assessment cache capacity (negative: unbounded)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request work budget (0 = unlimited)")
	maxWork := flag.Int64("max-work", 0, "operation-count budget per expensive computation (0 = unlimited)")
	workers := flag.Int("workers", 0, "parallel workers per assessment (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "concurrently computing assessments (0 = GOMAXPROCS)")
	snapshot := flag.String("snapshot", "", "cache snapshot file: loaded on boot, rewritten periodically and on shutdown (empty: no persistence)")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute, "period of the background snapshot writer")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a shutdown waits for in-flight assessments")
	faults := cliutil.FaultFlags()
	selfcheck := flag.Bool("selfcheck", false, "start on an ephemeral port, run a smoke round-trip, exit")
	selfcheckChaos := flag.Bool("selfcheck-chaos", false, "run one seeded fault-injection scenario, exit nonzero on any invariant violation")
	flag.Parse()

	injector, err := faults.Injector()
	if err != nil {
		fmt.Fprintln(os.Stderr, "riskd:", err)
		os.Exit(1)
	}
	cfg := server.Config{
		DataDir:          *data,
		Timeout:          *timeout,
		MaxOps:           *maxWork,
		Workers:          *workers,
		MaxInflight:      *maxInflight,
		CacheEntries:     *cacheEntries,
		SnapshotPath:     *snapshot,
		SnapshotInterval: *snapshotInterval,
		Injector:         injector,
	}
	if *selfcheckChaos {
		if err := runSelfcheckChaos(*faults.Seed, *faults.Schedule); err != nil {
			fmt.Fprintln(os.Stderr, "riskd: selfcheck-chaos:", err)
			os.Exit(1)
		}
		return
	}
	if *selfcheck {
		if err := runSelfcheck(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "riskd: selfcheck:", err)
			os.Exit(1)
		}
		fmt.Println("riskd: selfcheck ok")
		return
	}
	if err := serve(cfg, *addr, *drainTimeout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "riskd:", err)
		os.Exit(1)
	}
}

// serveHooks lets tests drive serve's lifecycle in-process: ready receives
// the bound address once the service accepts traffic, and closing stop
// triggers the same drain sequence a SIGTERM would.
type serveHooks struct {
	ready chan<- string
	stop  <-chan struct{}
}

// serve runs the service until SIGINT/SIGTERM (or a test-injected stop),
// then shuts down in drain order: readiness flips to 503 first, every
// in-flight assessment finishes (bounded by drainTimeout), the listener
// closes, and — with -snapshot — the drained cache is written out, so the
// next boot starts warm.
func serve(cfg server.Config, addr string, drainTimeout time.Duration, hooks *serveHooks) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := server.New(cfg)
	if loaded, skipped, err := s.LoadSnapshot(); err != nil {
		log.Printf("riskd: snapshot load: %v (starting cold)", err)
	} else if loaded > 0 || skipped > 0 {
		log.Printf("riskd: snapshot warmed %d entries (%d skipped)", loaded, skipped)
	}
	s.StartSnapshots()
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("riskd: listening on %s", ln.Addr())

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var stop <-chan struct{}
	if hooks != nil {
		stop = hooks.stop
		if hooks.ready != nil {
			hooks.ready <- ln.Addr().String()
		}
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	case <-stop:
	}

	log.Print("riskd: draining")
	s.BeginDrain() // /readyz → 503; the listener stays open while work finishes
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := s.DrainWait(drainCtx)
	shutErr := srv.Shutdown(drainCtx)
	s.StopSnapshots()
	if cfg.SnapshotPath != "" {
		if n, err := s.SaveSnapshot(); err != nil {
			log.Printf("riskd: final snapshot: %v", err)
		} else {
			log.Printf("riskd: final snapshot: %d entries", n)
		}
	}
	if drainErr != nil {
		return drainErr
	}
	return shutErr
}

// runSelfcheckChaos executes one seeded chaos scenario (internal/chaos) and
// maps invariant violations to a failing exit.
func runSelfcheckChaos(seed int64, schedule string) error {
	dir, err := os.MkdirTemp("", "riskd-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rep, err := chaos.Run(chaos.Config{Seed: seed, Schedule: schedule, Dir: dir, Logf: log.Printf})
	if err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "riskd: chaos violation:", v)
		}
		return fmt.Errorf("%d invariant violations (seed %d)", len(rep.Violations), seed)
	}
	fmt.Printf("riskd: selfcheck-chaos ok (seed %d: %d ok / %d errors, %d cache hits, %d retries, %d faults injected)\n",
		rep.Seed, rep.OK, rep.Errors, rep.CacheHits, rep.Retries, rep.InjectedFaults)
	return nil
}

// runSelfcheck exercises the full HTTP surface in-process: healthz, a cold
// assess, a warm (cached) repeat, and /debug/vars, then a clean shutdown.
func runSelfcheck(cfg server.Config) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.New(cfg).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("riskd: selfcheck serving on %s\n", base)

	client := &http.Client{Timeout: time.Minute}
	check := func() error {
		// Health probe.
		var health struct {
			Status string `json:"status"`
		}
		if err := getJSON(client, base+"/healthz", &health); err != nil {
			return fmt.Errorf("healthz: %w", err)
		}
		if health.Status != "ok" {
			return fmt.Errorf("healthz status %q, want ok", health.Status)
		}

		// One assess round-trip, twice: the repeat must come from cache.
		// 40 items with distinct supports over 100 transactions keeps the
		// recipe cheap but non-trivial (it reaches the α search).
		counts := make([]int, 40)
		for i := range counts {
			counts[i] = i + 1
		}
		body, err := json.Marshal(server.AssessRequest{
			Dataset: server.DatasetRef{Transactions: 100, Counts: counts},
		})
		if err != nil {
			return err
		}
		var cold, warm server.AssessResponse
		if err := postJSON(client, base+"/v1/assess", body, &cold); err != nil {
			return fmt.Errorf("assess (cold): %w", err)
		}
		if cold.Cached || cold.Outcome == nil || cold.Mode != "recipe" {
			return fmt.Errorf("cold assess: cached=%v outcome=%+v", cold.Cached, cold.Outcome)
		}
		if err := postJSON(client, base+"/v1/assess", body, &warm); err != nil {
			return fmt.Errorf("assess (warm): %w", err)
		}
		if !warm.Cached {
			return errors.New("second identical assess was not served from cache")
		}
		if warm.Key != cold.Key {
			return fmt.Errorf("cache keys differ across identical requests: %s vs %s", cold.Key, warm.Key)
		}
		fmt.Printf("riskd: assess ok (method %q, cached repeat, key %s)\n", cold.Method, cold.Key[:12])

		// Delta + subscribe smoke: watch the release on an SSE stream, evolve
		// it by one sparse diff through /v1/assess/delta, and assert the
		// fresh verdict both answers the POST and arrives on the stream.
		rc, err := riskclient.New(riskclient.Config{BaseURL: base, HTTPClient: client})
		if err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sub, err := rc.Subscribe(ctx, cold.Digest, nil)
		if err != nil {
			return fmt.Errorf("subscribe: %w", err)
		}
		defer sub.Close()
		initial, err := sub.Next()
		if err != nil {
			return fmt.Errorf("subscribe (initial verdict): %w", err)
		}
		if initial.Digest != cold.Digest {
			return fmt.Errorf("initial stream verdict digest %s, want %s", initial.Digest, cold.Digest)
		}
		dres, err := rc.AssessDelta(ctx, &server.DeltaRequest{
			BaseDigest: cold.Digest,
			Diff:       server.DiffSpec{DTransactions: 1, Items: []int{0}, Deltas: []int{2}},
		})
		if err != nil {
			return fmt.Errorf("assess delta: %w", err)
		}
		if !dres.Incremental || dres.Digest == cold.Digest {
			return fmt.Errorf("delta: incremental=%v digest=%s (base %s)", dres.Incremental, dres.Digest, cold.Digest)
		}
		pushed, err := sub.Next()
		if err != nil {
			return fmt.Errorf("subscribe (pushed verdict): %w", err)
		}
		if pushed.Digest != dres.Digest || pushed.BaseDigest != cold.Digest {
			return fmt.Errorf("pushed verdict chain %s->%s, want %s->%s",
				pushed.BaseDigest, pushed.Digest, cold.Digest, dres.Digest)
		}
		fmt.Printf("riskd: delta ok (incremental verdict pushed to subscriber, digest %s)\n", dres.Digest[:12])

		var vars struct {
			Cache struct {
				Hits int64 `json:"hits"`
			} `json:"cache"`
			Delta struct {
				Incremental int64 `json:"incremental"`
			} `json:"delta"`
		}
		if err := getJSON(client, base+"/debug/vars", &vars); err != nil {
			return fmt.Errorf("debug/vars: %w", err)
		}
		if vars.Cache.Hits < 1 {
			return fmt.Errorf("debug/vars reports %d cache hits, want >= 1", vars.Cache.Hits)
		}
		if vars.Delta.Incremental < 1 {
			return fmt.Errorf("debug/vars reports %d incremental deltas, want >= 1", vars.Delta.Incremental)
		}
		return nil
	}
	checkErr := check()

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		if checkErr == nil {
			checkErr = fmt.Errorf("shutdown: %w", err)
		}
	}
	if serveErr := <-errc; serveErr != nil && serveErr != http.ErrServerClosed && checkErr == nil {
		checkErr = serveErr
	}
	return checkErr
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeJSON(resp, out)
}

func postJSON(client *http.Client, url string, body []byte, out any) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeJSON(resp, out)
}

func decodeJSON(resp *http.Response, out any) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, out)
}
