// Command riskd serves re-identification risk assessments over HTTP: the
// paper's Assess-Risk recipe (Figure 8) and the hacker-side attack cascade
// (exact → sampled → O-estimate), behind a content-addressed cache so
// repeated assessments of the same release are O(1).
//
// Usage:
//
//	riskd [-addr :8321] [-data dir] [-cache-entries 256]
//	      [-timeout 30s] [-max-work n] [-workers n] [-max-inflight n]
//	      [-selfcheck]
//
// Endpoints: POST /v1/assess, GET /healthz, GET /debug/vars — see
// internal/server. -timeout and -max-work carry the CLI budget convention
// per request: an expiring budget first degrades the assessment (the result
// reports Degraded and the tier that answered), and only when even the
// O-estimate floor cannot run does the request fail with HTTP 503 and a
// Retry-After hint.
//
// -selfcheck starts the service on an ephemeral localhost port, runs a
// health probe and one assess round-trip twice — asserting the repeat is
// served from cache — then shuts down cleanly; the exit status reports the
// outcome. ci.sh -serve uses it as the serving smoke test.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address (host:port; port 0 picks one)")
	data := flag.String("data", "", "directory dataset path references resolve under (empty: inline datasets only)")
	cacheEntries := flag.Int("cache-entries", 256, "assessment cache capacity (negative: unbounded)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request work budget (0 = unlimited)")
	maxWork := flag.Int64("max-work", 0, "operation-count budget per expensive computation (0 = unlimited)")
	workers := flag.Int("workers", 0, "parallel workers per assessment (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "concurrently computing assessments (0 = GOMAXPROCS)")
	selfcheck := flag.Bool("selfcheck", false, "start on an ephemeral port, run a smoke round-trip, exit")
	flag.Parse()

	cfg := server.Config{
		DataDir:      *data,
		Timeout:      *timeout,
		MaxOps:       *maxWork,
		Workers:      *workers,
		MaxInflight:  *maxInflight,
		CacheEntries: *cacheEntries,
	}
	if *selfcheck {
		if err := runSelfcheck(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "riskd: selfcheck:", err)
			os.Exit(1)
		}
		fmt.Println("riskd: selfcheck ok")
		return
	}
	if err := serve(cfg, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "riskd:", err)
		os.Exit(1)
	}
}

// serve runs the service until SIGINT/SIGTERM, then drains connections.
func serve(cfg server.Config, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           server.New(cfg).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("riskd: listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Print("riskd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}

// runSelfcheck exercises the full HTTP surface in-process: healthz, a cold
// assess, a warm (cached) repeat, and /debug/vars, then a clean shutdown.
func runSelfcheck(cfg server.Config) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.New(cfg).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("riskd: selfcheck serving on %s\n", base)

	client := &http.Client{Timeout: time.Minute}
	check := func() error {
		// Health probe.
		var health struct {
			Status string `json:"status"`
		}
		if err := getJSON(client, base+"/healthz", &health); err != nil {
			return fmt.Errorf("healthz: %w", err)
		}
		if health.Status != "ok" {
			return fmt.Errorf("healthz status %q, want ok", health.Status)
		}

		// One assess round-trip, twice: the repeat must come from cache.
		// 40 items with distinct supports over 100 transactions keeps the
		// recipe cheap but non-trivial (it reaches the α search).
		counts := make([]int, 40)
		for i := range counts {
			counts[i] = i + 1
		}
		body, err := json.Marshal(server.AssessRequest{
			Dataset: server.DatasetRef{Transactions: 100, Counts: counts},
		})
		if err != nil {
			return err
		}
		var cold, warm server.AssessResponse
		if err := postJSON(client, base+"/v1/assess", body, &cold); err != nil {
			return fmt.Errorf("assess (cold): %w", err)
		}
		if cold.Cached || cold.Outcome == nil || cold.Mode != "recipe" {
			return fmt.Errorf("cold assess: cached=%v outcome=%+v", cold.Cached, cold.Outcome)
		}
		if err := postJSON(client, base+"/v1/assess", body, &warm); err != nil {
			return fmt.Errorf("assess (warm): %w", err)
		}
		if !warm.Cached {
			return errors.New("second identical assess was not served from cache")
		}
		if warm.Key != cold.Key {
			return fmt.Errorf("cache keys differ across identical requests: %s vs %s", cold.Key, warm.Key)
		}
		fmt.Printf("riskd: assess ok (method %q, cached repeat, key %s)\n", cold.Method, cold.Key[:12])

		var vars struct {
			Cache struct {
				Hits int64 `json:"hits"`
			} `json:"cache"`
		}
		if err := getJSON(client, base+"/debug/vars", &vars); err != nil {
			return fmt.Errorf("debug/vars: %w", err)
		}
		if vars.Cache.Hits < 1 {
			return fmt.Errorf("debug/vars reports %d cache hits, want >= 1", vars.Cache.Hits)
		}
		return nil
	}
	checkErr := check()

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		if checkErr == nil {
			checkErr = fmt.Errorf("shutdown: %w", err)
		}
	}
	if serveErr := <-errc; serveErr != nil && serveErr != http.ErrServerClosed && checkErr == nil {
		checkErr = serveErr
	}
	return checkErr
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeJSON(resp, out)
}

func postJSON(client *http.Client, url string, body []byte, out any) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeJSON(resp, out)
}

func decodeJSON(resp *http.Response, out any) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, out)
}
