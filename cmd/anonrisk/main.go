// Command anonrisk runs the paper's Assess-Risk recipe (Figure 8) on a
// transaction database in FIMI format and reports whether releasing the
// anonymized data stays within the owner's crack tolerance.
//
// Usage:
//
//	anonrisk [-tau 0.1] [-comfort 0.5] [-runs 5] [-seed 1] [-propagate]
//	         [-timeout 30s] [-max-work n] [-workers n] [-attack beliefs.txt] [file]
//
// With no file argument the database is read from standard input. The exit
// status is 0 for a "disclose" verdict, 3 for "withhold", 4 when the -timeout
// or -max-work budget prevents even a degraded answer, and 1 for other
// errors. With -attack, a concrete hacker belief function (see
// internal/belief.Parse for the format) is evaluated against the data instead
// of running the recipe.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/recipe"
)

func main() {
	tau := flag.Float64("tau", 0.1, "degree of tolerance τ: tolerable fraction of cracked items")
	comfort := flag.Float64("comfort", 0.5, "α_max comfort level for the final verdict")
	runs := flag.Int("runs", 5, "random compliant subsets averaged per α level")
	seed := flag.Int64("seed", 1, "random seed")
	propagate := flag.Bool("propagate", true, "apply degree-1 propagation in the O-estimates")
	attack := flag.String("attack", "", "evaluate a hacker belief function from this file instead of running the recipe")
	budgetCtx := cliutil.BudgetFlags()
	withWorkers := cliutil.WorkersFlag()
	flag.Parse()
	ctx, cancel := budgetCtx()
	defer cancel()
	ctx = withWorkers(ctx)

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	// The recipe and attack evaluation depend on the data only through its
	// support counts, so the database streams through without materializing.
	ft, err := dataset.ReadFIMICounts(in, 0)
	if err != nil {
		fatal(err)
	}
	if *attack != "" {
		runAttack(ctx, ft, *attack, name)
		return
	}
	res, err := recipe.AssessRiskCtx(ctx, ft, recipe.Options{
		Tolerance:    *tau,
		Runs:         *runs,
		Propagate:    *propagate,
		AlphaComfort: *comfort,
		Rng:          rand.New(rand.NewSource(*seed)),
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset          %s (%d items, %d transactions)\n", name, ft.NItems, ft.NTransactions)
	fmt.Printf("tolerance τ      %.4f (budget %.2f cracked items)\n", *tau, *tau*float64(ft.NItems))
	fmt.Printf("frequency groups %d  => point-valued worst case: %d expected cracks (%.4f of domain)\n",
		res.Groups, res.Groups, res.FractionPointValued())
	if res.Stage >= recipe.StageCompliantInterval {
		fmt.Printf("δ_med            %.6g\n", res.DeltaMed)
		fmt.Printf("O-estimate       %.3f expected cracks at full compliancy (%.4f of domain)\n",
			res.OEFull, res.FractionOEFull())
	}
	if res.Stage == recipe.StageAlphaSearch {
		fmt.Printf("α_max            %.3f (largest compliancy within tolerance; comfort level %.2f)\n",
			res.AlphaMax, *comfort)
	}
	if res.Degraded {
		fmt.Printf("note             budget ran out (%s); α_max is a proven lower bound\n", res.DegradedReason)
	}
	fmt.Printf("compute          %d workers, wall %v, cpu %v\n",
		res.Workers, res.Wall.Round(time.Millisecond), res.CPU.Round(time.Millisecond))
	fmt.Printf("decided by       %s\n", res.Stage)
	if res.Disclose {
		fmt.Println("verdict          DISCLOSE")
		return
	}
	fmt.Println("verdict          WITHHOLD")
	os.Exit(3)
}

// runAttack evaluates a concrete belief function against the data.
func runAttack(ctx context.Context, ft *dataset.FrequencyTable, path, name string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	bf, err := belief.Parse(f, ft.NItems)
	if err != nil {
		fatal(err)
	}
	alpha := bf.Alpha(ft.Frequencies())
	fmt.Printf("dataset          %s (%d items, %d transactions)\n", name, ft.NItems, ft.NTransactions)
	fmt.Printf("belief function  %s (compliancy α = %.3f)\n", path, alpha)

	oe, err := core.OEstimateCtx(ctx, bf, ft, core.OEOptions{Propagate: true})
	if errors.Is(err, bipartite.ErrInfeasible) {
		fmt.Println("note             no globally consistent mapping; §5.3 per-item estimate")
		oe, err = core.OEstimateCtx(ctx, bf, ft, core.OEOptions{})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("expected cracks  %.3f of %d items (%.2f%%)\n",
		oe.Value, ft.NItems, 100*oe.Value/float64(ft.NItems))
	if oe.Forced > 0 {
		fmt.Printf("forced           %d assignments certain in every consistent mapping\n", oe.Forced)
	}
}

func fatal(err error) {
	cliutil.Fatal("anonrisk", err)
}
