package experiments

// Worker-count determinism and the seed-plumbing audit: every experiment
// table must render byte-identically at -workers=1, -workers=4 and
// GOMAXPROCS for a fixed seed (the RNG-splitting contract), and two
// same-seed full runs — the cmd/experiments scenario — must match. The only
// tolerated nondeterminism in the whole suite is ablation's wall-time
// column, which is stripped before comparison.

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/parallel"
)

// normalize renders a report with timing columns removed, so byte comparison
// tests only the numbers the seed determines.
func normalize(rep *Report) string {
	var b strings.Builder
	b.WriteString(rep.ID)
	for _, tb := range rep.Tables {
		drop := -1
		for i, h := range tb.Header {
			if h == "wall time" {
				drop = i
			}
		}
		if drop < 0 {
			b.WriteString(tb.String())
			continue
		}
		cut := Table{Title: tb.Title}
		strip := func(row []string) []string {
			out := append([]string(nil), row[:drop]...)
			return append(out, row[drop+1:]...)
		}
		cut.Header = strip(tb.Header)
		for _, row := range tb.Rows {
			cut.Rows = append(cut.Rows, strip(row))
		}
		b.WriteString(cut.String())
	}
	for _, n := range rep.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

func runNormalized(t *testing.T, id string, workers int) string {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	ctx := parallel.WithWorkers(context.Background(), workers)
	rep, err := exp.Run(ctx, Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatalf("%s at %d workers: %v", id, workers, err)
	}
	return normalize(rep)
}

func TestExperimentsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			ref := runNormalized(t, exp.ID, 1)
			for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
				if got := runNormalized(t, exp.ID, workers); got != ref {
					t.Errorf("workers=%d output differs from serial:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						workers, ref, workers, got)
				}
			}
		})
	}
}

// TestSameSeedFullRunsMatch is the seed-plumbing audit in executable form:
// running the whole suite twice with one seed — what two invocations of
// cmd/experiments with the same -seed do — must reproduce every number.
func TestSameSeedFullRunsMatch(t *testing.T) {
	full := func() string {
		var b strings.Builder
		for _, exp := range All() {
			rep, err := exp.Run(context.Background(), Config{Seed: 3, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			b.WriteString(normalize(rep))
		}
		return b.String()
	}
	if a, b := full(), full(); a != b {
		t.Error("two same-seed full runs differ; some generator is not seed-injected")
	}
}
