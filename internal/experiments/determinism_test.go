package experiments

// Worker-count determinism and the seed-plumbing audit: every experiment
// table must render byte-identically at -workers=1, -workers=4 and
// GOMAXPROCS for a fixed seed (the RNG-splitting contract), and two
// same-seed full runs — the cmd/experiments scenario — must match. The only
// tolerated nondeterminism in the whole suite is ablation's wall-time
// column, which is stripped before comparison.

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/belief"
	"repro/internal/parallel"
	"repro/internal/registry"
)

// normalize renders a report's canonical projection (volatile columns
// stripped via the same Report.Canonical the registry records and replays),
// so byte comparison tests only the numbers the seed determines.
func normalize(rep *Report) string {
	var b strings.Builder
	b.WriteString(rep.ID)
	for _, tb := range rep.Canonical().Tables {
		b.WriteString(tb.String())
	}
	for _, n := range rep.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

func runNormalized(t *testing.T, id string, workers int) string {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	ctx := parallel.WithWorkers(context.Background(), workers)
	rep, err := exp.Run(ctx, Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatalf("%s at %d workers: %v", id, workers, err)
	}
	return normalize(rep)
}

func TestExperimentsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			ref := runNormalized(t, exp.ID, 1)
			for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
				if got := runNormalized(t, exp.ID, workers); got != ref {
					t.Errorf("workers=%d output differs from serial:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						workers, ref, workers, got)
				}
			}
		})
	}
}

// TestSameSeedFullRunsMatch is the seed-plumbing audit in executable form:
// running the whole suite twice with one seed — what two invocations of
// cmd/experiments with the same -seed do — must reproduce every number.
func TestSameSeedFullRunsMatch(t *testing.T) {
	full := func() string {
		var b strings.Builder
		for _, exp := range All() {
			rep, err := exp.Run(context.Background(), Config{Seed: 3, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			b.WriteString(normalize(rep))
		}
		return b.String()
	}
	if a, b := full(), full(); a != b {
		t.Error("two same-seed full runs differ; some generator is not seed-injected")
	}
}

// recordForTest runs one experiment and records it through the same
// RecordRun path cmd/experiments uses.
func recordForTest(t *testing.T, store *registry.Store, id string, seed int64, workers int) *registry.Run {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	ctx := parallel.WithWorkers(context.Background(), workers)
	cfg := Config{Seed: seed, Quick: true}
	rep, err := exp.Run(ctx, cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	run, err := RecordRun(store, rep, cfg, workers, "testrev", 0, 0)
	if err != nil {
		t.Fatalf("recording %s: %v", id, err)
	}
	return run
}

// TestRegistryTrajectoryPinning extends the worker-count determinism
// contract through the registry path: two same-seed recorded runs must diff
// to zero cells at any worker count (including the ablation experiment,
// whose wall-time column is volatile and stripped on record), and a
// deliberately perturbed copy must report exactly the perturbed cells.
func TestRegistryTrajectoryPinning(t *testing.T) {
	store, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"recipe", "ablation"} {
		id := id
		t.Run(id, func(t *testing.T) {
			a := recordForTest(t, store, id, 7, 1)
			for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
				b := recordForTest(t, store, id, 7, workers)
				d, err := store.Diff(a, b, belief.Epsilon)
				if err != nil {
					t.Fatal(err)
				}
				if d.CellCount() != 0 || len(d.Structural) != 0 || len(d.Provenance) != 0 {
					t.Errorf("workers=1 vs %d: %d cells, structural %v, provenance %v",
						workers, d.CellCount(), d.Structural, d.Provenance)
				}
			}
		})
	}
}

// TestRegistryDiffReportsExactlyThePerturbedCells records a run, re-records
// a copy with two known cells perturbed, and asserts the diff names exactly
// those coordinates — the registry's cell-level accountability claim.
func TestRegistryDiffReportsExactlyThePerturbedCells(t *testing.T) {
	store, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := recordForTest(t, store, "recipe", 7, 1)

	raw, err := store.ReadTable(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	if len(lines) < 3 {
		t.Fatalf("recipe table too small to perturb: %q", raw)
	}
	// Perturb data row 1: flip its second column and append noise to its
	// last column.
	cells := strings.Split(lines[2], ",")
	if len(cells) < 3 {
		t.Fatalf("unexpected row shape: %q", lines[2])
	}
	cells[1] = "99"
	cells[len(cells)-1] = cells[len(cells)-1] + "-perturbed"
	lines[2] = strings.Join(cells, ",")

	spec := registry.RunSpec{
		Experiment: a.Manifest.Experiment,
		Title:      a.Manifest.Title,
		Seed:       a.Manifest.Seed,
		Quick:      a.Manifest.Quick,
		Workers:    a.Manifest.Workers,
		GitRev:     a.Manifest.GitRev,
		Tables: []registry.SpecTable{{
			Name: strings.TrimSuffix(a.Manifest.Tables[0].File, ".csv"),
			CSV:  []byte(strings.Join(lines, "\n")),
		}},
	}
	b, err := store.Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.Diff(a, b, belief.Epsilon)
	if err != nil {
		t.Fatal(err)
	}
	if d.CellCount() != 2 {
		t.Fatalf("want exactly the 2 perturbed cells, got %d: %+v", d.CellCount(), d.Tables)
	}
	got := map[[2]int]bool{}
	for _, td := range d.Tables {
		for _, c := range td.Cells {
			got[[2]int{c.Row, c.Col}] = true
		}
	}
	if !got[[2]int{1, 1}] || !got[[2]int{1, len(cells) - 1}] {
		t.Errorf("perturbed coordinates not reported: %v", got)
	}
}
