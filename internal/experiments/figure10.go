package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/matching"
	"repro/internal/parallel"
)

// figure10Datasets are the four benchmarks the paper plots in Figure 10.
var figure10Datasets = []string{"CONNECT", "PUMSB", "ACCIDENTS", "RETAIL"}

func simConfig(quick bool) matching.Config {
	if quick {
		return matching.Config{SeedSweeps: 20, SampleGap: 2, SamplesPerSeed: 100, Samples: 200, Runs: 3}
	}
	return matching.Config{SeedSweeps: 50, SampleGap: 5, SamplesPerSeed: 250, Samples: 1000, Runs: 5}
}

// RunFigure10 compares the O-estimate against the averaged simulated estimate
// under full compliancy with interval width δ_med (Step 6 of the recipe), as
// in the paper's Figure 10. The paper's accuracy claim — O-estimates within
// one standard deviation of the simulation — is checked and reported.
func RunFigure10(ctx context.Context, cfg Config) (*Report, error) {
	rep := &Report{ID: "figure10", Title: "O-estimates vs average simulated estimates (full compliancy, width δ_med)"}
	tb := Table{
		Header: []string{"dataset", "n", "δ_med", "O-estimate", "simulated", "stddev", "OE fraction", "sim fraction", "within 1σ"},
	}
	type f10Row struct {
		cells  []string
		inputs []InputRef
	}
	rows, err := parallel.Map(ctx, 0, len(figure10Datasets), func(i int) (f10Row, error) {
		name := figure10Datasets[i]
		rng := rowRNG(cfg.Seed, 0, i)
		plan, ok := datagen.ByName(name)
		if !ok {
			return f10Row{}, fmt.Errorf("experiments: unknown benchmark %s", name)
		}
		ft, err := plan.Counts(rng)
		if err != nil {
			return f10Row{}, err
		}
		gr := dataset.GroupItems(ft)
		delta := gr.MedianGap()
		bf := belief.UniformWidth(ft.Frequencies(), delta)

		oe, err := core.OEstimateCtx(ctx, bf, ft, core.OEOptions{Propagate: true})
		if err != nil {
			return f10Row{}, err
		}
		g, err := bipartite.Build(bf, dataset.GroupItems(ft))
		if err != nil {
			return f10Row{}, err
		}
		est, err := matching.EstimateCracksCtx(ctx, g, simConfig(cfg.Quick), rng)
		if err != nil {
			return f10Row{}, err
		}
		within := "yes"
		if math.Abs(oe.Value-est.Mean) > math.Max(est.StdDev, 0.05*est.Mean+0.5) {
			within = "NO"
		}
		n := float64(ft.NItems)
		return f10Row{
			cells: []string{
				name, fmt.Sprint(ft.NItems), f6(delta),
				f3(oe.Value), f3(est.Mean), f3(est.StdDev),
				f4(oe.Value / n), f4(est.Mean / n), within,
			},
			inputs: []InputRef{
				{Kind: "dataset", Name: name, Digest: ft.Digest()},
				{Kind: "belief", Name: name + "/uniform-δ_med", Digest: bf.Digest()},
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		tb.Rows = append(tb.Rows, r.cells)
		rep.Inputs = append(rep.Inputs, r.inputs...)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"'within 1σ' allows a 5% slack band when the across-run stddev is very small, as the paper's own accuracy criterion is one standard deviation")
	return rep, nil
}
