package experiments

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
)

func quickRun(t *testing.T, id string) *Report {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	rep, err := exp.Run(context.Background(), Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Errorf("report id %q, want %q", rep.ID, id)
	}
	if len(rep.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	if rep.String() == "" {
		t.Errorf("%s rendered empty", id)
	}
	return rep
}

func TestRegistry(t *testing.T) {
	all := All()
	wantIDs := []string{"delta", "figure9", "figure10", "figure11", "figure12", "recipe"}
	if len(all) < len(wantIDs) {
		t.Fatalf("registry has %d experiments, want >= %d", len(all), len(wantIDs))
	}
	for _, id := range wantIDs {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should fail")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "22"}},
	}
	s := tb.String()
	for _, want := range []string{"demo", "long-header", "yyyy", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func cell(t *testing.T, tb Table, row int, header string) string {
	t.Helper()
	for i, h := range tb.Header {
		if h == header {
			return tb.Rows[row][i]
		}
	}
	t.Fatalf("header %q not found in %v", header, tb.Header)
	return ""
}

func cellFloat(t *testing.T, tb Table, row int, header string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tb, row, header), 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", cell(t, tb, row, header), err)
	}
	return v
}

func TestDeltaTableValues(t *testing.T) {
	rep := quickRun(t, "delta")
	paper := rep.Tables[0]
	if got := cell(t, paper, 0, "err %"); got != "1.54" {
		t.Errorf("row 1 error %% = %s, want 1.54", got)
	}
	if got := cell(t, paper, 4, "err %"); got != "7.27" {
		t.Errorf("row 5 error %% = %s, want 7.27", got)
	}
	for _, row := range []int{1, 2, 3} {
		if got := cell(t, paper, row, "exact E(X)"); got != "invalid" {
			t.Errorf("row %d should be invalid, got %s", row+1, got)
		}
	}
	// The corrected sweep must be fully evaluable.
	for row := range rep.Tables[1].Rows {
		if cell(t, rep.Tables[1], row, "exact E(X)") == "invalid" {
			t.Errorf("corrected row %d invalid", row)
		}
	}
}

func TestFigure9Reference(t *testing.T) {
	rep := quickRun(t, "figure9")
	tb := rep.Tables[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("figure 9 has %d rows, want 6", len(tb.Rows))
	}
	// Structural columns must match the paper exactly.
	for row := range tb.Rows {
		if cell(t, tb, row, "groups") != cell(t, tb, row, "(paper)") {
			t.Errorf("row %d: groups %s != paper %s", row, cell(t, tb, row, "groups"), cell(t, tb, row, "(paper)"))
		}
	}
	if _, ok := PaperFigure9("RETAIL"); !ok {
		t.Error("PaperFigure9(RETAIL) missing")
	}
	if _, ok := PaperFigure9("NOPE"); ok {
		t.Error("PaperFigure9(NOPE) should fail")
	}
}

func TestFigure10Accuracy(t *testing.T) {
	rep := quickRun(t, "figure10")
	tb := rep.Tables[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("figure 10 has %d rows, want 4", len(tb.Rows))
	}
	for row := range tb.Rows {
		oe := cellFloat(t, tb, row, "OE fraction")
		sim := cellFloat(t, tb, row, "sim fraction")
		if math.Abs(oe-sim) > 0.05 {
			t.Errorf("row %d: OE %v vs simulated %v differ by more than 0.05 of the domain", row, oe, sim)
		}
		if got := cell(t, tb, row, "within 1σ"); got != "yes" {
			t.Errorf("row %d: accuracy flag %q", row, got)
		}
	}
	// RETAIL (row 3) must stay near the paper's 0.02 ceiling.
	if oe := cellFloat(t, tb, 3, "OE fraction"); oe > 0.04 {
		t.Errorf("RETAIL OE fraction %v, want <= 0.04 (paper: below 0.02)", oe)
	}
}

func TestFigure11Shapes(t *testing.T) {
	rep := quickRun(t, "figure11")
	curves := rep.Tables[0]
	cross := rep.Tables[1]
	if len(curves.Rows) != 4 || len(cross.Rows) != 4 {
		t.Fatalf("figure 11 tables have %d/%d rows", len(curves.Rows), len(cross.Rows))
	}
	// Curves are monotone in α.
	for r, row := range curves.Rows {
		prev := -1.0
		for _, c := range row[1:] {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev-1e-9 {
				t.Errorf("curve %d not monotone", r)
			}
			prev = v
		}
	}
	// Paper orderings that must survive: CONNECT is the riskiest
	// (smallest α_max), RETAIL the safest (α_max = 1).
	var amax = map[string]float64{}
	for row := range cross.Rows {
		amax[cell(t, cross, row, "dataset")] = cellFloat(t, cross, row, "α_max")
	}
	if amax["RETAIL"] != 1 {
		t.Errorf("RETAIL α_max = %v, want 1 (never crosses τ)", amax["RETAIL"])
	}
	if !(amax["CONNECT"] < amax["ACCIDENTS"] && amax["ACCIDENTS"] <= amax["PUMSB"]) {
		t.Errorf("α_max ordering violated: %v", amax)
	}
	if amax["CONNECT"] > 0.35 {
		t.Errorf("CONNECT α_max = %v, want near the paper's 0.2", amax["CONNECT"])
	}
}

func TestFigure12Shapes(t *testing.T) {
	rep := quickRun(t, "figure12")
	if len(rep.Tables) != 2 {
		t.Fatalf("figure 12 has %d tables, want 2 (ACCIDENTS, RETAIL)", len(rep.Tables))
	}
	acc, ret := rep.Tables[0], rep.Tables[1]
	// ACCIDENTS: compliancy roughly rises with sample size; the largest
	// sample beats the smallest decisively.
	accFirst := cellFloat(t, acc, 0, "α (median gap)")
	accLast := cellFloat(t, acc, len(acc.Rows)-1, "α (median gap)")
	if accLast < accFirst {
		t.Errorf("ACCIDENTS compliancy fell from %v to %v; paper says it rises", accFirst, accLast)
	}
	// RETAIL: the paper's anomaly — compliancy dips below its small-sample
	// value somewhere before recovering.
	retFirst := cellFloat(t, ret, 0, "α (median gap)")
	dip := false
	for row := 1; row < len(ret.Rows); row++ {
		if cellFloat(t, ret, row, "α (median gap)") < retFirst-0.02 {
			dip = true
		}
	}
	if !dip {
		t.Error("RETAIL compliancy shows no dip; paper reports a drop until ~50% samples")
	}
	// Mean-gap compliancy stays near 1 everywhere (both datasets).
	for _, tb := range rep.Tables {
		for row := range tb.Rows {
			if v := cellFloat(t, tb, row, "α (mean gap)"); v < 0.9 {
				t.Errorf("%s row %d: mean-gap α = %v, want ~0.99", tb.Title, row, v)
			}
		}
	}
}

func TestRecipeVerdicts(t *testing.T) {
	rep := quickRun(t, "recipe")
	tb := rep.Tables[0]
	verdicts := map[string]string{}
	stages := map[string]string{}
	for row := range tb.Rows {
		verdicts[cell(t, tb, row, "dataset")] = cell(t, tb, row, "verdict")
		stages[cell(t, tb, row, "dataset")] = cell(t, tb, row, "stage")
	}
	if verdicts["RETAIL"] != "disclose" {
		t.Errorf("RETAIL verdict %q, want disclose (paper: clear decision)", verdicts["RETAIL"])
	}
	if verdicts["CONNECT"] != "withhold" {
		t.Errorf("CONNECT verdict %q, want withhold (paper: think twice)", verdicts["CONNECT"])
	}
	if stages["RETAIL"] == "3" {
		t.Errorf("RETAIL should decide before the α search (stage %s)", stages["RETAIL"])
	}
}

func TestAblationTables(t *testing.T) {
	rep := quickRun(t, "ablation")
	if len(rep.Tables) != 3 {
		t.Fatalf("ablation has %d tables, want 3", len(rep.Tables))
	}
	// δ_mean estimates must be at most the δ_med ones (Lemma 8).
	widths := rep.Tables[0]
	for row := range widths.Rows {
		med := cellFloat(t, widths, row, "OE δ_med")
		mean := cellFloat(t, widths, row, "OE δ_mean")
		if mean > med+1e-9 {
			t.Errorf("row %d: δ_mean OE %v exceeds δ_med OE %v", row, mean, med)
		}
	}
	// Biased α_max must dominate the uniform one (dropping high contributors
	// first can only stretch the tolerance).
	bias := rep.Tables[1]
	for row := range bias.Rows {
		uni := cellFloat(t, bias, row, "α_max uniform")
		bia := cellFloat(t, bias, row, "α_max biased")
		if bia < uni-1e-9 {
			t.Errorf("row %d: biased α_max %v below uniform %v", row, bia, uni)
		}
	}
	// Both samplers estimate the same quantity.
	moves := rep.Tables[2]
	a := cellFloat(t, moves, 0, "estimate")
	b := cellFloat(t, moves, 1, "estimate")
	if diff := a - b; diff > 1.5 || diff < -1.5 {
		t.Errorf("sampler estimates diverge: %v vs %v", a, b)
	}
}

func TestItemsetsTable(t *testing.T) {
	rep := quickRun(t, "itemsets")
	tb := rep.Tables[0]
	for row := range tb.Rows {
		g := cellFloat(t, tb, row, "item groups g")
		classes := cellFloat(t, tb, row, "pair classes")
		n := cellFloat(t, tb, row, "n")
		if classes < g || classes > n {
			t.Errorf("row %d: classes %v outside [g=%v, n=%v]", row, classes, g, n)
		}
	}
}

func TestKanonTable(t *testing.T) {
	rep := quickRun(t, "kanon")
	tb := rep.Tables[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("kanon table has %d rows, want 5", len(tb.Rows))
	}
	// Expected cracks must be non-increasing down the k ladder, and every
	// k-anonymized row must dominate its requested k.
	prev := cellFloat(t, tb, 0, "E(X) full knowledge")
	for row := 1; row < len(tb.Rows); row++ {
		v := cellFloat(t, tb, row, "E(X) full knowledge")
		if v > prev+1e-9 {
			t.Errorf("row %d: cracks %v grew from %v", row, v, prev)
		}
		prev = v
	}
	if got := cellFloat(t, tb, 0, "min set size"); got >= cellFloat(t, tb, 1, "min set size") {
		t.Errorf("plain release should have smaller min anonymity set than 2-anonymized")
	}
}

func TestSanitizeTable(t *testing.T) {
	rep := quickRun(t, "sanitize")
	tb := rep.Tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("sanitize table has %d rows, want 3", len(tb.Rows))
	}
	// Anonymization: exact supports, fully compliant hacker.
	if cell(t, tb, 0, "support err %") != "0.00" || cell(t, tb, 0, "hacker α") != "1.00" {
		t.Errorf("anonymization row wrong: %v", tb.Rows[0])
	}
	// Randomization blunts the hacker and distorts supports, more so at the
	// stronger setting.
	mild := cellFloat(t, tb, 1, "hacker α")
	strong := cellFloat(t, tb, 2, "hacker α")
	if mild >= 1 || strong > mild+0.05 {
		t.Errorf("hacker α should fall with randomization strength: mild %v strong %v", mild, strong)
	}
	if cellFloat(t, tb, 1, "support err %") <= 0 {
		t.Error("randomization should distort supports")
	}
	if cellFloat(t, tb, 2, "support err %") < cellFloat(t, tb, 1, "support err %") {
		t.Error("stronger randomization should distort more")
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{
		Header: []string{"a", "b,c"},
		Rows:   [][]string{{"1", `say "hi"`}, {"2", "plain"}},
	}
	got := tb.CSV()
	want := "a,\"b,c\"\n1,\"say \"\"hi\"\"\"\n2,plain\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
