package experiments

// The registry round-trip contract at suite scale: every experiment records
// into the store, lists, loads, and replays bit-for-bit in Quick mode; the
// committed golden CSVs are reproducible as registry tables; and a corrupted
// manifest is surfaced as an error, never half-loaded.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parallel"
	"repro/internal/registry"
)

// TestRegistryRoundTripAllExperiments is the acceptance loop for the whole
// suite: run → record → list → load → replay for all ten experiment ids,
// with zero divergences anywhere.
func TestRegistryRoundTripAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	store, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := parallel.WithWorkers(context.Background(), 2)
	cfg := Config{Seed: 1, Quick: true}

	ids := map[string]string{} // experiment id -> run id
	for _, exp := range All() {
		rep, err := exp.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		run, err := RecordRun(store, rep, cfg, 2, "testrev", 0, 0)
		if err != nil {
			t.Fatalf("recording %s: %v", exp.ID, err)
		}
		ids[exp.ID] = run.ID()
	}

	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(All()) {
		t.Fatalf("list: %d entries, want %d", len(entries), len(All()))
	}
	for _, e := range entries {
		if e.Err != nil {
			t.Fatalf("list: %s: %v", e.ID, e.Err)
		}
		if want := ids[e.Run.Manifest.Experiment]; want != e.ID {
			t.Errorf("list: %s recorded as %s, listed as %s", e.Run.Manifest.Experiment, want, e.ID)
		}
	}

	for expID, runID := range ids {
		run, divs, err := ReplayRun(ctx, store, runID)
		if err != nil {
			t.Fatalf("replay %s (%s): %v", expID, runID, err)
		}
		if len(divs) != 0 {
			for _, dv := range divs {
				t.Errorf("replay %s: %s diverged:\n--- recorded ---\n%s--- replayed ---\n%s",
					expID, dv.File, dv.Want, dv.Got)
			}
		}
		if run.Manifest.Experiment != expID {
			t.Errorf("replay %s loaded manifest for %s", expID, run.Manifest.Experiment)
		}
	}
}

// TestRegistryGoldenMigration shows the committed testdata goldens are
// exactly what the registry records for the same configs: the golden files
// are replays avant la lettre.
func TestRegistryGoldenMigration(t *testing.T) {
	store, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		cfg     Config
		run     func(context.Context, Config) (*Report, error)
		goldens map[int]string // table index -> testdata file
	}{
		{Config{Seed: 1}, RunDeltaTable, map[int]string{0: "delta-0.csv", 1: "delta-1.csv"}},
		{Config{Seed: 1, Quick: true}, RunFigure9, map[int]string{0: "figure9-0.csv"}},
	}
	for _, c := range cases {
		rep, err := c.run(ctx, c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := RecordRun(store, rep, c.cfg, 1, "testrev", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k, name := range c.goldens {
			want, err := os.ReadFile(filepath.Join("testdata", name))
			if err != nil {
				t.Fatalf("missing golden (run TestGolden with -update first): %v", err)
			}
			got, err := store.ReadTable(run, k)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: registry table %d differs from golden:\n--- registry ---\n%s\n--- golden ---\n%s",
					name, k, got, want)
			}
		}
	}
}

// TestRegistryCorruptRunIsNeverHalfLoaded flips one byte in a recorded
// manifest and checks every read path refuses it loudly: Load returns
// ErrCorrupt, List carries the error, and the intact sibling run stays
// readable.
func TestRegistryCorruptRunIsNeverHalfLoaded(t *testing.T) {
	dir := t.TempDir()
	store, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := recordForTest(t, store, "delta", 1, 1)
	bad := recordForTest(t, store, "recipe", 1, 1)

	path := filepath.Join(dir, "runs", bad.ID(), "manifest.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte(`"seed"`))
	if i < 0 {
		t.Fatalf("no seed field in manifest: %s", data)
	}
	data[i+1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := store.Load(bad.ID()); !errors.Is(err, registry.ErrCorrupt) {
		t.Errorf("Load of corrupted run: %v, want ErrCorrupt", err)
	}
	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	var sawGood, sawBad bool
	for _, e := range entries {
		switch e.ID {
		case good.ID():
			sawGood = true
			if e.Err != nil {
				t.Errorf("intact run reported corrupt: %v", e.Err)
			}
		case bad.ID():
			sawBad = true
			if e.Err == nil {
				t.Error("corrupted run listed without error")
			}
			if e.Run != nil {
				t.Error("corrupted run half-loaded into List")
			}
		}
	}
	if !sawGood || !sawBad {
		t.Fatalf("List missed runs: good=%t bad=%t", sawGood, sawBad)
	}
}
