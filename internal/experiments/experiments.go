// Package experiments regenerates every table and figure of the paper's
// evaluation: the §5.2 chain Δ table, the Figure 9 dataset statistics, the
// Figure 10 O-estimate accuracy comparison, the Figure 11 compliancy sweep,
// the Figure 12 similarity-by-sampling curves, and the §7.3 recipe walk-
// through. Each experiment returns structured tables that cmd/experiments
// renders and the repository benchmarks time; EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/parallel"
	"repro/internal/recipe"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all randomness; a fixed seed makes runs reproducible —
	// byte-identical tables at any worker count, because each table row owns
	// a generator split deterministically off this seed (see rowRNG).
	Seed int64
	// Quick shrinks simulation sample counts (for the repository benchmarks
	// and smoke tests). Full runs follow the paper's setup shape.
	Quick bool
}

// rowRNG returns the generator for row i of fan-out section sec of an
// experiment seeded with seed. Sections number the independent fan-outs
// inside one experiment (0 for the first table, 1 for the next, ...), so
// concurrent rows never share a random stream and the numbers cannot depend
// on row scheduling or the worker count.
func rowRNG(seed int64, sec, i int) *rand.Rand {
	return parallel.RNG(parallel.SplitSeed(seed, uint64(sec)), i)
}

// Report is the structured outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []Table
	Notes  []string

	// Inputs content-addresses what the run consumed (generated benchmark
	// datasets, belief functions) and Prov carries the per-row Assess-Risk
	// evidence trail. Both flow into the registry manifest when the run is
	// recorded; neither affects rendering.
	Inputs []InputRef
	Prov   []RowProvenance
}

// InputRef content-addresses one input an experiment consumed.
type InputRef struct {
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Digest string `json:"digest"`
}

// RowProvenance ties one recipe.Result's provenance to the table row it
// produced. The embedded fields keep recipe's frozen JSON names.
type RowProvenance struct {
	Table int    `json:"table"`
	Row   string `json:"row"`
	recipe.Provenance
}

// VolatileHeaders names table columns whose cells depend on the wall clock
// rather than the seed. They are stripped before a table is recorded in or
// replayed against the registry, and the determinism tests strip them the
// same way — one definition, so `-update` and `replay` cannot disagree
// about what counts as signal.
var VolatileHeaders = map[string]bool{"wall time": true}

// StripVolatile returns the table without its volatile columns (a copy when
// something was stripped, the receiver unchanged otherwise).
func (t Table) StripVolatile() Table {
	drop := -1
	for i, h := range t.Header {
		if VolatileHeaders[h] {
			drop = i
		}
	}
	if drop < 0 {
		return t
	}
	strip := func(row []string) []string {
		if drop >= len(row) {
			return append([]string(nil), row...)
		}
		out := append([]string(nil), row[:drop]...)
		return append(out, row[drop+1:]...)
	}
	cut := Table{Title: t.Title, Header: strip(t.Header)}
	for _, row := range t.Rows {
		cut.Rows = append(cut.Rows, strip(row))
	}
	return cut
}

// Canonical returns the report with every table's volatile columns
// stripped: the seed-determined projection that must be byte-identical
// across worker counts, repeat runs, and registry replays.
func (r *Report) Canonical() *Report {
	out := &Report{ID: r.ID, Title: r.Title, Notes: r.Notes, Inputs: r.Inputs, Prov: r.Prov}
	for _, tb := range r.Tables {
		out.Tables = append(out.Tables, tb.StripVolatile())
	}
	return out
}

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned ASCII.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted), for plotting the figures outside the harness.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// Experiment couples an identifier with its runner. Run evaluates
// independent table rows and figure points on the parallel worker pool of
// ctx (parallel.Workers) with ordered result collection, and respects the
// context's budget: deadline or -max-work exhaustion surfaces as a typed
// budget error.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, cfg Config) (*Report, error)
}

// All lists the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "delta", Title: "§5.2 chain O-estimate error table", Run: RunDeltaTable},
		{ID: "figure9", Title: "Figure 9: benchmark frequency statistics", Run: RunFigure9},
		{ID: "figure10", Title: "Figure 10: O-estimates vs simulated estimates", Run: RunFigure10},
		{ID: "figure11", Title: "Figure 11: varying the degree of compliancy", Run: RunFigure11},
		{ID: "figure12", Title: "Figure 12: degrees of compliancy from similar data", Run: RunFigure12},
		{ID: "recipe", Title: "§7.3: the Assess-Risk recipe on the benchmarks", Run: RunRecipe},
		{ID: "ablation", Title: "Ablations: propagation, widths, subset bias, sampler moves", Run: RunAblation},
		{ID: "itemsets", Title: "§8.2 extension: itemset-level identity disclosure", Run: RunItemsets},
		{ID: "kanon", Title: "Baseline: k-anonymization vs plain anonymization", Run: RunKanon},
		{ID: "sanitize", Title: "Baseline: randomization vs plain anonymization", Run: RunSanitize},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func f6(v float64) string { return fmt.Sprintf("%.6f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
