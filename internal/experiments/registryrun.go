// Registry glue: the one code path that turns a Report into a registry run
// and a registry run back into a re-executed, byte-compared Report. Both
// cmd/experiments and the trajectory tests go through these functions, so
// what `run` records, what `replay` verifies, and what the golden-file
// tests pin can never silently disagree about rendering or volatile-column
// stripping.
package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/registry"
)

// RecordRun stores the canonical (volatile columns stripped) projection of
// rep in the registry, keyed by the run's identity tuple and input digests.
// wall and cpu are the measured run cost; they land in timing.json, outside
// the integrity envelope.
func RecordRun(s *registry.Store, rep *Report, cfg Config, workers int, gitRev string, wall, cpu time.Duration) (*registry.Run, error) {
	canon := rep.Canonical()
	spec := registry.RunSpec{
		Experiment: rep.ID,
		Title:      rep.Title,
		Seed:       cfg.Seed,
		Quick:      cfg.Quick,
		Workers:    workers,
		GitRev:     gitRev,
		Notes:      canon.Notes,
		Wall:       wall,
		CPU:        cpu,
	}
	for _, in := range rep.Inputs {
		spec.Inputs = append(spec.Inputs, registry.Input{Kind: in.Kind, Name: in.Name, Digest: in.Digest})
	}
	for k, tb := range canon.Tables {
		spec.Tables = append(spec.Tables, registry.SpecTable{
			Name:  fmt.Sprintf("%s-%d", rep.ID, k),
			Title: tb.Title,
			CSV:   []byte(tb.CSV()),
		})
	}
	if len(rep.Prov) > 0 {
		raw, err := json.Marshal(rep.Prov)
		if err != nil {
			return nil, fmt.Errorf("experiments: serializing provenance: %w", err)
		}
		spec.Provenance = raw
	}
	return s.Record(spec)
}

// Divergence reports one table whose replayed bytes differ from the stored
// record, or a structural mismatch (File "(tables)" with a note in Got).
type Divergence struct {
	File string
	Want []byte // the stored bytes
	Got  []byte // the replayed bytes
}

// ReplayRun re-executes the experiment a run recorded — same experiment id,
// seed, quick mode, and worker count, read back from the manifest — and
// byte-compares every replayed canonical table against the stored CSV. An
// empty divergence list is the bit-for-bit replay guarantee; the registry's
// CRCs have already established that the stored bytes are the recorded ones.
func ReplayRun(ctx context.Context, s *registry.Store, id string) (*registry.Run, []Divergence, error) {
	run, err := s.Load(id)
	if err != nil {
		return nil, nil, err
	}
	exp, ok := ByID(run.Manifest.Experiment)
	if !ok {
		return run, nil, fmt.Errorf("experiments: run %s records unknown experiment %q", id, run.Manifest.Experiment)
	}
	ctx = parallel.WithWorkers(ctx, run.Manifest.Workers)
	rep, err := exp.Run(ctx, Config{Seed: run.Manifest.Seed, Quick: run.Manifest.Quick})
	if err != nil {
		return run, nil, err
	}
	canon := rep.Canonical()

	var divs []Divergence
	if len(canon.Tables) != len(run.Manifest.Tables) {
		divs = append(divs, Divergence{
			File: "(tables)",
			Want: []byte(fmt.Sprintf("%d tables", len(run.Manifest.Tables))),
			Got:  []byte(fmt.Sprintf("%d tables", len(canon.Tables))),
		})
	}
	n := len(canon.Tables)
	if len(run.Manifest.Tables) < n {
		n = len(run.Manifest.Tables)
	}
	for k := 0; k < n; k++ {
		want, err := s.ReadTable(run, k)
		if err != nil {
			return run, divs, err
		}
		got := []byte(canon.Tables[k].CSV())
		if !bytes.Equal(want, got) {
			divs = append(divs, Divergence{File: run.Manifest.Tables[k].File, Want: want, Got: got})
		}
	}
	return run, divs, nil
}
