package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// deltaRow is one parameter row of the §5.2 table: a chain of length 3 over
// frequency groups n = (20, 30, 20).
type deltaRow struct {
	e1, e2, e3, s1, s2 int
	paperPct           float64 // the percentage the paper prints, NaN-free only for valid rows
	valid              bool    // whether the row satisfies Σe+Σs = Σn as printed
}

// paperDeltaRows are the five rows exactly as printed. Rows 2–4 sum to 80
// items against a 70-item domain — they violate the chain constraint and are
// reported as such (see EXPERIMENTS.md); rows 1 and 5 validate the closed
// forms against the printed numbers.
var paperDeltaRows = []deltaRow{
	{10, 10, 10, 20, 20, 1.54, true},
	{15, 10, 10, 25, 20, 4.8, false},
	{15, 10, 5, 25, 25, 8.3, false},
	{15, 6, 5, 27, 27, 5.76, false},
	{10, 20, 10, 15, 15, 7.23, true},
}

// correctedDeltaRows is a consistent sweep over the same n = (20,30,20)
// domain, replacing the unusable printed rows: it varies how much of the
// domain sits in shared belief groups.
var correctedDeltaRows = []deltaRow{
	{10, 10, 10, 20, 20, 0, true},
	{14, 14, 14, 14, 14, 0, true},
	{6, 6, 6, 26, 26, 0, true},
	{2, 2, 2, 32, 32, 0, true},
	{10, 20, 10, 15, 15, 0, true},
}

// RunDeltaTable reproduces the §5.2 table comparing the exact chain formula
// (Lemma 6) with the chain O-estimate.
func RunDeltaTable(_ context.Context, cfg Config) (*Report, error) {
	rep := &Report{ID: "delta", Title: "§5.2 chain O-estimate error, n = (20, 30, 20)"}

	paper := Table{
		Title:  "Rows as printed in the paper",
		Header: []string{"e1", "e2", "e3", "s1", "s2", "exact E(X)", "OE", "err %", "paper err %"},
	}
	for _, r := range paperDeltaRows {
		spec := core.ChainSpec{
			GroupSizes: []int{20, 30, 20},
			Exclusive:  []int{r.e1, r.e2, r.e3},
			Shared:     []int{r.s1, r.s2},
		}
		row := []string{
			fmt.Sprint(r.e1), fmt.Sprint(r.e2), fmt.Sprint(r.e3),
			fmt.Sprint(r.s1), fmt.Sprint(r.s2),
		}
		if err := spec.Validate(); err != nil {
			row = append(row, "invalid", "invalid", "-", f2(r.paperPct))
			paper.Rows = append(paper.Rows, row)
			continue
		}
		exact, err := spec.ExpectedCracks()
		if err != nil {
			return nil, err
		}
		oe, err := spec.OEstimate()
		if err != nil {
			return nil, err
		}
		_, pct, err := spec.Delta()
		if err != nil {
			return nil, err
		}
		row = append(row, f4(exact), f4(oe), f2(pct), f2(r.paperPct))
		paper.Rows = append(paper.Rows, row)
	}
	rep.Tables = append(rep.Tables, paper)

	corrected := Table{
		Title:  "Corrected sweep (self-consistent rows over the same domain)",
		Header: []string{"e1", "e2", "e3", "s1", "s2", "exact E(X)", "OE", "err %"},
	}
	for _, r := range correctedDeltaRows {
		spec := core.ChainSpec{
			GroupSizes: []int{20, 30, 20},
			Exclusive:  []int{r.e1, r.e2, r.e3},
			Shared:     []int{r.s1, r.s2},
		}
		exact, err := spec.ExpectedCracks()
		if err != nil {
			return nil, err
		}
		oe, err := spec.OEstimate()
		if err != nil {
			return nil, err
		}
		_, pct, err := spec.Delta()
		if err != nil {
			return nil, err
		}
		corrected.Rows = append(corrected.Rows, []string{
			fmt.Sprint(r.e1), fmt.Sprint(r.e2), fmt.Sprint(r.e3),
			fmt.Sprint(r.s1), fmt.Sprint(r.s2),
			f4(exact), f4(oe), f2(pct),
		})
	}
	rep.Tables = append(rep.Tables, corrected)

	rep.Notes = append(rep.Notes,
		"rows 2-4 as printed sum to 80 items against the 70-item domain n=(20,30,20); they violate the chain constraint Σe+Σs=Σn and cannot be evaluated",
		"row 5 evaluates to 7.27% against the paper's printed 7.23% (rounding in the paper); row 1 matches at 1.54%",
		"the worked example of Figure 4(a): exact 74/45 = 1.6444, OE 197/120 = 1.6417 (0.17% error)")
	return rep, nil
}
