package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/belief"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/perturb"
)

// RunSanitize compares the sanitization strategies the paper's introduction
// contrasts, on a correlated market-basket database:
//
//   - plain anonymization: zero distortion, full frequency signal exposed;
//   - uniform randomization at two strengths (Evfimievski et al., ref [10]):
//     supports must be reconstructed by bias-corrected estimators, and the
//     frequency signal a hacker matches against is blunted.
//
// Utility is measured as the mean relative error of reconstructed item
// supports and the recall of the true top-20 items; risk as the compliancy
// of a δ_med ball-park belief function against the released frequencies and
// the O-estimate it yields.
func RunSanitize(_ context.Context, cfg Config) (*Report, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{ID: "sanitize", Title: "Sanitization trade-off: anonymization vs randomization"}

	trans := 4000
	if cfg.Quick {
		trans = 1000
	}
	db, err := datagen.Quest(datagen.QuestConfig{Items: 120, Transactions: trans, Patterns: 40}, rng)
	if err != nil {
		return nil, err
	}
	trueCounts := db.SupportCounts()
	trueFreqs := db.Frequencies()
	gr := dataset.GroupItems(db.Table())
	bf := belief.UniformWidth(trueFreqs, gr.MedianGap())

	tb := Table{
		Header: []string{"release", "support err %", "top-20 recall", "hacker α", "O-estimate", "OE fraction"},
	}

	// Plain anonymization: supports exact, belief fully compliant.
	oe, err := core.OEstimate(bf, db.Table(), core.OEOptions{Propagate: true})
	if err != nil {
		return nil, err
	}
	n := float64(db.Items())
	tb.Rows = append(tb.Rows, []string{
		"anonymization", "0.00", "1.00", "1.00", f3(oe.Value), f4(oe.Value / n),
	})

	for _, params := range []perturb.Params{
		{Keep: 0.95, Insert: 0.01},
		{Keep: 0.80, Insert: 0.10},
	} {
		release, err := perturb.Randomize(db, params, rng)
		if err != nil {
			return nil, err
		}
		est, err := perturb.EstimateSupports(release, db.Transactions(), params)
		if err != nil {
			return nil, err
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("randomized k=%.2f i=%.2f", params.Keep, params.Insert),
			f2(meanRelErr(trueCounts, est) * 100),
			f2(topKRecall(trueCounts, est, 20)),
			f2(bf.Alpha(release.Frequencies())),
			"-", "-",
		})
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"anonymization keeps mining exact but leaves the full frequency signal for the hacker (α = 1): the paper's dilemma",
		"randomization blunts the hacker (α collapses) but mining must run on reconstructed supports with the reported error — 'changing the data characteristics may affect the outcome too much'")
	return rep, nil
}

func meanRelErr(trueCounts []int, est []float64) float64 {
	sum, cnt := 0.0, 0
	for x, c := range trueCounts {
		if c == 0 {
			continue
		}
		sum += math.Abs(est[x]-float64(c)) / float64(c)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

func topKRecall(trueCounts []int, est []float64, k int) float64 {
	if k > len(trueCounts) {
		k = len(trueCounts)
	}
	trueTop := topK(func(x int) float64 { return float64(trueCounts[x]) }, len(trueCounts), k)
	estTop := topK(func(x int) float64 { return est[x] }, len(est), k)
	hit := 0
	for x := range trueTop {
		if estTop[x] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

func topK(score func(int) float64, n, k int) map[int]bool {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return score(idx[a]) > score(idx[b]) })
	out := map[int]bool{}
	for _, x := range idx[:k] {
		out[x] = true
	}
	return out
}
