package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/fim"
	"repro/internal/itemsetrisk"
)

// RunItemsets quantifies the paper's Section 8.2 extension on the small and
// mid-size benchmarks: how much additional identity disclosure a hacker gains
// from exact 2-itemset (pairwise support) knowledge on top of exact item
// frequencies, and how many frequent itemsets are uniquely identified as sets
// by their observable signatures.
func RunItemsets(_ context.Context, cfg Config) (*Report, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{ID: "itemsets", Title: "§8.2 extension: itemset-level identity disclosure"}
	tb := Table{
		Header: []string{"dataset", "n", "item groups g", "pair classes", "rounds",
			"E(X) items", "E(X) pairs-aware", "itemsets@35%", "identified", "identified %"},
	}
	names := []string{"CHESS", "MUSHROOM", "CONNECT"}
	if cfg.Quick {
		names = names[:2]
	}
	for _, name := range names {
		plan, _ := datagen.ByName(name)
		db, err := plan.Database(rng)
		if err != nil {
			return nil, err
		}
		gr := dataset.GroupItems(db.Table())
		cracks, ref, err := itemsetrisk.ExpectedCracksPairAware(db, 0)
		if err != nil {
			return nil, err
		}
		minsup, err := fim.AbsoluteSupport(db, 0.35)
		if err != nil {
			return nil, err
		}
		sets, err := fim.FPGrowth(db, minsup)
		if err != nil {
			return nil, err
		}
		// Keep only sets of size >= 2: singletons duplicate the item story.
		var multi []fim.FrequentItemset
		for _, fs := range sets {
			if len(fs.Items) >= 2 {
				multi = append(multi, fs)
			}
		}
		ident, total := itemsetrisk.IdentifiedItemsets(multi, ref.Colors)
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(ident) / float64(total)
		}
		tb.Rows = append(tb.Rows, []string{
			name, fmt.Sprint(db.Items()), fmt.Sprint(gr.NumGroups()),
			fmt.Sprint(ref.Classes), fmt.Sprint(ref.Rounds),
			f2(float64(gr.NumGroups())), f2(cracks),
			fmt.Sprint(total), fmt.Sprint(ident), f2(pct),
		})
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"pair classes: partition of the domain under pairwise-support color refinement, starting from frequency groups — the 2-itemset analogue of Lemma 3's g",
		"E(X) pairs-aware = pair classes; the paper's closing example ({1',2'} maps indisputably to {1,2}) is the size-2 instance of 'identified' itemsets",
		"planted benchmarks place items into transactions independently, so pair supports are near-generic and refinement splits most groups — equal-frequency camouflage does not survive itemset-level knowledge")
	return rep, nil
}
