package experiments

import (
	"context"
	"fmt"

	"repro/internal/datagen"
	"repro/internal/parallel"
	"repro/internal/recipe"
)

// RunRecipe walks Algorithm Assess-Risk (Figure 8) over the four evaluation
// benchmarks at the paper's τ = 0.1, reproducing the §7.3 narrative: RETAIL
// is a clear disclose, PUMSB and ACCIDENTS disclose with a comfortable α_max,
// CONNECT's owner "may want to think twice".
func RunRecipe(ctx context.Context, cfg Config) (*Report, error) {
	rep := &Report{ID: "recipe", Title: "Assess-Risk at τ = 0.1 (comfort level 0.5)"}
	tb := Table{
		Header: []string{"dataset", "stage", "g", "g/n", "δ_med", "OE full", "OE/n", "α_max", "verdict"},
	}
	type recipeRow struct {
		cells []string
		input InputRef
		prov  RowProvenance
	}
	rows, err := parallel.Map(ctx, 0, len(figure10Datasets), func(i int) (recipeRow, error) {
		name := figure10Datasets[i]
		rng := rowRNG(cfg.Seed, 0, i)
		plan, _ := datagen.ByName(name)
		ft, err := plan.Counts(rng)
		if err != nil {
			return recipeRow{}, err
		}
		res, err := recipe.AssessRiskCtx(ctx, ft, recipe.Options{
			Tolerance: 0.1,
			Propagate: true,
			Rng:       rng,
		})
		if err != nil {
			return recipeRow{}, err
		}
		verdict := "withhold"
		if res.Disclose {
			verdict = "disclose"
		}
		return recipeRow{
			cells: []string{
				name, fmt.Sprint(int(res.Stage)),
				fmt.Sprint(res.Groups), f4(res.FractionPointValued()),
				f6(res.DeltaMed), f3(res.OEFull), f4(res.FractionOEFull()),
				f3(res.AlphaMax), verdict,
			},
			input: InputRef{Kind: "dataset", Name: name, Digest: ft.Digest()},
			prov:  RowProvenance{Table: 0, Row: name, Provenance: res.Provenance()},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		tb.Rows = append(tb.Rows, r.cells)
		rep.Inputs = append(rep.Inputs, r.input)
		rep.Prov = append(rep.Prov, r.prov)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"stage 1 = point-valued worst case within tolerance, 2 = δ_med interval O-estimate within tolerance, 3 = α binary search",
		"paper §7.3: RETAIL below tolerance even at full compliancy; PUMSB α_max≈0.7 and ACCIDENTS α_max≈0.65 (comfortable); CONNECT α_max≈0.2 (think twice)")
	return rep, nil
}
