package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/kanon"
	"repro/internal/relation"
)

// RunKanon measures the baseline the paper names but does not evaluate:
// k-anonymization (Samarati–Sweeney, refs [22, 23]) versus plain
// anonymization on a relational release, under the worst-case hacker of
// Lemma 3 transported to anonymity sets (exact knowledge of everyone's
// attributes). Plain anonymization leaves the attribute tuples untouched
// (k = smallest anonymity set, often 1); k-anonymization coarsens values
// until every record hides among at least k, cutting expected
// re-identifications at a measurable precision cost.
func RunKanon(_ context.Context, cfg Config) (*Report, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{ID: "kanon", Title: "Baseline: k-anonymization vs plain anonymization (relational release)"}

	schema := relation.Schema{Attrs: []relation.Attribute{
		{Name: "age", Values: []string{"20-25", "25-30", "30-35", "35-40", "40-45", "45-50", "50-55", "55-60"}, Ordered: true},
		{Name: "ethnicity", Values: []string{"Chinese", "Indian", "German", "Brazilian", "Nigerian"}},
		{Name: "car", Values: []string{"Toyota", "Honda", "BMW", "Ford"}},
	}}
	n := 500
	if cfg.Quick {
		n = 150
	}
	pop, err := relation.RandomRelation(schema, n, rng)
	if err != nil {
		return nil, err
	}
	hierarchies := make([]kanon.Hierarchy, len(schema.Attrs))
	for a, attr := range schema.Attrs {
		hierarchies[a] = kanon.AutoHierarchy(attr)
	}

	tb := Table{
		Header: []string{"release", "anonymity sets", "min set size", "E(X) full knowledge", "fraction", "precision", "levels"},
	}
	tb.Rows = append(tb.Rows, []string{
		"plain anonymization",
		fmt.Sprint(len(pop.TupleGroups())), fmt.Sprint(pop.MinAnonymitySet()),
		f2(pop.ExpectedCracksFullKnowledge()),
		f4(pop.ExpectedCracksFullKnowledge() / float64(n)),
		"1.000", "-",
	})
	for _, k := range []int{2, 5, 10, 25} {
		res, err := kanon.Anonymize(pop, hierarchies, k)
		if err != nil {
			return nil, err
		}
		view := res.Relation
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d-anonymized", k),
			fmt.Sprint(len(view.TupleGroups())), fmt.Sprint(res.AchievedK),
			f2(view.ExpectedCracksFullKnowledge()),
			f4(view.ExpectedCracksFullKnowledge() / float64(n)),
			f3(res.Precision), kanon.LevelString(view, res.Levels),
		})
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"plain anonymization keeps every data characteristic — which is why the paper must ask how safe it is; k-anonymization buys safety by perturbing (coarsening) the data, the trade-off the paper's introduction contrasts",
		"precision is Sweeney's Prec: 1 − mean generalization height fraction across attributes")
	return rep, nil
}
