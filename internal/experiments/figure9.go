package experiments

import (
	"context"
	"fmt"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/parallel"
)

// paperFigure9 holds the statistics the paper's Figure 9 prints for the real
// UCI/FIMI datasets, for side-by-side comparison with our synthetic clones.
var paperFigure9 = map[string]dataset.Stats{
	"CONNECT":   {NGroups: 125, Singleton: 122, MeanGap: 0.0081, MedianGap: 0.0029, MinGap: 0.000015, MaxGap: 0.0519},
	"PUMSB":     {NGroups: 650, Singleton: 421, MeanGap: 0.00154, MedianGap: 0.000041, MinGap: 0.00002, MaxGap: 0.0536},
	"ACCIDENTS": {NGroups: 310, Singleton: 286, MeanGap: 0.00324, MedianGap: 0.000176, MinGap: 0.000029, MaxGap: 0.04966},
	"RETAIL":    {NGroups: 582, Singleton: 218, MeanGap: 0.00099, MedianGap: 0.0000113, MinGap: 0.0000113, MaxGap: 0.30102},
	"MUSHROOM":  {NGroups: 90, Singleton: 77, MeanGap: 0.01124, MedianGap: 0.00394, MinGap: 0.00049, MaxGap: 0.1477},
	"CHESS":     {NGroups: 73, Singleton: 71, MeanGap: 0.01389, MedianGap: 0.00657, MinGap: 0.00031, MaxGap: 0.0494},
}

// RunFigure9 generates each synthetic benchmark and reports its frequency
// statistics next to the paper's published values. The benchmarks generate
// concurrently, one split-seeded generator per row.
func RunFigure9(ctx context.Context, cfg Config) (*Report, error) {
	rep := &Report{ID: "figure9", Title: "Benchmark frequency statistics (synthetic vs paper)"}
	tb := Table{
		Header: []string{"dataset", "items", "trans", "groups", "(paper)", "size-1 gps", "(paper)",
			"mean gap", "(paper)", "median gap", "(paper)", "min gap", "max gap"},
	}
	plans := datagen.Benchmarks()
	rows, err := parallel.Map(ctx, 0, len(plans), func(i int) ([]string, error) {
		p := plans[i]
		ft, err := p.Counts(rowRNG(cfg.Seed, 0, i))
		if err != nil {
			return nil, err
		}
		s := dataset.ComputeStats(p.Name, ft)
		ref := paperFigure9[p.Name]
		return []string{
			p.Name,
			fmt.Sprint(s.NItems), fmt.Sprint(s.NTransactions),
			fmt.Sprint(s.NGroups), fmt.Sprint(ref.NGroups),
			fmt.Sprint(s.Singleton), fmt.Sprint(ref.Singleton),
			f6(s.MeanGap), f6(ref.MeanGap),
			f6(s.MedianGap), f6(ref.MedianGap),
			f6(s.MinGap), f6(s.MaxGap),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Rows = rows
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"items, transactions, groups and singleton groups match the paper by construction of the planted generators; gap statistics match in distribution (see internal/datagen)")
	return rep, nil
}

// PaperFigure9 exposes the published reference statistics (used by tests and
// EXPERIMENTS.md generation).
func PaperFigure9(name string) (dataset.Stats, bool) {
	s, ok := paperFigure9[name]
	return s, ok
}
