package experiments

import (
	"context"
	"fmt"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/matching"
	"repro/internal/parallel"
	"repro/internal/recipe"
)

// figure11Alphas is the sweep grid of the compliancy experiment.
var figure11Alphas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// figure11Tau is the tolerance line drawn in the paper's plot.
const figure11Tau = 0.1

// paperAlphaMax holds the α_max readings the paper reports at τ = 0.1
// (Section 7.3): RETAIL never crosses the line (recorded as 1), PUMSB ≈ 0.7,
// ACCIDENTS ≈ 0.65, CONNECT ≈ 0.2.
var paperAlphaMax = map[string]float64{
	"RETAIL": 1, "PUMSB": 0.7, "ACCIDENTS": 0.65, "CONNECT": 0.2,
}

// RunFigure11 sweeps the degree of compliancy α and reports the O-estimate as
// a fraction of the domain, per benchmark, plus the α_max crossing of the
// τ = 0.1 tolerance line. For CONNECT (small enough to simulate with
// perturbed belief functions), simulated estimates are reported alongside, as
// in the paper's figure.
func RunFigure11(ctx context.Context, cfg Config) (*Report, error) {
	rep := &Report{ID: "figure11", Title: "O-estimate fraction vs degree of compliancy α (τ = 0.1)"}

	curveTable := Table{Header: append([]string{"dataset"}, func() []string {
		var hs []string
		for _, a := range figure11Alphas {
			hs = append(hs, fmt.Sprintf("α=%.1f", a))
		}
		return hs
	}()...)}
	crossTable := Table{
		Title:  "α_max at τ = 0.1",
		Header: []string{"dataset", "α_max", "paper", "shape"},
	}

	type f11Row struct {
		curve, cross []string
	}
	rows, err := parallel.Map(ctx, 0, len(figure10Datasets), func(i int) (f11Row, error) {
		name := figure10Datasets[i]
		rng := rowRNG(cfg.Seed, 0, i)
		plan, _ := datagen.ByName(name)
		ft, err := plan.Counts(rng)
		if err != nil {
			return f11Row{}, err
		}
		gr := dataset.GroupItems(ft)
		bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
		runs := 5
		if cfg.Quick {
			runs = 2
		}
		search, err := recipe.NewAlphaSearch(ft, bf, runs, true, rng)
		if err != nil {
			return f11Row{}, err
		}
		curve, err := search.CurveCtx(ctx, figure11Alphas)
		if err != nil {
			return f11Row{}, err
		}
		row := []string{name}
		for _, v := range curve {
			row = append(row, f4(v))
		}

		budget := figure11Tau * float64(ft.NItems)
		amax, err := search.MaxAlphaWithinCtx(ctx, budget, 1.0/128)
		if err != nil {
			return f11Row{}, err
		}
		return f11Row{
			curve: row,
			cross: []string{name, f3(amax), f2(paperAlphaMax[name]), curveShape(figure11Alphas, curve)},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		curveTable.Rows = append(curveTable.Rows, r.curve)
		crossTable.Rows = append(crossTable.Rows, r.cross)
	}
	rep.Tables = append(rep.Tables, curveTable, crossTable)

	// Simulated cross-check with genuinely perturbed (misguided) belief
	// functions on the smallest benchmark, as in the paper's overlaid
	// simulation points.
	sim, err := figure11Simulation(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, *sim)
	rep.Notes = append(rep.Notes,
		"α_max = 1.000 means the curve never crosses the tolerance line (the paper: RETAIL stays below 0.02 even at full compliancy)",
		"shape classifies the curve: RETAIL and CONNECT read as ~linear in the paper, PUMSB and ACCIDENTS as super-linear")
	return rep, nil
}

// curveShape classifies a monotone curve as linear or super-linear by
// comparing its midpoint against the chord.
func curveShape(alphas, curve []float64) string {
	if len(curve) < 3 {
		return "n/a"
	}
	last := curve[len(curve)-1]
	if last <= 0 {
		return "flat"
	}
	mid := curve[len(curve)/2]
	chord := last * alphas[len(alphas)/2] / alphas[len(alphas)-1]
	switch {
	case mid < 0.85*chord:
		return "super-linear"
	case mid > 1.15*chord:
		return "sub-linear"
	default:
		return "~linear"
	}
}

// figure11Simulation simulates α-compliant hackers on CONNECT by actually
// misguiding a (1-α) fraction of intervals and sampling crack mappings. The
// α points are independent work items: each derives its own generator from
// section 1 of the experiment seed and runs its own MCMC simulation.
func figure11Simulation(ctx context.Context, cfg Config) (*Table, error) {
	plan, _ := datagen.ByName("CONNECT")
	ft, err := plan.Counts(rowRNG(cfg.Seed, 1, 0))
	if err != nil {
		return nil, err
	}
	gr := dataset.GroupItems(ft)
	base := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
	tb := &Table{
		Title:  "CONNECT: simulated crack fraction with misguided intervals",
		Header: []string{"α", "simulated fraction", "stddev"},
	}
	alphas := []float64{0.25, 0.5, 0.75, 1.0}
	scfg := simConfig(cfg.Quick)
	rows, err := parallel.Map(ctx, 0, len(alphas), func(i int) ([]string, error) {
		a := alphas[i]
		rng := rowRNG(cfg.Seed, 2, i)
		pert, _, err := belief.AlphaCompliant(base, ft.Frequencies(), a, rng)
		if err != nil {
			return nil, err
		}
		g, err := bipartite.Build(pert, dataset.GroupItems(ft))
		if err != nil {
			return nil, err
		}
		if !g.Feasible() {
			return []string{f2(a), "infeasible", "-"}, nil
		}
		est, err := matching.EstimateCracksCtx(ctx, g, scfg, rng)
		if err != nil {
			return nil, err
		}
		n := float64(ft.NItems)
		return []string{f2(a), f4(est.Mean / n), f4(est.StdDev / n)}, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Rows = rows
	return tb, nil
}
