package experiments

import (
	"context"

	"repro/internal/datagen"
	"repro/internal/parallel"
	"repro/internal/recipe"
)

// figure12Fractions are the sample sizes swept in Figure 12.
var figure12Fractions = []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}

// RunFigure12 reproduces the similarity-by-sampling experiment (Figure 12 /
// Figure 13's procedure) on ACCIDENTS and RETAIL: the degree of compliancy of
// a belief function built from a p-fraction sample, averaged over 10 samples,
// using the sampled median gap as interval width — plus the sampled-average
// variant the paper calls misleading.
func RunFigure12(ctx context.Context, cfg Config) (*Report, error) {
	rep := &Report{ID: "figure12", Title: "Degrees of compliancy from similar (sampled) data"}
	samples := 10
	if cfg.Quick {
		samples = 3
	}
	names := []string{"ACCIDENTS", "RETAIL"}
	tables, err := parallel.Map(ctx, 0, len(names), func(i int) (Table, error) {
		name := names[i]
		rng := rowRNG(cfg.Seed, 0, i)
		plan, _ := datagen.ByName(name)
		ft, err := plan.Counts(rng)
		if err != nil {
			return Table{}, err
		}
		med, err := recipe.SimilarityBySamplingCounts(ft, figure12Fractions, samples, recipe.UseMedianGap, rng)
		if err != nil {
			return Table{}, err
		}
		mean, err := recipe.SimilarityBySamplingCounts(ft, figure12Fractions, samples, recipe.UseMeanGap, rng)
		if err != nil {
			return Table{}, err
		}
		tb := Table{
			Title:  name,
			Header: []string{"sample %", "α (median gap)", "stddev", "δ'_med", "α (mean gap)"},
		}
		for i, p := range med {
			tb.Rows = append(tb.Rows, []string{
				f2(p.Fraction * 100), f4(p.AlphaMean), f4(p.AlphaStd), f6(p.MedianGaps), f4(mean[i].AlphaMean),
			})
		}
		return tb, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, tables...)
	rep.Notes = append(rep.Notes,
		"paper: ACCIDENTS compliancy rises with sample size and exceeds 0.7 already at a 10% sample",
		"paper: RETAIL compliancy *drops* until ~50% sample size (under-determined low-support items separate into new groups, shrinking δ'_med), then the normal trend resumes",
		"paper: with the sampled average gap the compliancy sits near 0.99 uniformly — 'using the average can be misleading'")
	return rep, nil
}
