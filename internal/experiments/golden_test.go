package experiments

// Golden-file rendering tests: a parallel result-ordering regression (rows
// landing in schedule order instead of index order) shows up here as a
// readable diff against testdata/. Regenerate with
//
//	go test ./internal/experiments -run TestGolden -update
//
// after verifying the new output by eye.

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenTableRendering pins String() and CSV() on a handmade table with
// the awkward cases: ragged widths, commas, quotes.
func TestGoldenTableRendering(t *testing.T) {
	tb := Table{
		Title:  "demo table",
		Header: []string{"dataset", "value", "note"},
		Rows: [][]string{
			{"CONNECT", "0.1234", "plain"},
			{"A,B", `said "yes"`, "quoted, and long enough to stretch"},
			{"x", "-1", ""},
		},
	}
	checkGolden(t, "table.txt", tb.String())
	checkGolden(t, "table.csv", tb.CSV())
}

// TestGoldenDelta pins the §5.2 chain table end to end — it is closed-form
// (no RNG), so any drift is a real behavior change.
func TestGoldenDelta(t *testing.T) {
	rep, err := RunDeltaTable(context.Background(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "delta.txt", rep.String())
	checkGolden(t, "delta-0.csv", rep.Tables[0].CSV())
	checkGolden(t, "delta-1.csv", rep.Tables[1].CSV())
}

// TestGoldenFigure9 pins the parallel-generated benchmark statistics table:
// six rows produced by six split-seeded generators, collected in row order.
func TestGoldenFigure9(t *testing.T) {
	rep, err := RunFigure9(context.Background(), Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure9.txt", rep.String())
	checkGolden(t, "figure9-0.csv", rep.Tables[0].CSV())
}
