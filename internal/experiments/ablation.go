package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/matching"
	"repro/internal/recipe"
)

// RunAblation probes the design choices DESIGN.md calls out:
//
//  1. degree-1 propagation (Figure 7) on/off in the O-estimate;
//  2. interval width δ_med vs δ_mean (the recipe's conservatism claim);
//  3. uniform vs contribution-biased α-compliant subsets (the only mechanism
//     in this reproduction that recovers the paper's super-linear Figure 11
//     curves);
//  4. the paper's blind-transposition sampler vs the targeted-swap sampler
//     (same stationary distribution, different mixing).
func RunAblation(ctx context.Context, cfg Config) (*Report, error) {
	rep := &Report{ID: "ablation", Title: "Ablations of the reproduction's design choices"}

	prop, err := ablationPropagationAndWidth(rowRNG(cfg.Seed, 0, 0))
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, *prop)

	bias, err := ablationBias(ctx, cfg, rowRNG(cfg.Seed, 1, 0))
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, *bias)

	moves, err := ablationSamplerMoves(ctx, cfg, rowRNG(cfg.Seed, 2, 0))
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, *moves)

	rep.Notes = append(rep.Notes,
		"propagation only moves the O-estimate when forced cascades exist; δ_mean widths always lower the estimate (Lemma 8), confirming the paper's warning that the average under-estimates risk",
		"biased wrong-guess placement produces the super-linear compliancy curves of the paper's Figure 11; uniform placement (the paper's stated §6.2 procedure) is provably linear in expectation",
		"both samplers agree on the estimate; the targeted sampler needs orders of magnitude fewer sweeps to get there on narrow-interval graphs")
	return rep, nil
}

func ablationPropagationAndWidth(rng *rand.Rand) (*Table, error) {
	tb := &Table{
		Title:  "O-estimate vs propagation and interval width (full compliancy)",
		Header: []string{"dataset", "OE δ_med", "OE δ_med+prop", "forced", "OE δ_mean", "OE δ_mean/OE δ_med"},
	}
	for _, name := range figure10Datasets {
		plan, _ := datagen.ByName(name)
		ft, err := plan.Counts(rng)
		if err != nil {
			return nil, err
		}
		gr := dataset.GroupItems(ft)
		freqs := ft.Frequencies()
		med := belief.UniformWidth(freqs, gr.MedianGap())
		mean := belief.UniformWidth(freqs, gr.MeanGap())

		plain, err := core.OEstimate(med, ft, core.OEOptions{})
		if err != nil {
			return nil, err
		}
		prop, err := core.OEstimate(med, ft, core.OEOptions{Propagate: true})
		if err != nil {
			return nil, err
		}
		wide, err := core.OEstimate(mean, ft, core.OEOptions{})
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if plain.Value > 0 {
			ratio = wide.Value / plain.Value
		}
		tb.Rows = append(tb.Rows, []string{
			name, f3(plain.Value), f3(prop.Value), fmt.Sprint(prop.Forced), f3(wide.Value), f3(ratio),
		})
	}
	return tb, nil
}

func ablationBias(ctx context.Context, cfg Config, rng *rand.Rand) (*Table, error) {
	tb := &Table{
		Title:  "α_max at τ = 0.1: uniform vs contribution-biased wrong guesses",
		Header: []string{"dataset", "α_max uniform", "α_max biased", "paper", "OE(α=0.5) uniform", "OE(α=0.5) biased"},
	}
	runs := 5
	if cfg.Quick {
		runs = 2
	}
	for _, name := range figure10Datasets {
		plan, _ := datagen.ByName(name)
		ft, err := plan.Counts(rng)
		if err != nil {
			return nil, err
		}
		gr := dataset.GroupItems(ft)
		bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
		budget := figure11Tau * float64(ft.NItems)

		uni, err := recipe.NewAlphaSearch(ft, bf, runs, true, rng)
		if err != nil {
			return nil, err
		}
		bia, err := recipe.NewAlphaSearchBiased(ft, bf, runs, true, rng)
		if err != nil {
			return nil, err
		}
		uniMax, err := uni.MaxAlphaWithinCtx(ctx, budget, 1.0/128)
		if err != nil {
			return nil, err
		}
		biaMax, err := bia.MaxAlphaWithinCtx(ctx, budget, 1.0/128)
		if err != nil {
			return nil, err
		}
		uniMid, err := uni.OEAtCtx(ctx, 0.5)
		if err != nil {
			return nil, err
		}
		biaMid, err := bia.OEAtCtx(ctx, 0.5)
		if err != nil {
			return nil, err
		}
		n := float64(ft.NItems)
		tb.Rows = append(tb.Rows, []string{
			name, f3(uniMax), f3(biaMax), f2(paperAlphaMax[name]), f4(uniMid / n), f4(biaMid / n),
		})
	}
	return tb, nil
}

func ablationSamplerMoves(ctx context.Context, cfg Config, rng *rand.Rand) (*Table, error) {
	tb := &Table{
		Title:  "Sampler moves on CONNECT (full compliancy, width δ_med)",
		Header: []string{"moves", "estimate", "stddev", "wall time"},
	}
	plan, _ := datagen.ByName("CONNECT")
	ft, err := plan.Counts(rng)
	if err != nil {
		return nil, err
	}
	gr := dataset.GroupItems(ft)
	bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
	g, err := bipartite.Build(bf, gr)
	if err != nil {
		return nil, err
	}
	for _, paperMoves := range []bool{false, true} {
		mc := simConfig(cfg.Quick)
		mc.PaperMoves = paperMoves
		if paperMoves {
			// The paper's blind transpositions mix slower; give them the
			// paper-shaped longer schedule.
			mc.SeedSweeps *= 10
			mc.SampleGap *= 4
		}
		start := time.Now() //lint:allow detrand feeds only the "wall time" column, which determinism tests strip
		est, err := matching.EstimateCracksCtx(ctx, g, mc, rng)
		if err != nil {
			return nil, err
		}
		label := "targeted swaps"
		if paperMoves {
			label = "paper transpositions (10x burn-in)"
		}
		tb.Rows = append(tb.Rows, []string{
			label, f3(est.Mean), f3(est.StdDev), time.Since(start).Round(time.Millisecond).String(), //lint:allow detrand feeds only the "wall time" column, which determinism tests strip
		})
	}
	return tb, nil
}
