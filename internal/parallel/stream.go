package parallel

import "math/bits"

// Stream is the flat sampler kernel's random-number generator: a SplitMix64
// sequence (Steele, Lea & Flood 2014 — the same finalizer SplitSeed uses)
// with Lemire's nearly-divisionless bounded rejection for Uintn. It exists
// because the MCMC hot loop spends a measurable fraction of its time inside
// (*rand.Rand).Intn: an interface call into the Source, a 64→63-bit shim,
// and a modulo-rejection loop per draw. Stream is a plain struct with
// non-virtual methods that inline into the kernel, and its state is a single
// uint64 that lives inside the per-worker scratch — no pointer chase, no
// allocation, trivially resettable between runs.
//
// Determinism contract (DESIGN.md §8, §11): a Stream is seeded exclusively
// via SplitSeed from a fan-out's root seed, so the sequence a work item
// draws is a pure function of (root, item index). Two draws of the same
// seeded Stream never depend on worker scheduling. The detrand analyzer
// enforces the flip side: kernel loops must use Stream, not *rand.Rand.
//
// Stream is NOT cryptographically secure and must not be used where an
// adversary predicting the sequence matters; it drives Monte-Carlo
// estimates only.
type Stream struct {
	state uint64
}

// NewStream returns a stream positioned at the given seed. Seeds should come
// from SplitSeed so that distinct work items get decorrelated sequences;
// SplitMix64's full-period increment keeps even adjacent raw seeds usable.
func NewStream(seed int64) Stream { return Stream{state: uint64(seed)} }

// Uint64 advances the stream: one odd-constant increment plus the SplitMix64
// finalizer (three xor-shift-multiply rounds). Passes BigCrush per the
// original paper; period 2^64.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uintn returns a uniform value in [0, n) using Lemire's multiply-shift
// bounded rejection (arXiv:1805.10941): the common case is one 64×64→128
// multiply with no division at all; the rare correction path (probability
// < n/2^64) rejects to keep the distribution exactly uniform. n must be
// positive.
func (s *Stream) Uintn(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n // = (2^64 - n) mod n, the biased low fringe
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// (*rand.Rand).Intn so the two stay drop-in interchangeable in tests.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("parallel: Stream.Intn called with n <= 0")
	}
	return int(s.Uintn(uint64(n)))
}

// Shuffle performs a Fisher–Yates shuffle of ints[0:n] in place.
func (s *Stream) Shuffle(ints []int) {
	for i := len(ints) - 1; i > 0; i-- {
		j := int(s.Uintn(uint64(i + 1)))
		ints[i], ints[j] = ints[j], ints[i]
	}
}
