//go:build unix

package parallel

import (
	"syscall"
	"time"
)

// CPUTime returns the process's cumulative user+system CPU time. Provenance
// for parallel sweeps: wall time shrinks with workers while CPU time stays
// roughly constant, so the pair exposes both speedup and overhead.
func CPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	tv := func(t syscall.Timeval) time.Duration {
		return time.Duration(t.Sec)*time.Second + time.Duration(t.Usec)*time.Microsecond
	}
	return tv(ru.Utime) + tv(ru.Stime)
}
