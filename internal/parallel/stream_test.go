package parallel

import (
	"math"
	"math/rand"
	"testing"
)

func TestStreamDeterministic(t *testing.T) {
	a, b := NewStream(12345), NewStream(12345)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: same-seed streams diverge: %d vs %d", i, x, y)
		}
	}
	c := NewStream(12346)
	same := 0
	d := NewStream(12345)
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds collide on %d of 1000 draws", same)
	}
}

// TestStreamKnownValues pins the SplitMix64 sequence for seed 0 to the
// reference vector from the original public-domain implementation
// (prospecting for a silent kernel change: any edit to the constants or
// shifts breaks these).
func TestStreamKnownValues(t *testing.T) {
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	s := NewStream(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("draw %d of seed-0 stream = %#x, want %#x", i, got, w)
		}
	}
}

func TestStreamUintnBounds(t *testing.T) {
	s := NewStream(7)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40, math.MaxUint64} {
		for i := 0; i < 200; i++ {
			if v := s.Uintn(n); v >= n {
				t.Fatalf("Uintn(%d) = %d out of range", n, v)
			}
		}
	}
	if v := s.Uintn(1); v != 0 {
		t.Errorf("Uintn(1) = %d, want 0", v)
	}
}

func TestStreamUintnUniform(t *testing.T) {
	// Coarse uniformity: 100k draws over 10 buckets; each bucket expects
	// 10000 ± a generous 5σ ≈ 475.
	s := NewStream(99)
	const draws, n = 100000, 10
	var hist [n]int
	for i := 0; i < draws; i++ {
		hist[s.Uintn(n)]++
	}
	for b, c := range hist {
		if c < 9525 || c > 10475 {
			t.Errorf("bucket %d: %d draws, want 10000 ± 475", b, c)
		}
	}
}

func TestStreamIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s := NewStream(1)
	s.Intn(0)
}

func TestStreamShuffleIsPermutation(t *testing.T) {
	s := NewStream(3)
	ints := make([]int, 100)
	for i := range ints {
		ints[i] = i
	}
	s.Shuffle(ints)
	seen := make([]bool, len(ints))
	moved := 0
	for i, v := range ints {
		if v < 0 || v >= len(ints) || seen[v] {
			t.Fatalf("not a permutation at %d: %v", i, v)
		}
		seen[v] = true
		if v != i {
			moved++
		}
	}
	if moved == 0 {
		t.Error("shuffle left the identity in place (astronomically unlikely)")
	}
}

// TestStreamTracksRandIntnDistribution sanity-checks that Stream.Intn and
// (*rand.Rand).Intn agree in distribution (means within noise), since the
// sampler swapped the latter for the former.
func TestStreamTracksRandIntnDistribution(t *testing.T) {
	s := NewStream(5)
	r := rand.New(rand.NewSource(5))
	const draws, n = 200000, 37
	var sumS, sumR float64
	for i := 0; i < draws; i++ {
		sumS += float64(s.Intn(n))
		sumR += float64(r.Intn(n))
	}
	meanS, meanR := sumS/draws, sumR/draws
	if math.Abs(meanS-meanR) > 0.2 {
		t.Errorf("mean of Stream.Intn(37) = %v vs rand's %v: distributions drifted", meanS, meanR)
	}
}
