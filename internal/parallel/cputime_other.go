//go:build !unix

package parallel

import "time"

// CPUTime is unavailable on this platform; callers treat 0 as "not measured".
func CPUTime() time.Duration { return 0 }
