package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/budget"
)

func TestWorkersDefaultAndOverride(t *testing.T) {
	ctx := context.Background()
	if got, want := Workers(ctx), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default Workers = %d, want GOMAXPROCS = %d", got, want)
	}
	if got := Workers(WithWorkers(ctx, 3)); got != 3 {
		t.Errorf("Workers = %d, want 3", got)
	}
	// Non-positive overrides keep the default.
	if got, want := Workers(WithWorkers(ctx, 0)), Workers(ctx); got != want {
		t.Errorf("Workers with n=0 = %d, want default %d", got, want)
	}
	if got, want := Workers(WithWorkers(ctx, -2)), Workers(ctx); got != want {
		t.Errorf("Workers with n=-2 = %d, want default %d", got, want)
	}
}

func TestSplitSeedIsPureAndSpreads(t *testing.T) {
	if SplitSeed(1, 0) != SplitSeed(1, 0) {
		t.Fatal("SplitSeed not deterministic")
	}
	seen := map[int64]bool{}
	for root := int64(0); root < 4; root++ {
		for i := uint64(0); i < 256; i++ {
			s := SplitSeed(root, i)
			if seen[s] {
				t.Fatalf("seed collision at root=%d i=%d", root, i)
			}
			seen[s] = true
		}
	}
	// Consecutive indices must not produce near-identical generators.
	a, b := RNG(7, 0), RNG(7, 1)
	same := 0
	for k := 0; k < 64; k++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 16 {
		t.Errorf("streams 0 and 1 agree on %d/64 draws; splitting is broken", same)
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(42, 5)
	if len(s) != 5 {
		t.Fatalf("Seeds returned %d values", len(s))
	}
	for i, v := range s {
		if v != SplitSeed(42, uint64(i)) {
			t.Errorf("Seeds[%d] = %d, want SplitSeed", i, v)
		}
	}
}

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		var hits [100]atomic.Int64
		err := ForEach(context.Background(), workers, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Error("f called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestErrorWins(t *testing.T) {
	bad := map[int]error{3: errors.New("three"), 7: errors.New("seven")}
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), workers, 10, func(i int) error {
			return bad[i]
		})
		if err == nil || err.Error() != "three" {
			t.Errorf("workers=%d: err = %v, want the lowest-indexed failure", workers, err)
		}
	}
}

func TestForEachErrorVerbatim(t *testing.T) {
	// The degradation cascade relies on errors.Is surviving the pool.
	err := ForEach(context.Background(), 4, 8, func(i int) error {
		if i == 2 {
			return fmt.Errorf("wrapped: %w", budget.ErrBudgetExceeded)
		}
		return nil
	})
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Errorf("budget error lost its identity through the pool: %v", err)
	}
	if !budget.Degradable(err) {
		t.Errorf("pool error %v is not degradable", err)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		out, err := Map(context.Background(), workers, 50, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Errorf("Map on error = (%v, %v), want (nil, error)", out, err)
	}
}

func TestForEachSharedBudgetDegrades(t *testing.T) {
	// A tight shared budget must stop the fan-out with a degradable error at
	// every worker count, charging atomically across goroutines.
	for _, workers := range []int{1, 4} {
		ctx := budget.WithMaxOps(context.Background(), 500)
		shared := budget.NewShared(ctx, budget.Config{CheckEvery: 1})
		var done atomic.Int64
		err := ForEach(ctx, workers, 32, func(i int) error {
			w := shared.Worker()
			for k := 0; k < 100; k++ {
				if err := w.Charge(1); err != nil {
					return err
				}
			}
			done.Add(1)
			return nil
		})
		if !errors.Is(err, budget.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: err = %v, want ErrBudgetExceeded", workers, err)
		}
		if !budget.Degradable(err) {
			t.Fatalf("workers=%d: budget error not degradable", workers)
		}
		if done.Load() >= 32 {
			t.Fatalf("workers=%d: all items completed under an exhausted budget", workers)
		}
	}
}

func TestForEachCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	shared := budget.NewShared(ctx, budget.Config{CheckEvery: 1})
	err := ForEach(ctx, 4, 8, func(i int) error {
		return shared.Worker().Charge(1)
	})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if budget.Degradable(err) {
		t.Error("cancellation must abort, not degrade")
	}
}

// TestForEachDeterministicReduction is the engine-level determinism contract:
// split-seeded work reduced in index order gives bit-identical sums at every
// worker count.
func TestForEachDeterministicReduction(t *testing.T) {
	sum := func(workers int) float64 {
		out, err := Map(context.Background(), workers, 64, func(i int) (float64, error) {
			rng := RNG(99, i)
			v := 0.0
			for k := 0; k < 1000; k++ {
				v += rng.Float64()
			}
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, v := range out {
			total += v
		}
		return total
	}
	ref := sum(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := sum(workers); got != ref {
			t.Errorf("workers=%d: sum %v differs from serial %v", workers, got, ref)
		}
	}
}

// TestForEachWorkerIndexInRange pins the scratch-ownership contract: every
// worker index handed to f lies in [0, PoolWorkers), and a given index is
// never held by two goroutines at once — the per-index counters below are
// mutated without synchronization, so a violation shows up under -race.
func TestForEachWorkerIndexInRange(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 3, 8} {
		n := 50
		eff := PoolWorkers(ctx, workers, n)
		if eff > workers || eff > n || eff < 1 {
			t.Fatalf("PoolWorkers(%d, %d) = %d out of range", workers, n, eff)
		}
		items := make([]int, eff) // items[w] = count run on worker w, unsynchronized
		err := ForEachWorker(ctx, workers, n, func(worker, i int) error {
			if worker < 0 || worker >= eff {
				t.Errorf("worker index %d outside [0,%d)", worker, eff)
			}
			items[worker]++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range items {
			total += c
		}
		if total != n {
			t.Errorf("workers=%d: %d items ran, want %d", workers, total, n)
		}
	}
}

// TestForEachWorkerSerialUsesWorkerZero pins the fast path: with one worker
// every item must see worker index 0, in item order.
func TestForEachWorkerSerialUsesWorkerZero(t *testing.T) {
	var order []int
	err := ForEachWorker(context.Background(), 1, 5, func(worker, i int) error {
		if worker != 0 {
			t.Errorf("item %d: worker %d, want 0", i, worker)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v not ascending", order)
		}
	}
}

func TestPoolWorkersClamps(t *testing.T) {
	ctx := context.Background()
	if got := PoolWorkers(ctx, 16, 4); got != 4 {
		t.Errorf("PoolWorkers(16, 4) = %d, want 4", got)
	}
	if got := PoolWorkers(WithWorkers(ctx, 3), 0, 100); got != 3 {
		t.Errorf("PoolWorkers(ctx[3], 0, 100) = %d, want 3", got)
	}
	if got := PoolWorkers(ctx, 0, 0); got != 1 {
		t.Errorf("PoolWorkers(_, 0) = %d, want 1", got)
	}
}
