// Package parallel is the repo's bounded fan-out engine. The paper's risk
// estimates are Monte-Carlo aggregates over many independent trials — MCMC
// chains (Section 7.1), α-compliant subset runs (Section 6.2), points of an
// OE-vs-α curve (Figure 11), experiment table rows — and every one of those
// fan-outs is embarrassingly parallel. This package gives them a shared
// worker-pool idiom with two hard guarantees:
//
//   - Determinism: results are bit-identical for a fixed seed regardless of
//     the worker count. Work item i derives its randomness from the root seed
//     by SplitMix-style splitting (SplitSeed), writes its result into slot i,
//     and the caller reduces the slots in index order — so neither goroutine
//     scheduling nor GOMAXPROCS can leak into the numbers.
//   - Bounded concurrency: at most Workers(ctx) goroutines run at once
//     (GOMAXPROCS by default, -workers on the CLI). Work items queue behind
//     an atomic cursor rather than spawning a goroutine each.
//
// Budget composition: ForEach/Map return the failing item's error verbatim
// (lowest index wins, deterministically), so a budget.ErrBudgetExceeded from
// any worker still reads as "degrade" to the existing cascade rather than
// turning into a hard abort. Workers charging one shared limit use
// budget.Shared, whose counter is atomic across goroutines.
package parallel

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

type workersKey struct{}

// WithWorkers returns a context carrying the worker count for every pool
// started under it. The CLI binaries use it to wire a -workers flag through
// call chains without widening signatures (the same idiom as
// budget.WithMaxOps). Non-positive n means "use the default".
func WithWorkers(ctx context.Context, n int) context.Context {
	if n <= 0 {
		return ctx
	}
	return context.WithValue(ctx, workersKey{}, n)
}

// Workers returns the worker count carried by the context, defaulting to
// GOMAXPROCS. The result is always at least 1.
func Workers(ctx context.Context) int {
	if v, ok := ctx.Value(workersKey{}).(int); ok && v > 0 {
		return v
	}
	if n := runtime.GOMAXPROCS(0); n > 0 {
		return n
	}
	return 1
}

// PoolWorkers returns the number of workers a pool started with the given
// workers argument (non-positive = Workers(ctx)) actually uses for n items:
// the requested width clamped to n. Callers holding per-worker scratch size
// their scratch arrays with it so every ForEachWorker index lands in range.
func PoolWorkers(ctx context.Context, workers, n int) int {
	if workers <= 0 {
		workers = Workers(ctx)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// SplitSeed derives the i-th child seed from a root seed with the SplitMix64
// finalizer. Consecutive indices land in statistically independent streams
// (the weak point of seeding math/rand sources with small consecutive
// integers), and the derivation is a pure function of (root, i) — the
// foundation of the package's determinism guarantee: a work item's randomness
// depends only on its index, never on which worker ran it or what ran before.
func SplitSeed(root int64, i uint64) int64 {
	z := uint64(root) + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Seeds returns the first n child seeds of root.
func Seeds(root int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = SplitSeed(root, uint64(i))
	}
	return out
}

// RNG returns a fresh math/rand generator for work item i of a fan-out rooted
// at the given seed.
func RNG(root int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(SplitSeed(root, uint64(i))))
}

// ForEach runs f(0..n-1) on at most workers goroutines (non-positive workers
// means Workers(ctx)) and blocks until every started item finishes.
//
// Error semantics: once any item fails, unstarted items are skipped and
// ForEach returns the error of the lowest-indexed failed item — a
// deterministic choice, so callers comparing runs at different worker counts
// see the same error. The error is returned verbatim: a degradable budget
// error stays degradable. A canceled context fails items at their next
// budget check inside f; ForEach itself does not poll ctx between items
// beyond handing it to f.
//
// Determinism contract for callers: f(i) must depend only on i and read-only
// shared state, and must publish its result to a slot owned by i. ForEach
// guarantees a happens-before edge between every f call and its return.
func ForEach(ctx context.Context, workers, n int, f func(i int) error) error {
	return ForEachWorker(ctx, workers, n, func(_, i int) error { return f(i) })
}

// ForEachWorker is ForEach for callers that keep per-worker scratch: f
// receives the stable index of the pool worker executing the item (0 ≤
// worker < PoolWorkers(ctx, workers, n)) alongside the item index. A worker
// index is owned by exactly one goroutine for the pool's lifetime, so
// scratch[worker] may be mutated freely without synchronization — the
// matching sampler threads its zero-alloc runScratch through here.
//
// The determinism contract is unchanged: the worker index must only select
// *reusable memory*, never influence results — f's output must stay a pure
// function of the item index.
func ForEachWorker(ctx context.Context, workers, n int, f func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = PoolWorkers(ctx, workers, n)
	if workers == 1 {
		// Fast path: no goroutines, no atomics — and the reference execution
		// order the determinism tests compare against.
		for i := 0; i < n; i++ {
			if err := f(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Int64 // lowest failed index + 1; 0 = none
		mu     sync.Mutex
		errs   = map[int]error{}
		wg     sync.WaitGroup
	)
	failed.Store(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				// Skip items that can no longer affect the outcome: a
				// lower-indexed failure already decides the return value.
				if lowest := failed.Load(); lowest != 0 && int64(i) >= lowest-1 {
					continue
				}
				if err := f(worker, i); err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					for {
						lowest := failed.Load()
						if lowest != 0 && lowest-1 <= int64(i) {
							break
						}
						if failed.CompareAndSwap(lowest, int64(i)+1) {
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if lowest := failed.Load(); lowest != 0 {
		return errs[int(lowest-1)]
	}
	return nil
}

// Map is ForEach with ordered result collection: out[i] = f(i), with slots of
// skipped items (after a lower-indexed failure) left at their zero value. On
// error the partial slice is discarded and only the error returned.
func Map[T any](ctx context.Context, workers, n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := f(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
