// Package perturb implements uniform item randomization in the style of
// Evfimievski et al. (reference [10] of the paper): each item present in a
// transaction is kept with probability Keep, and each absent domain item is
// inserted with probability Insert. Unlike anonymization — which preserves
// every data characteristic — randomization distorts supports, and mining
// the release requires bias-corrected estimators.
//
// The paper's introduction motivates studying anonymization precisely by
// this contrast: "changing the data characteristics may affect the outcome
// too much that it defeats the original purpose of releasing the data".
// This package supplies the comparator so that claim can be measured: how
// noisy do reconstructed supports get at randomization levels that actually
// blunt a frequency-matching hacker?
package perturb

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Params are the randomization probabilities.
type Params struct {
	Keep   float64 // probability a present item survives
	Insert float64 // probability an absent item is inserted
}

// Validate checks that the parameters leave the supports identifiable:
// Keep must differ from Insert (otherwise the release carries no signal).
func (p Params) Validate() error {
	if p.Keep < 0 || p.Keep > 1 || p.Insert < 0 || p.Insert > 1 {
		return fmt.Errorf("perturb: probabilities outside [0,1]: %+v", p)
	}
	if p.Keep == p.Insert {
		return fmt.Errorf("perturb: keep = insert = %v destroys all signal", p.Keep)
	}
	return nil
}

// Randomize produces the perturbed release. Transactions that end up empty
// are dropped (the data model requires non-empty transactions); the released
// transaction count accompanies the database for the estimators.
func Randomize(db *dataset.Database, params Params, rng *rand.Rand) (*dataset.Database, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := db.Items()
	var out []dataset.Transaction
	present := make([]bool, n)
	for i := 0; i < db.Transactions(); i++ {
		for j := range present {
			present[j] = false
		}
		for _, x := range db.Transaction(i) {
			present[x] = true
		}
		var tx dataset.Transaction
		for x := 0; x < n; x++ {
			keepIt := present[x] && rng.Float64() < params.Keep
			insertIt := !present[x] && rng.Float64() < params.Insert
			if keepIt || insertIt {
				tx = append(tx, dataset.Item(x))
			}
		}
		if len(tx) > 0 {
			out = append(out, tx)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perturb: randomization emptied every transaction")
	}
	return dataset.New(n, out)
}

// EstimateSupports reconstructs unbiased estimates of the ORIGINAL support
// counts from the randomized release: E[c′] = Keep·c + Insert·(m − c), so
// ĉ = (c′ − Insert·m) / (Keep − Insert). m is the original transaction
// count (known to the data owner and published alongside the release in the
// randomization literature). Estimates are clamped to [0, m].
func EstimateSupports(perturbed *dataset.Database, m int, params Params) ([]float64, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("perturb: original transaction count %d", m)
	}
	counts := perturbed.SupportCounts()
	out := make([]float64, len(counts))
	den := params.Keep - params.Insert
	for x, c := range counts {
		est := (float64(c) - params.Insert*float64(m)) / den
		if est < 0 {
			est = 0
		}
		if est > float64(m) {
			est = float64(m)
		}
		out[x] = est
	}
	return out, nil
}

// EstimatePairSupport reconstructs an unbiased estimate of the original
// co-occurrence count of items a and b from the randomized release, given
// (estimates of) the original single supports ca and cb:
//
//	E[c′_ab] = k²·c_ab + k·i·(ca − c_ab) + i·k·(cb − c_ab) + i²·(m − ca − cb + c_ab)
//
// with k = Keep, i = Insert, solved for c_ab. The coefficient (k − i)² never
// vanishes for valid parameters.
func EstimatePairSupport(observedPair int, ca, cb float64, m int, params Params) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	if m <= 0 {
		return 0, fmt.Errorf("perturb: original transaction count %d", m)
	}
	k, i := params.Keep, params.Insert
	den := (k - i) * (k - i)
	num := float64(observedPair) - k*i*(ca+cb) - i*i*(float64(m)-ca-cb)
	est := num / den
	if est < 0 {
		est = 0
	}
	if max := minf(ca, cb); est > max {
		est = max
	}
	return est, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
