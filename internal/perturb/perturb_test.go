package perturb

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/itemsetrisk"
)

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Keep: -0.1, Insert: 0.1},
		{Keep: 1.1, Insert: 0.1},
		{Keep: 0.5, Insert: -0.2},
		{Keep: 0.5, Insert: 1.2},
		{Keep: 0.3, Insert: 0.3},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v: want validation error", p)
		}
	}
	if err := (Params{Keep: 0.9, Insert: 0.05}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestRandomizeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db, err := datagen.Quest(datagen.QuestConfig{Items: 30, Transactions: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Randomize(db, Params{Keep: 0.9, Insert: 0.02}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Items() != db.Items() {
		t.Errorf("domain changed: %d", out.Items())
	}
	if out.Transactions() > db.Transactions() {
		t.Errorf("transactions grew: %d > %d", out.Transactions(), db.Transactions())
	}
	if _, err := Randomize(db, Params{Keep: 0.5, Insert: 0.5}, rng); err == nil {
		t.Error("degenerate params: want error")
	}
}

func TestEstimateSupportsUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db, err := datagen.Quest(datagen.QuestConfig{Items: 20, Transactions: 3000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := db.SupportCounts()
	params := Params{Keep: 0.85, Insert: 0.05}
	// Average the estimator over independent randomizations.
	const reps = 30
	sums := make([]float64, db.Items())
	for r := 0; r < reps; r++ {
		out, err := Randomize(db, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateSupports(out, db.Transactions(), params)
		if err != nil {
			t.Fatal(err)
		}
		for x, v := range est {
			sums[x] += v
		}
	}
	for x, c := range trueCounts {
		mean := sums[x] / reps
		tol := 0.05*float64(db.Transactions()) + 10
		if math.Abs(mean-float64(c)) > tol {
			t.Errorf("item %d: mean estimate %v, true %d", x, mean, c)
		}
	}
}

func TestEstimatePairSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db, err := datagen.Quest(datagen.QuestConfig{Items: 12, Transactions: 4000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	truePairs := itemsetrisk.ComputePairs(db)
	trueCounts := db.SupportCounts()
	params := Params{Keep: 0.9, Insert: 0.03}
	const reps = 20
	// Track a handful of pairs.
	type pk struct{ a, b int }
	pairs := []pk{{0, 1}, {2, 5}, {3, 7}, {8, 11}}
	sums := map[pk]float64{}
	for r := 0; r < reps; r++ {
		out, err := Randomize(db, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		obs := itemsetrisk.ComputePairs(out)
		for _, p := range pairs {
			est, err := EstimatePairSupport(obs.Support(p.a, p.b),
				float64(trueCounts[p.a]), float64(trueCounts[p.b]), db.Transactions(), params)
			if err != nil {
				t.Fatal(err)
			}
			sums[p] += est
		}
	}
	for _, p := range pairs {
		mean := sums[p] / reps
		truth := float64(truePairs.Support(p.a, p.b))
		tol := 0.06*float64(db.Transactions()) + 15
		if math.Abs(mean-truth) > tol {
			t.Errorf("pair (%d,%d): mean estimate %v, true %v", p.a, p.b, mean, truth)
		}
	}
	if _, err := EstimatePairSupport(1, 1, 1, 0, params); err == nil {
		t.Error("m = 0: want error")
	}
}

func TestRandomizationBluntsPointValuedHacker(t *testing.T) {
	// The risk story: an omniscient-frequency hacker's belief function is
	// compliant against a plain anonymized release by definition, but its
	// compliancy against the randomized release's observed frequencies
	// collapses — frequencies moved.
	rng := rand.New(rand.NewSource(4))
	plan := datagen.GroupPlan{Name: "t", Items: 80, Transactions: 2000, Groups: 40, Singletons: 25,
		MedianGapFreq: 0.003, MeanGapFreq: 0.01}
	db, err := plan.Database(rng)
	if err != nil {
		t.Fatal(err)
	}
	trueFreqs := db.Frequencies()
	gr := dataset.GroupItems(db.Table())
	bf := belief.UniformWidth(trueFreqs, gr.MedianGap())

	out, err := Randomize(db, Params{Keep: 0.8, Insert: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	randFreqs := out.Frequencies()
	alphaPlain := bf.Alpha(trueFreqs)
	alphaRand := bf.Alpha(randFreqs)
	if alphaPlain != 1 {
		t.Fatalf("plain-release compliancy = %v, want 1", alphaPlain)
	}
	if alphaRand > 0.5 {
		t.Errorf("randomized-release compliancy = %v, want well below 1", alphaRand)
	}
}

func TestEstimateSupportsValidation(t *testing.T) {
	db := dataset.MustNew(2, []dataset.Transaction{{0}, {1}})
	if _, err := EstimateSupports(db, 0, Params{Keep: 0.9, Insert: 0.1}); err == nil {
		t.Error("m = 0: want error")
	}
	if _, err := EstimateSupports(db, 2, Params{Keep: 0.5, Insert: 0.5}); err == nil {
		t.Error("bad params: want error")
	}
}
