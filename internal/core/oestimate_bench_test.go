package core

// Microbenchmark of the word-parallel O-estimate scan against the historical
// item-at-a-time boolean loop it replaced (the inner loop of
// referenceOEstimate, verbatim). ci.sh -bench records both under
// "microbenchmarks" in BENCH_parallel.json; the bitset kernel's win is the
// speedup_vs_bools ratio there.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/budget"
	"repro/internal/dataset"
)

var benchScanSink float64

func BenchmarkOEstimateScan(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n, m := 16384, 200
	counts := make([]int, n)
	for i := range counts {
		counts[i] = rng.Intn(m + 1)
	}
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		b.Fatal(err)
	}
	bf := belief.RandomCompliant(ft.Frequencies(), 0.1, rng)
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		b.Fatal(err)
	}
	mask := bitset.New(n)
	maskBools := make([]bool, n)
	for x := 0; x < n; x += 2 {
		mask.Add(x)
		maskBools[x] = true
	}

	b.Run("impl=bitset", func(b *testing.B) {
		comp := g.ComplianceSet().Words()
		inv := g.OutdegreeReciprocals()
		crack := bitset.New(n)
		bud := budget.New(context.Background(), budget.Config{CheckEvery: 4096})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := oeScanWords(bud, n, comp, mask.Words(), nil, crack.Words(), inv)
			if err != nil {
				b.Fatal(err)
			}
			benchScanSink = v
		}
	})

	b.Run("impl=bools", func(b *testing.B) {
		outdeg := g.Outdegrees()
		crack := make([]bool, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := 0.0
			for x := 0; x < n; x++ {
				if !g.Compliant(x) || !maskBools[x] {
					continue
				}
				crack[x] = true
				v += 1 / float64(outdeg[x])
			}
			benchScanSink = v
		}
	})
}
