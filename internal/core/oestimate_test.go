package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/dataset"
)

// beliefH is the belief function h of Figure 2 over the BigMart domain.
func beliefH() *belief.Function {
	return belief.MustNew([]belief.Interval{
		{Lo: 0, Hi: 1}, {Lo: 0.4, Hi: 0.5}, {Lo: 0.5, Hi: 0.5},
		{Lo: 0.4, Hi: 0.6}, {Lo: 0.1, Hi: 0.4}, {Lo: 0.5, Hi: 0.5},
	})
}

func TestOEstimateBigMartH(t *testing.T) {
	// Outdegrees under h: (6, 5, 4, 5, 2, 4) -> OE = 1/6+1/5+1/4+1/5+1/2+1/4.
	res, err := OEstimate(beliefH(), bigMartTable(t), OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0/6 + 1.0/5 + 1.0/4 + 1.0/5 + 1.0/2 + 1.0/4
	if math.Abs(res.Value-want) > 1e-12 {
		t.Errorf("OE = %v, want %v", res.Value, want)
	}
	if f := res.Fraction(); math.Abs(f-want/6) > 1e-12 {
		t.Errorf("Fraction = %v, want %v", f, want/6)
	}
	if got := res.Crackable.Count(); got != 6 {
		t.Errorf("%d crackable items, want all 6 under compliant h", got)
	}
}

func TestOEstimateIgnorantIsLemma1(t *testing.T) {
	ft := bigMartTable(t)
	res, err := OEstimate(belief.Ignorant(ft.NItems), ft, OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-1) > 1e-12 {
		t.Errorf("OE(ignorant) = %v, want 1 (Lemma 1: exact here)", res.Value)
	}
}

func TestOEstimatePointValuedIsLemma3(t *testing.T) {
	// For point-valued compliant beliefs, O_x equals the size of x's group,
	// so OE = Σ_g n_g · (1/n_g) = g. The heuristic is exact at this extreme.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		m := 1 + rng.Intn(40)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft := mustTable(t, m, counts)
		gr := dataset.GroupItems(ft)
		res, err := OEstimate(belief.PointValued(ft.Frequencies()), ft, OEOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := ExpectedCracksPointValued(gr)
		if math.Abs(res.Value-want) > 1e-9 {
			t.Fatalf("trial %d: OE = %v, want g = %v", trial, res.Value, want)
		}
	}
}

func TestOEstimateChainClosedForm(t *testing.T) {
	// The generic graph O-estimate must agree with the chain closed form on
	// realized chains.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		spec := randomChain(rng, 4, 6)
		k := len(spec.GroupSizes)
		counts := make([]int, k)
		for i := range counts {
			counts[i] = 5 + i*7
		}
		ft, bf, err := spec.Realize(60, counts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := OEstimate(bf, ft, OEOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := spec.OEstimate()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-want) > 1e-9 {
			t.Fatalf("trial %d: graph OE = %v, closed form = %v (spec %+v)", trial, res.Value, want, spec)
		}
	}
}

func TestOEstimateMonotonicityLemma8(t *testing.T) {
	// Lemma 8: β1 ⊑ β2 (narrower intervals) implies OE(β1) >= OE(β2).
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		m := 10 + rng.Intn(50)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft := mustTable(t, m, counts)
		b1 := belief.RandomCompliant(ft.Frequencies(), 0.2, rng)
		b2 := b1.Widen(rng.Float64() * 0.3)
		r1, err := OEstimate(b1, ft, OEOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := OEstimate(b2, ft, OEOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Value < r2.Value-1e-9 {
			t.Fatalf("trial %d: OE(narrow) = %v < OE(wide) = %v, violating Lemma 8",
				trial, r1.Value, r2.Value)
		}
	}
}

func TestOEstimateMaskMonotonicityLemma10(t *testing.T) {
	// Lemma 10: shrinking the compliant set never increases the O-estimate.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(40)
		m := 10 + rng.Intn(50)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft := mustTable(t, m, counts)
		bf := belief.RandomCompliant(ft.Frequencies(), 0.15, rng)
		mask := make([]bool, n)
		for i := range mask {
			mask[i] = true
		}
		prev := math.Inf(1)
		for level := 0; level < 4; level++ {
			res, err := OEstimate(bf, ft, OEOptions{Mask: bitset.FromBools(mask)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Value > prev+1e-9 {
				t.Fatalf("trial %d level %d: OE grew from %v to %v as compliant set shrank",
					trial, level, prev, res.Value)
			}
			prev = res.Value
			mask = belief.ShrinkCompliantSet(mask, rng)
		}
	}
}

func TestOEstimateMaskExcludesItems(t *testing.T) {
	ft := bigMartTable(t)
	mask := []bool{true, false, true, false, true, false}
	res, err := OEstimate(beliefH(), ft, OEOptions{Mask: bitset.FromBools(mask)})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0/6 + 1.0/4 + 1.0/2 // items 0, 2, 4
	if math.Abs(res.Value-want) > 1e-12 {
		t.Errorf("masked OE = %v, want %v", res.Value, want)
	}
	for x := range mask {
		if got := res.Crackable.Contains(x); got != mask[x] {
			t.Errorf("Crackable(%d) = %v, want %v", x, got, mask[x])
		}
	}
	if _, err := OEstimate(beliefH(), ft, OEOptions{Mask: bitset.New(1)}); err == nil {
		t.Error("short mask: want error")
	}
}

func TestOEstimateNonCompliantContributesZero(t *testing.T) {
	ft := bigMartTable(t)
	// Item 0 guesses wrong (its true frequency is 0.5).
	bf := belief.MustNew([]belief.Interval{
		{Lo: 0.05, Hi: 0.15}, {Lo: 0.4, Hi: 0.5}, {Lo: 0.5, Hi: 0.5},
		{Lo: 0.4, Hi: 0.6}, {Lo: 0.1, Hi: 0.4}, {Lo: 0.5, Hi: 0.5},
	})
	res, err := OEstimate(bf, ft, OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crackable.Contains(0) {
		t.Error("non-compliant item 0 must not be crackable")
	}
	// Item 0's interval misses every observed frequency, so the remaining
	// outdegrees match h's for items 1..5... except item 0 covered all groups
	// under h. Recompute expected: O = (0, 5, 4, 5, 2, 4) minus item0's
	// contribution to others: none (outdegree counts anonymized items, which
	// are unchanged). OE sums over compliant items 1..5.
	want := 1.0/5 + 1.0/4 + 1.0/5 + 1.0/2 + 1.0/4
	if math.Abs(res.Value-want) > 1e-12 {
		t.Errorf("OE = %v, want %v", res.Value, want)
	}
}

func TestOEstimatePropagationFigure6a(t *testing.T) {
	// Figure 6(a): plain OE = 25/12; with propagation every item is forced
	// into its own crack, so the estimate becomes exactly 4.
	counts := []int{1, 2, 3, 4}
	ft := mustTable(t, 8, counts)
	freqs := ft.Frequencies()
	ivs := make([]belief.Interval, 4)
	for x := range ivs {
		ivs[x] = belief.Interval{Lo: freqs[0], Hi: freqs[x]}
	}
	bf := belief.MustNew(ivs)

	plain, err := OEstimate(bf, ft, OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 25.0 / 12.0; math.Abs(plain.Value-want) > 1e-12 {
		t.Errorf("plain OE = %v, want 25/12 = %v", plain.Value, want)
	}
	prop, err := OEstimate(bf, ft, OEOptions{Propagate: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prop.Value-4) > 1e-12 {
		t.Errorf("propagated OE = %v, want 4 (the true crack count)", prop.Value)
	}
	if prop.Forced != 4 {
		t.Errorf("Forced = %d, want 4", prop.Forced)
	}
}

func TestOEstimatePropagationForcedNonCrack(t *testing.T) {
	// A forced pair that is NOT a crack must contribute 0, and an item whose
	// anonymized twin is consumed by someone else's forced match must too.
	// Construction: two items, counts (2, 6) over 10. Item 0 believes [0.6,0.6]
	// (wrong; matches item 1's frequency and only that singleton group);
	// item 1 is ignorant. Every consistent matching maps 1'↦0 and 0'↦1:
	// zero cracks.
	ft := mustTable(t, 10, []int{2, 6})
	bf := belief.MustNew([]belief.Interval{{Lo: 0.6, Hi: 0.6}, {Lo: 0, Hi: 1}})
	prop, err := OEstimate(bf, ft, OEOptions{Propagate: true})
	if err != nil {
		t.Fatal(err)
	}
	if prop.Value != 0 {
		t.Errorf("OE = %v, want 0 (no consistent mapping cracks anything)", prop.Value)
	}
	// Sanity: exact computation agrees.
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactExpectedCracks(g.ToExplicit())
	if err != nil {
		t.Fatal(err)
	}
	if exact != 0 {
		t.Errorf("exact E(X) = %v, want 0", exact)
	}
}

func TestOEstimatePropagationInfeasible(t *testing.T) {
	ft := mustTable(t, 10, []int{2, 6})
	// Both items insist on the singleton 0.6 group: infeasible.
	bf := belief.MustNew([]belief.Interval{{Lo: 0.6, Hi: 0.6}, {Lo: 0.6, Hi: 0.6}})
	if _, err := OEstimate(bf, ft, OEOptions{Propagate: true}); err == nil {
		t.Error("want infeasibility error")
	}
}

func TestOEstimateGraphSection8Generality(t *testing.T) {
	// Section 8.1: the estimate works on any consistency graph, however it
	// was set up. Build a graph directly and estimate from it.
	ft := bigMartTable(t)
	g, err := bipartite.Build(beliefH(), dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	res, err := OEstimateGraph(g, OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaFn, err := OEstimate(beliefH(), ft, OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != viaFn.Value {
		t.Errorf("OEstimateGraph = %v, OEstimate = %v", res.Value, viaFn.Value)
	}
}

func TestOEstimateInterestLemma2And4(t *testing.T) {
	ft := bigMartTable(t)
	gr := dataset.GroupItems(ft)

	// Interest in items 0 and 4 only.
	interest := []bool{true, false, false, false, true, false}

	// Ignorant belief: OE restricted to the subset equals Lemma 2's n1/n.
	res, err := OEstimate(belief.Ignorant(6), ft, OEOptions{Interest: bitset.FromBools(interest)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedCracksIgnorantSubset(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-want) > 1e-12 {
		t.Errorf("interest OE (ignorant) = %v, want %v (Lemma 2)", res.Value, want)
	}

	// Point-valued belief: OE restricted equals Lemma 4's Σ c_i/n_i.
	res, err = OEstimate(belief.PointValued(ft.Frequencies()), ft, OEOptions{Interest: bitset.FromBools(interest)})
	if err != nil {
		t.Fatal(err)
	}
	want, err = ExpectedCracksPointValuedSubset(gr, interest)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-want) > 1e-12 {
		t.Errorf("interest OE (point-valued) = %v, want %v (Lemma 4)", res.Value, want)
	}

	// Interest with propagation: forced cracks outside the interest set do
	// not count.
	onlyBig := []bool{true, false, true, true, false, true} // the 0.5 group
	res, err = OEstimate(belief.PointValued(ft.Frequencies()), ft, OEOptions{Interest: bitset.FromBools(onlyBig), Propagate: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-1) > 1e-12 {
		t.Errorf("interest OE (propagated, big group only) = %v, want 1", res.Value)
	}

	if _, err := OEstimate(belief.Ignorant(6), ft, OEOptions{Interest: bitset.New(1)}); err == nil {
		t.Error("short interest mask: want error")
	}
}
