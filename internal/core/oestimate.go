package core

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/budget"
	"repro/internal/dataset"
)

// OEOptions configures the O-estimate computation.
type OEOptions struct {
	// Propagate applies the degree-1 propagation of Figure 7 before reading
	// outdegrees, as Section 5.2 recommends. Propagation can prove the graph
	// infeasible for (very) non-compliant belief functions; OEstimate then
	// returns bipartite.ErrInfeasible.
	Propagate bool
	// Mask, when set (non-zero), restricts the summation to its members. The
	// Assess-Risk recipe uses it to evaluate α-compliant belief functions
	// without perturbing intervals: excluded items are treated as
	// non-compliant and contribute nothing (Section 5.3).
	Mask bitset.Set
	// Interest, when set (non-zero), counts only its members in the estimate
	// — the owner's "items of interest" of Lemmas 2 and 4 (e.g. only the
	// frequent items, or the high-margin products). Unlike Mask, uninterest-
	// ing items still participate in the graph and in propagation; they are
	// merely not counted.
	Interest bitset.Set
}

// OEResult carries the O-estimate and the evidence behind it.
type OEResult struct {
	Value     float64    // OE(β, D) = Σ 1/O_x over crackable items
	Outdeg    []int      // per-item outdegree used in the sum (post-propagation when enabled)
	Crackable bitset.Set // items that contributed (compliant, unmasked, still reachable)
	Forced    int        // propagation-forced edges (0 without propagation)
	Rounds    int        // propagation rounds (0 without propagation)
}

// Fraction returns the O-estimate as a fraction of the domain size, the unit
// of Figure 11's y-axis.
func (r *OEResult) Fraction() float64 {
	if len(r.Outdeg) == 0 {
		return 0
	}
	return r.Value / float64(len(r.Outdeg))
}

// checkMask validates an optional bitset option against the domain size.
func checkMask(name string, m bitset.Set, n int) error {
	if !m.IsZero() && m.Len() != n {
		return fmt.Errorf("core: %s covers %d items, want %d", name, m.Len(), n)
	}
	return nil
}

// OEstimate computes the O-estimate heuristic of Figure 5:
//
//	OE(β, D) = Σ_{x ∈ I_C} 1 / O_x
//
// where O_x is the outdegree of item x in the consistency graph and I_C the
// set of items on which β is compliant (all of I for compliant functions).
// Non-compliant items cannot be cracked by any consistent mapping and
// contribute zero (Section 5.3). Runs in O(n log n) over frequency groups.
func OEstimate(bf *belief.Function, ft *dataset.FrequencyTable, opts OEOptions) (*OEResult, error) {
	return OEstimateCtx(context.Background(), bf, ft, opts)
}

// OEstimateCtx is OEstimate under a work budget. The estimate runs in
// O(n log n) and essentially always completes — it is the floor of the
// degradation cascade — but the budget checks let a canceled context abort
// even this path promptly on very large domains.
func OEstimateCtx(ctx context.Context, bf *belief.Function, ft *dataset.FrequencyTable, opts OEOptions) (*OEResult, error) {
	if err := checkMask("mask", opts.Mask, ft.NItems); err != nil {
		return nil, err
	}
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		return nil, err
	}
	return OEstimateGraphCtx(ctx, g, opts)
}

// OEstimateGraph computes the O-estimate directly from a prebuilt graph.
// This is the "second level" generalization the paper highlights in
// Section 8.1: once a bipartite consistency graph is set up — by belief
// functions over frequencies or by any other kind of partial information —
// the estimate applies unchanged.
func OEstimateGraph(g *bipartite.Graph, opts OEOptions) (*OEResult, error) {
	return OEstimateGraphCtx(context.Background(), g, opts)
}

// OEstimateGraphCtx is OEstimateGraph under a work budget: one operation per
// item scanned, charged one 64-item word at a time.
//
// Both paths run as word-parallel kernels (DESIGN.md §16): the graph's
// packed compliance words are ANDed with the option masks, the crackable
// words fall out of the same AND, and only surviving bits are visited — in
// ascending item order via TrailingZeros64, so the float accumulation order,
// and therefore every bit of Value, matches the historical item-at-a-time
// loop (pinned by TestOEstimateBitsetMatchesReference).
func OEstimateGraphCtx(ctx context.Context, g *bipartite.Graph, opts OEOptions) (*OEResult, error) {
	n := g.Items()
	if err := checkMask("mask", opts.Mask, n); err != nil {
		return nil, err
	}
	if err := checkMask("interest mask", opts.Interest, n); err != nil {
		return nil, err
	}
	bud := budget.New(ctx, budget.Config{CheckEvery: 4096})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	var maskW, intW []uint64
	if !opts.Mask.IsZero() {
		maskW = opts.Mask.Words()
	}
	if !opts.Interest.IsZero() {
		intW = opts.Interest.Words()
	}
	res := &OEResult{Crackable: bitset.New(n)}

	if !opts.Propagate {
		res.Outdeg = g.Outdegrees()
		value, err := oeScanWords(bud, n, g.ComplianceSet().Words(), maskW, intW,
			res.Crackable.Words(), g.OutdegreeReciprocals())
		if err != nil {
			return nil, fmt.Errorf("core: O-estimate: %w", err)
		}
		res.Value = value
		return res, nil
	}

	p, err := g.PropagateCtx(ctx)
	if err != nil {
		return nil, err
	}
	if err := bud.Charge(int64(n)); err != nil { // propagation visits every item at least once
		return nil, fmt.Errorf("core: O-estimate propagation: %w", err)
	}
	res.Outdeg = p.Outdeg
	res.Forced = len(p.Forced)
	res.Rounds = p.Rounds
	value, err := oePropagatedWords(bud, n, g.ComplianceSet().Words(), maskW, intW,
		res.Crackable.Words(), p.Outdeg, p.Forced)
	if err != nil {
		return nil, fmt.Errorf("core: O-estimate: %w", err)
	}
	res.Value = value
	return res, nil
}

// oeScanWords is the plain (non-propagated) O-estimate kernel: for every
// 64-item word, crackable = compliant & mask, and the reciprocal outdegrees
// of the counted (crackable & interest) bits are summed in ascending item
// order. comp must have its tail bits clear, which bounds every derived word
// by the domain; crack is overwritten. One operation per item is charged,
// 64 at a time, keeping op totals comparable to the per-item loop.
func oeScanWords(bud *budget.Budget, n int, comp, maskW, intW, crack []uint64, inv []float64) (float64, error) {
	value := 0.0
	for k, w := range comp {
		width := int64(n - k<<6)
		if width > 64 {
			width = 64
		}
		if err := bud.Charge(width); err != nil {
			return 0, err
		}
		if maskW != nil {
			w &= maskW[k]
		}
		crack[k] = w
		if intW != nil {
			w &= intW[k]
		}
		base := k << 6
		for w != 0 {
			value += inv[base+bits.TrailingZeros64(w)]
			w &= w - 1
		}
	}
	return value, nil
}

// oePropagatedWords is the post-propagation O-estimate kernel. The forced
// pairs are first packed into three word vectors — forced items, consumed
// anonymized items, and crack-forced items (fp.Anon == fp.Item, a subset of
// the forced items) — and then one pass classifies 64 items per word:
//
//	addOne = crackForced & mask            // cracked in every mapping: +1
//	addInv = comp &^ (forced|consumed) & mask  // still open: +1/O_x
//
// exactly the four-way switch of the historical per-item loop. Both kinds
// are crackable; only interest-counted bits contribute to the value, visited
// in ascending item order so the mixed +1/+1/O_x accumulation keeps its
// historical float ordering.
func oePropagatedWords(bud *budget.Budget, n int, comp, maskW, intW, crack []uint64, outdeg []int, forcedPairs []bipartite.ForcedPair) (float64, error) {
	nw := bitset.WordsFor(n)
	forced := make([]uint64, nw)
	consumed := make([]uint64, nw)
	crackF := make([]uint64, nw)
	for _, fp := range forcedPairs {
		forced[fp.Item>>6] |= 1 << uint(fp.Item&63)
		consumed[fp.Anon>>6] |= 1 << uint(fp.Anon&63)
		if fp.Anon == fp.Item {
			crackF[fp.Item>>6] |= 1 << uint(fp.Item&63)
		}
	}
	value := 0.0
	for k := 0; k < nw; k++ {
		width := int64(n - k<<6)
		if width > 64 {
			width = 64
		}
		if err := bud.Charge(width); err != nil {
			return 0, err
		}
		m := ^uint64(0)
		if maskW != nil {
			m = maskW[k]
		}
		addOne := crackF[k] & m
		addInv := comp[k] &^ (forced[k] | consumed[k]) & m
		crack[k] = addOne | addInv
		if intW != nil {
			addOne &= intW[k]
			addInv &= intW[k]
		}
		base := k << 6
		for u := addOne | addInv; u != 0; u &= u - 1 {
			low := u & (^u + 1)
			if addOne&low != 0 {
				value++ // cracked in every consistent mapping
			} else {
				value += 1 / float64(outdeg[base+bits.TrailingZeros64(u)])
			}
		}
	}
	return value, nil
}
