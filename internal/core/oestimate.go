package core

import (
	"context"
	"fmt"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/budget"
	"repro/internal/dataset"
)

// OEOptions configures the O-estimate computation.
type OEOptions struct {
	// Propagate applies the degree-1 propagation of Figure 7 before reading
	// outdegrees, as Section 5.2 recommends. Propagation can prove the graph
	// infeasible for (very) non-compliant belief functions; OEstimate then
	// returns bipartite.ErrInfeasible.
	Propagate bool
	// Mask, when non-nil, restricts the summation to the marked items. The
	// Assess-Risk recipe uses it to evaluate α-compliant belief functions
	// without perturbing intervals: excluded items are treated as
	// non-compliant and contribute nothing (Section 5.3).
	Mask []bool
	// Interest, when non-nil, counts only the marked items in the estimate —
	// the owner's "items of interest" of Lemmas 2 and 4 (e.g. only the
	// frequent items, or the high-margin products). Unlike Mask, uninterest-
	// ing items still participate in the graph and in propagation; they are
	// merely not counted.
	Interest []bool
}

// OEResult carries the O-estimate and the evidence behind it.
type OEResult struct {
	Value     float64 // OE(β, D) = Σ 1/O_x over crackable items
	Outdeg    []int   // per-item outdegree used in the sum (post-propagation when enabled)
	Crackable []bool  // items that contributed (compliant, unmasked, still reachable)
	Forced    int     // propagation-forced edges (0 without propagation)
	Rounds    int     // propagation rounds (0 without propagation)
}

// Fraction returns the O-estimate as a fraction of the domain size, the unit
// of Figure 11's y-axis.
func (r *OEResult) Fraction() float64 {
	if len(r.Outdeg) == 0 {
		return 0
	}
	return r.Value / float64(len(r.Outdeg))
}

// OEstimate computes the O-estimate heuristic of Figure 5:
//
//	OE(β, D) = Σ_{x ∈ I_C} 1 / O_x
//
// where O_x is the outdegree of item x in the consistency graph and I_C the
// set of items on which β is compliant (all of I for compliant functions).
// Non-compliant items cannot be cracked by any consistent mapping and
// contribute zero (Section 5.3). Runs in O(n log n) over frequency groups.
func OEstimate(bf *belief.Function, ft *dataset.FrequencyTable, opts OEOptions) (*OEResult, error) {
	return OEstimateCtx(context.Background(), bf, ft, opts)
}

// OEstimateCtx is OEstimate under a work budget. The estimate runs in
// O(n log n) and essentially always completes — it is the floor of the
// degradation cascade — but the budget checks let a canceled context abort
// even this path promptly on very large domains.
func OEstimateCtx(ctx context.Context, bf *belief.Function, ft *dataset.FrequencyTable, opts OEOptions) (*OEResult, error) {
	if opts.Mask != nil && len(opts.Mask) != ft.NItems {
		return nil, fmt.Errorf("core: mask has %d entries, want %d", len(opts.Mask), ft.NItems)
	}
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		return nil, err
	}
	return OEstimateGraphCtx(ctx, g, opts)
}

// OEstimateGraph computes the O-estimate directly from a prebuilt graph.
// This is the "second level" generalization the paper highlights in
// Section 8.1: once a bipartite consistency graph is set up — by belief
// functions over frequencies or by any other kind of partial information —
// the estimate applies unchanged.
func OEstimateGraph(g *bipartite.Graph, opts OEOptions) (*OEResult, error) {
	return OEstimateGraphCtx(context.Background(), g, opts)
}

// OEstimateGraphCtx is OEstimateGraph under a work budget: one operation per
// item summed, checked once per budget window.
func OEstimateGraphCtx(ctx context.Context, g *bipartite.Graph, opts OEOptions) (*OEResult, error) {
	n := g.Items()
	if opts.Mask != nil && len(opts.Mask) != n {
		return nil, fmt.Errorf("core: mask has %d entries, want %d", len(opts.Mask), n)
	}
	if opts.Interest != nil && len(opts.Interest) != n {
		return nil, fmt.Errorf("core: interest mask has %d entries, want %d", len(opts.Interest), n)
	}
	bud := budget.New(ctx, budget.Config{CheckEvery: 4096})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	counted := func(x int) bool { return opts.Interest == nil || opts.Interest[x] }
	res := &OEResult{Crackable: make([]bool, n)}

	if !opts.Propagate {
		res.Outdeg = g.Outdegrees()
		for x := 0; x < n; x++ {
			if err := bud.Charge(1); err != nil {
				return nil, fmt.Errorf("core: O-estimate: %w", err)
			}
			if !g.Compliant(x) || (opts.Mask != nil && !opts.Mask[x]) {
				continue
			}
			res.Crackable[x] = true
			if counted(x) {
				res.Value += 1 / float64(res.Outdeg[x])
			}
		}
		return res, nil
	}

	p, err := g.PropagateCtx(ctx)
	if err != nil {
		return nil, err
	}
	if err := bud.Charge(int64(n)); err != nil { // propagation visits every item at least once
		return nil, fmt.Errorf("core: O-estimate propagation: %w", err)
	}
	res.Outdeg = p.Outdeg
	res.Forced = len(p.Forced)
	res.Rounds = p.Rounds
	// An anonymized item consumed by a forced pair can no longer crack its
	// own original unless the pair *is* the crack.
	forcedItem := make([]bool, n)
	crackForced := make([]bool, n)
	anonConsumed := make([]bool, n)
	for _, fp := range p.Forced {
		forcedItem[fp.Item] = true
		anonConsumed[fp.Anon] = true
		if fp.Anon == fp.Item {
			crackForced[fp.Item] = true
		}
	}
	for x := 0; x < n; x++ {
		if err := bud.Charge(1); err != nil {
			return nil, fmt.Errorf("core: O-estimate: %w", err)
		}
		if opts.Mask != nil && !opts.Mask[x] {
			continue
		}
		switch {
		case crackForced[x]:
			res.Crackable[x] = true
			if counted(x) {
				res.Value++ // cracked in every consistent mapping
			}
		case forcedItem[x]:
			// Forced to a different anonymized item: never cracked.
		case !g.Compliant(x) || anonConsumed[x]:
			// Its own twin is unreachable.
		default:
			res.Crackable[x] = true
			if counted(x) {
				res.Value += 1 / float64(p.Outdeg[x])
			}
		}
	}
	return res, nil
}
