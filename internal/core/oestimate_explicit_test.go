package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/dataset"
)

func TestOEstimateExplicitMatchesCompact(t *testing.T) {
	// On interval-structured graphs the explicit-graph estimate must agree
	// with the compact one, with and without propagation, masks and interest.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		m := 10 + rng.Intn(40)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft := mustTable(t, m, counts)
		bf := belief.RandomCompliant(ft.Frequencies(), rng.Float64()*0.3, rng)
		g, err := bipartite.Build(bf, dataset.GroupItems(ft))
		if err != nil {
			t.Fatal(err)
		}
		e := g.ToExplicit()
		var mask, interest []bool
		if rng.Intn(2) == 0 {
			mask = make([]bool, n)
			for i := range mask {
				mask[i] = rng.Intn(2) == 0
			}
		}
		if rng.Intn(2) == 0 {
			interest = make([]bool, n)
			for i := range interest {
				interest[i] = rng.Intn(2) == 0
			}
		}
		for _, propagate := range []bool{false, true} {
			opts := OEOptions{Propagate: propagate}
			if mask != nil {
				opts.Mask = bitset.FromBools(mask)
			}
			if interest != nil {
				opts.Interest = bitset.FromBools(interest)
			}
			compact, errC := OEstimateGraph(g, opts)
			explicit, errE := OEstimateExplicit(e, opts)
			if (errC == nil) != (errE == nil) {
				t.Fatalf("trial %d (prop=%v): error mismatch %v vs %v", trial, propagate, errC, errE)
			}
			if errC != nil {
				continue
			}
			if math.Abs(compact.Value-explicit.Value) > 1e-9 {
				t.Fatalf("trial %d (prop=%v): compact %v vs explicit %v",
					trial, propagate, compact.Value, explicit.Value)
			}
			if compact.Forced != explicit.Forced {
				t.Fatalf("trial %d (prop=%v): forced %d vs %d",
					trial, propagate, compact.Forced, explicit.Forced)
			}
		}
	}
}

func TestOEstimateExplicitFigure6b(t *testing.T) {
	// Figure 6(b): the irrelevant edge (2',3) inflates the plain estimate
	// (O_3 counts it) but not the exact value.
	e := bipartite.MustExplicit(4, [][]int{{0, 1}, {0, 1, 2}, {2, 3}, {2, 3}})
	res, err := OEstimateExplicit(e, OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 + 0.5 + 1.0/3 + 0.5
	if math.Abs(res.Value-want) > 1e-12 {
		t.Errorf("OE = %v, want %v (counting the irrelevant edge)", res.Value, want)
	}
}

func TestOEstimateExplicitValidation(t *testing.T) {
	e := bipartite.Complete(3)
	if _, err := OEstimateExplicit(e, OEOptions{Mask: bitset.New(1)}); err == nil {
		t.Error("short mask: want error")
	}
	if _, err := OEstimateExplicit(e, OEOptions{Interest: bitset.New(1)}); err == nil {
		t.Error("short interest: want error")
	}
	infeasible := bipartite.MustExplicit(2, [][]int{{1}, {1}})
	if _, err := OEstimateExplicit(infeasible, OEOptions{Propagate: true}); err == nil {
		t.Error("infeasible + propagate: want error")
	}
	// Without propagation the per-item form still evaluates: item 1's twin
	// is reachable (indegree 2), item 0's is not.
	res, err := OEstimateExplicit(infeasible, OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0.5 {
		t.Errorf("per-item OE = %v, want 0.5", res.Value)
	}
}

func TestOEResultFractionEmpty(t *testing.T) {
	r := &OEResult{}
	if r.Fraction() != 0 {
		t.Errorf("empty Fraction = %v", r.Fraction())
	}
}
