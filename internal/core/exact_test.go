package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/dataset"
)

func TestExactExpectedCracksComplete(t *testing.T) {
	// Lemma 1 via the direct method: complete graph -> E(X) = 1.
	for n := 1; n <= 7; n++ {
		got, err := ExactExpectedCracks(bipartite.Complete(n))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1) > 1e-9 {
			t.Errorf("n=%d: E(X) = %v, want 1", n, got)
		}
	}
}

func TestExactExpectedCracksPointValuedGroups(t *testing.T) {
	// Lemma 3 via the direct method on BigMart: three groups -> E(X) = 3.
	ft := bigMartTable(t)
	g, err := bipartite.Build(belief.PointValued(ft.Frequencies()), dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExactExpectedCracks(g.ToExplicit())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("E(X) = %v, want 3", got)
	}
}

func TestChainExactMatchesPermanents(t *testing.T) {
	// Lemma 6 must agree with the permanent-based direct method on every
	// realizable small chain — the strongest validation of the closed form.
	rng := rand.New(rand.NewSource(29))
	tested := 0
	for trial := 0; trial < 60; trial++ {
		spec := randomChain(rng, 3, 4)
		if spec.Items() > 9 {
			continue
		}
		counts := make([]int, len(spec.GroupSizes))
		for i := range counts {
			counts[i] = 3 + 4*i
		}
		ft, bf, err := spec.Realize(30, counts)
		if err != nil {
			t.Fatal(err)
		}
		g, err := bipartite.Build(bf, dataset.GroupItems(ft))
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactExpectedCracks(g.ToExplicit())
		if err != nil {
			t.Fatal(err)
		}
		closed, err := spec.ExpectedCracks()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-closed) > 1e-9 {
			t.Fatalf("trial %d: permanents say %v, Lemma 6 says %v (spec %+v)",
				trial, exact, closed, spec)
		}
		tested++
	}
	if tested < 20 {
		t.Errorf("only %d chains tested, want >= 20", tested)
	}
}

func TestFigure4aExactViaPermanents(t *testing.T) {
	spec := Figure4aChain()
	ft, bf, err := spec.Realize(10, []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExactExpectedCracks(g.ToExplicit())
	if err != nil {
		t.Fatal(err)
	}
	if want := 74.0 / 45.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("E(X) = %v, want 74/45 = %v", got, want)
	}
}

func TestCrackDistributionComplete(t *testing.T) {
	// On K_3, P(X=k) follows derangement counts: P(0)=2/6, P(1)=3/6, P(3)=1/6.
	dist, err := CrackDistribution(bipartite.Complete(3))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.0 / 6, 3.0 / 6, 0, 1.0 / 6}
	for k := range want {
		if math.Abs(dist[k]-want[k]) > 1e-12 {
			t.Errorf("P(X=%d) = %v, want %v", k, dist[k], want[k])
		}
	}
}

func TestCrackDistributionDirectMatchesEnumeration(t *testing.T) {
	// The paper's Section 4.1 subset-permanent formula must equal the
	// enumeration histogram.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		e := bipartite.RandomExplicit(n, 0.6, rng)
		dist, err := CrackDistribution(e)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= n; k++ {
			direct, err := CrackDistributionDirect(e, k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(direct-dist[k]) > 1e-9 {
				t.Fatalf("trial %d: P(X=%d) direct %v, enumeration %v", trial, k, direct, dist[k])
			}
		}
	}
}

func TestExpectedFromDistribution(t *testing.T) {
	// E(X) = Σ k·P(X=k) must match the minor-based expectation.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		e := bipartite.RandomExplicit(n, 0.5, rng)
		dist, err := CrackDistribution(e)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for k, p := range dist {
			want += float64(k) * p
		}
		got, err := ExactExpectedCracks(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: E = %v via minors, %v via distribution", trial, got, want)
		}
	}
}

func TestCrackDistributionInfeasible(t *testing.T) {
	e := bipartite.MustExplicit(2, [][]int{{1}, {1}})
	if _, err := CrackDistribution(e); err == nil {
		t.Error("CrackDistribution on infeasible graph: want error")
	}
	if _, err := CrackDistributionDirect(e, 0); err == nil {
		t.Error("CrackDistributionDirect on infeasible graph: want error")
	}
	if _, err := CrackDistributionDirect(bipartite.Complete(2), 5); err == nil {
		t.Error("k out of range: want error")
	}
}

// TestOEstimateTracksExact quantifies the heuristic's accuracy on random
// compliant graphs: OE should stay within a modest relative error of the
// permanent-exact expectation (the paper reports it "practically accurate").
func TestOEstimateTracksExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var worst float64
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6)
		m := 20
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft := mustTable(t, m, counts)
		bf := belief.RandomCompliant(ft.Frequencies(), 0.15, rng)
		g, err := bipartite.Build(bf, dataset.GroupItems(ft))
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactExpectedCracks(g.ToExplicit())
		if err != nil {
			t.Fatal(err)
		}
		res, err := OEstimate(bf, ft, OEOptions{Propagate: true})
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(res.Value-exact) / math.Max(exact, 1)
		if relErr > worst {
			worst = relErr
		}
	}
	if worst > 0.5 {
		t.Errorf("worst relative error %v, want <= 0.5 on random compliant graphs", worst)
	}
}
