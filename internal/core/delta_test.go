package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/dataset"
)

func randomDeltaDiff(rng *rand.Rand, ft *dataset.FrequencyTable) *dataset.CountsDiff {
	d := &dataset.CountsDiff{}
	if rng.Intn(2) == 0 {
		d.DTransactions = 1 + rng.Intn(5)
	}
	newM := ft.NTransactions + d.DTransactions
	k := 1 + rng.Intn(ft.NItems)
	for x := 0; x < ft.NItems && len(d.Items) < k; x++ {
		if rng.Intn(2) == 1 {
			continue
		}
		c := rng.Intn(newM + 1)
		if c == ft.Counts[x] {
			c = (c + 1) % (newM + 1)
		}
		d.Items = append(d.Items, x)
		d.Deltas = append(d.Deltas, c-ft.Counts[x])
	}
	return d
}

// TestOEDeltaMatchesFull is the O-estimate half of the delta-equivalence
// property: across chains of random diffs, a restricted refresh over the
// changed list bipartite.Rebin reports produces an OEResult bit-for-bit
// identical — Value compared with ==, not a tolerance — to a full
// OEstimateGraphCtx pass over the same patched graph.
func TestOEDeltaMatchesFull(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 250; trial++ {
		n := 2 + rng.Intn(10)
		m := 6 + rng.Intn(25)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft, err := dataset.NewTable(m, counts)
		if err != nil {
			t.Fatal(err)
		}
		gr := dataset.GroupItems(ft)
		deltaMed := gr.MedianGap()
		bf := belief.UniformWidth(ft.Frequencies(), deltaMed)
		g, err := bipartite.Build(bf, gr)
		if err != nil {
			t.Fatal(err)
		}
		oe, err := NewOEDeltaCtx(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		steps := 1 + rng.Intn(4)
		for step := 0; step < steps; step++ {
			d := randomDeltaDiff(rng, ft)
			if err := ft.ApplyDiff(d); err != nil {
				t.Fatalf("trial %d step %d: ApplyDiff: %v", trial, step, err)
			}
			postGr, rd, err := dataset.ApplyDiffGrouping(gr, ft, d)
			if err != nil {
				t.Fatalf("trial %d step %d: ApplyDiffGrouping: %v", trial, step, err)
			}
			postMed := postGr.MedianGap()
			postBF := belief.UniformWidth(ft.Frequencies(), postMed)
			changed, err := g.Rebin(postBF, bipartite.RebinUpdate{
				Grouping:         postGr,
				Delta:            rd,
				ChangedIntervals: rd.Moved,
				AllIntervals:     postMed != deltaMed || d.DTransactions != 0,
			})
			if err != nil {
				t.Fatalf("trial %d step %d: Rebin: %v", trial, step, err)
			}
			got, err := oe.RefreshCtx(ctx, changed)
			if err != nil {
				t.Fatalf("trial %d step %d: RefreshCtx: %v", trial, step, err)
			}
			want, err := OEstimateGraphCtx(ctx, g, OEOptions{})
			if err != nil {
				t.Fatalf("trial %d step %d: OEstimateGraphCtx: %v", trial, step, err)
			}
			if got.Value != want.Value { // bit-exact, no tolerance
				t.Fatalf("trial %d step %d: delta OE %v != full OE %v", trial, step, got.Value, want.Value)
			}
			if !reflect.DeepEqual(got.Outdeg, want.Outdeg) {
				t.Fatalf("trial %d step %d: Outdeg diverged\n got %v\nwant %v", trial, step, got.Outdeg, want.Outdeg)
			}
			if !reflect.DeepEqual(got.Crackable, want.Crackable) {
				t.Fatalf("trial %d step %d: Crackable diverged\n got %v\nwant %v", trial, step, got.Crackable, want.Crackable)
			}
			gr, deltaMed = postGr, postMed
		}
	}
}

func TestOEDeltaRejectsBadChangedList(t *testing.T) {
	ctx := context.Background()
	ft, err := dataset.NewTable(10, []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	g, err := bipartite.Build(belief.Ignorant(3), dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	oe, err := NewOEDeltaCtx(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oe.RefreshCtx(ctx, []int{2, 1}); err == nil {
		t.Error("unsorted changed list: want error")
	}
	if _, err := oe.RefreshCtx(ctx, []int{3}); err == nil {
		t.Error("out-of-range changed item: want error")
	}
	if _, err := oe.RefreshCtx(ctx, nil); err != nil {
		t.Errorf("empty changed list should refresh cleanly: %v", err)
	}
}
