package core

// The lemma oracle: on domains small enough for the permanent-based direct
// method (n ≤ 7), the closed forms of Lemmas 1–6 and the O-estimate must
// agree exactly with E(X) computed from the matching permanents. This is the
// safety net under the parallel engine — any change that silently shifts the
// numbers breaks these identities before it breaks a tolerance test.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/dataset"
)

const oracleTol = 1e-9

// buildExplicit materializes the consistency graph of (bf, ft) in explicit
// form, with item x's true anonymized twin on the diagonal.
func buildExplicit(t *testing.T, bf *belief.Function, ft *dataset.FrequencyTable) *bipartite.Explicit {
	t.Helper()
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	return g.ToExplicit()
}

// randomCounts draws n support counts out of m transactions from a small
// value pool, so ties (shared frequency groups) occur with high probability.
func randomCounts(rng *rand.Rand, n, m int) []int {
	pool := make([]int, 1+rng.Intn(n))
	for i := range pool {
		pool[i] = rng.Intn(m + 1)
	}
	counts := make([]int, n)
	for i := range counts {
		counts[i] = pool[rng.Intn(len(pool))]
	}
	return counts
}

// randomMask marks each item independently with probability 1/2.
func randomMask(rng *rand.Rand, n int) []bool {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = rng.Intn(2) == 0
	}
	return mask
}

// exactSubset sums the diagonal edge-inclusion probabilities over the marked
// items: the exact expected number of cracks among the items of interest.
func exactSubset(t *testing.T, e *bipartite.Explicit, interest []bool) float64 {
	t.Helper()
	probs, err := e.EdgeInclusionProbability()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for x := 0; x < e.N; x++ {
		if interest == nil || interest[x] {
			sum += probs[x][x]
		}
	}
	return sum
}

// TestOracleLemma1Ignorant: under the ignorant belief function the exact
// expectation is 1 for every domain, and the O-estimate reproduces it exactly
// (every outdegree is n).
func TestOracleLemma1Ignorant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 7; n++ {
		for trial := 0; trial < 5; trial++ {
			ft, err := dataset.NewTable(40, randomCounts(rng, n, 40))
			if err != nil {
				t.Fatal(err)
			}
			bf := belief.Ignorant(n)
			e := buildExplicit(t, bf, ft)
			exact, err := ExactExpectedCracks(e)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(exact-1) > oracleTol {
				t.Errorf("n=%d: exact E(X) = %v, Lemma 1 says 1", n, exact)
			}
			if got := ExpectedCracksIgnorant(n); got != 1 {
				t.Errorf("ExpectedCracksIgnorant(%d) = %v", n, got)
			}
			oe, err := OEstimate(bf, ft, OEOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(oe.Value-1) > oracleTol {
				t.Errorf("n=%d: OE = %v, want exactly 1 on the ignorant shape", n, oe.Value)
			}
		}
	}
}

// TestOracleLemma2IgnorantSubset: among n₁ items of interest the ignorant
// expectation is n₁/n, both exactly and through the masked O-estimate.
func TestOracleLemma2IgnorantSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for n := 2; n <= 7; n++ {
		for trial := 0; trial < 5; trial++ {
			ft, err := dataset.NewTable(40, randomCounts(rng, n, 40))
			if err != nil {
				t.Fatal(err)
			}
			bf := belief.Ignorant(n)
			interest := randomMask(rng, n)
			n1 := 0
			for _, b := range interest {
				if b {
					n1++
				}
			}
			want, err := ExpectedCracksIgnorantSubset(n, n1)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(want-float64(n1)/float64(n)) > oracleTol {
				t.Fatalf("closed form drifted: %v vs %v", want, float64(n1)/float64(n))
			}
			e := buildExplicit(t, bf, ft)
			if got := exactSubset(t, e, interest); math.Abs(got-want) > oracleTol {
				t.Errorf("n=%d n1=%d: exact subset E(X) = %v, Lemma 2 says %v", n, n1, got, want)
			}
			oe, err := OEstimate(bf, ft, OEOptions{Interest: bitset.FromBools(interest)})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(oe.Value-want) > oracleTol {
				t.Errorf("n=%d n1=%d: OE = %v, want exactly %v on the ignorant shape", n, n1, oe.Value, want)
			}
		}
	}
}

// TestOracleLemma3PointValued: the compliant point-valued belief function
// cracks exactly g items in expectation — one per frequency group — and the
// O-estimate is exact on that shape too.
func TestOracleLemma3PointValued(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for n := 1; n <= 7; n++ {
		for trial := 0; trial < 5; trial++ {
			ft, err := dataset.NewTable(40, randomCounts(rng, n, 40))
			if err != nil {
				t.Fatal(err)
			}
			gr := dataset.GroupItems(ft)
			bf := belief.PointValued(ft.Frequencies())
			want := ExpectedCracksPointValued(gr)
			if want != float64(gr.NumGroups()) {
				t.Fatalf("closed form drifted: %v vs %d groups", want, gr.NumGroups())
			}
			e := buildExplicit(t, bf, ft)
			exact, err := ExactExpectedCracks(e)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(exact-want) > oracleTol {
				t.Errorf("n=%d g=%d: exact E(X) = %v, Lemma 3 says %v", n, gr.NumGroups(), exact, want)
			}
			oe, err := OEstimate(bf, ft, OEOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(oe.Value-want) > oracleTol {
				t.Errorf("n=%d: OE = %v, want exactly %v on the point-valued shape", n, oe.Value, want)
			}
		}
	}
}

// TestOracleLemma4PointValuedSubset: with items of interest, the point-valued
// expectation is Σᵢ cᵢ/nᵢ over frequency groups.
func TestOracleLemma4PointValuedSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for n := 2; n <= 7; n++ {
		for trial := 0; trial < 5; trial++ {
			ft, err := dataset.NewTable(40, randomCounts(rng, n, 40))
			if err != nil {
				t.Fatal(err)
			}
			gr := dataset.GroupItems(ft)
			bf := belief.PointValued(ft.Frequencies())
			interest := randomMask(rng, n)
			want, err := ExpectedCracksPointValuedSubset(gr, interest)
			if err != nil {
				t.Fatal(err)
			}
			e := buildExplicit(t, bf, ft)
			if got := exactSubset(t, e, interest); math.Abs(got-want) > oracleTol {
				t.Errorf("n=%d: exact subset E(X) = %v, Lemma 4 says %v", n, got, want)
			}
			oe, err := OEstimate(bf, ft, OEOptions{Interest: bitset.FromBools(interest)})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(oe.Value-want) > oracleTol {
				t.Errorf("n=%d: OE = %v, want exactly %v on the point-valued shape", n, oe.Value, want)
			}
		}
	}
}

// smallChains enumerates every structurally valid chain over at most 7 items
// with k = 2 and k = 3 frequency groups.
func smallChains() []ChainSpec {
	var specs []ChainSpec
	// k = 2: n1 + n2 ≤ 7, splits a1 = n1 − e1 ∈ [0, s1], b1 = s1 − a1 = n2 − e2.
	for n1 := 1; n1 <= 6; n1++ {
		for n2 := 1; n1+n2 <= 7; n2++ {
			for e1 := 0; e1 <= n1; e1++ {
				for e2 := 0; e2 <= n2; e2++ {
					s1 := n1 + n2 - e1 - e2
					spec := ChainSpec{GroupSizes: []int{n1, n2}, Exclusive: []int{e1, e2}, Shared: []int{s1}}
					if s1 >= 0 && spec.Validate() == nil {
						specs = append(specs, spec)
					}
				}
			}
		}
	}
	// k = 3: small exhaustive sweep.
	for n1 := 1; n1 <= 3; n1++ {
		for n2 := 1; n2 <= 3; n2++ {
			for n3 := 1; n1+n2+n3 <= 7; n3++ {
				for e1 := 0; e1 <= n1; e1++ {
					for e2 := 0; e2 <= n2; e2++ {
						for e3 := 0; e3 <= n3; e3++ {
							for s1 := 0; s1 <= n1+n2; s1++ {
								s2 := n1 + n2 + n3 - e1 - e2 - e3 - s1
								spec := ChainSpec{
									GroupSizes: []int{n1, n2, n3},
									Exclusive:  []int{e1, e2, e3},
									Shared:     []int{s1, s2},
								}
								if s2 >= 0 && spec.Validate() == nil {
									specs = append(specs, spec)
								}
							}
						}
					}
				}
			}
		}
	}
	return specs
}

// TestOracleLemmas56Chain: for every small valid chain, the Lemma 5/6 closed
// form matches the permanent-based exact expectation on the realized graph,
// and the generic graph O-estimate matches the §5.2 closed-form OE.
func TestOracleLemmas56Chain(t *testing.T) {
	specs := smallChains()
	if len(specs) < 50 {
		t.Fatalf("only %d small chains enumerated; the sweep is broken", len(specs))
	}
	m := 100
	for _, spec := range specs {
		k := len(spec.GroupSizes)
		counts := make([]int, k)
		for i := range counts {
			counts[i] = 10 + 20*i
		}
		ft, bf, err := spec.Realize(m, counts)
		if err != nil {
			t.Fatalf("%+v: realize: %v", spec, err)
		}
		want, err := spec.ExpectedCracks()
		if err != nil {
			t.Fatal(err)
		}
		e := buildExplicit(t, bf, ft)
		exact, err := ExactExpectedCracks(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-want) > oracleTol {
			t.Errorf("%+v: exact E(X) = %v, Lemma 5/6 says %v", spec, exact, want)
		}
		wantOE, err := spec.OEstimate()
		if err != nil {
			t.Fatal(err)
		}
		oe, err := OEstimate(bf, ft, OEOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(oe.Value-wantOE) > oracleTol {
			t.Errorf("%+v: graph OE = %v, closed form says %v", spec, oe.Value, wantOE)
		}
	}
}

// TestOracleFigure4a pins the paper's worked example: E(X) = 74/45 and
// OE = 197/120.
func TestOracleFigure4a(t *testing.T) {
	spec := Figure4aChain()
	ft, bf, err := spec.Realize(100, []int{30, 70})
	if err != nil {
		t.Fatal(err)
	}
	e := buildExplicit(t, bf, ft)
	exact, err := ExactExpectedCracks(e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-74.0/45) > oracleTol {
		t.Errorf("Figure 4(a): exact E(X) = %v, want 74/45", exact)
	}
	oe, err := OEstimate(bf, ft, OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(oe.Value-197.0/120) > oracleTol {
		t.Errorf("Figure 4(a): OE = %v, want 197/120", oe.Value)
	}
}
