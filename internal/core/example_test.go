package core_test

import (
	"fmt"

	"repro/internal/belief"
	"repro/internal/core"
	"repro/internal/dataset"
)

// The paper's Figure 4(a) chain: exact expectation vs the O-estimate.
func ExampleChainSpec() {
	chain := core.Figure4aChain()
	exact, _ := chain.ExpectedCracks()
	oe, _ := chain.OEstimate()
	_, pct, _ := chain.Delta()
	fmt.Printf("exact %.4f  O-estimate %.4f  error %.2f%%\n", exact, oe, pct)
	// Output:
	// exact 1.6444  O-estimate 1.6417  error 0.17%
}

// The O-estimate of Figure 5 on the BigMart example under belief function h.
func ExampleOEstimate() {
	ft, _ := dataset.NewTable(10, []int{5, 4, 5, 5, 3, 5})
	h := belief.MustNew([]belief.Interval{
		{Lo: 0, Hi: 1}, {Lo: 0.4, Hi: 0.5}, {Lo: 0.5, Hi: 0.5},
		{Lo: 0.4, Hi: 0.6}, {Lo: 0.1, Hi: 0.4}, {Lo: 0.5, Hi: 0.5},
	})
	res, _ := core.OEstimate(h, ft, core.OEOptions{})
	fmt.Printf("OE(h, BigMart) = %.4f expected cracks\n", res.Value)
	// Output:
	// OE(h, BigMart) = 1.5667 expected cracks
}

// Lemma 3: with exact frequency knowledge, one expected crack per group.
func ExampleExpectedCracksPointValued() {
	ft, _ := dataset.NewTable(10, []int{5, 4, 5, 5, 3, 5})
	fmt.Println(core.ExpectedCracksPointValued(dataset.GroupItems(ft)))
	// Output:
	// 3
}
