package core

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/budget"
)

// OEstimateExplicit computes the O-estimate on an explicit bipartite graph —
// the Section 8.1 generalization: whenever a space of consistent crack
// mappings has been set up as a bipartite graph, by whatever kind of partial
// information, OE = Σ 1/O_x over the items whose own anonymized counterpart
// remains reachable. Options behave as in OEstimateGraph.
func OEstimateExplicit(e *bipartite.Explicit, opts OEOptions) (*OEResult, error) {
	return OEstimateExplicitCtx(context.Background(), e, opts)
}

// OEstimateExplicitCtx is OEstimateExplicit under a work budget, mirroring
// OEstimateGraphCtx: one operation per edge scanned plus the propagation's
// own charges. The summation runs on the same word-parallel kernels as the
// interval-structured path; only the compliance words (here the adjacency
// diagonal) and the reciprocals (computed from the scanned indegrees) are
// sourced differently.
func OEstimateExplicitCtx(ctx context.Context, e *bipartite.Explicit, opts OEOptions) (*OEResult, error) {
	n := e.N
	if err := checkMask("mask", opts.Mask, n); err != nil {
		return nil, err
	}
	if err := checkMask("interest mask", opts.Interest, n); err != nil {
		return nil, err
	}
	bud := budget.New(ctx, budget.Config{CheckEvery: 4096})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	var maskW, intW []uint64
	if !opts.Mask.IsZero() {
		maskW = opts.Mask.Words()
	}
	if !opts.Interest.IsZero() {
		intW = opts.Interest.Words()
	}
	res := &OEResult{Crackable: bitset.New(n)}

	indeg := make([]int, n)
	diag := bitset.New(n)
	diagW := diag.Words()
	for w := 0; w < n; w++ {
		if err := bud.Charge(int64(len(e.Adj[w]) + 1)); err != nil {
			return nil, fmt.Errorf("core: explicit O-estimate: %w", err)
		}
		for _, x := range e.Adj[w] {
			indeg[x]++
			if w == x {
				diagW[x>>6] |= 1 << uint(x&63)
			}
		}
	}

	if !opts.Propagate {
		res.Outdeg = indeg
		// Reciprocals of the freshly scanned indegrees, restricted to the
		// diagonal (diag implies indeg >= 1): the same divisions the per-item
		// loop performed, hoisted out of the masked scan.
		inv := make([]float64, n)
		for k, w := range diagW {
			if err := bud.Check(); err != nil {
				return nil, fmt.Errorf("core: explicit O-estimate: %w", err)
			}
			base := k << 6
			for ; w != 0; w &= w - 1 {
				x := base + bits.TrailingZeros64(w)
				inv[x] = 1 / float64(indeg[x])
			}
		}
		value, err := oeScanWords(bud, n, diagW, maskW, intW, res.Crackable.Words(), inv)
		if err != nil {
			return nil, fmt.Errorf("core: explicit O-estimate: %w", err)
		}
		res.Value = value
		return res, nil
	}

	p, err := e.PropagateCtx(ctx)
	if err != nil {
		return nil, err
	}
	res.Outdeg = p.Outdeg
	res.Forced = len(p.Forced)
	res.Rounds = p.Rounds
	value, err := oePropagatedWords(bud, n, diagW, maskW, intW, res.Crackable.Words(), p.Outdeg, p.Forced)
	if err != nil {
		return nil, fmt.Errorf("core: explicit O-estimate: %w", err)
	}
	res.Value = value
	return res, nil
}
