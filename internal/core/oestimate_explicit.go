package core

import (
	"context"
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/budget"
)

// OEstimateExplicit computes the O-estimate on an explicit bipartite graph —
// the Section 8.1 generalization: whenever a space of consistent crack
// mappings has been set up as a bipartite graph, by whatever kind of partial
// information, OE = Σ 1/O_x over the items whose own anonymized counterpart
// remains reachable. Options behave as in OEstimateGraph.
func OEstimateExplicit(e *bipartite.Explicit, opts OEOptions) (*OEResult, error) {
	return OEstimateExplicitCtx(context.Background(), e, opts)
}

// OEstimateExplicitCtx is OEstimateExplicit under a work budget, mirroring
// OEstimateGraphCtx: one operation per edge scanned plus the propagation's
// own charges.
func OEstimateExplicitCtx(ctx context.Context, e *bipartite.Explicit, opts OEOptions) (*OEResult, error) {
	n := e.N
	if opts.Mask != nil && len(opts.Mask) != n {
		return nil, fmt.Errorf("core: mask has %d entries, want %d", len(opts.Mask), n)
	}
	if opts.Interest != nil && len(opts.Interest) != n {
		return nil, fmt.Errorf("core: interest mask has %d entries, want %d", len(opts.Interest), n)
	}
	counted := func(x int) bool { return opts.Interest == nil || opts.Interest[x] }
	bud := budget.New(ctx, budget.Config{CheckEvery: 4096})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	res := &OEResult{Crackable: make([]bool, n)}

	indeg := make([]int, n)
	diag := make([]bool, n)
	for w := 0; w < n; w++ {
		if err := bud.Charge(int64(len(e.Adj[w]) + 1)); err != nil {
			return nil, fmt.Errorf("core: explicit O-estimate: %w", err)
		}
		for _, x := range e.Adj[w] {
			indeg[x]++
			if w == x {
				diag[x] = true
			}
		}
	}

	if !opts.Propagate {
		res.Outdeg = indeg
		for x := 0; x < n; x++ {
			if !diag[x] || (opts.Mask != nil && !opts.Mask[x]) {
				continue
			}
			res.Crackable[x] = true
			if counted(x) {
				res.Value += 1 / float64(indeg[x])
			}
		}
		return res, nil
	}

	p, err := e.PropagateCtx(ctx)
	if err != nil {
		return nil, err
	}
	res.Outdeg = p.Outdeg
	res.Forced = len(p.Forced)
	res.Rounds = p.Rounds
	forcedItem := make([]bool, n)
	crackForced := make([]bool, n)
	anonConsumed := make([]bool, n)
	for _, fp := range p.Forced {
		forcedItem[fp.Item] = true
		anonConsumed[fp.Anon] = true
		if fp.Anon == fp.Item {
			crackForced[fp.Item] = true
		}
	}
	for x := 0; x < n; x++ {
		if opts.Mask != nil && !opts.Mask[x] {
			continue
		}
		switch {
		case crackForced[x]:
			res.Crackable[x] = true
			if counted(x) {
				res.Value++
			}
		case forcedItem[x] || !diag[x] || anonConsumed[x]:
			// Either pinned to a different twin, or its twin is unreachable.
		default:
			res.Crackable[x] = true
			if counted(x) {
				res.Value += 1 / float64(p.Outdeg[x])
			}
		}
	}
	return res, nil
}
