package core

import (
	"fmt"

	"repro/internal/belief"
	"repro/internal/dataset"
)

// ChainSpec describes a chain belief function of length k (Section 4.2,
// Figure 4(b)): the anonymized database has k frequency groups of sizes
// n_1..n_k (increasing frequency); the hacker's belief groups are k exclusive
// groups E_i of sizes e_i (mapping only to frequency group i) and k-1 shared
// groups S_i of sizes s_i (mapping to frequency groups i and i+1).
type ChainSpec struct {
	GroupSizes []int // n_i, len k
	Exclusive  []int // e_i, len k
	Shared     []int // s_i, len k-1 (empty for k = 1)
}

// splits returns a_i (items of S_i whose true anonymized twin is in group i)
// and b_i (in group i+1). These splits are forced: walking the chain left to
// right, group i's n_i members must be exactly E_i ∪ (b_{i-1} items of
// S_{i-1}) ∪ (a_i items of S_i), so a_i = n_i − e_i − b_{i-1} and
// b_i = s_i − a_i, with b_0 = 0.
func (c ChainSpec) splits() (a, b []int, err error) {
	k := len(c.GroupSizes)
	if k == 0 {
		return nil, nil, fmt.Errorf("core: chain has no groups")
	}
	if len(c.Exclusive) != k {
		return nil, nil, fmt.Errorf("core: chain has %d exclusive groups, want %d", len(c.Exclusive), k)
	}
	if len(c.Shared) != k-1 {
		return nil, nil, fmt.Errorf("core: chain has %d shared groups, want %d", len(c.Shared), k-1)
	}
	a = make([]int, k-1)
	b = make([]int, k-1)
	prevB := 0
	for i := 0; i < k-1; i++ {
		if c.GroupSizes[i] <= 0 || c.Exclusive[i] < 0 || c.Shared[i] < 0 {
			return nil, nil, fmt.Errorf("core: chain position %d: negative or empty sizes", i)
		}
		a[i] = c.GroupSizes[i] - c.Exclusive[i] - prevB
		if a[i] < 0 || a[i] > c.Shared[i] {
			return nil, nil, fmt.Errorf("core: chain position %d: infeasible split a=%d (s=%d)", i, a[i], c.Shared[i])
		}
		b[i] = c.Shared[i] - a[i]
		prevB = b[i]
	}
	last := k - 1
	if c.GroupSizes[last] <= 0 || c.Exclusive[last] < 0 {
		return nil, nil, fmt.Errorf("core: chain position %d: negative or empty sizes", last)
	}
	if c.GroupSizes[last] != c.Exclusive[last]+prevB {
		return nil, nil, fmt.Errorf("core: chain tail mismatch: n_k=%d but e_k+b_{k-1}=%d",
			c.GroupSizes[last], c.Exclusive[last]+prevB)
	}
	return a, b, nil
}

// Validate checks that the chain is structurally consistent: sizes are
// non-negative, Σe + Σs = Σn, and the forced splits a_i, b_i are all
// non-negative.
func (c ChainSpec) Validate() error {
	_, _, err := c.splits()
	return err
}

// Items returns the domain size Σ n_i.
func (c ChainSpec) Items() int {
	n := 0
	for _, v := range c.GroupSizes {
		n += v
	}
	return n
}

// ExpectedCracks returns the exact expected number of cracks for the chain
// (Lemma 6; Lemma 5 is the k = 2 case):
//
//	E(X) = Σ_j e_j/n_j + Σ_i [ a_i²/(s_i·n_i) + b_i²/(s_i·n_{i+1}) ]
//
// where a_i = Σ_{j≤i}(n_j − e_j − s_{j-1}) and b_i = Σ_{j≤i}(s_j + e_j − n_j)
// are the forced split sizes. (The paper's statement of Lemma 6 drops the
// square on the first bracketed sum — restoring it is forced by Lemma 5 and
// by the worked example E(X) = 74/45 of Figure 4(a).)
func (c ChainSpec) ExpectedCracks() (float64, error) {
	a, b, err := c.splits()
	if err != nil {
		return 0, err
	}
	e := 0.0
	for j, ej := range c.Exclusive {
		e += float64(ej) / float64(c.GroupSizes[j])
	}
	for i, si := range c.Shared {
		if si == 0 {
			continue
		}
		e += float64(a[i]*a[i]) / (float64(si) * float64(c.GroupSizes[i]))
		e += float64(b[i]*b[i]) / (float64(si) * float64(c.GroupSizes[i+1]))
	}
	return e, nil
}

// OEstimate returns the closed-form O-estimate for the chain (Section 5.2):
//
//	OE = Σ_j e_j/n_j + Σ_j s_j/(n_j + n_{j+1})
//
// Exclusive items have outdegree n_j; shared items have outdegree
// n_j + n_{j+1}.
func (c ChainSpec) OEstimate() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	oe := 0.0
	for j, ej := range c.Exclusive {
		oe += float64(ej) / float64(c.GroupSizes[j])
	}
	for j, sj := range c.Shared {
		oe += float64(sj) / float64(c.GroupSizes[j]+c.GroupSizes[j+1])
	}
	return oe, nil
}

// Delta returns the signed difference E(X) − OE and its magnitude relative to
// the exact value, as the percentage the §5.2 table reports.
func (c ChainSpec) Delta() (delta, percent float64, err error) {
	exact, err := c.ExpectedCracks()
	if err != nil {
		return 0, 0, err
	}
	oe, err := c.OEstimate()
	if err != nil {
		return 0, 0, err
	}
	delta = exact - oe
	if exact != 0 {
		percent = 100 * delta / exact
	}
	return delta, percent, nil
}

// Realize materializes the chain as a concrete frequency table and a
// compliant interval belief function, so that the closed forms can be
// cross-checked against the generic graph algorithms and the matching
// sampler. Group i receives the support count counts[i] (strictly increasing,
// each in [0, m]); exclusive items get point beliefs at their group frequency
// and shared items get the interval spanning their two groups.
func (c ChainSpec) Realize(m int, counts []int) (*dataset.FrequencyTable, *belief.Function, error) {
	if _, _, err := c.splits(); err != nil {
		return nil, nil, err
	}
	k := len(c.GroupSizes)
	if len(counts) != k {
		return nil, nil, fmt.Errorf("core: %d group counts, want %d", len(counts), k)
	}
	for i := 1; i < k; i++ {
		if counts[i] <= counts[i-1] {
			return nil, nil, fmt.Errorf("core: group counts must be strictly increasing")
		}
	}
	a, b, _ := c.splits()
	freq := func(i int) float64 { return float64(counts[i]) / float64(m) }

	var itemCounts []int
	var ivs []belief.Interval
	appendItems := func(count int, iv belief.Interval, howMany int) {
		for j := 0; j < howMany; j++ {
			itemCounts = append(itemCounts, count)
			ivs = append(ivs, iv)
		}
	}
	for i := 0; i < k; i++ {
		// Exclusive group E_i: point beliefs at f_i, true group i.
		appendItems(counts[i], belief.Interval{Lo: freq(i), Hi: freq(i)}, c.Exclusive[i])
		// Shared group S_i: interval [f_i, f_{i+1}]; a_i items truly in
		// group i, b_i in group i+1.
		if i < k-1 {
			iv := belief.Interval{Lo: freq(i), Hi: freq(i + 1)}
			appendItems(counts[i], iv, a[i])
			appendItems(counts[i+1], iv, b[i])
		}
	}
	ft, err := dataset.NewTable(m, itemCounts)
	if err != nil {
		return nil, nil, err
	}
	bf, err := belief.New(ivs)
	if err != nil {
		return nil, nil, err
	}
	return ft, bf, nil
}

// Figure4aChain is the worked example of Figure 4(a): two frequency groups of
// sizes 5 and 3 (frequencies 0.3 and 0.7), exclusive groups of sizes 3 and 2,
// and one shared group of size 3. Its exact expected number of cracks is
// 74/45 ≈ 1.644 and its O-estimate 197/120 ≈ 1.6417.
func Figure4aChain() ChainSpec {
	return ChainSpec{
		GroupSizes: []int{5, 3},
		Exclusive:  []int{3, 2},
		Shared:     []int{3},
	}
}
