package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestFigure4aExact(t *testing.T) {
	c := Figure4aChain()
	got, err := c.ExpectedCracks()
	if err != nil {
		t.Fatal(err)
	}
	want := 74.0 / 45.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("E(X) = %v, want 74/45 = %v", got, want)
	}
}

func TestFigure4aOEstimate(t *testing.T) {
	c := Figure4aChain()
	got, err := c.OEstimate()
	if err != nil {
		t.Fatal(err)
	}
	want := 197.0 / 120.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("OE = %v, want 197/120 = %v", got, want)
	}
	delta, pct, err := c.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Errorf("Delta = %v, want positive (OE slightly under-estimates here)", delta)
	}
	if pct <= 0 || pct > 1 {
		t.Errorf("Delta%% = %v, want small positive", pct)
	}
}

func TestLemma5MatchesLemma6(t *testing.T) {
	// Lemma 5 is the k = 2 instance: E = e1/n1 + e2/n2 +
	// (n1-e1)²/(s1·n1) + (n2-e2)²/(s1·n2).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n1, n2 := 1+rng.Intn(10), 1+rng.Intn(10)
		a1 := rng.Intn(n1 + 1)
		e1 := n1 - a1
		b1 := rng.Intn(n2 + 1)
		e2 := n2 - b1
		s1 := a1 + b1
		c := ChainSpec{GroupSizes: []int{n1, n2}, Exclusive: []int{e1, e2}, Shared: []int{s1}}
		got, err := c.ExpectedCracks()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := float64(e1)/float64(n1) + float64(e2)/float64(n2)
		if s1 > 0 {
			want += float64((n1-e1)*(n1-e1)) / (float64(s1) * float64(n1))
			want += float64((n2-e2)*(n2-e2)) / (float64(s1) * float64(n2))
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: Lemma 6 = %v, Lemma 5 = %v (spec %+v)", trial, got, want, c)
		}
	}
}

func TestDeltaTableRow1(t *testing.T) {
	// §5.2 table, row 1: n=(20,30,20), e=(10,10,10), s=(20,20) -> 1.54%.
	c := ChainSpec{GroupSizes: []int{20, 30, 20}, Exclusive: []int{10, 10, 10}, Shared: []int{20, 20}}
	_, pct, err := c.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pct-1.538) > 0.01 {
		t.Errorf("Delta%% = %v, want ~1.54 (paper row 1)", pct)
	}
}

func TestDeltaTableRow5(t *testing.T) {
	// §5.2 table, row 5: e=(10,20,10), s=(15,15) -> paper prints 7.23; the
	// formulas give 7.27 (see EXPERIMENTS.md).
	c := ChainSpec{GroupSizes: []int{20, 30, 20}, Exclusive: []int{10, 20, 10}, Shared: []int{15, 15}}
	_, pct, err := c.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pct-7.27) > 0.02 {
		t.Errorf("Delta%% = %v, want ~7.27", pct)
	}
}

func TestDeltaTableRows2to4Inconsistent(t *testing.T) {
	// Rows 2-4 as printed violate Σe+Σs = Σn (70) — they sum to 80. The
	// validator must reject them; EXPERIMENTS.md documents the discrepancy.
	for _, c := range []ChainSpec{
		{GroupSizes: []int{20, 30, 20}, Exclusive: []int{15, 10, 10}, Shared: []int{25, 20}},
		{GroupSizes: []int{20, 30, 20}, Exclusive: []int{15, 10, 5}, Shared: []int{25, 25}},
		{GroupSizes: []int{20, 30, 20}, Exclusive: []int{15, 6, 5}, Shared: []int{27, 27}},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("spec %+v: want validation error (sizes sum to 80, domain is 70)", c)
		}
	}
}

func TestChainValidation(t *testing.T) {
	cases := []ChainSpec{
		{},
		{GroupSizes: []int{5}, Exclusive: []int{4}},                               // n1 != e1
		{GroupSizes: []int{5, 3}, Exclusive: []int{3, 2}},                         // missing shared
		{GroupSizes: []int{5, 3}, Exclusive: []int{6, 2}, Shared: []int{0}},       // a1 < 0
		{GroupSizes: []int{5, 3}, Exclusive: []int{1, 2}, Shared: []int{2}},       // a1 > s1
		{GroupSizes: []int{0, 3}, Exclusive: []int{0, 3}, Shared: []int{0}},       // empty group
		{GroupSizes: []int{5, 3}, Exclusive: []int{3, -1}, Shared: []int{3}},      // negative
		{GroupSizes: []int{5, 3, 2}, Exclusive: []int{3, 2, 2}, Shared: []int{3}}, // wrong shared len
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): want validation error", i, c)
		}
	}
	ok := ChainSpec{GroupSizes: []int{5}, Exclusive: []int{5}}
	if err := ok.Validate(); err != nil {
		t.Errorf("single exclusive group: %v", err)
	}
	if ok.Items() != 5 {
		t.Errorf("Items = %d, want 5", ok.Items())
	}
	e, err := ok.ExpectedCracks()
	if err != nil || e != 1 {
		t.Errorf("single-group chain E(X) = %v (%v), want 1 (Lemma 1 within the group)", e, err)
	}
}

// randomChain draws a feasible random chain with n <= maxItems.
func randomChain(rng *rand.Rand, maxK, maxGroup int) ChainSpec {
	for {
		k := 1 + rng.Intn(maxK)
		spec := ChainSpec{
			GroupSizes: make([]int, k),
			Exclusive:  make([]int, k),
			Shared:     make([]int, k-1),
		}
		prevB := 0
		ok := true
		for i := 0; i < k-1; i++ {
			ni := 1 + rng.Intn(maxGroup)
			if ni < prevB {
				ok = false
				break
			}
			ai := rng.Intn(ni - prevB + 1)
			ei := ni - prevB - ai
			bi := rng.Intn(3)
			spec.GroupSizes[i] = ni
			spec.Exclusive[i] = ei
			spec.Shared[i] = ai + bi
			prevB = bi
		}
		if !ok {
			continue
		}
		ek := rng.Intn(maxGroup)
		spec.GroupSizes[k-1] = ek + prevB
		spec.Exclusive[k-1] = ek
		if spec.GroupSizes[k-1] == 0 {
			continue
		}
		if spec.Validate() != nil {
			continue
		}
		return spec
	}
}

func TestChainRealizeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		spec := randomChain(rng, 4, 5)
		k := len(spec.GroupSizes)
		m := 100
		counts := make([]int, k)
		for i := range counts {
			counts[i] = (i + 1) * 10
		}
		ft, bf, err := spec.Realize(m, counts)
		if err != nil {
			t.Fatalf("trial %d: Realize(%+v): %v", trial, spec, err)
		}
		if ft.NItems != spec.Items() {
			t.Fatalf("trial %d: realized %d items, want %d", trial, ft.NItems, spec.Items())
		}
		gr := dataset.GroupItems(ft)
		if gr.NumGroups() != k {
			t.Fatalf("trial %d: realized %d groups, want %d", trial, gr.NumGroups(), k)
		}
		for i, g := range gr.Groups {
			if len(g.Items) != spec.GroupSizes[i] {
				t.Fatalf("trial %d: group %d size %d, want %d", trial, i, len(g.Items), spec.GroupSizes[i])
			}
		}
		if !bf.IsCompliant(ft.Frequencies()) {
			t.Fatalf("trial %d: realized belief function is not compliant", trial)
		}
	}
}

func TestChainRealizeValidation(t *testing.T) {
	c := Figure4aChain()
	if _, _, err := c.Realize(10, []int{3}); err == nil {
		t.Error("wrong count length: want error")
	}
	if _, _, err := c.Realize(10, []int{7, 3}); err == nil {
		t.Error("non-increasing counts: want error")
	}
	bad := ChainSpec{GroupSizes: []int{2}, Exclusive: []int{1}}
	if _, _, err := bad.Realize(10, []int{3}); err == nil {
		t.Error("invalid spec: want error")
	}
}
