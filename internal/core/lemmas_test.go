package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func mustTable(t testing.TB, m int, counts []int) *dataset.FrequencyTable {
	t.Helper()
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// bigMartTable: the paper's Figure 1 example, support counts (5,4,5,5,3,5)
// over 10 transactions.
func bigMartTable(t testing.TB) *dataset.FrequencyTable {
	return mustTable(t, 10, []int{5, 4, 5, 5, 3, 5})
}

func TestLemma1(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100000} {
		if got := ExpectedCracksIgnorant(n); got != 1 {
			t.Errorf("ExpectedCracksIgnorant(%d) = %v, want 1", n, got)
		}
	}
	if got := ExpectedCracksIgnorant(0); got != 0 {
		t.Errorf("ExpectedCracksIgnorant(0) = %v, want 0", got)
	}
}

func TestLemma2(t *testing.T) {
	got, err := ExpectedCracksIgnorantSubset(100, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.25 {
		t.Errorf("subset cracks = %v, want 0.25", got)
	}
	if _, err := ExpectedCracksIgnorantSubset(10, 11); err == nil {
		t.Error("n1 > n: want error")
	}
	if _, err := ExpectedCracksIgnorantSubset(0, 0); err == nil {
		t.Error("n = 0: want error")
	}
}

func TestLemma3BigMart(t *testing.T) {
	gr := dataset.GroupItems(bigMartTable(t))
	if got := ExpectedCracksPointValued(gr); got != 3 {
		t.Errorf("E(X) = %v, want 3 (groups at .3, .4, .5)", got)
	}
}

func TestLemma4(t *testing.T) {
	gr := dataset.GroupItems(bigMartTable(t))
	// Interested in item 4 (freq .3, group of size 1) and item 0 (freq .5,
	// group of size 4): expect 1/1 + 1/4.
	interest := []bool{true, false, false, false, true, false}
	got, err := ExpectedCracksPointValuedSubset(gr, interest)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.25) > 1e-12 {
		t.Errorf("subset E(X) = %v, want 1.25", got)
	}
	// All items of interest reduces to Lemma 3.
	all := []bool{true, true, true, true, true, true}
	got, err = ExpectedCracksPointValuedSubset(gr, all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("full-interest E(X) = %v, want 3 (Lemma 3)", got)
	}
	if _, err := ExpectedCracksPointValuedSubset(gr, []bool{true}); err == nil {
		t.Error("short mask: want error")
	}
}
