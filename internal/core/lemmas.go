// Package core implements the analytical contribution of Lakshmanan, Ng and
// Ramesh, "To Do or Not To Do: The Dilemma of Disclosing Anonymized Data"
// (SIGMOD 2005): closed-form expected-crack counts for the extreme belief
// functions (Lemmas 1–4), the exact chain formulas (Lemmas 5–6), the
// permanent-based direct method (Section 4.1), and the O-estimate heuristic
// with degree-1 propagation (Section 5).
//
// Throughout, the risk model is the paper's: the hacker draws a crack mapping
// uniformly at random from the perfect matchings of the consistency graph,
// and the owner's risk is the expected number of cracked (correctly
// re-identified) items.
package core

import (
	"fmt"

	"repro/internal/dataset"
)

// ExpectedCracksIgnorant returns the expected number of cracks when the
// hacker holds the ignorant belief function (Lemma 1): exactly 1, regardless
// of the domain size n, because each anonymized item is matched correctly
// with probability 1/n in a uniform random permutation.
func ExpectedCracksIgnorant(n int) float64 {
	if n <= 0 {
		return 0
	}
	return 1
}

// ExpectedCracksIgnorantSubset returns the expected number of cracks among a
// subset of n1 items of interest under the ignorant belief function
// (Lemma 2): n1/n.
func ExpectedCracksIgnorantSubset(n, n1 int) (float64, error) {
	if n <= 0 || n1 < 0 || n1 > n {
		return 0, fmt.Errorf("core: invalid subset size %d of %d", n1, n)
	}
	return float64(n1) / float64(n), nil
}

// ExpectedCracksPointValued returns the expected number of cracks under the
// compliant point-valued belief function (Lemma 3): g, the number of distinct
// observed frequencies. Items sharing a frequency camouflage one another;
// within each group the situation reduces to Lemma 1.
func ExpectedCracksPointValued(gr *dataset.Grouping) float64 {
	return float64(gr.NumGroups())
}

// ExpectedCracksPointValuedSubset returns the expected number of cracks among
// the items of interest under the compliant point-valued belief function
// (Lemma 4): Σ_i c_i/n_i, where c_i counts interesting items in frequency
// group i of size n_i. interest[x] marks the items the owner cares about.
//
//lint:allow ctxbudget one O(n) pass over the grouping; closed-form Lemma 4 arithmetic
func ExpectedCracksPointValuedSubset(gr *dataset.Grouping, interest []bool) (float64, error) {
	if len(interest) != gr.NumItems() {
		return 0, fmt.Errorf("core: interest mask has %d entries, want %d", len(interest), gr.NumItems())
	}
	total := 0.0
	//lint:allow loopbudget partition sweep over disjoint groups is O(n) total, per the ctxbudget allow above
	for _, g := range gr.Groups {
		c := 0
		for _, x := range g.Items {
			if interest[x] {
				c++
			}
		}
		total += float64(c) / float64(len(g.Items))
	}
	return total, nil
}
