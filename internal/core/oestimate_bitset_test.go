package core

// Bit-for-bit equivalence of the word-parallel O-estimate kernels against
// the historical boolean-slice implementation. The reference below is the
// item-at-a-time loop the bitset rewrite replaced, kept verbatim so the
// oracle cannot drift with the kernel: same division per visit, same
// ascending accumulation order, same four-way propagation switch. Equality
// is exact (==), not tolerance-based — the kernels' contract is identical
// float operation order, not merely close values (DESIGN.md §16).

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/budget"
	"repro/internal/dataset"
)

// referenceOEstimate is the pre-bitset OEstimateGraphCtx, on []bool state.
func referenceOEstimate(g *bipartite.Graph, propagate bool, mask, interest []bool) (value float64, crackable []bool, err error) {
	n := g.Items()
	counted := func(x int) bool { return interest == nil || interest[x] }
	crackable = make([]bool, n)
	if !propagate {
		outdeg := g.Outdegrees()
		for x := 0; x < n; x++ {
			if !g.Compliant(x) || (mask != nil && !mask[x]) {
				continue
			}
			crackable[x] = true
			if counted(x) {
				value += 1 / float64(outdeg[x])
			}
		}
		return value, crackable, nil
	}
	p, err := g.PropagateCtx(context.Background())
	if err != nil {
		return 0, nil, err
	}
	forcedItem := make([]bool, n)
	crackForced := make([]bool, n)
	anonConsumed := make([]bool, n)
	for _, fp := range p.Forced {
		forcedItem[fp.Item] = true
		anonConsumed[fp.Anon] = true
		if fp.Anon == fp.Item {
			crackForced[fp.Item] = true
		}
	}
	for x := 0; x < n; x++ {
		if mask != nil && !mask[x] {
			continue
		}
		switch {
		case crackForced[x]:
			crackable[x] = true
			if counted(x) {
				value++
			}
		case forcedItem[x]:
		case !g.Compliant(x) || anonConsumed[x]:
		default:
			crackable[x] = true
			if counted(x) {
				value += 1 / float64(p.Outdeg[x])
			}
		}
	}
	return value, crackable, nil
}

// boundaryBelief builds intervals whose endpoints land EXACTLY on observed
// frequencies (including ±Epsilon-sensitive point intervals), so the
// equivalence sweep exercises the bin-boundary admission semantics of
// groupRange, not just interior intervals.
func boundaryBelief(freqs []float64, rng *rand.Rand) *belief.Function {
	n := len(freqs)
	ivs := make([]belief.Interval, n)
	for x := range ivs {
		switch rng.Intn(4) {
		case 0: // point belief exactly at the true frequency
			ivs[x] = belief.Interval{Lo: freqs[x], Hi: freqs[x]}
		case 1: // both endpoints exactly on (possibly different) observed bins
			a, b := freqs[rng.Intn(n)], freqs[rng.Intn(n)]
			if a > b {
				a, b = b, a
			}
			ivs[x] = belief.Interval{Lo: a, Hi: b}
		case 2: // lower endpoint on a bin, upper interior
			a := freqs[rng.Intn(n)]
			ivs[x] = belief.Interval{Lo: a, Hi: a + rng.Float64()*0.3}
		default: // generic interior interval
			lo := rng.Float64() * 0.8
			ivs[x] = belief.Interval{Lo: lo, Hi: lo + rng.Float64()*0.3}
		}
		if ivs[x].Hi > 1 {
			ivs[x].Hi = 1
		}
	}
	return belief.MustNew(ivs)
}

func TestOEstimateBitsetMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(150)
		m := 10 + rng.Intn(60)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft := mustTable(t, m, counts)
		var bf *belief.Function
		if trial%2 == 0 {
			bf = boundaryBelief(ft.Frequencies(), rng)
		} else {
			bf = belief.RandomCompliant(ft.Frequencies(), rng.Float64()*0.3, rng)
		}
		g, err := bipartite.Build(bf, dataset.GroupItems(ft))
		if err != nil {
			t.Fatal(err)
		}
		var mask, interest []bool
		if rng.Intn(2) == 0 {
			mask = make([]bool, n)
			for i := range mask {
				mask[i] = rng.Intn(3) > 0
			}
		}
		if rng.Intn(2) == 0 {
			interest = make([]bool, n)
			for i := range interest {
				interest[i] = rng.Intn(3) > 0
			}
		}
		for _, propagate := range []bool{false, true} {
			opts := OEOptions{Propagate: propagate}
			if mask != nil {
				opts.Mask = bitset.FromBools(mask)
			}
			if interest != nil {
				opts.Interest = bitset.FromBools(interest)
			}
			wantV, wantC, refErr := referenceOEstimate(g, propagate, mask, interest)
			got, gotErr := OEstimateGraph(g, opts)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d (prop=%v): error mismatch: ref %v, bitset %v", trial, propagate, refErr, gotErr)
			}
			if refErr != nil {
				continue // both infeasible under propagation
			}
			if got.Value != wantV {
				t.Fatalf("trial %d (prop=%v): bitset OE = %v, reference = %v (must be bit-identical)",
					trial, propagate, got.Value, wantV)
			}
			if !got.Crackable.Equal(bitset.FromBools(wantC)) {
				t.Fatalf("trial %d (prop=%v): crackable sets differ", trial, propagate)
			}
		}
	}
}

// TestOEstimateScanZeroAllocs pins the steady-state allocation count of the
// plain-scan kernel at zero: with the result words preallocated, summing a
// graph's reciprocals over compliance∩mask words allocates nothing. This is
// the core-side row of the allocation-regression suite started in
// internal/matching/alloc_test.go.
func TestOEstimateScanZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 300
	counts := make([]int, n)
	for i := range counts {
		counts[i] = rng.Intn(40)
	}
	ft := mustTable(t, 40, counts)
	bf := belief.RandomCompliant(ft.Frequencies(), 0.1, rng)
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	mask := bitset.New(n)
	for x := 0; x < n; x += 2 {
		mask.Add(x)
	}
	crack := bitset.New(n)
	comp := g.ComplianceSet().Words()
	inv := g.OutdegreeReciprocals()
	bud := budget.New(context.Background(), budget.Config{CheckEvery: 4096})
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := oeScanWords(bud, n, comp, mask.Words(), nil, crack.Words(), inv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("oeScanWords allocates %v per run, want 0", allocs)
	}
}
