package core

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/bipartite"
)

// ExactExpectedCracks computes the exact expected number of cracks of the
// direct method (Section 4.1), assuming each perfect matching of the graph is
// equally likely:
//
//	E(X) = Σ_x P((x′, x) in a uniform matching)
//	     = Σ_x perm(minor(x′, x)) / perm(A_G).
//
// This is mathematically equal to the paper's Σ_k k·P(X = k) expansion over
// subsets but needs only n permanent-style DPs instead of Σ_k (n choose k).
// Counting permanents is #P-complete, so the graph must satisfy
// n ≤ bipartite.MaxExactN.
func ExactExpectedCracks(e *bipartite.Explicit) (float64, error) {
	return ExactExpectedCracksCtx(context.Background(), e)
}

// ExactExpectedCracksCtx is ExactExpectedCracks under a work budget: the
// context's deadline and operation limit bound the n+1 Gray-code Ryser
// passes, so the #P-complete direct method can be attempted speculatively
// and abandoned (budget.ErrBudgetExceeded) by a degradation cascade.
//
// Only the diagonal of the edge-inclusion matrix enters the sum, so the
// permanents come from bipartite.DiagonalMatchingCountsCtx — O(n) memory,
// reaching n = MaxExactN — rather than the 2^n-table edge-inclusion DP,
// which stops at the tighter MaxExactTableN.
func ExactExpectedCracksCtx(ctx context.Context, e *bipartite.Explicit) (float64, error) {
	total, diag, err := e.DiagonalMatchingCountsCtx(ctx)
	if err != nil {
		return 0, err
	}
	tot := new(big.Float).SetInt(total)
	exp := 0.0
	for x := 0; x < e.N; x++ {
		if diag[x] == nil {
			continue
		}
		q, _ := new(big.Float).Quo(new(big.Float).SetInt(diag[x]), tot).Float64()
		exp += q
	}
	return exp, nil
}

// CrackDistribution returns the exact distribution P(X = k), k = 0..n, of the
// number of cracks in a uniformly random perfect matching, by exhaustive
// enumeration. Exponential in n; intended for worked examples and for
// validating the closed forms.
func CrackDistribution(e *bipartite.Explicit) ([]float64, error) {
	return CrackDistributionCtx(context.Background(), e)
}

// CrackDistributionCtx is CrackDistribution under a work budget, aborting
// the exhaustive enumeration when the context's deadline or operation limit
// runs out.
func CrackDistributionCtx(ctx context.Context, e *bipartite.Explicit) ([]float64, error) {
	hist := make([]int, e.N+1)
	total := 0
	err := e.EnumeratePerfectMatchingsCtx(ctx, 0, func(match []int) {
		cracks := 0
		for w, x := range match {
			if w == x {
				cracks++
			}
		}
		hist[cracks]++
		total++
	})
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, bipartite.ErrInfeasible
	}
	out := make([]float64, e.N+1)
	for k, c := range hist {
		out[k] = float64(c) / float64(total)
	}
	return out, nil
}

// CrackDistributionDirect evaluates the paper's Section 4.1 formula
// literally:
//
//	P(X = k) = Σ_{S ∈ I^k} perm(A_{G(S)}) / perm(A_G)
//
// where G(S) removes, for each x in S, the vertices x and x′ (they are
// matched as cracks) and, for every remaining y, the diagonal edge (y′, y)
// (no further cracks allowed). The subset sum makes it exponentially more
// expensive than enumeration; it exists to validate the formula itself.
func CrackDistributionDirect(e *bipartite.Explicit, k int) (float64, error) {
	if k < 0 || k > e.N {
		return 0, fmt.Errorf("core: crack count %d outside [0,%d]", k, e.N)
	}
	total, err := e.CountPerfectMatchings()
	if err != nil {
		return 0, err
	}
	if total.Sign() == 0 {
		return 0, bipartite.ErrInfeasible
	}
	sum := new(big.Int)
	subset := make([]int, k)
	var rec func(start, depth int) error
	rec = func(start, depth int) error {
		if depth == k {
			c, err := restrictedCount(e, subset)
			if err != nil {
				return err
			}
			sum.Add(sum, c)
			return nil
		}
		for x := start; x < e.N; x++ {
			subset[depth] = x
			if err := rec(x+1, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return 0, err
	}
	q := new(big.Float).Quo(new(big.Float).SetInt(sum), new(big.Float).SetInt(total))
	out, _ := q.Float64()
	return out, nil
}

// restrictedCount counts the perfect matchings of G(S): vertices of S matched
// diagonally and removed, all remaining diagonal edges deleted.
func restrictedCount(e *bipartite.Explicit, S []int) (*big.Int, error) {
	inS := make([]bool, e.N)
	for _, x := range S {
		if !e.HasEdge(x, x) {
			// x cannot be cracked at all; no matching has crack set ⊇ {x}.
			return new(big.Int), nil
		}
		inS[x] = true
	}
	// Relabel the remaining vertices densely.
	relabel := make([]int, e.N)
	m := 0
	for x := 0; x < e.N; x++ {
		if !inS[x] {
			relabel[x] = m
			m++
		}
	}
	if m == 0 {
		return big.NewInt(1), nil
	}
	adj := make([][]int, m)
	//lint:allow loopbudget linear minor construction feeding CountPerfectMatchings, which budgets the exponential part
	for w := 0; w < e.N; w++ {
		if inS[w] {
			continue
		}
		for _, x := range e.Adj[w] {
			if inS[x] || x == w { // drop removed vertices and diagonal edges
				continue
			}
			adj[relabel[w]] = append(adj[relabel[w]], relabel[x])
		}
	}
	sub, err := bipartite.NewExplicit(m, adj)
	if err != nil {
		return nil, err
	}
	return sub.CountPerfectMatchings()
}
