package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/budget"
)

// OEDelta maintains the O-estimate of a graph across incremental Rebin
// patches: it keeps the per-item contribution array (1/O_x for crackable
// items, 0 otherwise) and on each refresh recomputes only the entries named
// in the changed list before re-summing — the restricted recomputation of
// ROADMAP item 2.
//
// The refreshed value is bit-for-bit identical to OEstimateGraphCtx on the
// same graph (pinned by TestOEDeltaMatchesFull): unchanged contributions are
// the very float64s a full pass would recompute, and summing the dense array
// in ascending item order equals the full path's skip-the-zeros loop because
// adding +0.0 never perturbs a non-negative partial sum.
//
// OEDelta covers the plain estimate only — no Mask, Interest, or Propagate.
// The recipe's α search masks items per evaluation and so goes through
// OEstimateGraphCtx directly (still against the patched graph, still without
// a rebuild); propagation rewrites outdegrees globally and has no restricted
// form.
type OEDelta struct {
	g       *bipartite.Graph
	contrib []float64 // 1/O_x if compliant and O_x > 0, else 0
	outdeg  []int
}

// NewOEDeltaCtx initializes the contribution state with one full pass over
// the graph, under a work budget.
func NewOEDeltaCtx(ctx context.Context, g *bipartite.Graph) (*OEDelta, error) {
	n := g.Items()
	d := &OEDelta{
		g:       g,
		contrib: make([]float64, n),
		outdeg:  make([]int, n),
	}
	bud := budget.New(ctx, budget.Config{CheckEvery: 4096})
	for x := 0; x < n; x++ {
		if err := bud.Charge(1); err != nil {
			return nil, fmt.Errorf("core: O-estimate delta init: %w", err)
		}
		d.recompute(x)
	}
	return d, nil
}

// Graph returns the graph whose estimate is being maintained. It is the
// caller's graph: Rebin patches applied to it are what RefreshCtx's changed
// lists must describe.
func (d *OEDelta) Graph() *bipartite.Graph { return d.g }

func (d *OEDelta) recompute(x int) {
	d.outdeg[x] = d.g.Outdegree(x)
	if d.g.Compliant(x) && d.outdeg[x] > 0 {
		d.contrib[x] = 1 / float64(d.outdeg[x])
	} else {
		d.contrib[x] = 0
	}
}

// RefreshCtx recomputes the contributions of the changed items — the list
// bipartite.Rebin returned, any superset is equally correct — and returns
// the full-graph O-estimate. The result's Outdeg and Crackable slices are
// fresh copies, safe to retain across further refreshes.
func (d *OEDelta) RefreshCtx(ctx context.Context, changed []int) (*OEResult, error) {
	n := d.g.Items()
	if !sort.IntsAreSorted(changed) {
		return nil, fmt.Errorf("core: O-estimate delta: changed list not ascending")
	}
	bud := budget.New(ctx, budget.Config{CheckEvery: 4096})
	for _, x := range changed {
		if x < 0 || x >= n {
			return nil, fmt.Errorf("core: O-estimate delta: item %d outside [0,%d)", x, n)
		}
		if err := bud.Charge(1); err != nil {
			return nil, fmt.Errorf("core: O-estimate delta refresh: %w", err)
		}
		d.recompute(x)
	}
	res := &OEResult{
		Outdeg:    append([]int(nil), d.outdeg...),
		Crackable: bitset.New(n),
	}
	for x := 0; x < n; x++ {
		if err := bud.Charge(1); err != nil {
			return nil, fmt.Errorf("core: O-estimate delta sum: %w", err)
		}
		if d.contrib[x] != 0 {
			res.Crackable.Add(x)
		}
		res.Value += d.contrib[x]
	}
	return res, nil
}
