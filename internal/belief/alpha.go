package belief

import (
	"fmt"
	"math/rand"
	"sort"
)

// AlphaCompliant derives an α-compliant belief function from a compliant one
// (Section 5.3): a uniformly random subset of ⌈(1−α)·n⌉ items is made
// non-compliant. For the recipe's O-estimate the only thing that matters is
// *which* items are compliant (non-compliant items simply cannot be cracked
// by a consistent mapping), but for simulation the non-compliant items also
// need concrete wrong intervals; MisguideItem supplies them.
//
// It returns the perturbed function and the compliant mask. The input
// function must be compliant on every item it keeps; an error is returned if
// base is not compliant w.r.t. trueFreqs.
func AlphaCompliant(base *Function, trueFreqs []float64, alpha float64, rng *rand.Rand) (*Function, []bool, error) {
	if alpha < 0 || alpha > 1 {
		return nil, nil, fmt.Errorf("belief: alpha %v outside [0,1]", alpha)
	}
	if !base.IsCompliant(trueFreqs) {
		return nil, nil, fmt.Errorf("belief: base function is not compliant")
	}
	n := base.Items()
	nonCompliant := int(float64(n)*(1-alpha) + 0.5)
	if nonCompliant > n {
		nonCompliant = n
	}
	out := base.Clone()
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	perm := rng.Perm(n)
	distinct := distinctFreqs(trueFreqs)
	for _, x := range perm[:nonCompliant] {
		mask[x] = false
		out.iv[x] = MisguideItem(base.iv[x], trueFreqs[x], distinct, rng)
	}
	return out, mask, nil
}

// MisguideItem produces a "wrong guess" interval for an item whose true
// frequency is trueFreq: an interval of the same width as the original guess,
// re-centred on a different observed frequency, chosen so that it does NOT
// contain trueFreq. This models a hacker who believes the item sits in the
// ball-park of some other item. If no such re-centring works (e.g. all
// frequencies coincide), the empty-ish interval just above or below the truth
// is used.
func MisguideItem(orig Interval, trueFreq float64, distinctFreqs []float64, rng *rand.Rand) Interval {
	halfWidth := (orig.Hi - orig.Lo) / 2
	// Try a few random other frequencies as the new centre.
	for attempt := 0; attempt < 16 && len(distinctFreqs) > 1; attempt++ {
		c := distinctFreqs[rng.Intn(len(distinctFreqs))]
		cand := Interval{Lo: c - halfWidth, Hi: c + halfWidth}.Clamp()
		if !cand.Contains(trueFreq) {
			return cand
		}
	}
	// Deterministic fallback: shift the interval entirely past the truth.
	shift := 2*halfWidth + 16*Epsilon
	up := Interval{Lo: trueFreq + shift/2 + 8*Epsilon, Hi: trueFreq + shift/2 + 8*Epsilon + 2*halfWidth}
	if up.Hi <= 1 {
		return up.Clamp()
	}
	down := Interval{Lo: trueFreq - shift/2 - 8*Epsilon - 2*halfWidth, Hi: trueFreq - shift/2 - 8*Epsilon}
	return down.Clamp()
}

func distinctFreqs(freqs []float64) []float64 {
	s := append([]float64(nil), freqs...)
	sort.Float64s(s)
	out := s[:0]
	for i, f := range s {
		if i == 0 || !EqualEps(f, out[len(out)-1]) {
			out = append(out, f)
		}
	}
	return out
}

// RefinesAlpha reports whether f ⪯_C g per Definition 9, given each
// function's compliant mask: (i) f's compliant set is a subset of g's, and
// (ii) on f's compliant set, g's intervals are contained in f's. Under this
// order the O-estimate is monotone (Lemma 10): OE(f) ≤ OE(g).
func RefinesAlpha(f *Function, fMask []bool, g *Function, gMask []bool) bool {
	if f.Items() != g.Items() {
		return false
	}
	for x := 0; x < f.Items(); x++ {
		if fMask[x] {
			if !gMask[x] {
				return false // (i) fails
			}
			if !g.iv[x].Within(f.iv[x]) {
				return false // (ii) fails
			}
		}
	}
	return true
}

// ShrinkCompliantSet returns a copy of mask with half (rounded down) of the
// currently compliant items switched to non-compliant, chosen uniformly at
// random. This is the refinement step the recipe's binary search uses
// (Section 6.2): successive α levels nest, satisfying Lemma 10's partial
// order.
func ShrinkCompliantSet(mask []bool, rng *rand.Rand) []bool {
	var compliant []int
	for x, ok := range mask {
		if ok {
			compliant = append(compliant, x)
		}
	}
	out := append([]bool(nil), mask...)
	drop := len(compliant) / 2
	perm := rng.Perm(len(compliant))
	for _, i := range perm[:drop] {
		out[compliant[i]] = false
	}
	return out
}
