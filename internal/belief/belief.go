// Package belief models the hacker's prior knowledge in the SIGMOD 2005
// paper "To Do or Not To Do: The Dilemma of Disclosing Anonymized Data".
//
// A belief function maps every item x of the original domain to a frequency
// interval [l, r] ⊆ [0, 1]: the hacker believes x's frequency in the released
// database lies in that range. Special cases (Section 2.2):
//
//   - ignorant: every interval is [0, 1] — the hacker knows nothing;
//   - point-valued: every interval is a single point;
//   - interval: at least one interval has l < r;
//   - compliant: every interval contains the item's true frequency;
//   - α-compliant: only a fraction α of intervals contain the truth.
package belief

import (
	"fmt"
	"math"
	"math/rand"
)

// Epsilon is the tolerance used for closed-interval containment checks.
// Frequencies are exact rationals count/m rendered as float64, so a tolerance
// near machine precision suffices to absorb rounding in interval arithmetic
// (e.g. f - δ + δ ≠ f).
const Epsilon = 1e-12

// EqualEps reports whether two frequencies are equal up to Epsilon. It is the
// approved way to compare float64 frequencies — direct == or != on observed
// frequencies breaks when exact rationals count/m pass through interval
// arithmetic.
func EqualEps(a, b float64) bool {
	return math.Abs(a-b) <= Epsilon
}

// Interval is a closed frequency range [Lo, Hi] with 0 ≤ Lo ≤ Hi ≤ 1.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether f lies in the closed interval, with Epsilon slack.
func (iv Interval) Contains(f float64) bool {
	return f >= iv.Lo-Epsilon && f <= iv.Hi+Epsilon
}

// IsPoint reports whether the interval is a single point (width ≤ Epsilon).
func (iv Interval) IsPoint() bool { return iv.Hi-iv.Lo <= Epsilon }

// Within reports whether iv ⊆ other in the sense of Definition 7:
// iv.Lo ≥ other.Lo and iv.Hi ≤ other.Hi.
func (iv Interval) Within(other Interval) bool {
	return iv.Lo >= other.Lo-Epsilon && iv.Hi <= other.Hi+Epsilon
}

// Clamp restricts the interval to [0, 1].
func (iv Interval) Clamp() Interval {
	return Interval{Lo: math.Max(0, iv.Lo), Hi: math.Min(1, iv.Hi)}
}

func (iv Interval) String() string {
	if iv.IsPoint() {
		return fmt.Sprintf("%.6g", iv.Lo)
	}
	return fmt.Sprintf("[%.6g,%.6g]", iv.Lo, iv.Hi)
}

// Function is a belief function over a domain of n items: one interval per
// item id 0..n-1.
type Function struct {
	iv []Interval
}

// New builds a belief function from one interval per item. Intervals are
// clamped to [0, 1]; an error is returned if any interval is inverted.
func New(intervals []Interval) (*Function, error) {
	if len(intervals) == 0 {
		return nil, fmt.Errorf("belief: empty domain")
	}
	ivs := make([]Interval, len(intervals))
	for x, iv := range intervals {
		// NaN passes every ordered comparison below and would silently poison
		// downstream Contains checks, so reject it explicitly.
		if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
			return nil, fmt.Errorf("belief: item %d: NaN bound in interval [%v,%v]", x, iv.Lo, iv.Hi)
		}
		if iv.Lo > iv.Hi+Epsilon {
			return nil, fmt.Errorf("belief: item %d: inverted interval [%v,%v]", x, iv.Lo, iv.Hi)
		}
		ivs[x] = iv.Clamp()
	}
	return &Function{iv: ivs}, nil
}

// MustNew is New, panicking on error. Intended for tests and examples.
func MustNew(intervals []Interval) *Function {
	f, err := New(intervals)
	if err != nil {
		panic(err)
	}
	return f
}

// Items returns the domain size n.
func (f *Function) Items() int { return len(f.iv) }

// Interval returns item x's belief interval.
func (f *Function) Interval(x int) Interval { return f.iv[x] }

// Intervals returns a copy of all intervals.
func (f *Function) Intervals() []Interval {
	return append([]Interval(nil), f.iv...)
}

// Contains reports whether item x's interval contains frequency freq.
func (f *Function) Contains(x int, freq float64) bool { return f.iv[x].Contains(freq) }

// IsIgnorant reports whether every interval is [0, 1].
func (f *Function) IsIgnorant() bool {
	for _, iv := range f.iv {
		if iv.Lo > Epsilon || iv.Hi < 1-Epsilon {
			return false
		}
	}
	return true
}

// IsPointValued reports whether every interval is a single point.
func (f *Function) IsPointValued() bool {
	for _, iv := range f.iv {
		if !iv.IsPoint() {
			return false
		}
	}
	return true
}

// IsInterval reports whether at least one interval is a true range (l < r).
func (f *Function) IsInterval() bool { return !f.IsPointValued() }

// CompliantMask reports, per item, whether the belief interval contains the
// item's true frequency.
func (f *Function) CompliantMask(trueFreqs []float64) []bool {
	mask := make([]bool, len(f.iv))
	for x, iv := range f.iv {
		mask[x] = iv.Contains(trueFreqs[x])
	}
	return mask
}

// Alpha returns the degree of compliancy: the fraction of items whose belief
// interval contains the true frequency.
func (f *Function) Alpha(trueFreqs []float64) float64 {
	c := 0
	for x, iv := range f.iv {
		if iv.Contains(trueFreqs[x]) {
			c++
		}
	}
	return float64(c) / float64(len(f.iv))
}

// IsCompliant reports whether every interval contains the true frequency.
func (f *Function) IsCompliant(trueFreqs []float64) bool {
	for x, iv := range f.iv {
		if !iv.Contains(trueFreqs[x]) {
			return false
		}
	}
	return true
}

// Refines reports whether f ⊑ g per Definition 7: every interval of f is
// contained in the corresponding interval of g. A more refined (narrower)
// belief function represents a better-informed hacker.
func (f *Function) Refines(g *Function) bool {
	if len(f.iv) != len(g.iv) {
		return false
	}
	for x := range f.iv {
		if !f.iv[x].Within(g.iv[x]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (f *Function) Clone() *Function {
	return &Function{iv: append([]Interval(nil), f.iv...)}
}

// Widen returns a new belief function with every interval widened by delta on
// both sides (clamped to [0,1]). By Lemma 8, widening never increases the
// O-estimate.
func (f *Function) Widen(delta float64) *Function {
	out := make([]Interval, len(f.iv))
	for x, iv := range f.iv {
		out[x] = Interval{Lo: iv.Lo - delta, Hi: iv.Hi + delta}.Clamp()
	}
	return &Function{iv: out}
}

// Ignorant builds the ignorant belief function over n items: every interval
// is [0, 1]. Per Lemma 1, the expected number of cracks under it is exactly 1.
func Ignorant(n int) *Function {
	ivs := make([]Interval, n)
	for x := range ivs {
		ivs[x] = Interval{Lo: 0, Hi: 1}
	}
	return &Function{iv: ivs}
}

// PointValued builds the compliant point-valued belief function: the hacker
// knows every frequency exactly. Per Lemma 3, the expected number of cracks
// under it equals the number of distinct observed frequencies.
func PointValued(trueFreqs []float64) *Function {
	ivs := make([]Interval, len(trueFreqs))
	for x, fr := range trueFreqs {
		ivs[x] = Interval{Lo: fr, Hi: fr}
	}
	return &Function{iv: ivs}
}

// UniformWidth builds the compliant interval belief function used by the
// Assess-Risk recipe (Figure 8, step 5): item x gets [f_x − δ, f_x + δ],
// clamped to [0, 1].
func UniformWidth(trueFreqs []float64, delta float64) *Function {
	ivs := make([]Interval, len(trueFreqs))
	for x, fr := range trueFreqs {
		ivs[x] = Interval{Lo: fr - delta, Hi: fr + delta}.Clamp()
	}
	return &Function{iv: ivs}
}

// FromSample builds the sample-derived belief function of Section 7.4
// (Figure 13): item x gets [f̂_x − δ', f̂_x + δ'] where f̂_x is x's frequency
// in the hacker's sample and δ' the sample's median frequency-group gap.
// It is simply UniformWidth applied to sampled frequencies; the distinct name
// documents intent at call sites.
func FromSample(sampleFreqs []float64, sampleMedianGap float64) *Function {
	return UniformWidth(sampleFreqs, sampleMedianGap)
}

// RandomCompliant builds a random compliant interval belief function for
// property tests: item x gets an interval containing trueFreqs[x] with
// independently random slack up to maxSlack on each side.
func RandomCompliant(trueFreqs []float64, maxSlack float64, rng *rand.Rand) *Function {
	ivs := make([]Interval, len(trueFreqs))
	for x, fr := range trueFreqs {
		ivs[x] = Interval{
			Lo: fr - rng.Float64()*maxSlack,
			Hi: fr + rng.Float64()*maxSlack,
		}.Clamp()
	}
	return &Function{iv: ivs}
}

// Intersect combines two belief functions into the tighter prior a hacker
// holds after learning both (e.g. own similar data plus a leaked sample):
// per item, the interval intersection. When some item's intervals are
// disjoint the sources conflict there; the result keeps an empty-marker
// interval collapsed to the midpoint boundary and the returned conflict list
// names the items, so callers can decide whether to trust one source or drop
// the item from the compliant set (it can no longer be compliant anyway
// unless one source already was wrong).
func Intersect(f, g *Function) (*Function, []int, error) {
	if f.Items() != g.Items() {
		return nil, nil, fmt.Errorf("belief: domains differ: %d vs %d", f.Items(), g.Items())
	}
	out := make([]Interval, f.Items())
	var conflicts []int
	for x := range out {
		a, b := f.iv[x], g.iv[x]
		lo, hi := math.Max(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)
		if lo > hi+Epsilon {
			conflicts = append(conflicts, x)
			// Collapse to the boundary between the disjoint intervals: a
			// point certain to be non-compliant with at least one source.
			mid := (lo + hi) / 2
			lo, hi = mid, mid
		}
		out[x] = Interval{Lo: lo, Hi: hi}
	}
	fn, err := New(out)
	if err != nil {
		return nil, nil, err
	}
	return fn, conflicts, nil
}
