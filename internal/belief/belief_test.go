package belief

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: 0.3, Hi: 0.5}
	for _, tc := range []struct {
		f    float64
		want bool
	}{
		{0.3, true}, {0.5, true}, {0.4, true},
		{0.3 - 1e-13, true}, // within Epsilon slack
		{0.29, false}, {0.51, false}, {0, false}, {1, false},
	} {
		if got := iv.Contains(tc.f); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestIntervalWithinAndPoint(t *testing.T) {
	a := Interval{0.3, 0.5}
	b := Interval{0.2, 0.6}
	if !a.Within(b) || b.Within(a) {
		t.Errorf("Within: a⊆b should hold, b⊆a should not")
	}
	if !a.Within(a) {
		t.Errorf("Within should be reflexive")
	}
	if !(Interval{0.4, 0.4}).IsPoint() {
		t.Error("point interval not detected")
	}
	if (Interval{0.4, 0.41}).IsPoint() {
		t.Error("range interval detected as point")
	}
}

func TestIntervalClampAndString(t *testing.T) {
	iv := Interval{-0.2, 1.3}.Clamp()
	if iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("Clamp = %v, want [0,1]", iv)
	}
	if (Interval{0.5, 0.5}).String() != "0.5" {
		t.Errorf("point String = %q", (Interval{0.5, 0.5}).String())
	}
	if (Interval{0.1, 0.5}).String() != "[0.1,0.5]" {
		t.Errorf("range String = %q", (Interval{0.1, 0.5}).String())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(empty): want error")
	}
	if _, err := New([]Interval{{0.6, 0.4}}); err == nil {
		t.Error("New(inverted): want error")
	}
	f, err := New([]Interval{{-0.5, 1.5}})
	if err != nil {
		t.Fatalf("New(clampable): %v", err)
	}
	if iv := f.Interval(0); iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("interval not clamped: %v", iv)
	}
}

// paperH is the belief function h of Figure 2 (ids 0..5 for items 1..6).
func paperH() *Function {
	return MustNew([]Interval{
		{0, 1}, {0.4, 0.5}, {0.5, 0.5}, {0.4, 0.6}, {0.1, 0.4}, {0.5, 0.5},
	})
}

// bigMartFreqs are the true BigMart frequencies (Figure 1).
var bigMartFreqs = []float64{0.5, 0.4, 0.5, 0.5, 0.3, 0.5}

func TestClassification(t *testing.T) {
	n := len(bigMartFreqs)
	f := PointValued(bigMartFreqs)
	g := Ignorant(n)
	h := paperH()

	if !f.IsPointValued() || f.IsInterval() || f.IsIgnorant() {
		t.Error("f should be point-valued, not interval, not ignorant")
	}
	if !g.IsIgnorant() || !g.IsInterval() {
		t.Error("g should be ignorant and interval")
	}
	if h.IsIgnorant() || h.IsPointValued() || !h.IsInterval() {
		t.Error("h should be a non-ignorant interval function")
	}
	// f, g, h are all compliant with the true frequencies (Figure 2).
	for name, fn := range map[string]*Function{"f": f, "g": g, "h": h} {
		if !fn.IsCompliant(bigMartFreqs) {
			t.Errorf("%s should be compliant", name)
		}
		if a := fn.Alpha(bigMartFreqs); a != 1 {
			t.Errorf("%s Alpha = %v, want 1", name, a)
		}
	}
}

func TestHalfCompliantK(t *testing.T) {
	// k of Figure 2 guesses wrong on the first three items: 0.5-compliant.
	k := MustNew([]Interval{
		{0.6, 0.7}, {0.1, 0.3}, {0.0, 0.4}, {0.4, 0.6}, {0.1, 0.4}, {0.5, 0.5},
	})
	if got := k.Alpha(bigMartFreqs); got != 0.5 {
		t.Errorf("Alpha(k) = %v, want 0.5", got)
	}
	mask := k.CompliantMask(bigMartFreqs)
	want := []bool{false, false, false, true, true, true}
	for x := range want {
		if mask[x] != want[x] {
			t.Errorf("mask[%d] = %v, want %v", x, mask[x], want[x])
		}
	}
}

func TestRefines(t *testing.T) {
	f := PointValued(bigMartFreqs)
	g := Ignorant(len(bigMartFreqs))
	h := paperH()
	// Point-valued refines everything compliant built around the same truth.
	if !f.Refines(g) || !f.Refines(h) || !h.Refines(g) {
		t.Error("expected f ⊑ h ⊑ g")
	}
	if g.Refines(h) || h.Refines(f) {
		t.Error("refinement should not hold in the widening direction")
	}
	if f.Refines(Ignorant(3)) {
		t.Error("different domain sizes must not refine")
	}
}

func TestWiden(t *testing.T) {
	f := PointValued(bigMartFreqs)
	w := f.Widen(0.05)
	if !f.Refines(w) {
		t.Error("f should refine its widening")
	}
	if iv := w.Interval(1); iv.Lo < 0.35-1e-12 || iv.Lo > 0.35+1e-12 || iv.Hi < 0.45-1e-12 || iv.Hi > 0.45+1e-12 {
		t.Errorf("widened interval = %v, want [0.35,0.45]", iv)
	}
	// Widening clamps at the domain boundary.
	w2 := f.Widen(0.9)
	if !w2.IsIgnorant() {
		t.Error("huge widening should reach the ignorant function")
	}
}

func TestUniformWidthAndFromSample(t *testing.T) {
	f := UniformWidth(bigMartFreqs, 0.05)
	if !f.IsCompliant(bigMartFreqs) {
		t.Error("UniformWidth must be compliant")
	}
	if iv := f.Interval(4); iv.Lo < 0.25-1e-12 || iv.Hi > 0.35+1e-12 {
		t.Errorf("interval(4) = %v, want [0.25,0.35]", iv)
	}
	s := FromSample([]float64{0.52, 0.41, 0.48, 0.5, 0.33, 0.5}, 0.05)
	if got := s.Alpha(bigMartFreqs); got != 1 {
		t.Errorf("sample belief Alpha = %v, want 1 (all within 0.05)", got)
	}
	s2 := FromSample([]float64{0.8, 0.41, 0.48, 0.5, 0.33, 0.5}, 0.05)
	if got := s2.Alpha(bigMartFreqs); got != 5.0/6 {
		t.Errorf("sample belief Alpha = %v, want 5/6", got)
	}
}

func TestAlphaCompliant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trueFreqs := make([]float64, 100)
	for i := range trueFreqs {
		trueFreqs[i] = float64(i+1) / 200
	}
	base := UniformWidth(trueFreqs, 0.002)
	for _, alpha := range []float64{0, 0.25, 0.5, 0.8, 1} {
		pert, mask, err := AlphaCompliant(base, trueFreqs, alpha, rng)
		if err != nil {
			t.Fatalf("AlphaCompliant(%v): %v", alpha, err)
		}
		got := pert.Alpha(trueFreqs)
		if got != alpha {
			t.Errorf("alpha=%v: perturbed Alpha = %v", alpha, got)
		}
		for x, ok := range mask {
			if ok != pert.Contains(x, trueFreqs[x]) {
				t.Errorf("alpha=%v: mask[%d]=%v disagrees with interval", alpha, x, ok)
			}
		}
	}
	if _, _, err := AlphaCompliant(base, trueFreqs, -0.1, rng); err == nil {
		t.Error("negative alpha: want error")
	}
	bad := MustNew([]Interval{{0.9, 1}})
	if _, _, err := AlphaCompliant(bad, []float64{0.1}, 0.5, rng); err == nil {
		t.Error("non-compliant base: want error")
	}
}

func TestMisguideItemExcludesTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distinct := []float64{0.1, 0.3, 0.5, 0.7}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		truth := distinct[r.Intn(len(distinct))]
		orig := Interval{truth - 0.05, truth + 0.05}.Clamp()
		got := MisguideItem(orig, truth, distinct, rng)
		return !got.Contains(truth) && got.Lo <= got.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Degenerate: a single distinct frequency still gets excluded via the
	// shift fallback.
	got := MisguideItem(Interval{0.45, 0.55}, 0.5, []float64{0.5}, rng)
	if got.Contains(0.5) {
		t.Errorf("fallback interval %v still contains the truth", got)
	}
}

func TestShrinkCompliantSet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mask := make([]bool, 10)
	for i := 0; i < 8; i++ {
		mask[i] = true
	}
	out := ShrinkCompliantSet(mask, rng)
	c := 0
	for x, ok := range out {
		if ok {
			c++
			if !mask[x] {
				t.Error("shrink turned a non-compliant item compliant")
			}
		}
	}
	if c != 4 {
		t.Errorf("shrink left %d compliant, want 4", c)
	}
	// Input must be unchanged.
	in := 0
	for _, ok := range mask {
		if ok {
			in++
		}
	}
	if in != 8 {
		t.Error("ShrinkCompliantSet mutated its input")
	}
}

func TestRefinesAlpha(t *testing.T) {
	trueFreqs := []float64{0.1, 0.2, 0.3, 0.4}
	g := UniformWidth(trueFreqs, 0.05)
	gMask := []bool{true, true, true, true}
	// f: same intervals, fewer compliant items -> f ⪯_C g.
	f := g.Clone()
	fMask := []bool{true, false, true, false}
	if !RefinesAlpha(f, fMask, g, gMask) {
		t.Error("subset of compliant items with equal intervals should satisfy ⪯_C")
	}
	if RefinesAlpha(g, gMask, f, fMask) {
		t.Error("⪯_C should not hold in the opposite direction")
	}
	// Widening f on a compliant item keeps f ⪯_C g (g's intervals ⊆ f's).
	wide := f.Widen(0.01)
	if !RefinesAlpha(wide, fMask, g, gMask) {
		t.Error("wider intervals on the smaller compliant set should still satisfy ⪯_C")
	}
	// Narrowing f below g's width on a compliant item breaks (ii).
	narrow := MustNew([]Interval{{0.09, 0.11}, {0.15, 0.25}, {0.25, 0.35}, {0.35, 0.45}})
	if RefinesAlpha(narrow, fMask, g, gMask) {
		t.Error("narrower interval on a compliant item should break ⪯_C")
	}
}

func TestIgnorantPointValuedProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		freqs := make([]float64, n)
		for i := range freqs {
			freqs[i] = rng.Float64()
		}
		ig := Ignorant(n)
		pv := PointValued(freqs)
		rc := RandomCompliant(freqs, 0.2, rng)
		return ig.IsCompliant(freqs) && pv.IsCompliant(freqs) && rc.IsCompliant(freqs) &&
			pv.Refines(ig) && pv.Refines(rc) && rc.Refines(ig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersect(t *testing.T) {
	f := MustNew([]Interval{{0.1, 0.5}, {0.2, 0.4}, {0.0, 0.2}})
	g := MustNew([]Interval{{0.3, 0.7}, {0.2, 0.4}, {0.5, 0.9}})
	out, conflicts, err := Intersect(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if iv := out.Interval(0); iv.Lo != 0.3 || iv.Hi != 0.5 {
		t.Errorf("intersection(0) = %v, want [0.3,0.5]", iv)
	}
	if iv := out.Interval(1); iv.Lo != 0.2 || iv.Hi != 0.4 {
		t.Errorf("intersection(1) = %v", iv)
	}
	if len(conflicts) != 1 || conflicts[0] != 2 {
		t.Errorf("conflicts = %v, want [2]", conflicts)
	}
	// The intersection refines both inputs on conflict-free items.
	if !out.Interval(0).Within(f.Interval(0)) || !out.Interval(0).Within(g.Interval(0)) {
		t.Error("intersection must refine both inputs")
	}
	if _, _, err := Intersect(f, Ignorant(2)); err == nil {
		t.Error("domain mismatch: want error")
	}
}

func TestIntersectTightensOE(t *testing.T) {
	// Combining two compliant sources can only tighten (Lemma 8 direction).
	rng := rand.New(rand.NewSource(201))
	trueFreqs := []float64{0.1, 0.25, 0.4, 0.6, 0.8}
	a := RandomCompliant(trueFreqs, 0.2, rng)
	b := RandomCompliant(trueFreqs, 0.2, rng)
	out, conflicts, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Fatalf("compliant sources cannot conflict: %v", conflicts)
	}
	if !out.IsCompliant(trueFreqs) {
		t.Error("intersection of compliant functions must stay compliant")
	}
	if !out.Refines(a) || !out.Refines(b) {
		t.Error("intersection must refine both sources")
	}
}
