package belief

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Digest returns a stable content address of the belief function: a hex
// SHA-256 over the IEEE-754 bits of every interval bound in item order.
// Construction (New, Parse) canonicalizes intervals — clamping to [0, 1] and
// rejecting NaN — before they reach a Function, so two textually different
// specs that parse to the same prior digest equal. Assessment caches key on
// this digest rather than on the raw spec text (see internal/riskcache).
func (f *Function) Digest() string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(f.iv)))
	h.Write(buf[:])
	for _, iv := range f.iv {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(iv.Lo))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(iv.Hi))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
