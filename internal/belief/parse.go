package belief

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MaxParseLineBytes bounds one line of the Parse format. A legitimate fact is
// tens of bytes; anything near the limit is malformed or hostile input.
const MaxParseLineBytes = 1 << 16

// parseBound parses one frequency bound, rejecting the NaN and ±Inf values
// strconv.ParseFloat happily returns: they would either poison interval
// comparisons (NaN compares false with everything) or defeat clamping.
func parseBound(s string, no int) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("belief: line %d: bad bound %q", no, s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("belief: line %d: non-finite bound %q", no, s)
	}
	return v, nil
}

// Parse reads a belief function from a simple text format, one fact per
// line:
//
//	<item> <lo> <hi>   # interval belief for one item
//	<item> <freq>      # point belief
//	* <lo> <hi>        # default for items not mentioned (default: 0 1)
//	# comment          # blank lines and #-comments are skipped
//
// Items are ids in [0, n). Later lines override earlier ones. The result is
// the hacker's prior: everything not mentioned stays at the declared default
// (ignorant when no '*' line appears).
func Parse(r io.Reader, n int) (*Function, error) {
	if n <= 0 {
		return nil, fmt.Errorf("belief: domain size %d", n)
	}
	def := Interval{Lo: 0, Hi: 1}
	type line struct {
		item int
		iv   Interval
	}
	var lines []line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<10), MaxParseLineBytes)
	no := 0
	for sc.Scan() {
		no++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if i := strings.Index(text, "#"); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("belief: line %d: want '<item> <lo> [<hi>]'", no)
		}
		lo, err := parseBound(fields[1], no)
		if err != nil {
			return nil, err
		}
		hi := lo
		if len(fields) == 3 {
			hi, err = parseBound(fields[2], no)
			if err != nil {
				return nil, err
			}
		}
		if lo > hi {
			return nil, fmt.Errorf("belief: line %d: inverted interval [%v,%v]", no, lo, hi)
		}
		iv := Interval{Lo: lo, Hi: hi}.Clamp()
		if fields[0] == "*" {
			def = iv
			continue
		}
		item, err := strconv.Atoi(fields[0])
		if err != nil || item < 0 || item >= n {
			return nil, fmt.Errorf("belief: line %d: item %q outside [0,%d)", no, fields[0], n)
		}
		lines = append(lines, line{item: item, iv: iv})
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("belief: input line longer than %d bytes: %w", MaxParseLineBytes, err)
		}
		return nil, err
	}
	ivs := make([]Interval, n)
	for i := range ivs {
		ivs[i] = def
	}
	for _, l := range lines {
		ivs[l.item] = l.iv
	}
	return New(ivs)
}

// Write renders the belief function in the Parse format, listing only the
// items whose interval differs from [0, 1].
func Write(w io.Writer, f *Function) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# belief function: <item> <lo> <hi>; unlisted items are ignorant")
	for x := 0; x < f.Items(); x++ {
		iv := f.Interval(x)
		if iv.Lo <= Epsilon && iv.Hi >= 1-Epsilon {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d %g %g\n", x, iv.Lo, iv.Hi); err != nil {
			return err
		}
	}
	return bw.Flush()
}
