package belief

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	in := `
# Figure 2's h, roughly
* 0 1
1 0.4 0.5
2 0.5          # point belief
3 0.4 0.6
4 0.1 0.4
5 0.5 0.5
`
	f, err := Parse(strings.NewReader(in), 6)
	if err != nil {
		t.Fatal(err)
	}
	if iv := f.Interval(0); iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("item 0 default = %v, want [0,1]", iv)
	}
	if iv := f.Interval(2); !iv.IsPoint() || iv.Lo != 0.5 {
		t.Errorf("item 2 = %v, want point 0.5", iv)
	}
	if iv := f.Interval(4); iv.Lo != 0.1 || iv.Hi != 0.4 {
		t.Errorf("item 4 = %v", iv)
	}
}

func TestParseDefaultLine(t *testing.T) {
	f, err := Parse(strings.NewReader("* 0.2 0.3\n1 0.9\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if iv := f.Interval(0); iv.Lo != 0.2 || iv.Hi != 0.3 {
		t.Errorf("default = %v", iv)
	}
	if iv := f.Interval(1); iv.Lo != 0.9 {
		t.Errorf("override = %v", iv)
	}
}

func TestParseOverride(t *testing.T) {
	f, err := Parse(strings.NewReader("0 0.1 0.2\n0 0.3 0.4\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv := f.Interval(0); iv.Lo != 0.3 {
		t.Errorf("later line should win: %v", iv)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"0\n",           // too few fields
		"0 1 2 3\n",     // too many
		"0 x\n",         // bad bound
		"0 0.1 y\n",     // bad hi
		"0 0.5 0.4\n",   // inverted
		"9 0.1 0.2\n",   // item out of range
		"-1 0.1 0.2\n",  // negative item
		"foo 0.1 0.2\n", // non-numeric item
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in), 3); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
	if _, err := Parse(strings.NewReader(""), 0); err == nil {
		t.Error("n = 0: want error")
	}
	// Empty input = fully ignorant function.
	f, err := Parse(strings.NewReader(""), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsIgnorant() {
		t.Error("empty input should give the ignorant function")
	}
}

func TestParseClampsOutOfRange(t *testing.T) {
	f, err := Parse(strings.NewReader("0 -0.5 1.7\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv := f.Interval(0); iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("clamped = %v, want [0,1]", iv)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	orig := MustNew([]Interval{
		{Lo: 0, Hi: 1}, {Lo: 0.4, Hi: 0.5}, {Lo: 0.5, Hi: 0.5}, {Lo: 0.25, Hi: 0.75},
	})
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 4; x++ {
		a, b := orig.Interval(x), back.Interval(x)
		if a.Lo != b.Lo || a.Hi != b.Hi {
			t.Errorf("item %d: %v vs %v", x, a, b)
		}
	}
}
