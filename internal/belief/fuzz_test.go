package belief

import (
	"math"
	"strings"
	"testing"
)

// FuzzBeliefParse asserts Parse's contract on arbitrary bytes: it either
// errors or returns a Function whose every interval is finite, ordered, and
// inside [0, 1] — the invariants the rest of the system builds on.
func FuzzBeliefParse(f *testing.F) {
	f.Add("0 0.5\n")
	f.Add("* 0 1\n2 0.25 0.75\n")
	f.Add("# comment\n\n1 0.1 0.2 # trailing\n")
	f.Add("0 NaN\n")
	f.Add("0 Inf\n")
	f.Add("0 -Inf 5\n")
	f.Add("0 1e400\n")
	f.Add("* 0.3\n")
	f.Add("5 0.9 0.1\n")
	f.Add("bad line\n")
	f.Fuzz(func(t *testing.T, in string) {
		bf, err := Parse(strings.NewReader(in), 8)
		if err != nil {
			return
		}
		for x := 0; x < bf.Items(); x++ {
			iv := bf.Interval(x)
			if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
				t.Fatalf("item %d: non-finite interval %v escaped Parse", x, iv)
			}
			if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi+Epsilon {
				t.Fatalf("item %d: invalid interval %v escaped Parse", x, iv)
			}
		}
		// Accepted functions must round-trip through Write.
		var sb strings.Builder
		if err := Write(&sb, bf); err != nil {
			t.Fatalf("Write of accepted function: %v", err)
		}
		if _, err := Parse(strings.NewReader(sb.String()), 8); err != nil {
			t.Fatalf("re-Parse of written function: %v", err)
		}
	})
}

func TestParseRejectsNonFinite(t *testing.T) {
	for _, in := range []string{"0 NaN\n", "0 Inf\n", "0 0.1 Inf\n", "* NaN NaN\n", "0 1e999\n"} {
		if _, err := Parse(strings.NewReader(in), 4); err == nil {
			t.Errorf("Parse(%q): want non-finite error", in)
		}
	}
}

func TestNewRejectsNaN(t *testing.T) {
	if _, err := New([]Interval{{Lo: math.NaN(), Hi: 1}}); err == nil {
		t.Error("New with NaN Lo: want error")
	}
	if _, err := New([]Interval{{Lo: 0, Hi: math.NaN()}}); err == nil {
		t.Error("New with NaN Hi: want error")
	}
	// ±Inf is clamped rather than rejected in New (the numeric API), but the
	// result must be a valid interval.
	bf, err := New([]Interval{{Lo: math.Inf(-1), Hi: math.Inf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if iv := bf.Interval(0); iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("Inf clamps to %v, want [0,1]", iv)
	}
}

func TestParseRejectsOversizedLine(t *testing.T) {
	in := "0 " + strings.Repeat("1", MaxParseLineBytes+10) + "\n"
	if _, err := Parse(strings.NewReader(in), 4); err == nil {
		t.Error("want oversized-line error")
	}
}
