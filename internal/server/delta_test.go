package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// postDelta sends a delta request and decodes the response.
func postDelta(t *testing.T, h http.Handler, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/assess/delta", bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode response %q: %v", rec.Body.String(), err)
		}
	}
	return rec
}

func deltaBody(baseDigest string, dtx int, items, deltas []int, extra string) string {
	ji, _ := json.Marshal(items)
	jd, _ := json.Marshal(deltas)
	return fmt.Sprintf(`{"base_digest": %q, "diff": {"dtransactions": %d, "items": %s, "deltas": %s}%s}`,
		baseDigest, dtx, ji, jd, extra)
}

// TestDeltaEquivalentToFullAssess is the serving half of the delta
// equivalence property: the verdict served by /v1/assess/delta carries the
// same cache key and the same outcome as a full /v1/assess over the evolved
// counts — and because the keys match, the delta-computed entry satisfies
// the full request from cache.
func TestDeltaEquivalentToFullAssess(t *testing.T) {
	hDelta := New(Config{}).Handler()
	hFull := New(Config{}).Handler() // independent server: no shared cache

	var base AssessResponse
	if rec := post(t, hDelta, countsBody(20, ""), &base); rec.Code != http.StatusOK {
		t.Fatalf("base assess: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if base.Digest == "" {
		t.Fatal("assess response carries no digest")
	}

	var dres DeltaResponse
	body := deltaBody(base.Digest, 1, []int{0, 3}, []int{2, -1}, "")
	if rec := postDelta(t, hDelta, body, &dres); rec.Code != http.StatusOK {
		t.Fatalf("delta: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if !dres.Incremental {
		t.Error("real-pipeline delta: want incremental=true")
	}
	if dres.BaseDigest != base.Digest || dres.Digest == base.Digest {
		t.Errorf("digest chain broken: base %s -> %s", dres.BaseDigest, dres.Digest)
	}

	// Independent full assessment over the evolved counts (41 transactions,
	// counts[0] 1->3, counts[3] 4->3).
	counts := make([]int, 20)
	for i := range counts {
		counts[i] = i + 1
	}
	counts[0], counts[3] = 3, 3
	raw, _ := json.Marshal(counts)
	var full AssessResponse
	rec := post(t, hFull, fmt.Sprintf(`{"dataset": {"transactions": 41, "counts": %s}}`, raw), &full)
	if rec.Code != http.StatusOK {
		t.Fatalf("full assess: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if full.Key != dres.Key {
		t.Errorf("delta and full keys differ: %s vs %s — content addressing broken", dres.Key, full.Key)
	}
	if full.Digest != dres.Digest {
		t.Errorf("delta digest %s != rebuilt digest %s", dres.Digest, full.Digest)
	}
	got, want := *dres.Recipe, *full.Recipe
	got.WallMS, got.CPUMS, want.WallMS, want.CPUMS = 0, 0, 0, 0
	if got != want {
		t.Errorf("delta verdict diverged from full rebuild:\n got %+v\nwant %+v", got, want)
	}

	// Cache interaction: on the delta server, a full request for the evolved
	// counts must hit the entry the delta path stored.
	var hit AssessResponse
	post(t, hDelta, fmt.Sprintf(`{"dataset": {"transactions": 41, "counts": %s}}`, raw), &hit)
	if !hit.Cached {
		t.Error("full assess after equivalent delta: want cache hit")
	}
	// And the reverse: repeating the delta hits too.
	var again DeltaResponse
	postDelta(t, hDelta, body, &again)
	if !again.Cached {
		t.Error("repeated delta: want cache hit")
	}
	if again.Incremental {
		t.Error("cache-served delta must not claim incremental computation")
	}
}

// TestDeltaChainThroughSessions walks a chain of diffs, each using the
// previous response's digest as its base, and checks the warm-session path
// serves every hop.
func TestDeltaChainThroughSessions(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	var base AssessResponse
	if rec := post(t, h, countsBody(15, `, "runs": 2`), &base); rec.Code != http.StatusOK {
		t.Fatalf("base assess: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	digest := base.Digest
	for hop := 0; hop < 4; hop++ {
		var dres DeltaResponse
		body := deltaBody(digest, 0, []int{hop}, []int{1}, `, "runs": 2`)
		if rec := postDelta(t, h, body, &dres); rec.Code != http.StatusOK {
			t.Fatalf("hop %d: HTTP %d: %s", hop, rec.Code, rec.Body.String())
		}
		if !dres.Incremental {
			t.Errorf("hop %d: want incremental", hop)
		}
		if dres.Recipe == nil {
			t.Fatalf("hop %d: no recipe outcome", hop)
		}
		digest = dres.Digest
	}
	if n := s.deltaIncremental.Load(); n != 4 {
		t.Errorf("delta_incremental = %d, want 4", n)
	}
	if s.sessionCount() == 0 {
		t.Error("no warm session pooled after a chain")
	}
}

func TestDeltaBaseMissAndBadInput(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	var e errorResponse
	rec := postDelta(t, h, deltaBody(strings.Repeat("ab", 32), 0, []int{0}, []int{1}, ""), &e)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown base digest: HTTP %d, want 404 (%s)", rec.Code, rec.Body.String())
	}
	if s.deltaBaseMiss.Load() != 1 {
		t.Errorf("delta_base_miss = %d, want 1", s.deltaBaseMiss.Load())
	}

	var base AssessResponse
	post(t, h, countsBody(10, ""), &base)

	// Diff that drives a count negative: rejected by ApplyDiff validation.
	rec = postDelta(t, h, deltaBody(base.Digest, 0, []int{0}, []int{-5}, ""), &e)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("negative count diff: HTTP %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	// Missing base digest.
	rec = postDelta(t, h, `{"diff": {"items": [0], "deltas": [1]}}`, &e)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing base_digest: HTTP %d, want 400", rec.Code)
	}
	// Bad tau.
	rec = postDelta(t, h, deltaBody(base.Digest, 0, []int{0}, []int{1}, `, "tau": 1.5`), &e)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("tau out of range: HTTP %d, want 400", rec.Code)
	}
}

// TestDeltaDegradedServedNotCached pins the degraded-200 contract on the
// delta endpoint: an injected degraded outcome is served with 200 but never
// stored, so the next identical delta recomputes.
func TestDeltaDegradedServedNotCached(t *testing.T) {
	computes := 0
	s := New(Config{AssessFn: func(_ context.Context, job *Job) (*Outcome, error) {
		computes++
		return &Outcome{Mode: "recipe", Method: "stub", Degraded: true, DegradedReason: "test"}, nil
	}})
	h := s.Handler()
	var base AssessResponse
	post(t, h, countsBody(8, ""), &base)

	body := deltaBody(base.Digest, 0, []int{1}, []int{1}, "")
	for i := 0; i < 2; i++ {
		var dres DeltaResponse
		if rec := postDelta(t, h, body, &dres); rec.Code != http.StatusOK {
			t.Fatalf("delta %d: HTTP %d: %s", i, rec.Code, rec.Body.String())
		}
		if !dres.Degraded || dres.Cached {
			t.Errorf("delta %d: degraded=%v cached=%v, want degraded fresh", i, dres.Degraded, dres.Cached)
		}
		if dres.Incremental {
			t.Error("injected AssessFn must not be reported as incremental")
		}
	}
	if computes != 3 { // base + two uncacheable deltas
		t.Errorf("computes = %d, want 3 (degraded results must not be cached)", computes)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// readSSE reads the next event (skipping keep-alive comments) or fails after
// the deadline baked into the connection.
func readSSE(br *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, ":"): // keep-alive comment
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if ev.name != "" || ev.data != "" {
				return ev, nil
			}
		}
	}
}

// TestSubscribePushesDeltaVerdicts drives the full pub/sub loop over a real
// HTTP server: subscribe to a digest, apply two chained deltas, and check
// the stream delivers the initial verdict plus one event per delta — the
// second proving the watch followed the digest chain.
func TestSubscribePushesDeltaVerdicts(t *testing.T) {
	s := New(Config{KeepAlive: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var base AssessResponse
	resp, err := http.Post(ts.URL+"/v1/assess", "application/json", strings.NewReader(countsBody(12, `, "runs": 2`)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&base); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sub, err := http.Get(ts.URL + "/v1/assess/subscribe?digest=" + base.Digest + "&runs=2")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	if sub.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(sub.Body)
		t.Fatalf("subscribe: HTTP %d: %s", sub.StatusCode, b)
	}
	if ct := sub.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("subscribe Content-Type = %q", ct)
	}
	br := bufio.NewReader(sub.Body)
	ev, err := readSSE(br)
	if err != nil || ev.name != "verdict" {
		t.Fatalf("initial event = %+v, err %v; want verdict", ev, err)
	}
	var initial DeltaResponse
	if err := json.Unmarshal([]byte(ev.data), &initial); err != nil {
		t.Fatal(err)
	}
	if initial.Digest != base.Digest || initial.Recipe == nil {
		t.Fatalf("initial verdict %+v: want digest %s with recipe outcome", initial, base.Digest)
	}

	digest := base.Digest
	for hop := 0; hop < 2; hop++ {
		body := deltaBody(digest, 0, []int{hop}, []int{1}, `, "runs": 2`)
		dresp, err := http.Post(ts.URL+"/v1/assess/delta", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var dres DeltaResponse
		if err := json.NewDecoder(dresp.Body).Decode(&dres); err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("hop %d: HTTP %d", hop, dresp.StatusCode)
		}
		ev, err := readSSE(br)
		if err != nil || ev.name != "verdict" {
			t.Fatalf("hop %d: event = %+v, err %v; want verdict", hop, ev, err)
		}
		var pushed DeltaResponse
		if err := json.Unmarshal([]byte(ev.data), &pushed); err != nil {
			t.Fatal(err)
		}
		if pushed.Digest != dres.Digest || pushed.BaseDigest != digest {
			t.Errorf("hop %d: pushed digest chain %s->%s, want %s->%s",
				hop, pushed.BaseDigest, pushed.Digest, digest, dres.Digest)
		}
		digest = dres.Digest
	}
}

// TestSubscribeDrainContract is satellite (d): BeginDrain closes every
// stream with a terminal shutdown event, /readyz answers 503 by the time a
// client sees that event, and the handler goroutines all exit (checked with
// a goroutine-count assertion, meaningful under -race too).
func TestSubscribeDrainContract(t *testing.T) {
	s := New(Config{KeepAlive: 10 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var base AssessResponse
	resp, err := client.Post(ts.URL+"/v1/assess", "application/json", strings.NewReader(countsBody(10, "")))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&base); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	const streams = 3
	type streamResult struct {
		readyCode int
		err       error
	}
	results := make(chan streamResult, streams)
	for i := 0; i < streams; i++ {
		go func() {
			sub, err := client.Get(ts.URL + "/v1/assess/subscribe?digest=" + base.Digest)
			if err != nil {
				results <- streamResult{err: err}
				return
			}
			defer sub.Body.Close()
			br := bufio.NewReader(sub.Body)
			for {
				ev, err := readSSE(br)
				if err != nil {
					results <- streamResult{err: fmt.Errorf("stream ended without shutdown event: %w", err)}
					return
				}
				if ev.name != "shutdown" {
					continue
				}
				// The ordering contract: by the time any client sees the
				// terminal event, readiness must already be 503.
				rr, err := client.Get(ts.URL + "/readyz")
				if err != nil {
					results <- streamResult{err: err}
					return
				}
				io.Copy(io.Discard, rr.Body)
				rr.Body.Close()
				// The stream must now end cleanly.
				if _, err := readSSE(br); !errors.Is(err, io.EOF) {
					results <- streamResult{readyCode: rr.StatusCode, err: fmt.Errorf("stream still open after shutdown event (err=%v)", err)}
					return
				}
				results <- streamResult{readyCode: rr.StatusCode}
				return
			}
		}()
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.subActive.Load() != streams {
		if time.Now().After(deadline) {
			t.Fatalf("streams never registered: active=%d", s.subActive.Load())
		}
		time.Sleep(time.Millisecond)
	}

	s.BeginDrain()
	for i := 0; i < streams; i++ {
		select {
		case res := <-results:
			if res.err != nil {
				t.Fatal(res.err)
			}
			if res.readyCode != http.StatusServiceUnavailable {
				t.Errorf("readyz during stream shutdown = %d, want 503", res.readyCode)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("stream did not shut down after BeginDrain")
		}
	}
	if n := s.subActive.Load(); n != 0 {
		t.Errorf("subscribers still registered after drain: %d", n)
	}
	// New subscriptions are refused while draining.
	rr, err := client.Get(ts.URL + "/v1/assess/subscribe?digest=" + base.Digest)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("subscribe while draining = %d, want 503", rr.StatusCode)
	}
	// Goroutine-leak assertion: once the client connections are torn down,
	// the handler goroutines (and their tickers) must be gone.
	client.CloseIdleConnections()
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubscribeRejectsUnknownAndBadParams(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/assess/subscribe", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("no digest: HTTP %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/assess/subscribe?digest=deadbeef", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown digest: HTTP %d, want 404", rec.Code)
	}

	var base AssessResponse
	post(t, h, countsBody(8, ""), &base)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/assess/subscribe?digest="+base.Digest+"&tau=nope", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad tau param: HTTP %d, want 400", rec.Code)
	}
}

// TestVarsCarriesDeltaCounters checks /debug/vars exposes the new counter
// groups.
func TestVarsCarriesDeltaCounters(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	var base AssessResponse
	post(t, h, countsBody(9, ""), &base)
	var dres DeltaResponse
	postDelta(t, h, deltaBody(base.Digest, 1, []int{2}, []int{1}, ""), &dres)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	delta, ok := vars["delta"].(map[string]any)
	if !ok {
		t.Fatalf("vars has no delta group: %v", vars)
	}
	if delta["requests"].(float64) != 1 || delta["incremental"].(float64) != 1 {
		t.Errorf("delta counters = %v, want 1 request / 1 incremental", delta)
	}
	if _, ok := vars["subscribe"].(map[string]any); !ok {
		t.Error("vars has no subscribe group")
	}
	if _, ok := vars["tables"]; !ok {
		t.Error("vars has no tables registry stats")
	}
}
