// Incremental assessment over the wire: POST /v1/assess/delta takes a base
// table digest plus a sparse counts diff and answers with a full verdict for
// the evolved release; GET /v1/assess/subscribe holds an SSE stream open and
// pushes every fresh verdict for the digests it watches.
//
// The delta path composes three invariants proved lower in the stack:
//
//   - recipe.DeltaSession's equivalence property: a verdict computed by
//     patching (ApplyDiffGrouping + bipartite.Rebin + core.OEDelta) is
//     byte-identical to AssessRiskCtx on a freshly built table with the same
//     counts, options, and seed.
//   - dataset.ApplyDiff's digest refresh: the applied table's digest equals
//     the digest of a table built from scratch with the post-diff counts.
//   - riskcache content addressing: the delta request's cache key is
//     riskcache.Key(appliedDigest, "", options) — the SAME key a plain
//     /v1/assess with the evolved counts would use. A verdict computed
//     through the delta path therefore hits for full requests and vice
//     versa; the cache cannot tell the two paths apart, because there is
//     nothing to tell apart.
//
// Sessions are pooled between requests keyed by (current digest, options):
// a client chaining diffs release after release keeps hitting the same warm
// session, and each hop costs the patch, not the rebuild. A pool miss falls
// back to building a session from the registered base table — still
// incremental for the diff itself. Sessions are checked out exclusively, so
// concurrent deltas against one base each get their own (the losers build
// fresh ones); broken sessions are dropped, never pooled.
//
// Subscribe streams are deliberately NOT counted in inflightJobs: they are
// long-lived by design, and counting them would deadlock DrainWait. Instead
// BeginDrain closes drainCh — strictly after flipping readiness, so /readyz
// answers 503 before any stream learns about the shutdown — and every stream
// writes a terminal "shutdown" event and exits.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/recipe"
	"repro/internal/riskcache"
)

// DeltaRequest is the POST /v1/assess/delta body. Delta assessment is
// recipe-mode only: the owner's Assess-Risk decision is the thing that gets
// re-run release after release; attack-mode estimates take a belief spec and
// go through POST /v1/assess.
type DeltaRequest struct {
	// BaseDigest names the table the diff applies to. It must be registered
	// — returned as "digest" by a previous /v1/assess or /v1/assess/delta
	// response — or the request fails 404 and the client falls back to a
	// full POST /v1/assess.
	BaseDigest string   `json:"base_digest"`
	Diff       DiffSpec `json:"diff"`

	Tau       *float64 `json:"tau,omitempty"`     // default 0.1
	Runs      int      `json:"runs,omitempty"`    // default 5
	Seed      *int64   `json:"seed,omitempty"`    // default 1
	Comfort   float64  `json:"comfort,omitempty"` // default 0.5
	Propagate *bool    `json:"propagate,omitempty"`

	// TimeoutMS optionally lowers (never raises) the server's per-request
	// budget for this request.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DiffSpec mirrors dataset.CountsDiff on the wire.
type DiffSpec struct {
	DTransactions int   `json:"dtransactions,omitempty"`
	Items         []int `json:"items"`
	Deltas        []int `json:"deltas"`
}

// DeltaResponse is the POST /v1/assess/delta reply and the SSE "verdict"
// event payload. Digest (promoted from AssessResponse) is the evolved
// table's digest — the base_digest for the next diff in the chain.
type DeltaResponse struct {
	AssessResponse
	BaseDigest string `json:"base_digest,omitempty"`
	// Incremental: the verdict came from a session patch rather than a full
	// rebuild. Provenance only — the bytes are identical either way.
	Incremental bool `json:"incremental,omitempty"`
}

// applyOptionParams fills the recipe option defaults shared by /v1/assess,
// /v1/assess/delta, and /v1/assess/subscribe, so the three endpoints cannot
// drift apart and compute different cache keys for the same request.
func applyOptionParams(job *Job, tau *float64, runs int, seed *int64, comfort float64, propagate *bool) {
	job.Tau, job.Runs, job.Seed, job.Comfort, job.Propagate = 0.1, 5, 1, 0.5, true
	if tau != nil {
		job.Tau = *tau
	}
	if runs > 0 {
		job.Runs = runs
	}
	if seed != nil {
		job.Seed = *seed
	}
	if comfort > 0 {
		job.Comfort = comfort
	}
	if propagate != nil {
		job.Propagate = *propagate
	}
}

// deltaJob builds the recipe-mode Job for an applied table. The key is
// computed exactly as parseJob computes it for a belief-less request, so a
// delta verdict content-addresses identically to the full-path verdict for
// the same counts and options.
func deltaJob(ft *dataset.FrequencyTable, req *DeltaRequest) (*Job, error) {
	job := &Job{Table: ft}
	applyOptionParams(job, req.Tau, req.Runs, req.Seed, req.Comfort, req.Propagate)
	if job.Tau <= 0 || job.Tau >= 1 {
		return nil, fmt.Errorf("server: tau %v outside (0,1)", job.Tau)
	}
	job.Key = riskcache.Key(ft.Digest(), "", canonicalOptions(job))
	return job, nil
}

// sessionKey addresses the warm-session pool: the session is reusable only
// for requests over the same table state with the same options (the seed is
// part of canonicalOptions, and the session's rng stream is seed-derived).
func sessionKey(digest string, job *Job) string {
	return riskcache.Key("session", digest, canonicalOptions(job))
}

func (s *Server) takeSession(key string) *recipe.DeltaSession {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if sess, ok := s.sessions[key]; ok {
		delete(s.sessions, key)
		return sess
	}
	return nil
}

func (s *Server) putSession(key string, sess *recipe.DeltaSession) {
	if sess == nil || sess.Broken() || s.cfg.SessionEntries < 0 {
		return
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if len(s.sessions) >= s.cfg.SessionEntries {
		// Bounded pool, arbitrary victim: sessions are a pure performance
		// cache (any miss rebuilds from the table registry), so eviction
		// order does not affect correctness.
		for k := range s.sessions {
			delete(s.sessions, k)
			break
		}
	}
	s.sessions[key] = sess
}

func (s *Server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

func (s *Server) handleAssessDelta(w http.ResponseWriter, r *http.Request) {
	startReq := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req DeltaRequest
	if err := dec.Decode(&req); err != nil {
		s.badInput.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.BaseDigest == "" {
		s.badInput.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "server: base_digest is required"})
		return
	}
	base, ok := s.tables.Get(req.BaseDigest)
	if !ok {
		s.deltaBaseMiss.Add(1)
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "server: base digest unknown (evicted or never seen); POST the full table to /v1/assess and retry",
		})
		return
	}
	d := &dataset.CountsDiff{DTransactions: req.Diff.DTransactions, Items: req.Diff.Items, Deltas: req.Diff.Deltas}
	applied := base.Clone()
	if err := applied.ApplyDiff(d); err != nil {
		s.badInput.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	job, err := deltaJob(applied, &req)
	if err != nil {
		s.badInput.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.requests.Add(1)
	s.deltaRequests.Add(1)
	s.inflightJobs.Add(1)
	defer s.inflightJobs.Add(-1)

	// The evolved table becomes the next base candidate immediately — even
	// if this assessment then degrades or throttles, the registry entry lets
	// the client retry the chain without re-uploading.
	digest := applied.Digest()
	s.tables.Put(digest, applied)

	timeout := s.requestTimeout(req.TimeoutMS)
	// incremental is written only by the compute closure, which GetOrCompute
	// runs synchronously on this goroutine (leaders compute; followers and
	// hits never touch it).
	incremental := false
	outcome, src, err := s.cache.GetOrCompute(r.Context(), job.Key, func() (*Outcome, bool, error) {
		return s.runCompute(timeout, func(ctx context.Context) (*Outcome, error) {
			return s.deltaAssess(ctx, base, job, d, &incremental)
		})
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	if src == riskcache.Computed {
		if incremental {
			s.deltaIncremental.Add(1)
		} else {
			s.deltaFull.Add(1)
		}
	}
	if outcome.Degraded {
		s.degraded.Add(1)
	}
	s.completedJobs.Add(1)
	resp := DeltaResponse{
		AssessResponse: AssessResponse{
			Cached:    src == riskcache.Hit,
			Coalesced: src == riskcache.Coalesced,
			Key:       job.Key,
			Digest:    digest,
			ElapsedMS: float64(time.Since(startReq)) / float64(time.Millisecond),
			Outcome:   outcome,
		},
		BaseDigest:  req.BaseDigest,
		Incremental: incremental,
	}
	if src == riskcache.Computed {
		s.broadcast(req.BaseDigest, &resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// deltaAssess computes the evolved verdict, preferring a warm session patch
// over a full rebuild. Sets *incremental when the session path ran.
func (s *Server) deltaAssess(ctx context.Context, base *dataset.FrequencyTable, job *Job, d *dataset.CountsDiff, incremental *bool) (*Outcome, error) {
	if !s.realPipeline {
		// Injected stand-in (tests): job.Table already holds the applied
		// counts, so the stand-in sees exactly what the full path would.
		return s.cfg.AssessFn(ctx, job)
	}
	if inj := s.cfg.Injector; inj != nil {
		if err := inj.Apply(ctx, "compute"); err != nil {
			return nil, err
		}
	}
	sess := s.takeSession(sessionKey(base.Digest(), job))
	if sess == nil {
		var err error
		sess, err = recipe.NewDeltaSessionCtx(ctx, base, job.Seed, recipe.Options{
			Tolerance:    job.Tau,
			Runs:         job.Runs,
			Propagate:    job.Propagate,
			AlphaComfort: job.Comfort,
		})
		if err != nil {
			return nil, err
		}
	}
	res, err := sess.ApplyDiffCtx(ctx, d)
	if err != nil {
		// An assessment error after a clean patch leaves the session
		// consistent but advanced: pool it under its CURRENT digest so a
		// retry of the evolved state finds it warm. putSession drops broken
		// sessions itself.
		if !sess.Broken() {
			s.putSession(sessionKey(sess.Digest(), job), sess)
		}
		return nil, err
	}
	*incremental = true
	s.putSession(sessionKey(sess.Digest(), job), sess)
	return recipeOutcome(res), nil
}

// subscriber is one live SSE stream. digests — the set of table states whose
// fresh verdicts this stream wants — is guarded by Server.subMu and grows as
// watched tables evolve: a delta against a watched digest extends the watch
// to the evolved digest, so one subscription follows a whole release chain.
type subscriber struct {
	digests map[string]bool
	ch      chan *DeltaResponse
}

// broadcast fans a freshly computed verdict out to every stream watching its
// digest (or the base it evolved from). Sends never block: a stream that
// cannot keep up loses events (counted in subscribe.dropped), it does not
// back-pressure the assessment path.
func (s *Server) broadcast(baseDigest string, resp *DeltaResponse) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for sub := range s.subs {
		if !sub.digests[resp.Digest] && (baseDigest == "" || !sub.digests[baseDigest]) {
			continue
		}
		sub.digests[resp.Digest] = true
		select {
		//lint:allow maporder subscriber streams are independent; cross-subscriber delivery order is not part of the stream contract
		case sub.ch <- resp:
			s.subEvents.Add(1)
		default:
			s.subDropped.Add(1)
		}
	}
}

func (s *Server) addSub(sub *subscriber) {
	s.subMu.Lock()
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	s.subActive.Add(1)
}

func (s *Server) removeSub(sub *subscriber) {
	s.subMu.Lock()
	delete(s.subs, sub)
	s.subMu.Unlock()
	s.subActive.Add(-1)
}

// writeSSE emits one Server-Sent Event with a JSON payload.
func writeSSE(w io.Writer, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server: draining"})
		return
	}
	q := r.URL.Query()
	digest := q.Get("digest")
	if digest == "" {
		s.badInput.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "server: digest query parameter is required"})
		return
	}
	ft, ok := s.tables.Get(digest)
	if !ok {
		s.deltaBaseMiss.Add(1)
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "server: digest unknown (evicted or never seen); POST the full table to /v1/assess and retry",
		})
		return
	}
	req := &DeltaRequest{BaseDigest: digest}
	if err := parseSubscribeParams(q, req); err != nil {
		s.badInput.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	job, err := deltaJob(ft, req)
	if err != nil {
		s.badInput.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.failures.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "server: streaming unsupported"})
		return
	}

	// The initial verdict goes through the shared cache BEFORE the upgrade
	// to SSE, so errors can still be reported as plain HTTP statuses and a
	// warm cache costs the stream nothing. The stream itself is not counted
	// in inflightJobs — subscribe connections are long-lived by design and
	// drain via drainCh, not DrainWait.
	outcome, src, err := s.cache.GetOrCompute(r.Context(), job.Key, func() (*Outcome, bool, error) {
		return s.runCompute(s.requestTimeout(0), func(ctx context.Context) (*Outcome, error) {
			return s.cfg.AssessFn(ctx, job)
		})
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}

	sub := &subscriber{digests: map[string]bool{digest: true}, ch: make(chan *DeltaResponse, 8)}
	s.addSub(sub)
	defer s.removeSub(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, "verdict", &DeltaResponse{AssessResponse: AssessResponse{
		Cached:    src == riskcache.Hit,
		Coalesced: src == riskcache.Coalesced,
		Key:       job.Key,
		Digest:    digest,
		Outcome:   outcome,
	}})
	flusher.Flush()

	// Ticker, not time.After: a per-iteration time.After leaks its timer
	// until it fires, which on a long-lived stream is an unbounded pile of
	// pending timers (riskvet's streamticker rule pins this).
	keep := time.NewTicker(s.cfg.KeepAlive)
	defer keep.Stop()
	for {
		select {
		case resp := <-sub.ch:
			writeSSE(w, "verdict", resp)
			flusher.Flush()
		case <-keep.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-s.drainCh:
			// draining flipped before drainCh closed (BeginDrain's ordering
			// contract), so readiness is already 503 when clients see this.
			writeSSE(w, "shutdown", map[string]string{"reason": "draining"})
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// parseSubscribeParams reads the recipe options from the subscribe query
// string; the names match the JSON fields of AssessRequest/DeltaRequest.
func parseSubscribeParams(q map[string][]string, req *DeltaRequest) error {
	get := func(name string) string {
		if vs := q[name]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	if v := get("tau"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("server: bad tau %q: %w", v, err)
		}
		req.Tau = &f
	}
	if v := get("runs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("server: bad runs %q: %w", v, err)
		}
		req.Runs = n
	}
	if v := get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("server: bad seed %q: %w", v, err)
		}
		req.Seed = &n
	}
	if v := get("comfort"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("server: bad comfort %q: %w", v, err)
		}
		req.Comfort = f
	}
	if v := get("propagate"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("server: bad propagate %q: %w", v, err)
		}
		req.Propagate = &b
	}
	return nil
}
