package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/riskcache"
)

func getStatus(h http.Handler, path string) int {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code
}

func TestReadyzFlipsOnDrainHealthzDoesNot(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	if code := getStatus(h, "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: HTTP %d, want 200", code)
	}
	s.BeginDrain()
	if code := getStatus(h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: HTTP %d, want 503", code)
	}
	// Liveness is about the process, not about routing: it stays 200.
	if code := getStatus(h, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz during drain: HTTP %d, want 200", code)
	}
	s.BeginDrain() // idempotent
	if !s.Draining() {
		t.Error("Draining() = false after BeginDrain")
	}
}

// TestDrainCompletesInflight is the graceful-shutdown contract: with N
// requests mid-computation, a drain must (a) flip /readyz to 503
// immediately, (b) let all N finish as 200s with full provenance, and
// (c) have DrainWait return only once none are left.
func TestDrainCompletesInflight(t *testing.T) {
	const n = 4
	started := make(chan struct{}, n)
	release := make(chan struct{})
	s := New(Config{
		MaxInflight: n,
		AssessFn: func(ctx context.Context, job *Job) (*Outcome, error) {
			started <- struct{}{}
			<-release
			return &Outcome{Mode: "recipe", Method: "stub"}, nil
		},
	})
	h := s.Handler()

	codes := make([]int, n)
	responses := make([]AssessResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct bodies: n independent computations, no coalescing.
			body := countsBody(10+i, "")
			req := httptest.NewRequest(http.MethodPost, "/v1/assess", bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
			json.Unmarshal(rec.Body.Bytes(), &responses[i])
		}(i)
	}
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d computations started", i, n)
		}
	}

	s.BeginDrain()
	if code := getStatus(h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz with %d in flight: HTTP %d, want 503", n, code)
	}
	if got := s.InflightJobs(); got != n {
		t.Errorf("InflightJobs = %d, want %d", got, n)
	}

	// The drain must still be waiting while work is in flight.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	if err := s.DrainWait(ctx); err == nil {
		t.Error("DrainWait returned nil with computations still in flight")
	}
	cancel()

	close(release)
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.DrainWait(ctx); err != nil {
		t.Fatalf("DrainWait after release: %v", err)
	}

	wg.Wait()
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Errorf("request %d: HTTP %d, want 200 (no request may be dropped by a drain)", i, codes[i])
		}
		if responses[i].Mode != "recipe" || responses[i].Method != "stub" {
			t.Errorf("request %d lost provenance: mode=%q method=%q", i, responses[i].Mode, responses[i].Method)
		}
	}
	if got := s.CompletedJobs(); got != n {
		t.Errorf("CompletedJobs = %d, want %d", got, n)
	}
	if got := s.InflightJobs(); got != 0 {
		t.Errorf("InflightJobs after drain = %d, want 0", got)
	}
}

func TestRetryAfterFromEWMA(t *testing.T) {
	s := New(Config{})
	// No samples, no timeout: floor of 1s.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("cold retry-after = %d, want 1", got)
	}
	// No samples but a configured timeout: that is the best guess.
	st := New(Config{Timeout: 7 * time.Second})
	if got := st.retryAfterSeconds(); got != 7 {
		t.Errorf("timeout-fallback retry-after = %d, want 7", got)
	}

	// Samples drive the hint: a steady 2.4s compute rounds up to 3s.
	for i := 0; i < 50; i++ {
		s.observeLatency(2400 * time.Millisecond)
	}
	if got := s.retryAfterSeconds(); got != 3 {
		t.Errorf("retry-after after 2.4s EWMA = %d, want 3", got)
	}
	if e := s.ewmaComputeMS(); e < 2300 || e > 2500 {
		t.Errorf("ewma = %.1fms, want ~2400", e)
	}

	// Sub-second computations clamp up to the 1s floor...
	fast := New(Config{})
	fast.observeLatency(5 * time.Millisecond)
	if got := fast.retryAfterSeconds(); got != 1 {
		t.Errorf("fast retry-after = %d, want floor 1", got)
	}
	// ...and pathological ones clamp down to 60s.
	slow := New(Config{})
	for i := 0; i < 50; i++ {
		slow.observeLatency(30 * time.Minute)
	}
	if got := slow.retryAfterSeconds(); got != 60 {
		t.Errorf("slow retry-after = %d, want ceiling 60", got)
	}
}

func TestRetryAfterSurfacesOnThrottle(t *testing.T) {
	// Prime the EWMA, then hit a deadline: the 503 must carry the
	// EWMA-derived hint, not the static timeout.
	s := New(Config{Timeout: time.Nanosecond})
	for i := 0; i < 50; i++ {
		s.observeLatency(4200 * time.Millisecond)
	}
	h := s.Handler()
	var resp errorResponse
	rec := post(t, h, countsBody(5000, ""), &resp)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "5" {
		t.Errorf("Retry-After = %q, want \"5\" (ceil of 4.2s EWMA)", got)
	}
	if resp.RetryAfter != 5 {
		t.Errorf("retry_after_s = %d, want 5", resp.RetryAfter)
	}
}

func TestSnapshotWarmRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	body := countsBody(20, "")

	first := New(Config{SnapshotPath: path})
	var cold AssessResponse
	if rec := post(t, first.Handler(), body, &cold); rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if cold.Cached {
		t.Fatal("first request was already cached")
	}
	if n, err := first.SaveSnapshot(); err != nil || n != 1 {
		t.Fatalf("SaveSnapshot: n=%d err=%v", n, err)
	}

	// "Restart": a brand-new server over the same snapshot path serves the
	// repeated request straight from the warmed cache.
	second := New(Config{SnapshotPath: path})
	if loaded, skipped, err := second.LoadSnapshot(); err != nil || loaded != 1 || skipped != 0 {
		t.Fatalf("LoadSnapshot: loaded=%d skipped=%d err=%v", loaded, skipped, err)
	}
	var warm AssessResponse
	if rec := post(t, second.Handler(), body, &warm); rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if !warm.Cached {
		t.Error("restarted server did not serve the repeated request from the snapshot")
	}
	if warm.Key != cold.Key {
		t.Errorf("keys differ across restart: %s vs %s", cold.Key, warm.Key)
	}
	if warm.Recipe == nil || cold.Recipe == nil || warm.Recipe.AlphaMax != cold.Recipe.AlphaMax {
		t.Error("snapshot round trip did not preserve the outcome")
	}
}

func TestSnapshotNeverCarriesDegraded(t *testing.T) {
	// Encode side: a degraded outcome in hand is skipped, not written.
	if _, err := snapshotEncode(&Outcome{Mode: "recipe", Degraded: true}); !errors.Is(err, riskcache.ErrSkipEntry) {
		t.Errorf("snapshotEncode(degraded) err = %v, want ErrSkipEntry", err)
	}

	// Decode side: a forged snapshot containing a degraded entry must not
	// warm the cache with it. Build one through a raw cache whose encoder
	// does not filter.
	dir := t.TempDir()
	path := filepath.Join(dir, "forged.snap")
	raw := riskcache.New[*Outcome](0)
	raw.GetOrCompute(context.Background(), "good", func() (*Outcome, bool, error) {
		return &Outcome{Mode: "recipe", Method: "exact"}, true, nil
	})
	raw.GetOrCompute(context.Background(), "bad", func() (*Outcome, bool, error) {
		return &Outcome{Mode: "recipe", Method: "oestimate", Degraded: true, DegradedReason: "forged"}, true, nil
	})
	if n, err := raw.SaveFile(path, func(o *Outcome) ([]byte, error) { return json.Marshal(o) }, nil); err != nil || n != 2 {
		t.Fatalf("forging snapshot: n=%d err=%v", n, err)
	}

	s := New(Config{SnapshotPath: path})
	loaded, skipped, err := s.LoadSnapshot()
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if loaded != 1 || skipped != 1 {
		t.Errorf("loaded=%d skipped=%d, want the degraded entry rejected (1/1)", loaded, skipped)
	}
}

func TestSnapshotPathsDisabled(t *testing.T) {
	s := New(Config{})
	if n, err := s.SaveSnapshot(); n != 0 || err != nil {
		t.Errorf("SaveSnapshot without a path: %d/%v, want 0/nil", n, err)
	}
	if loaded, skipped, err := s.LoadSnapshot(); loaded != 0 || skipped != 0 || err != nil {
		t.Errorf("LoadSnapshot without a path: %d/%d/%v, want 0/0/nil", loaded, skipped, err)
	}
	// A non-snapshot file at the path is a cold start, not a boot failure.
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.snap")
	os.WriteFile(junk, []byte("definitely not a snapshot"), 0o644)
	sj := New(Config{SnapshotPath: junk})
	if loaded, skipped, err := sj.LoadSnapshot(); loaded != 0 || skipped != 0 || err != nil {
		t.Errorf("LoadSnapshot over junk: %d/%d/%v, want 0/0/nil", loaded, skipped, err)
	}
}

func TestStartSnapshotsPeriodicAndStop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	s := New(Config{SnapshotPath: path, SnapshotInterval: 10 * time.Millisecond})
	post(t, s.Handler(), countsBody(15, ""), nil)

	s.StartSnapshots()
	s.StartSnapshots() // second start is a no-op, not a second goroutine
	deadline := time.After(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("periodic writer produced no snapshot")
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.StopSnapshots()
	s.StopSnapshots() // idempotent

	fresh := New(Config{SnapshotPath: path})
	if loaded, _, err := fresh.LoadSnapshot(); err != nil || loaded != 1 {
		t.Errorf("periodic snapshot unloadable: loaded=%d err=%v", loaded, err)
	}
}

func TestInjectorWiring(t *testing.T) {
	// nth=1 on cache.store: the first computed result is not stored, so an
	// identical repeat recomputes; the third request finally hits.
	inj, err := faultinject.NewFromSchedule(1, "cache.store:nth=1:err")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Injector: inj})
	h := s.Handler()
	body := countsBody(12, "")

	var r1, r2, r3 AssessResponse
	post(t, h, body, &r1)
	post(t, h, body, &r2)
	post(t, h, body, &r3)
	if r1.Cached || r2.Cached {
		t.Errorf("cached = %v/%v for the first two requests, want both recomputed (store was dropped)", r1.Cached, r2.Cached)
	}
	if !r3.Cached {
		t.Error("third request not cached: the second store should have succeeded")
	}
	if st := s.CacheStats(); st.StoreFailed != 1 {
		t.Errorf("StoreFailed = %d, want 1", st.StoreFailed)
	}

	// compute faults surface as 500s, and the injector's counters show up
	// in /debug/vars.
	injC, _ := faultinject.NewFromSchedule(1, "compute:nth=1:err")
	sc := New(Config{Injector: injC})
	if rec := post(t, sc.Handler(), body, nil); rec.Code != http.StatusInternalServerError {
		t.Errorf("injected compute fault: HTTP %d, want 500", rec.Code)
	}
	rec := httptest.NewRecorder()
	sc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	var vars struct {
		Faults map[string]faultinject.OpStats `json:"faults"`
	}
	json.Unmarshal(rec.Body.Bytes(), &vars)
	if vars.Faults["compute"].Errors != 1 {
		t.Errorf("debug/vars faults = %+v, want compute errors 1", vars.Faults)
	}
}
