package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// post sends an assess request to the handler and decodes the response into
// out (which may be *AssessResponse or *errorResponse).
func post(t *testing.T, h http.Handler, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/assess", bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode response %q: %v", rec.Body.String(), err)
		}
	}
	return rec
}

// countsBody builds an inline-counts assess request with n items of distinct
// support over 2n transactions, plus extra JSON fields appended verbatim.
func countsBody(n int, extra string) string {
	counts := make([]int, n)
	for i := range counts {
		counts[i] = i + 1
	}
	raw, _ := json.Marshal(counts)
	return fmt.Sprintf(`{"dataset": {"transactions": %d, "counts": %s}%s}`, 2*n, raw, extra)
}

func TestAssessCacheHitMiss(t *testing.T) {
	h := New(Config{}).Handler()

	var first, second, third AssessResponse
	if rec := post(t, h, countsBody(20, ""), &first); rec.Code != http.StatusOK {
		t.Fatalf("first: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if first.Cached || first.Coalesced {
		t.Errorf("first response: cached=%v coalesced=%v, want fresh", first.Cached, first.Coalesced)
	}
	if first.Outcome == nil || first.Mode != "recipe" || first.Recipe == nil {
		t.Fatalf("first outcome = %+v, want recipe result", first.Outcome)
	}

	post(t, h, countsBody(20, ""), &second)
	if !second.Cached {
		t.Error("second identical request: want cached=true")
	}
	if second.Key != first.Key {
		t.Errorf("identical requests produced different keys: %s vs %s", first.Key, second.Key)
	}
	if second.Recipe == nil || second.Recipe.AlphaMax != first.Recipe.AlphaMax {
		t.Error("cached response does not carry the original result")
	}

	// A different seed is a different computation: miss.
	post(t, h, countsBody(20, `, "seed": 2`), &third)
	if third.Cached {
		t.Error("different seed: want cache miss")
	}
	if third.Key == first.Key {
		t.Error("different seed must change the cache key")
	}
}

func TestSingleFlightDedup(t *testing.T) {
	var computes atomic.Int64
	release := make(chan struct{})
	h := New(Config{
		AssessFn: func(ctx context.Context, job *Job) (*Outcome, error) {
			computes.Add(1)
			<-release
			return &Outcome{Mode: "recipe", Method: "stub"}, nil
		},
	}).Handler()

	const n = 6
	body := countsBody(10, "")
	responses := make([]AssessResponse, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/assess", bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
			json.Unmarshal(rec.Body.Bytes(), &responses[i])
		}(i)
	}
	// Let the leader start and the rest queue up behind the same key, then
	// open the gate.
	deadline := time.After(5 * time.Second)
	for computes.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no computation started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("assess function ran %d times under %d concurrent identical requests, want 1", got, n)
	}
	fresh := 0
	for i := range responses {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, codes[i])
		}
		if responses[i].Method != "stub" {
			t.Errorf("request %d: method %q, want stub", i, responses[i].Method)
		}
		if !responses[i].Cached && !responses[i].Coalesced {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d responses claim to have computed, want exactly 1 (rest cached/coalesced)", fresh)
	}
}

func TestBudgetExceededDegradedResponse(t *testing.T) {
	// MaxOps 400 lets the cheap recipe stages through (a single O-estimate
	// on 100 items charges ~3n ops) but fails the α binary search, whose
	// shared budget charges runs×n = 500 per evaluation: the recipe returns
	// its proven lower bound with Degraded set, and the server serves it as
	// 200 rather than an error.
	h := New(Config{MaxOps: 400}).Handler()
	var resp AssessResponse
	if rec := post(t, h, countsBody(100, ""), &resp); rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if !resp.Degraded {
		t.Fatalf("outcome not degraded: %+v", resp.Outcome)
	}
	if resp.DegradedReason == "" {
		t.Error("degraded outcome missing a reason")
	}
	if resp.Recipe == nil || resp.Recipe.AlphaMax != 0 {
		t.Errorf("degraded recipe should carry the proven α lower bound 0, got %+v", resp.Recipe)
	}

	// Degraded results must not be cached: a repeat recomputes.
	var again AssessResponse
	post(t, h, countsBody(100, ""), &again)
	if again.Cached {
		t.Error("degraded result was served from cache")
	}
}

func TestDeadlineGives503WithRetryAfter(t *testing.T) {
	// A 1ns budget expires before any tier can run; on a domain large
	// enough that the O-estimate polls its budget (n >= CheckEvery), even
	// the floor fails and the request surfaces as 503 + Retry-After.
	h := New(Config{Timeout: time.Nanosecond}).Handler()
	var resp errorResponse
	rec := post(t, h, countsBody(5000, ""), &resp)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After header")
	}
	if resp.RetryAfter < 1 {
		t.Errorf("retry_after_s = %d, want >= 1", resp.RetryAfter)
	}
	if resp.Error == "" {
		t.Error("503 response missing error text")
	}
}

func TestQueueExhaustionGives503(t *testing.T) {
	// One slot, held by a blocked computation; a second, different request
	// must queue, burn its own (tiny) deadline, and degrade to 503.
	block := make(chan struct{})
	h := New(Config{
		MaxInflight: 1,
		AssessFn: func(ctx context.Context, job *Job) (*Outcome, error) {
			<-block
			return &Outcome{Mode: "recipe", Method: "stub"}, nil
		},
	}).Handler()
	defer close(block)

	started := make(chan struct{})
	go func() {
		close(started)
		post(t, h, countsBody(10, ""), nil)
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the leader take the slot

	var resp errorResponse
	rec := post(t, h, countsBody(11, `, "timeout_ms": 50`), &resp)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued request: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After header")
	}
}

func TestAttackModeAndBeliefCanonicalization(t *testing.T) {
	h := New(Config{}).Handler()
	body := func(belief string) string {
		raw, _ := json.Marshal(belief)
		return countsBody(10, `, "belief": `+string(raw))
	}

	var first AssessResponse
	if rec := post(t, h, body("0 0.05\n* 0 1\n"), &first); rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if first.Mode != "attack" || first.Attack == nil {
		t.Fatalf("outcome = %+v, want attack mode", first.Outcome)
	}
	if first.Method != "oestimate" {
		t.Errorf("method %q, want oestimate (no exact/simulate requested)", first.Method)
	}

	// A textually different spec that parses to the same canonical belief
	// function must hit the same cache entry.
	var second AssessResponse
	post(t, h, body("# same prior, different text\n0 0.05 0.05\n"), &second)
	if !second.Cached {
		t.Error("canonically identical belief spec: want cache hit")
	}
	if second.Key != first.Key {
		t.Errorf("keys differ for canonically identical beliefs: %s vs %s", first.Key, second.Key)
	}

	// A genuinely different prior misses.
	var third AssessResponse
	post(t, h, body("0 0.1 0.2\n"), &third)
	if third.Cached || third.Key == first.Key {
		t.Error("different belief must be a different cache entry")
	}
}

func TestDatasetPathReferences(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "t.dat"), []byte("0 1\n1 2\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h := New(Config{DataDir: dir}).Handler()

	var ok AssessResponse
	if rec := post(t, h, `{"dataset": {"path": "t.dat"}}`, &ok); rec.Code != http.StatusOK {
		t.Fatalf("path ref: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if ok.Recipe == nil || ok.Recipe.Items != 3 {
		t.Errorf("outcome = %+v, want 3-item recipe result", ok.Outcome)
	}

	if rec := post(t, h, `{"dataset": {"path": "../t.dat"}}`, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("escaping path: HTTP %d, want 400", rec.Code)
	}
	if rec := post(t, h, `{"dataset": {"path": "missing.dat"}}`, nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing file: HTTP %d, want 404", rec.Code)
	}

	// Path references are rejected outright without a data directory.
	hNoDir := New(Config{}).Handler()
	if rec := post(t, hNoDir, `{"dataset": {"path": "t.dat"}}`, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("path ref without -data: HTTP %d, want 400", rec.Code)
	}
}

func TestBadInput(t *testing.T) {
	h := New(Config{}).Handler()
	cases := []struct {
		name string
		body string
	}{
		{"empty dataset", `{"dataset": {}}`},
		{"two dataset refs", `{"dataset": {"fimi": "0 1\n", "counts": [1], "transactions": 2}}`},
		{"tau out of range", countsBody(5, `, "tau": 2`)},
		{"bad belief", countsBody(5, `, "belief": "99 0.5\n"`)},
		{"unknown field", `{"dataset": {"fimi": "0 1\n"}, "bogus": 1}`},
		{"malformed json", `{`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rec := post(t, h, tc.body, nil); rec.Code != http.StatusBadRequest {
				t.Errorf("HTTP %d, want 400: %s", rec.Code, rec.Body.String())
			}
		})
	}
}

func TestHealthzAndVars(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", rec.Code)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.Unmarshal(rec.Body.Bytes(), &health)
	if health.Status != "ok" {
		t.Errorf("healthz status %q", health.Status)
	}

	post(t, h, countsBody(10, ""), nil)
	post(t, h, countsBody(10, ""), nil)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/vars: HTTP %d", rec.Code)
	}
	var vars struct {
		Requests int64 `json:"requests"`
		Cache    struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	json.Unmarshal(rec.Body.Bytes(), &vars)
	if vars.Requests != 2 {
		t.Errorf("requests = %d, want 2", vars.Requests)
	}
	if vars.Cache.Hits != 1 || vars.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", vars.Cache.Hits, vars.Cache.Misses)
	}

	// Method guards: GET on the assess route is a 405.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/assess", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/assess: HTTP %d, want 405", rec.Code)
	}
}
