// Package server implements riskd, the long-running risk-assessment service
// (cmd/riskd). The CLI binaries treat every O-estimate or attack assessment
// as a one-shot run that re-parses the dataset and rebuilds the bipartite
// graph; the service instead treats risk scoring as what it is in production
// — a repeated, per-release query — and puts a content-addressed cache with
// single-flight deduplication (internal/riskcache) in front of the existing
// assessment machinery.
//
// Endpoints:
//
//	POST /v1/assess           belief spec + dataset reference → assessment
//	                          result with Method/Degraded/Cached provenance
//	POST /v1/assess/delta     base table digest + sparse counts diff → full
//	                          verdict for the evolved release (delta.go)
//	GET  /v1/assess/subscribe SSE stream of fresh verdicts for a digest
//	                          chain (delta.go)
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 once draining)
//	GET  /debug/vars          cache and request counters, JSON
//
// Nothing here re-implements risk math. A request is parsed into the same
// frequency-table + belief-function values the CLIs build, then dispatched
// to recipe.AssessRiskCtx (no belief: the owner's Figure 8 recipe) or
// anonrisk.AttackTableCtx (belief given: the hacker-side cascade). The
// per-request deadline and operation limit reuse internal/budget via
// cliutil.RequestContext, the -workers cap reuses internal/parallel, and the
// exact→sampled→O-estimate degradation cascade from the facade becomes the
// service's graceful-degradation story under load: a deadline that expires
// mid-computation yields a Degraded result, and only when even the
// O(n log n) floor cannot run does the request fail — as HTTP 503 with a
// Retry-After hint. Degraded results are shared with concurrent duplicate
// requests but never stored, so transient overload cannot pin a
// conservative answer in the cache.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	anonrisk "repro"
	"repro/internal/belief"
	"repro/internal/budget"
	"repro/internal/cliutil"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/recipe"
	"repro/internal/riskcache"
)

// Config tunes a Server. The zero value serves with library defaults:
// unlimited budget, GOMAXPROCS workers and inflight slots, 256 cache
// entries, no dataset directory (inline datasets only).
type Config struct {
	// DataDir is the root directory that request dataset paths resolve
	// under. Empty disables path references; inline datasets always work.
	DataDir string
	// Timeout is the per-request work budget (queue wait + computation).
	// Zero means unlimited. Requests may lower it via timeout_ms, never
	// raise it.
	Timeout time.Duration
	// MaxOps is the per-computation operation limit (budget.WithMaxOps
	// semantics). Zero means unlimited.
	MaxOps int64
	// Workers caps the parallel fan-out of each assessment
	// (parallel.WithWorkers). Zero means GOMAXPROCS.
	Workers int
	// MaxInflight caps concurrently *computing* assessments; further
	// requests queue, spending their own deadline, and cache hits bypass
	// the queue entirely. Zero means GOMAXPROCS.
	MaxInflight int
	// CacheEntries bounds the assessment LRU. Zero means 256; negative
	// means unbounded.
	CacheEntries int
	// MaxBodyBytes bounds a request body. Zero means 32 MiB.
	MaxBodyBytes int64
	// TableEntries bounds the base-table registry that /v1/assess/delta and
	// /v1/assess/subscribe resolve digests against. Zero means 64; negative
	// means unbounded.
	TableEntries int
	// SessionEntries bounds the pool of warm recipe.DeltaSessions kept
	// between delta requests. Zero means 16; negative disables pooling (every
	// delta builds a fresh session — still correct, just slower).
	SessionEntries int
	// KeepAlive is the SSE keep-alive comment period on subscribe streams.
	// Zero means 15s.
	KeepAlive time.Duration
	// AssessFn computes an outcome from a parsed job. Nil means the real
	// pipeline (recipe / attack cascade); tests inject counting or blocking
	// stand-ins to observe cache and single-flight behavior.
	AssessFn func(ctx context.Context, job *Job) (*Outcome, error)
	// SnapshotPath, when non-empty, enables crash-safe cache persistence:
	// LoadSnapshot reads this file on boot, SaveSnapshot and the background
	// writer started by StartSnapshots rewrite it atomically.
	SnapshotPath string
	// SnapshotInterval is the background snapshot period. Zero means 1m.
	SnapshotInterval time.Duration
	// Injector, when non-nil, threads deterministic fault injection through
	// the server: op "compute" wraps AssessFn, op "cache.store" gates cache
	// stores, op "snapshot" interposes on snapshot writes.
	Injector *faultinject.Injector
}

// Job is a fully parsed, validated assessment request — the pure-function
// input whose digest is the cache key.
type Job struct {
	Table  *dataset.FrequencyTable
	Belief *belief.Function // nil: recipe mode

	Tau       float64
	Runs      int
	Seed      int64
	Comfort   float64
	Propagate bool
	Exact     bool // attack mode: request the exact tier
	Simulate  bool // attack mode: request the sampling tier

	Key string // content address: (dataset digest, belief digest, options)
}

// Outcome is the cacheable result of one assessment: everything the response
// carries except per-request provenance (cached/coalesced/elapsed).
type Outcome struct {
	// Mode is "recipe" (owner's Assess-Risk, Figure 8) or "attack"
	// (hacker-side estimate under a concrete belief function).
	Mode string `json:"mode"`
	// Method records what produced the numbers: a cascade tier
	// (exact/sampled/oestimate) in attack mode, the deciding recipe stage in
	// recipe mode.
	Method string `json:"method"`
	// Degraded marks that a work budget ran out and a cheaper tier (or a
	// proven lower bound) was served instead of the preferred computation.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`

	Recipe *RecipeOutcome `json:"recipe,omitempty"`
	Attack *AttackOutcome `json:"attack,omitempty"`
}

// RecipeOutcome mirrors recipe.Result for the wire.
type RecipeOutcome struct {
	Disclose  bool    `json:"disclose"`
	Items     int     `json:"items"`
	Groups    int     `json:"groups"`
	DeltaMed  float64 `json:"delta_med"`
	OEFull    float64 `json:"oe_full"`
	AlphaMax  float64 `json:"alpha_max"`
	Tolerance float64 `json:"tolerance"`
	Workers   int     `json:"workers"`
	WallMS    float64 `json:"wall_ms"`
	CPUMS     float64 `json:"cpu_ms"`
}

// AttackOutcome mirrors anonrisk.AttackReport for the wire.
type AttackOutcome struct {
	Items           int     `json:"items"`
	Expected        float64 `json:"expected"`
	OEstimate       float64 `json:"oestimate"`
	ForcedCracks    int     `json:"forced_cracks"`
	Simulated       float64 `json:"simulated,omitempty"`
	SimulatedStdDev float64 `json:"simulated_stddev,omitempty"`
	Infeasible      bool    `json:"infeasible,omitempty"`
	Alpha           float64 `json:"alpha"`
}

// AssessRequest is the POST /v1/assess body.
type AssessRequest struct {
	Dataset DatasetRef `json:"dataset"`
	// Belief is an optional hacker belief spec in the internal/belief.Parse
	// text format; present selects attack mode.
	Belief string `json:"belief,omitempty"`

	Tau       *float64 `json:"tau,omitempty"`     // default 0.1
	Runs      int      `json:"runs,omitempty"`    // default 5
	Seed      *int64   `json:"seed,omitempty"`    // default 1
	Comfort   float64  `json:"comfort,omitempty"` // default 0.5
	Propagate *bool    `json:"propagate,omitempty"`
	Exact     bool     `json:"exact,omitempty"`
	Simulate  bool     `json:"simulate,omitempty"`

	// TimeoutMS optionally lowers (never raises) the server's per-request
	// budget for this request.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DatasetRef names the data under assessment: exactly one of Path (FIMI file
// under the server's -data directory), FIMI (inline FIMI text), or Counts
// (support counts plus Transactions).
type DatasetRef struct {
	Path         string `json:"path,omitempty"`
	FIMI         string `json:"fimi,omitempty"`
	Transactions int    `json:"transactions,omitempty"`
	Counts       []int  `json:"counts,omitempty"`
}

// AssessResponse is the POST /v1/assess reply.
type AssessResponse struct {
	// Cached: served straight from the LRU, no computation ran.
	Cached bool `json:"cached"`
	// Coalesced: joined an identical in-flight computation.
	Coalesced bool   `json:"coalesced,omitempty"`
	Key       string `json:"key"`
	// Digest is the content digest of the assessed table — the handle a
	// client passes back as base_digest to /v1/assess/delta or digest to
	// /v1/assess/subscribe.
	Digest    string  `json:"digest,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	*Outcome
}

type errorResponse struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_s,omitempty"`
}

// Server is the riskd HTTP service. Construct with New; serve Handler().
type Server struct {
	cfg   Config
	cache *riskcache.Cache[*Outcome]
	sem   chan struct{}
	base  context.Context
	start time.Time
	// realPipeline: no AssessFn was injected, so recipe-mode deltas may run
	// through the warm-session incremental path (which bypasses AssessFn).
	realPipeline bool

	// tables is the digest-addressed registry of frequency tables seen by
	// /v1/assess and /v1/assess/delta; delta requests resolve base_digest
	// against it and subscribe streams resolve their watch digest. Registered
	// tables are never mutated (ApplyDiff always runs on a clone).
	tables *riskcache.Cache[*dataset.FrequencyTable]

	// Warm delta-session pool, keyed by (table digest, recipe options).
	// Checkout is exclusive: takeSession removes the entry, putSession
	// re-inserts it under the session's post-diff digest.
	sessMu   sync.Mutex
	sessions map[string]*recipe.DeltaSession

	// Subscribe hub: live SSE streams, each watching a growing set of table
	// digests. Guarded by subMu.
	subMu sync.Mutex
	subs  map[*subscriber]struct{}

	// drainCh is closed by BeginDrain — strictly after draining flips, so a
	// stream that observes the close is guaranteed /readyz already answers
	// 503 — and tells every subscribe stream to send its terminal event.
	drainCh   chan struct{}
	drainOnce sync.Once

	deltaRequests    atomic.Int64 // delta requests accepted past parsing
	deltaBaseMiss    atomic.Int64 // 404s: base digest not in the registry
	deltaIncremental atomic.Int64 // deltas served through a session patch
	deltaFull        atomic.Int64 // deltas that fell back to a full assessment
	subActive        atomic.Int64 // subscribe streams currently open
	subEvents        atomic.Int64 // verdict events delivered to streams
	subDropped       atomic.Int64 // verdict events dropped on full stream buffers

	requests  atomic.Int64 // assess requests accepted past parsing
	badInput  atomic.Int64 // 4xx on parse/validation
	failures  atomic.Int64 // 5xx excluding throttles
	throttled atomic.Int64 // 503 budget exhaustion
	degraded  atomic.Int64 // 200s carrying a degraded outcome

	// Drain-aware lifecycle: BeginDrain flips draining (readyz → 503),
	// inflightJobs counts accepted assess requests still being answered,
	// DrainWait blocks until that count reaches zero.
	draining      atomic.Bool
	inflightJobs  atomic.Int64
	completedJobs atomic.Int64 // assess requests answered with a 200

	// EWMA of compute latency, feeding the Retry-After hint. Guarded by
	// latMu; zero means no computation observed yet.
	latMu  sync.Mutex
	ewmaMS float64

	// Background snapshot writer state (StartSnapshots/StopSnapshots) and
	// snapshot counters for /debug/vars.
	snapMu       sync.Mutex
	snapStop     chan struct{}
	snapDone     chan struct{}
	snapWrites   atomic.Int64 // successful snapshot files written
	snapFailures atomic.Int64 // failed snapshot attempts (previous file kept)
	snapEntries  atomic.Int64 // entries in the last successful snapshot
	snapLoaded   atomic.Int64 // entries loaded from snapshots on boot
	snapSkipped  atomic.Int64 // snapshot entries rejected on load
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.CacheEntries == 0:
		cfg.CacheEntries = 256
	case cfg.CacheEntries < 0:
		cfg.CacheEntries = 0 // riskcache: unbounded
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	switch {
	case cfg.TableEntries == 0:
		cfg.TableEntries = 64
	case cfg.TableEntries < 0:
		cfg.TableEntries = 0 // riskcache: unbounded
	}
	if cfg.SessionEntries == 0 {
		cfg.SessionEntries = 16
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 15 * time.Second
	}
	s := &Server{
		cfg:      cfg,
		cache:    riskcache.New[*Outcome](cfg.CacheEntries),
		sem:      make(chan struct{}, cfg.MaxInflight),
		base:     parallel.WithWorkers(context.Background(), cfg.Workers),
		start:    time.Now(),
		tables:   riskcache.New[*dataset.FrequencyTable](cfg.TableEntries),
		sessions: make(map[string]*recipe.DeltaSession),
		subs:     make(map[*subscriber]struct{}),
		drainCh:  make(chan struct{}),
	}
	s.realPipeline = s.cfg.AssessFn == nil
	if s.cfg.AssessFn == nil {
		s.cfg.AssessFn = defaultAssess
	}
	if inj := s.cfg.Injector; inj != nil {
		inner := s.cfg.AssessFn
		s.cfg.AssessFn = func(ctx context.Context, job *Job) (*Outcome, error) {
			if err := inj.Apply(ctx, "compute"); err != nil {
				return nil, err
			}
			return inner(ctx, job)
		}
		s.cache.SetStoreHook(func(string) error {
			return inj.Apply(context.Background(), "cache.store")
		})
	}
	return s
}

// Handler returns the service's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/assess", s.handleAssess)
	mux.HandleFunc("POST /v1/assess/delta", s.handleAssessDelta)
	mux.HandleFunc("GET /v1/assess/subscribe", s.handleSubscribe)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	return mux
}

// CacheStats exposes the cache counters (selfcheck, tests).
func (s *Server) CacheStats() riskcache.Stats { return s.cache.Stats() }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	vars := map[string]any{
		"uptime_s":     time.Since(s.start).Seconds(),
		"gomaxprocs":   runtime.GOMAXPROCS(0),
		"workers":      s.cfg.Workers,
		"max_inflight": s.cfg.MaxInflight,
		"inflight":     len(s.sem),
		"requests":     s.requests.Load(),
		"bad_input":    s.badInput.Load(),
		"failures":     s.failures.Load(),
		"throttled":    s.throttled.Load(),
		"degraded":     s.degraded.Load(),
		"cache":        s.cache.Stats(),
		"tables":       s.tables.Stats(),
		"delta": map[string]any{
			"requests":    s.deltaRequests.Load(),
			"base_miss":   s.deltaBaseMiss.Load(),
			"incremental": s.deltaIncremental.Load(),
			"full":        s.deltaFull.Load(),
			"sessions":    s.sessionCount(),
		},
		"subscribe": map[string]any{
			"active":  s.subActive.Load(),
			"events":  s.subEvents.Load(),
			"dropped": s.subDropped.Load(),
		},
		"ready":           !s.draining.Load(),
		"inflight_jobs":   s.inflightJobs.Load(),
		"completed_jobs":  s.completedJobs.Load(),
		"ewma_compute_ms": s.ewmaComputeMS(),
		"retry_after_s":   s.retryAfterSeconds(),
		"snapshot": map[string]any{
			"writes":   s.snapWrites.Load(),
			"failures": s.snapFailures.Load(),
			"entries":  s.snapEntries.Load(),
			"loaded":   s.snapLoaded.Load(),
			"skipped":  s.snapSkipped.Load(),
		},
	}
	if s.cfg.Injector != nil {
		vars["faults"] = s.cfg.Injector.Stats()
	}
	writeJSON(w, http.StatusOK, vars)
}

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	startReq := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req AssessRequest
	if err := dec.Decode(&req); err != nil {
		s.badInput.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	job, status, err := s.parseJob(&req)
	if err != nil {
		s.badInput.Add(1)
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	s.requests.Add(1)
	// Accepted: from here this request counts as in flight until its
	// response is written, so DrainWait knows when shutdown may proceed.
	s.inflightJobs.Add(1)
	defer s.inflightJobs.Add(-1)

	// Every table seen by a full assessment becomes a delta base candidate.
	digest := job.Table.Digest()
	s.tables.Put(digest, job.Table)

	timeout := s.requestTimeout(req.TimeoutMS)

	// The computation runs under the server's base context — not the HTTP
	// request's — so a disconnecting leader cannot kill a result that
	// coalesced followers are waiting on. The request context only bounds
	// this caller's wait on someone else's in-flight computation.
	outcome, src, err := s.cache.GetOrCompute(r.Context(), job.Key, func() (*Outcome, bool, error) {
		return s.runCompute(timeout, func(ctx context.Context) (*Outcome, error) {
			return s.cfg.AssessFn(ctx, job)
		})
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	if outcome.Degraded {
		s.degraded.Add(1)
	}
	s.completedJobs.Add(1)
	resp := AssessResponse{
		Cached:    src == riskcache.Hit,
		Coalesced: src == riskcache.Coalesced,
		Key:       job.Key,
		Digest:    digest,
		ElapsedMS: float64(time.Since(startReq)) / float64(time.Millisecond),
		Outcome:   outcome,
	}
	if src == riskcache.Computed {
		s.broadcast("", &DeltaResponse{AssessResponse: resp})
	}
	writeJSON(w, http.StatusOK, resp)
}

// requestTimeout lowers (never raises) the configured budget by a client's
// timeout_ms.
func (s *Server) requestTimeout(timeoutMS int64) time.Duration {
	timeout := s.cfg.Timeout
	if timeoutMS > 0 {
		if t := time.Duration(timeoutMS) * time.Millisecond; timeout == 0 || t < timeout {
			timeout = t
		}
	}
	return timeout
}

// runCompute is the shared compute harness for assess and delta: it binds the
// work to the server's base context with the request budget, takes an
// inflight slot, and folds a successful computation's latency into the
// Retry-After EWMA. The inflight cap is the global backpressure valve:
// waiting for a slot spends the request's own deadline, so under sustained
// overload queued requests degrade to 503 + Retry-After instead of piling up
// without bound.
func (s *Server) runCompute(timeout time.Duration, do func(ctx context.Context) (*Outcome, error)) (*Outcome, bool, error) {
	ctx, cancel := cliutil.RequestContext(s.base, timeout, s.cfg.MaxOps)
	defer cancel()
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return nil, false, budget.WrapContextErr(ctx.Err())
	}
	computeStart := time.Now()
	o, err := do(ctx)
	if err != nil {
		return nil, false, err
	}
	s.observeLatency(time.Since(computeStart))
	return o, !o.Degraded, nil
}

// writeComputeError maps a computation error to the wire: budget exhaustion
// below the O(n log n) floor is a throttle (503 + adaptive Retry-After),
// anything else a 500.
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	if budget.IsBudgetError(err) {
		s.throttled.Add(1)
		retry := s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error:      "work budget exhausted before any tier could complete: " + err.Error(),
			RetryAfter: retry,
		})
		return
	}
	s.failures.Add(1)
	writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
}

// parseJob validates a request into a Job and derives its cache key. The
// returned status is the HTTP code to use when err is non-nil.
func (s *Server) parseJob(req *AssessRequest) (*Job, int, error) {
	ft, status, err := s.resolveDataset(&req.Dataset)
	if err != nil {
		return nil, status, err
	}
	job := &Job{Table: ft, Exact: req.Exact, Simulate: req.Simulate}
	applyOptionParams(job, req.Tau, req.Runs, req.Seed, req.Comfort, req.Propagate)
	if req.Belief != "" {
		bf, err := belief.Parse(strings.NewReader(req.Belief), ft.NItems)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		job.Belief = bf
	} else if job.Tau <= 0 || job.Tau >= 1 {
		return nil, http.StatusBadRequest, fmt.Errorf("server: tau %v outside (0,1)", job.Tau)
	}
	job.Key = riskcache.Key(ft.Digest(), beliefDigest(job.Belief), canonicalOptions(job))
	return job, 0, nil
}

func beliefDigest(bf *belief.Function) string {
	if bf == nil {
		return ""
	}
	return bf.Digest()
}

// canonicalOptions renders exactly the options that influence the
// computation in the job's mode, so requests differing only in irrelevant
// fields share a cache entry.
func canonicalOptions(job *Job) string {
	if job.Belief != nil {
		seed := job.Seed
		if !job.Simulate && !job.Exact {
			seed = 0 // the O-estimate is deterministic
		}
		return fmt.Sprintf("attack exact=%t simulate=%t seed=%d", job.Exact, job.Simulate, seed)
	}
	return fmt.Sprintf("recipe tau=%g runs=%d seed=%d comfort=%g propagate=%t",
		job.Tau, job.Runs, job.Seed, job.Comfort, job.Propagate)
}

// resolveDataset loads the referenced dataset as a frequency table.
func (s *Server) resolveDataset(ref *DatasetRef) (*dataset.FrequencyTable, int, error) {
	refs := 0
	for _, set := range []bool{ref.Path != "", ref.FIMI != "", len(ref.Counts) > 0} {
		if set {
			refs++
		}
	}
	if refs != 1 {
		return nil, http.StatusBadRequest,
			errors.New("server: dataset needs exactly one of path, fimi, or counts")
	}
	switch {
	case ref.Path != "":
		if s.cfg.DataDir == "" {
			return nil, http.StatusBadRequest,
				errors.New("server: dataset path references are disabled (no -data directory)")
		}
		if !filepath.IsLocal(ref.Path) {
			return nil, http.StatusBadRequest,
				fmt.Errorf("server: dataset path %q escapes the data directory", ref.Path)
		}
		ft, err := dataset.ReadFIMIFile(filepath.Join(s.cfg.DataDir, ref.Path))
		if errors.Is(err, fs.ErrNotExist) {
			return nil, http.StatusNotFound, fmt.Errorf("server: dataset %q not found", ref.Path)
		}
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		return ft, 0, nil
	case ref.FIMI != "":
		ft, err := dataset.ReadFIMICounts(strings.NewReader(ref.FIMI), 0)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		return ft, 0, nil
	default:
		ft, err := dataset.NewTable(ref.Transactions, ref.Counts)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		return ft, 0, nil
	}
}

// defaultAssess is the real pipeline: the owner's recipe without a belief,
// the hacker-side cascade with one.
func defaultAssess(ctx context.Context, job *Job) (*Outcome, error) {
	rng := rand.New(rand.NewSource(job.Seed))
	if job.Belief != nil {
		rep, err := anonrisk.AttackTableCtx(ctx, job.Belief, job.Table, anonrisk.AttackOptions{
			Exact:    job.Exact,
			Simulate: job.Simulate,
			Rng:      rng,
		})
		if err != nil {
			return nil, err
		}
		return &Outcome{
			Mode:           "attack",
			Method:         string(rep.Method),
			Degraded:       rep.Degraded,
			DegradedReason: rep.DegradedReason,
			Attack: &AttackOutcome{
				Items:           rep.Items,
				Expected:        rep.Expected,
				OEstimate:       rep.OEstimate,
				ForcedCracks:    rep.ForcedCracks,
				Simulated:       rep.Simulated,
				SimulatedStdDev: rep.SimulatedStdDev,
				Infeasible:      rep.Infeasible,
				Alpha:           job.Belief.Alpha(job.Table.Frequencies()),
			},
		}, nil
	}
	res, err := recipe.AssessRiskCtx(ctx, job.Table, recipe.Options{
		Tolerance:    job.Tau,
		Runs:         job.Runs,
		Propagate:    job.Propagate,
		AlphaComfort: job.Comfort,
		Rng:          rng,
	})
	if err != nil {
		return nil, err
	}
	return recipeOutcome(res), nil
}

// recipeOutcome maps a recipe.Result to the wire outcome. Shared by the full
// path (defaultAssess) and the delta-session path, so the two produce
// identical outcomes for identical results — which they do: the session's
// equivalence property guarantees byte-identical Results.
func recipeOutcome(res *recipe.Result) *Outcome {
	return &Outcome{
		Mode:           "recipe",
		Method:         res.Stage.String(),
		Degraded:       res.Degraded,
		DegradedReason: res.DegradedReason,
		Recipe: &RecipeOutcome{
			Disclose:  res.Disclose,
			Items:     res.Items,
			Groups:    res.Groups,
			DeltaMed:  res.DeltaMed,
			OEFull:    res.OEFull,
			AlphaMax:  res.AlphaMax,
			Tolerance: res.Tolerance,
			Workers:   res.Workers,
			WallMS:    float64(res.Wall) / float64(time.Millisecond),
			CPUMS:     float64(res.CPU) / float64(time.Millisecond),
		},
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
