// Drain-aware lifecycle, adaptive Retry-After, and cache snapshots — the
// operational half of riskd that makes restarts boring:
//
//   - Readiness is distinct from liveness. /healthz answers "is the process
//     up"; /readyz answers "should a load balancer send traffic here" and
//     flips to 503 the moment BeginDrain is called, before any connection is
//     closed, so upstream routing moves on while in-flight work finishes.
//   - DrainWait turns "graceful shutdown" from a hope into an invariant: it
//     blocks until every accepted assessment has been answered (or the drain
//     deadline expires), so a SIGTERM never loses a computation that a
//     client was waiting on.
//   - The Retry-After hint on 503s is derived from an EWMA of observed
//     compute latency instead of the static -timeout: a server that is slow
//     because its datasets are big tells clients to come back when a
//     computation actually finishes, clamped to [1s, 60s].
//   - Snapshots persist the assessment cache across restarts (riskcache
//     snapshot format: atomic rename, per-entry checksums). Degraded
//     outcomes are excluded twice — skipped at encode and rejected at decode
//     — so the never-cache-degraded invariant survives the round trip even
//     against a stale or hand-edited snapshot file.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"repro/internal/faultinject"
	"repro/internal/riskcache"
)

// handleReadyz is the routing signal: 200 while the server wants traffic,
// 503 from BeginDrain onward. Liveness (/healthz) stays 200 throughout a
// drain — the process is healthy, it just doesn't want new work.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":        "draining",
			"inflight_jobs": s.inflightJobs.Load(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// BeginDrain flips readiness to 503 and tells every subscribe stream to
// close with its terminal event. Requests already accepted — and any that
// still arrive on open connections — are served normally; only the
// advertised willingness to take new traffic changes. The ordering is part
// of the contract: draining flips BEFORE drainCh closes, so by the time any
// stream sees the shutdown event, /readyz already answers 503 and load
// balancers have stopped sending reconnects here. Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InflightJobs returns the number of accepted assess requests not yet
// answered.
func (s *Server) InflightJobs() int64 { return s.inflightJobs.Load() }

// CompletedJobs returns the number of assess requests answered with a 200.
func (s *Server) CompletedJobs() int64 { return s.completedJobs.Load() }

// DrainWait blocks until no assess requests are in flight or ctx ends,
// whichever comes first. Call after BeginDrain (and typically after
// http.Server.Shutdown) to guarantee every accepted computation was
// answered before the process exits.
func (s *Server) DrainWait(ctx context.Context) error {
	if s.inflightJobs.Load() == 0 {
		return nil
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if s.inflightJobs.Load() == 0 {
				return nil
			}
		case <-ctx.Done():
			return fmt.Errorf("server: drain deadline with %d requests in flight: %w",
				s.inflightJobs.Load(), ctx.Err())
		}
	}
}

// ewmaAlpha weights the newest compute latency sample at 20%: heavy enough
// to track a load shift within a handful of requests, light enough that one
// outlier doesn't swing the Retry-After hint.
const ewmaAlpha = 0.2

// observeLatency folds one successful computation's wall time into the EWMA.
func (s *Server) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.latMu.Lock()
	if s.ewmaMS == 0 {
		s.ewmaMS = ms
	} else {
		s.ewmaMS = ewmaAlpha*ms + (1-ewmaAlpha)*s.ewmaMS
	}
	s.latMu.Unlock()
}

// ewmaComputeMS returns the current latency estimate (0: no sample yet).
func (s *Server) ewmaComputeMS() float64 {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	return s.ewmaMS
}

// retryAfterSeconds derives the 503 Retry-After hint: the EWMA of compute
// latency rounded up to whole seconds, clamped to [1, 60]. Before any
// computation has finished it falls back to the configured timeout (a
// reasonable proxy for how long work takes here), then to 1s.
func (s *Server) retryAfterSeconds() int {
	var sec float64
	switch e := s.ewmaComputeMS(); {
	case e > 0:
		sec = math.Ceil(e / 1000)
	case s.cfg.Timeout > 0:
		sec = math.Ceil(s.cfg.Timeout.Seconds())
	default:
		sec = 1
	}
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return int(sec)
}

// snapshotEncode serializes one outcome for the snapshot file. Degraded
// outcomes are skipped — they should never be in the cache in the first
// place (GetOrCompute refuses to store them), so this is the second layer
// of the same invariant.
func snapshotEncode(o *Outcome) ([]byte, error) {
	if o.Degraded {
		return nil, riskcache.ErrSkipEntry
	}
	return json.Marshal(o)
}

// snapshotDecode deserializes one snapshot entry, rejecting anything
// degraded: a snapshot written by a buggy or older build cannot smuggle a
// conservative answer into a fresh cache.
func snapshotDecode(b []byte) (*Outcome, bool, error) {
	var o Outcome
	if err := json.Unmarshal(b, &o); err != nil {
		return nil, false, err
	}
	if o.Degraded {
		return nil, false, nil
	}
	return &o, true, nil
}

// LoadSnapshot warms the cache from Config.SnapshotPath. A missing file or
// a file that is not a snapshot is a cold start, not an error; corrupt
// entries are skipped individually (riskcache.ReadSnapshot semantics).
func (s *Server) LoadSnapshot() (loaded, skipped int, err error) {
	if s.cfg.SnapshotPath == "" {
		return 0, 0, nil
	}
	loaded, skipped, err = s.cache.LoadFile(s.cfg.SnapshotPath, snapshotDecode)
	if errors.Is(err, riskcache.ErrBadSnapshot) {
		return 0, 0, nil
	}
	s.snapLoaded.Add(int64(loaded))
	s.snapSkipped.Add(int64(skipped))
	return loaded, skipped, err
}

// SaveSnapshot writes the cache to Config.SnapshotPath crash-safely (temp
// file + fsync + atomic rename; a failure keeps the previous snapshot).
// When a fault injector is configured its "snapshot" op interposes on the
// byte stream, which is how the chaos suite tears writes mid-snapshot.
func (s *Server) SaveSnapshot() (int, error) {
	if s.cfg.SnapshotPath == "" {
		return 0, nil
	}
	var wrap func(io.Writer) io.Writer
	if inj := s.cfg.Injector; inj != nil {
		wrap = func(w io.Writer) io.Writer {
			return faultinject.Writer(w, inj, "snapshot")
		}
	}
	n, err := s.cache.SaveFile(s.cfg.SnapshotPath, snapshotEncode, wrap)
	if err != nil {
		s.snapFailures.Add(1)
		return n, err
	}
	s.snapWrites.Add(1)
	s.snapEntries.Store(int64(n))
	return n, nil
}

// StartSnapshots launches the periodic snapshot writer (no-op without a
// SnapshotPath, or if already running). A failed write keeps the previous
// snapshot and bumps the failure counter; the next tick tries again.
func (s *Server) StartSnapshots() {
	if s.cfg.SnapshotPath == "" {
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snapStop != nil {
		return
	}
	interval := s.cfg.SnapshotInterval
	if interval <= 0 {
		interval = time.Minute
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.snapStop, s.snapDone = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				_, _ = s.SaveSnapshot()
			case <-stop:
				return
			}
		}
	}()
}

// StopSnapshots stops the periodic writer and waits for it to exit. It does
// not write a final snapshot — shutdown sequences call SaveSnapshot
// explicitly after the drain, so the file reflects the drained state.
func (s *Server) StopSnapshots() {
	s.snapMu.Lock()
	stop, done := s.snapStop, s.snapDone
	s.snapStop, s.snapDone = nil, nil
	s.snapMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
