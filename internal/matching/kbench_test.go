package matching

// Micro-benchmarks of the two targeted-sweep kernels on a CONNECT-sized
// domain, isolating the proposal loop from the estimate plumbing that
// BenchmarkSamplerParallel (repo root) times end to end. The batched kernel
// is the one the serving benchmarks run; the per-draw kernel stays as the
// byte-identical replay path.

import (
	"math/rand"
	"testing"

	"repro/internal/belief"
)

func kernelSampler(b *testing.B) *Sampler {
	counts := make([]int, 130)
	rng := rand.New(rand.NewSource(2))
	for i := range counts {
		counts[i] = rng.Intn(200)
	}
	ft := mustTable(b, 200, counts)
	bf := belief.UniformWidth(ft.Frequencies(), 0.01)
	g := buildGraph(b, bf, ft)
	s, err := NewSampler(g, rand.New(rand.NewSource(17)))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkTargetedSweep(b *testing.B) {
	s := kernelSampler(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TargetedSweep()
	}
}

func BenchmarkTargetedSweepBatch(b *testing.B) {
	s := kernelSampler(b)
	s.targetedSweepBatch(64) // size the word buffer outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.targetedSweepBatch(64)
	}
}
