package matching

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dataset"
)

func buildGraph(t testing.TB, bf *belief.Function, ft *dataset.FrequencyTable) *bipartite.Graph {
	t.Helper()
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustTable(t testing.TB, m int, counts []int) *dataset.FrequencyTable {
	t.Helper()
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestSamplerIgnorantMatchesLemma1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ft := mustTable(t, 20, []int{2, 5, 9, 14, 17, 19, 3, 11})
	g := buildGraph(t, belief.Ignorant(8), ft)
	est, err := EstimateCracks(g, Config{Samples: 2000, Runs: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-1) > 0.1 {
		t.Errorf("simulated E(X) = %v ± %v, want 1 (Lemma 1)", est.Mean, est.StdDev)
	}
}

func TestSamplerPointValuedMatchesLemma3(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Groups: sizes 3, 2, 3 -> g = 3.
	ft := mustTable(t, 20, []int{4, 4, 4, 9, 9, 15, 15, 15})
	g := buildGraph(t, belief.PointValued(ft.Frequencies()), ft)
	est, err := EstimateCracks(g, Config{Samples: 2000, Runs: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-3) > 0.15 {
		t.Errorf("simulated E(X) = %v ± %v, want 3 (Lemma 3)", est.Mean, est.StdDev)
	}
}

func TestSamplerFigure4aChain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ft, bf, err := core.Figure4aChain().Realize(10, []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, bf, ft)
	est, err := EstimateCracks(g, Config{Samples: 3000, Runs: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := 74.0 / 45.0
	if math.Abs(est.Mean-want) > 0.1 {
		t.Errorf("simulated E(X) = %v ± %v, want 74/45 = %v", est.Mean, est.StdDev, want)
	}
}

// TestSamplerMatchesExactOnRandomGraphs is the key uniformity check: on
// random compliant interval graphs small enough for exact computation, the
// MCMC estimate must agree with the permanent-based expectation. This
// justifies the scaled-down iteration counts (DESIGN.md).
func TestSamplerMatchesExactOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(5)
		m := 20
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft := mustTable(t, m, counts)
		bf := belief.RandomCompliant(ft.Frequencies(), 0.2, rng)
		g := buildGraph(t, bf, ft)
		exact, err := core.ExactExpectedCracks(g.ToExplicit())
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateCracks(g, Config{Samples: 3000, Runs: 3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Mean-exact) > math.Max(0.15, 4*est.StdDev+0.05) {
			t.Errorf("trial %d (n=%d): simulated %v ± %v, exact %v",
				trial, n, est.Mean, est.StdDev, exact)
		}
	}
}

func TestSamplerAlphaCompliantSeedsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	counts := make([]int, n)
	for i := range counts {
		counts[i] = 2 * (i + 1)
	}
	ft := mustTable(t, 40, counts)
	base := belief.UniformWidth(ft.Frequencies(), 0.06)
	pert, _, err := belief.AlphaCompliant(base, ft.Frequencies(), 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, pert, ft)
	if !g.Feasible() {
		t.Skip("perturbed graph infeasible for this seed; nothing to sample")
	}
	if _, err := g.IdentityMatching(); err == nil {
		t.Fatal("test needs a graph without the identity matching")
	}
	est, err := EstimateCracks(g, Config{Samples: 1500, Runs: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := core.ExactExpectedCracks(g.ToExplicit())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-exact) > math.Max(0.2, 4*est.StdDev+0.05) {
		t.Errorf("simulated %v ± %v, exact %v", est.Mean, est.StdDev, exact)
	}
}

func TestSamplerInfeasible(t *testing.T) {
	ft := mustTable(t, 10, []int{2, 6})
	bf := belief.MustNew([]belief.Interval{{Lo: 0.6, Hi: 0.6}, {Lo: 0.6, Hi: 0.6}})
	g := buildGraph(t, bf, ft)
	if _, err := NewSampler(g, rand.New(rand.NewSource(1))); err == nil {
		t.Error("NewSampler on infeasible graph: want error")
	}
	if _, err := EstimateCracks(g, Config{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("EstimateCracks on infeasible graph: want error")
	}
}

func TestSamplerInvariants(t *testing.T) {
	// Every state the sampler visits must be a consistent perfect matching.
	rng := rand.New(rand.NewSource(11))
	ft := mustTable(t, 30, []int{3, 3, 9, 9, 14, 20, 20, 26})
	bf := belief.RandomCompliant(ft.Frequencies(), 0.25, rng)
	g := buildGraph(t, bf, ft)
	s, err := NewSampler(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Items()
	for sweep := 0; sweep < 200; sweep++ {
		s.Sweep()
		m := s.Matching()
		used := make([]bool, n)
		for x, w := range m {
			if used[w] {
				t.Fatalf("sweep %d: anonymized item %d matched twice", sweep, w)
			}
			used[w] = true
			if !g.HasEdge(w, x) {
				t.Fatalf("sweep %d: inconsistent edge (%d,%d)", sweep, w, x)
			}
		}
		if c := s.Cracks(); c < 0 || c > n {
			t.Fatalf("sweep %d: crack count %d out of range", sweep, c)
		}
	}
}

func TestExpectedCracksEnumerated(t *testing.T) {
	got, err := ExpectedCracksEnumerated(bipartite.Complete(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("E(X) on K_4 = %v, want 1", got)
	}
	if _, err := ExpectedCracksEnumerated(bipartite.MustExplicit(2, [][]int{{1}, {1}})); err == nil {
		t.Error("infeasible graph: want error")
	}
}

func TestEstimateFraction(t *testing.T) {
	e := &Estimate{Mean: 2.5}
	if got := e.Fraction(10); got != 0.25 {
		t.Errorf("Fraction = %v, want 0.25", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SeedSweeps <= 0 || c.SampleGap <= 0 || c.SamplesPerSeed <= 0 || c.Samples <= 0 || c.Runs <= 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
	explicit := Config{SeedSweeps: 1, SampleGap: 2, SamplesPerSeed: 3, Samples: 4, Runs: 5}
	if got := explicit.withDefaults(); got != explicit {
		t.Errorf("explicit config altered: %+v", got)
	}
}

func TestSamplerDistributionMatchesExactSampler(t *testing.T) {
	// Beyond expectations: compare the full crack-count histogram of the
	// MCMC sampler against the exact uniform sampler on a random compliant
	// graph. This catches biases that averages would hide.
	rng := rand.New(rand.NewSource(89))
	ft := mustTable(t, 30, []int{4, 4, 9, 9, 9, 16, 16, 23})
	bf := belief.RandomCompliant(ft.Frequencies(), 0.25, rng)
	g := buildGraph(t, bf, ft)
	exact, err := bipartite.NewExactSampler(g.ToExplicit())
	if err != nil {
		t.Fatal(err)
	}
	n := g.Items()
	const draws = 20000
	exactHist := make([]float64, n+1)
	for k := 0; k < draws; k++ {
		cracks := 0
		for w, x := range exact.Sample(rng) {
			if w == x {
				cracks++
			}
		}
		exactHist[cracks]++
	}
	s, err := NewSampler(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	s.Reseed(50)
	mcmcHist := make([]float64, n+1)
	for k := 0; k < draws; k++ {
		for sw := 0; sw < 3; sw++ {
			s.Step()
		}
		mcmcHist[s.Cracks()]++
	}
	for k := 0; k <= n; k++ {
		pe, pm := exactHist[k]/draws, mcmcHist[k]/draws
		if diff := pe - pm; diff > 0.04 || diff < -0.04 {
			t.Errorf("P(X=%d): exact %v vs MCMC %v", k, pe, pm)
		}
	}
}
