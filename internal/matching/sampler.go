// Package matching samples consistent crack mappings — perfect matchings of
// the bipartite consistency graph — uniformly at random, reproducing the
// simulation procedure of Section 7.1 of the SIGMOD 2005 paper. The sampled
// crack counts provide the "average simulated estimates" that Figures 10 and
// 11 compare the O-estimates against.
package matching

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/parallel"
)

// Config tunes the Markov-chain sampler. The paper's procedure starts from
// the identity matching (every item cracked), runs 100,000 permutation-sweep
// iterations to obtain a seed, then emits one sample every 10,000 iterations,
// re-seeding after 250 samples until 5,000 samples are drawn. Those counts
// are far larger than needed for the domain sizes involved; the defaults here
// keep the identical shape at a fraction of the cost and are validated
// against exact permanent-based expectations in the package tests.
type Config struct {
	SeedSweeps     int  // burn-in sweeps after (re-)seeding; default 50
	SampleGap      int  // sweeps between consecutive samples; default 5
	SamplesPerSeed int  // samples drawn per seed before re-seeding; default 250
	Samples        int  // total samples per run; default 1000
	Runs           int  // independent runs averaged; default 5 (as in the paper)
	PaperMoves     bool // use the paper's blind transpositions instead of targeted swaps
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.SeedSweeps <= 0 {
		c.SeedSweeps = 50
	}
	if c.SampleGap <= 0 {
		c.SampleGap = 5
	}
	if c.SamplesPerSeed <= 0 {
		c.SamplesPerSeed = 250
	}
	if c.Samples <= 0 {
		c.Samples = 1000
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	return c
}

// Sampler walks the space of consistent perfect matchings of a graph.
//
// Two move kinds are available, both symmetric Metropolis proposals accepted
// exactly when the target is a consistent matching, so both leave the uniform
// distribution stationary:
//
//   - Sweep: the paper's §7.1 procedure — draw a random permutation P of the
//     items and, for each item i, swap the anonymized items matched to i and
//     P(i) when both swapped edges remain consistent.
//   - TargetedSweep: for each of n proposals, pick a random item i and a
//     uniform anonymized item w inside i's belief range, and swap i with w's
//     current owner when the displaced edge stays consistent. Choosing from
//     the (state-independent) candidate set makes the transition kernel
//     P(M→M') = (1/n)(1/O_i + 1/O_j), symmetric in M and M', while rejecting
//     far fewer proposals than blind transpositions — crucial for narrow
//     intervals over large domains (RETAIL-scale), where the paper
//     compensated with 100,000-iteration seeds instead.
type Sampler struct {
	// PaperMoves makes Step use the paper's blind transpositions; the
	// default is targeted swaps.
	PaperMoves bool

	g      *bipartite.Graph
	anonOf []int // anonOf[x] = anonymized item currently matched to item x
	itemOf []int // itemOf[w] = item currently holding anonymized item w
	perm   []int // scratch permutation
	rng    *rand.Rand
}

// NewSampler creates a sampler with a fresh seed matching (see seed). It
// returns bipartite.ErrInfeasible when no consistent matching exists at all.
func NewSampler(g *bipartite.Graph, rng *rand.Rand) (*Sampler, error) {
	s := &Sampler{
		g:    g,
		perm: make([]int, g.Items()),
		rng:  rng,
	}
	if err := s.seed(); err != nil {
		return nil, err
	}
	return s, nil
}

// seed installs a fresh consistent matching: a within-group shuffle of the
// identity when the graph is compliant (already far closer to stationarity
// than the raw identity — its expected crack count is the number of groups,
// not n), or a greedy perfect matching otherwise.
func (s *Sampler) seed() error {
	match, err := s.g.IdentityMatching()
	if err != nil {
		match, err = s.g.PerfectMatching()
		if err != nil {
			return err
		}
	} else {
		// Shuffle within each frequency group; every such matching is
		// consistent because an item's own group always lies in its range.
		for _, group := range s.g.GroupItems {
			for i := len(group) - 1; i > 0; i-- {
				j := s.rng.Intn(i + 1)
				a, b := group[i], group[j]
				match[a], match[b] = match[b], match[a]
			}
		}
	}
	s.anonOf = match
	s.itemOf = make([]int, len(match))
	for x, w := range match {
		s.itemOf[w] = x
	}
	return nil
}

// Sweep performs one permutation sweep of transposition moves and reports how
// many were accepted.
func (s *Sampler) Sweep() int {
	n := len(s.anonOf)
	for i := range s.perm {
		s.perm[i] = i
	}
	s.rng.Shuffle(n, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	accepted := 0
	for i := 0; i < n; i++ {
		j := s.perm[i]
		if i == j {
			continue
		}
		wi, wj := s.anonOf[i], s.anonOf[j]
		if s.g.HasEdge(wj, i) && s.g.HasEdge(wi, j) {
			s.swap(i, j)
			accepted++
		}
	}
	return accepted
}

// swap exchanges the anonymized items of items i and j (assumed consistent).
func (s *Sampler) swap(i, j int) {
	wi, wj := s.anonOf[i], s.anonOf[j]
	s.anonOf[i], s.anonOf[j] = wj, wi
	s.itemOf[wi], s.itemOf[wj] = j, i
}

// TargetedSweep performs n targeted-swap proposals and reports how many were
// accepted. See the Sampler documentation for the kernel and its symmetry.
func (s *Sampler) TargetedSweep() int {
	n := len(s.anonOf)
	accepted := 0
	for t := 0; t < n; t++ {
		i := s.rng.Intn(n)
		w, ok := s.randomCandidate(i)
		if !ok {
			continue
		}
		if w == s.anonOf[i] {
			continue
		}
		j := s.itemOf[w]
		// Moving w to i is consistent by construction; the displaced
		// anonymized item must suit j.
		if s.g.HasEdge(s.anonOf[i], j) {
			s.swap(i, j)
			accepted++
		}
	}
	return accepted
}

// randomCandidate draws a uniform anonymized item from item i's belief range.
func (s *Sampler) randomCandidate(i int) (int, bool) {
	lo, hi := s.g.ItemLo[i], s.g.ItemHi[i]
	if lo > hi {
		return 0, false
	}
	// Uniform global position among the O_i anonymized items in groups
	// lo..hi, resolved to (group, offset) by binary search on prefix sums.
	base := s.g.OutdegreePrefix(lo)
	pos := base + s.rng.Intn(s.g.OutdegreePrefix(hi+1)-base)
	gi := sort.Search(hi-lo, func(j int) bool { return s.g.OutdegreePrefix(lo+j+1) > pos }) + lo
	return s.g.GroupItems[gi][pos-s.g.OutdegreePrefix(gi)], true
}

// Cracks returns the number of cracked items in the current matching: items
// whose matched anonymized item is their own twin.
func (s *Sampler) Cracks() int {
	c := 0
	for x, w := range s.anonOf {
		if w == x {
			c++
		}
	}
	return c
}

// Matching returns a copy of the current matching (item -> anonymized item).
func (s *Sampler) Matching() []int {
	return append([]int(nil), s.anonOf...)
}

// Step performs one sweep of the configured move kind.
func (s *Sampler) Step() int {
	if s.PaperMoves {
		return s.Sweep()
	}
	return s.TargetedSweep()
}

// Reseed resets the state to a fresh seed matching and burns in the given
// number of sweeps.
func (s *Sampler) Reseed(burnIn int) error {
	if err := s.seed(); err != nil {
		return err
	}
	for i := 0; i < burnIn; i++ {
		s.Step()
	}
	return nil
}

// Estimate is a simulation estimate of the expected number of cracks.
type Estimate struct {
	Mean     float64   // mean over runs of the per-run average crack count
	StdDev   float64   // sample standard deviation across runs
	RunMeans []float64 // per-run averages
	Samples  int       // samples per run
}

// Fraction returns the estimate as a fraction of the domain size n.
func (e *Estimate) Fraction(n int) float64 { return e.Mean / float64(n) }

// EstimateCracks runs the full simulation of Section 7.1: cfg.Runs
// independent runs, each drawing cfg.Samples crack counts from the matching
// space, and returns the across-run mean and standard deviation. Runs
// execute on the parallel worker pool; results are bit-identical for a given
// rng regardless of the worker count, because each run's generator is split
// off a single root seed (parallel.SplitSeed) and run means are reduced in
// run order.
func EstimateCracks(g *bipartite.Graph, cfg Config, rng *rand.Rand) (*Estimate, error) {
	return EstimateCracksCtx(context.Background(), g, cfg, rng)
}

// EstimateCracksCtx is EstimateCracks under a work budget: every run charges
// one operation per move proposal, so a deadline or operation limit aborts
// the chains between sweeps instead of hanging. The runs execute on at most
// parallel.Workers(ctx) goroutines and charge ONE shared budget atomically
// (budget.Shared), so an operation limit bounds the whole simulation — the
// same work the serial execution would have done — not each run separately.
// The first budget error (by run index) is returned verbatim, so it stays
// degradable for the caller's cascade; no partial estimate is produced.
func EstimateCracksCtx(ctx context.Context, g *bipartite.Graph, cfg Config, rng *rand.Rand) (*Estimate, error) {
	cfg = cfg.withDefaults()
	est := &Estimate{
		Samples:  cfg.Samples,
		RunMeans: make([]float64, cfg.Runs),
	}
	root := rng.Int63()
	shared := budget.NewShared(ctx, budget.Config{})
	err := parallel.ForEach(ctx, 0, cfg.Runs, func(run int) error {
		mean, err := simulateRun(g, cfg, parallel.RNG(root, run), shared.Worker())
		if err != nil {
			return fmt.Errorf("matching: run %d: %w", run, err)
		}
		est.RunMeans[run] = mean
		return nil
	})
	if err != nil {
		return nil, err
	}
	est.Mean = dataset.Mean(est.RunMeans)
	est.StdDev = dataset.StdDev(est.RunMeans)
	return est, nil
}

// simulateRun executes one independent simulation run, charging the budget
// one operation per proposal (n per sweep).
func simulateRun(g *bipartite.Graph, cfg Config, rng *rand.Rand, bud budget.Charger) (float64, error) {
	if err := bud.Check(); err != nil {
		return 0, err
	}
	sweepCost := int64(g.Items())
	s, err := NewSampler(g, rng)
	if err != nil {
		return 0, err
	}
	s.PaperMoves = cfg.PaperMoves
	reseed := func() error {
		if err := s.seed(); err != nil {
			return err
		}
		for i := 0; i < cfg.SeedSweeps; i++ {
			if err := bud.Charge(sweepCost); err != nil {
				return fmt.Errorf("matching: burn-in: %w", err)
			}
			s.Step()
		}
		return nil
	}
	if err := reseed(); err != nil {
		return 0, err
	}
	total := 0.0
	sinceSeed := 0
	for k := 0; k < cfg.Samples; k++ {
		if sinceSeed == cfg.SamplesPerSeed {
			if err := reseed(); err != nil {
				return 0, err
			}
			sinceSeed = 0
		}
		for sw := 0; sw < cfg.SampleGap; sw++ {
			if err := bud.Charge(sweepCost); err != nil {
				return 0, fmt.Errorf("matching: sampling: %w", err)
			}
			s.Step()
		}
		total += float64(s.Cracks())
		sinceSeed++
	}
	return total / float64(cfg.Samples), nil
}

// ExpectedCracksEnumerated computes the exact expected crack count of a small
// explicit graph by exhaustive enumeration — ground truth for sampler tests.
func ExpectedCracksEnumerated(e *bipartite.Explicit) (float64, error) {
	total, sum := 0, 0
	err := e.EnumeratePerfectMatchings(0, func(match []int) {
		total++
		for w, x := range match {
			if w == x {
				sum++
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, fmt.Errorf("matching: %w", bipartite.ErrInfeasible)
	}
	return float64(sum) / float64(total), nil
}
