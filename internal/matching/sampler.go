// Package matching samples consistent crack mappings — perfect matchings of
// the bipartite consistency graph — uniformly at random, reproducing the
// simulation procedure of Section 7.1 of the SIGMOD 2005 paper. The sampled
// crack counts provide the "average simulated estimates" that Figures 10 and
// 11 compare the O-estimates against.
//
// The proposal loop is the hottest kernel in the repo and is written as a
// flat-array kernel (DESIGN.md §11): candidate draws are one bounded-rand
// draw plus one load into the graph's flat candidate layout, the crack count
// is maintained incrementally inside swap, randomness comes from an inlined
// SplitMix64 stream (parallel.Stream), and all per-run state lives in
// reusable scratch so steady-state sampling allocates nothing.
package matching

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bipartite"
	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/parallel"
)

// Config tunes the Markov-chain sampler. The paper's procedure starts from
// the identity matching (every item cracked), runs 100,000 permutation-sweep
// iterations to obtain a seed, then emits one sample every 10,000 iterations,
// re-seeding after 250 samples until 5,000 samples are drawn. Those counts
// are far larger than needed for the domain sizes involved; the defaults here
// keep the identical shape at a fraction of the cost and are validated
// against exact permanent-based expectations in the package tests.
type Config struct {
	SeedSweeps     int  // burn-in sweeps after (re-)seeding; default 50
	SampleGap      int  // sweeps between consecutive samples; default 5
	SamplesPerSeed int  // samples drawn per seed before re-seeding; default 250
	Samples        int  // total samples per run; default 1000
	Runs           int  // independent runs averaged; default 5 (as in the paper)
	PaperMoves     bool // use the paper's blind transpositions instead of targeted swaps

	// BatchK > 1 makes targeted sweeps draw their randomness in batches of K
	// proposals per refill (targetedSweepBatch): one 64-bit stream touch per
	// proposal instead of two, with the Lemire rejection threshold hoisted to
	// one bounds computation per batch. 0 or 1 selects the legacy
	// draw-per-proposal kernel, whose output the batched kernel does NOT
	// reproduce (it consumes the stream differently) — K=1 exists precisely
	// so callers can pin byte-identical historical trajectories.
	BatchK int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.SeedSweeps <= 0 {
		c.SeedSweeps = 50
	}
	if c.SampleGap <= 0 {
		c.SampleGap = 5
	}
	if c.SamplesPerSeed <= 0 {
		c.SamplesPerSeed = 250
	}
	if c.Samples <= 0 {
		c.Samples = 1000
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	return c
}

// Sampler walks the space of consistent perfect matchings of a graph.
//
// Two move kinds are available, both symmetric Metropolis proposals accepted
// exactly when the target is a consistent matching, so both leave the uniform
// distribution stationary:
//
//   - Sweep: the paper's §7.1 procedure — draw a random permutation P of the
//     items and, for each item i, swap the anonymized items matched to i and
//     P(i) when both swapped edges remain consistent.
//   - TargetedSweep: for each of n proposals, pick a random item i and a
//     uniform anonymized item w inside i's belief range, and swap i with w's
//     current owner when the displaced edge stays consistent. Choosing from
//     the (state-independent) candidate set makes the transition kernel
//     P(M→M') = (1/n)(1/O_i + 1/O_j), symmetric in M and M', while rejecting
//     far fewer proposals than blind transpositions — crucial for narrow
//     intervals over large domains (RETAIL-scale), where the paper
//     compensated with 100,000-iteration seeds instead.
//
// A Sampler is reusable: Reset rebinds it to a graph and a deterministic
// seed without allocating when the domain size does not grow, which is what
// makes the R-run estimate allocation-free after setup (see runScratch).
type Sampler struct {
	// PaperMoves makes Step use the paper's blind transpositions; the
	// default is targeted swaps.
	PaperMoves bool

	// BatchK > 1 makes Step use the batched targeted kernel with K
	// proposals per randomness refill; see Config.BatchK.
	BatchK int

	g *bipartite.Graph

	// Slice headers captured from the graph at bind time so the proposal
	// loops index flat arrays directly instead of chasing through g.
	flat     []int // group-ordered candidate array (g.CandidateLayout)
	candBase []int // item x's candidates start at flat[candBase[x]]
	candSpan []int // ... and number candSpan[x] (= outdegree O_x)
	itemLo   []int // first consistent group per item
	itemHi   []int // last consistent group per item (inclusive)
	itemGrp  []int // true group of each anonymized item

	anonOf   []int    // anonOf[x] = anonymized item currently matched to item x
	itemOf   []int    // itemOf[w] = item currently holding anonymized item w
	perm     []int    // scratch permutation for Sweep
	batchBuf []uint64 // word buffer for targetedSweepBatch: raw draws, then packed proposals

	seedMatch    []int // base matching reseeds start from
	identitySeed bool  // seedMatch is the identity: shuffle within groups

	cracks int // incrementally maintained |{x : anonOf[x] == x}|

	rng parallel.Stream
}

// NewSampler creates a sampler with a fresh seed matching (see reseed). The
// caller's generator contributes exactly one draw — the seed of the
// sampler's internal SplitMix64 stream — so construction stays deterministic
// for a fixed rng. It returns bipartite.ErrInfeasible when no consistent
// matching exists at all.
func NewSampler(g *bipartite.Graph, rng *rand.Rand) (*Sampler, error) {
	s := &Sampler{}
	if err := s.Reset(g, rng.Int63()); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rebinds the sampler to g, restarts its random stream at seed, and
// installs a fresh seed matching. No memory is allocated when the sampler
// was previously bound to a graph of at least the same domain size; the
// per-worker scratch of EstimateCracksCtx relies on this to run every chain
// allocation-free after the first. It returns bipartite.ErrInfeasible when
// the graph admits no consistent matching.
func (s *Sampler) Reset(g *bipartite.Graph, seed int64) error {
	if s.g != g {
		if err := s.bind(g); err != nil {
			return err
		}
	}
	s.rng = parallel.NewStream(seed)
	s.reseed()
	return nil
}

// bind captures g's flat layout and establishes the base seed matching: the
// identity when the graph is compliant, a greedy perfect matching otherwise
// (both deterministic, so they are computed once and reused by reseed).
func (s *Sampler) bind(g *bipartite.Graph) error {
	match, err := g.IdentityMatching()
	identity := err == nil
	if !identity {
		if match, err = g.PerfectMatching(); err != nil {
			return err
		}
	}
	n := g.Items()
	s.g = g
	s.flat, s.candBase, s.candSpan = g.CandidateLayout()
	s.itemLo, s.itemHi, s.itemGrp = g.ItemLo, g.ItemHi, g.ItemGroup
	s.seedMatch = match
	s.identitySeed = identity
	s.anonOf = scratchInts(s.anonOf, n)
	s.itemOf = scratchInts(s.itemOf, n)
	s.perm = scratchInts(s.perm, n)
	return nil
}

// scratchInts returns a length-n int slice, reusing buf's storage when it is
// large enough.
func scratchInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// reseed installs a fresh consistent matching: a within-group shuffle of the
// identity when the graph is compliant (already far closer to stationarity
// than the raw identity — its expected crack count is the number of groups,
// not n), or the cached greedy perfect matching otherwise. It also rebuilds
// the inverse index and recounts cracks — the one O(n) scan per seed; every
// proposal afterwards updates the count incrementally.
func (s *Sampler) reseed() {
	copy(s.anonOf, s.seedMatch)
	if s.identitySeed {
		// Shuffle within each frequency group; every such matching is
		// consistent because an item's own group always lies in its range.
		//lint:allow loopbudget one O(n) shuffle per seed as documented above; simulateRun charges per sweep
		for _, group := range s.g.GroupItems {
			for i := len(group) - 1; i > 0; i-- {
				j := int(s.rng.Uintn(uint64(i + 1)))
				a, b := group[i], group[j]
				s.anonOf[a], s.anonOf[b] = s.anonOf[b], s.anonOf[a]
			}
		}
	}
	cracks := 0
	for x, w := range s.anonOf {
		s.itemOf[w] = x
		if w == x {
			cracks++
		}
	}
	s.cracks = cracks
}

// Sweep performs one permutation sweep of transposition moves and reports how
// many were accepted.
func (s *Sampler) Sweep() int {
	n := len(s.anonOf)
	perm := s.perm
	for i := range perm {
		perm[i] = i
	}
	s.rng.Shuffle(perm)
	anonOf := s.anonOf
	itemLo, itemHi, itemGrp := s.itemLo, s.itemHi, s.itemGrp
	accepted := 0
	for i := 0; i < n; i++ {
		j := perm[i]
		if i == j {
			continue
		}
		wi, wj := anonOf[i], anonOf[j]
		// HasEdge(wj, i) && HasEdge(wi, j), inlined on the captured arrays.
		gj, gi := itemGrp[wj], itemGrp[wi]
		if itemLo[i] <= gj && gj <= itemHi[i] && itemLo[j] <= gi && gi <= itemHi[j] {
			s.swap(i, j)
			accepted++
		}
	}
	return accepted
}

// swap exchanges the anonymized items of items i and j (assumed consistent)
// and keeps the crack count current: only positions i and j change, so the
// count moves by the ±1 contributions of those two positions.
func (s *Sampler) swap(i, j int) {
	wi, wj := s.anonOf[i], s.anonOf[j]
	d := 0
	if wi == i {
		d--
	}
	if wj == j {
		d--
	}
	if wj == i {
		d++
	}
	if wi == j {
		d++
	}
	s.cracks += d
	s.anonOf[i], s.anonOf[j] = wj, wi
	s.itemOf[wi], s.itemOf[wj] = j, i
}

// TargetedSweep performs n targeted-swap proposals and reports how many were
// accepted. See the Sampler documentation for the kernel and its symmetry.
// This is the flat kernel proper: per proposal, two bounded-rand draws, one
// candidate load, one interval test, and a constant-work swap.
func (s *Sampler) TargetedSweep() int {
	n := len(s.anonOf)
	un := uint64(n)
	anonOf := s.anonOf
	flat, candBase, candSpan := s.flat, s.candBase, s.candSpan
	itemLo, itemHi, itemGrp := s.itemLo, s.itemHi, s.itemGrp
	accepted := 0
	for t := 0; t < n; t++ {
		i := int(s.rng.Uintn(un))
		span := candSpan[i]
		if span == 0 {
			continue
		}
		// Uniform candidate from i's belief range: one draw, one load.
		w := flat[candBase[i]+int(s.rng.Uintn(uint64(span)))]
		if w == anonOf[i] {
			continue
		}
		j := s.itemOf[w]
		// Moving w to i is consistent by construction; the displaced
		// anonymized item must suit j.
		gi := itemGrp[anonOf[i]]
		if itemLo[j] <= gi && gi <= itemHi[j] {
			s.swap(i, j)
			accepted++
		}
	}
	return accepted
}

// targetedSweepBatch performs the same n targeted-swap proposals as
// TargetedSweep, but draws randomness in batches of k proposals per refill
// of a reusable word buffer:
//
//   - ONE 64-bit stream touch per proposal instead of two — the high half
//     picks the item, the low half picks the candidate, each by Lemire's
//     32-bit multiply-shift (exact for n < 2^31, which even RETAIL clears
//     by five orders of magnitude);
//   - the item draw's rejection threshold (-n mod n) is hoisted to one
//     bounds computation per batch, where the per-draw kernel re-derives it
//     lazily inside every unlucky draw;
//   - the stream state lives in a stack variable across the whole sweep —
//     no pointer round-trip through the Sampler per draw — and is written
//     back once at the end.
//
// The move kernel, acceptance rule, and stationary distribution are exactly
// TargetedSweep's; only the stream-consumption pattern differs, so batched
// trajectories are deterministic per seed but not byte-identical to the
// k=1 kernel's. k < 2 (and the out-of-range n ≥ 2^31 guard) falls back to
// the per-draw kernel.
func (s *Sampler) targetedSweepBatch(k int) int {
	n := len(s.anonOf)
	if k < 2 || n == 0 || uint64(n) >= 1<<31 {
		return s.TargetedSweep()
	}
	if cap(s.batchBuf) < k {
		s.batchBuf = make([]uint64, k)
	}
	anonOf, itemOf := s.anonOf, s.itemOf
	flat, candBase, candSpan := s.flat, s.candBase, s.candSpan
	itemLo, itemHi, itemGrp := s.itemLo, s.itemHi, s.itemGrp
	un := uint64(n)
	n32 := uint32(n)
	itemThresh := -n32 % n32 // (2^32 - n) mod n, the biased low fringe
	state := s.rng           // stream state in a register for the whole sweep
	accepted := 0
	//lint:allow loopbudget one O(n) sweep over register-resident state, same cost contract as TargetedSweep; simulateRun charges per sweep
	for done := 0; done < n; {
		cnt := k
		if n-done < cnt {
			cnt = n - done
		}
		buf := s.batchBuf[:cnt]
		for idx := range buf {
			buf[idx] = state.Uint64()
		}
		// Phase 1: resolve every slot's (item, candidate) pair, packed back
		// into the word buffer in place as item<<32 | candidate (all-ones
		// marks an isolated item with no candidates). The pairs depend only
		// on the stream words and the graph's static layout — not on the
		// evolving matching — so the iterations are independent and the
		// multiplies and candidate loads pipeline across slots, instead of
		// queueing behind the previous proposal's swap.
		for idx, word := range buf {
			// Item from the high half: one 32×32→64 multiply against the
			// batch-hoisted threshold.
			m := (word >> 32) * un
			for uint32(m) < itemThresh {
				m = (state.Uint64() >> 32) * un
			}
			i := int(m >> 32)
			span := candSpan[i]
			if span == 0 {
				buf[idx] = ^uint64(0) // isolated item: no proposal
				continue
			}
			// Candidate from the low half: span varies per item, so the
			// fringe test stays lazy as in Stream.Uintn.
			us := uint64(uint32(span))
			m2 := (word & 0xffffffff) * us
			if lo := uint32(m2); lo < uint32(span) {
				thresh := -uint32(span) % uint32(span)
				for lo < thresh {
					m2 = (state.Uint64() & 0xffffffff) * us
					lo = uint32(m2)
				}
			}
			buf[idx] = uint64(i)<<32 | uint64(uint32(flat[candBase[i]+int(m2>>32)]))
		}
		// Phase 2: apply the proposals in slot order against the live
		// matching. Acceptance is branchless: a rejected proposal becomes
		// the no-op transposition (i, i) by conditional move, and the swap
		// body runs unconditionally with a flag-set crack delta — near
		// stationarity the accept/reject outcomes are data-dependent coin
		// flips, exactly the branches a predictor cannot learn. A proposal
		// whose candidate is the item's current partner is the identity
		// move and counts as (trivially) accepted, unlike the per-draw
		// kernel, which skips it before the acceptance test.
		cracks := s.cracks
		for _, pair := range buf {
			if pair == ^uint64(0) {
				continue
			}
			i := int(pair >> 32)
			j := itemOf[uint32(pair)]
			gi := itemGrp[anonOf[i]]
			ok := itemLo[j] <= gi && gi <= itemHi[j]
			if !ok {
				j = i
			}
			wi, wj := anonOf[i], anonOf[j]
			cracks += b2i(wj == i) + b2i(wi == j) - b2i(wi == i) - b2i(wj == j)
			anonOf[i], anonOf[j] = wj, wi
			itemOf[wi], itemOf[wj] = j, i
			accepted += b2i(ok)
		}
		s.cracks = cracks
		done += cnt
	}
	s.rng = state
	return accepted
}

// b2i converts a bool to 0/1; the compiler lowers this pattern to a
// flag-set instruction, keeping the batched apply loop free of
// data-dependent jumps.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Cracks returns the number of cracked items in the current matching — items
// whose matched anonymized item is their own twin — in O(1): the count is
// maintained incrementally by swap and recomputed only on reseed.
func (s *Sampler) Cracks() int { return s.cracks }

// Matching returns a copy of the current matching (item -> anonymized item).
func (s *Sampler) Matching() []int {
	return append([]int(nil), s.anonOf...)
}

// Step performs one sweep of the configured move kind.
func (s *Sampler) Step() int {
	if s.PaperMoves {
		return s.Sweep()
	}
	if s.BatchK > 1 {
		return s.targetedSweepBatch(s.BatchK)
	}
	return s.TargetedSweep()
}

// Reseed resets the state to a fresh seed matching and burns in the given
// number of sweeps. The random stream continues — it is not rewound — so
// successive reseeds of one sampler explore distinct seed states.
func (s *Sampler) Reseed(burnIn int) error {
	s.reseed()
	for i := 0; i < burnIn; i++ {
		s.Step()
	}
	return nil
}

// Estimate is a simulation estimate of the expected number of cracks.
type Estimate struct {
	Mean     float64   // mean over runs of the per-run average crack count
	StdDev   float64   // sample standard deviation across runs
	RunMeans []float64 // per-run averages
	Samples  int       // samples per run
}

// Fraction returns the estimate as a fraction of the domain size n.
func (e *Estimate) Fraction(n int) float64 { return e.Mean / float64(n) }

// EstimateCracks runs the full simulation of Section 7.1: cfg.Runs
// independent runs, each drawing cfg.Samples crack counts from the matching
// space, and returns the across-run mean and standard deviation. Runs
// execute on the parallel worker pool; results are bit-identical for a given
// rng regardless of the worker count, because each run's random stream is
// seeded from a single root (parallel.SplitSeed) and run means are reduced
// in run order.
func EstimateCracks(g *bipartite.Graph, cfg Config, rng *rand.Rand) (*Estimate, error) {
	return EstimateCracksCtx(context.Background(), g, cfg, rng)
}

// runScratch is one pool worker's reusable state: a rebindable sampler and
// the worker's batching view of the shared budget. A scratch is owned by
// exactly one ForEachWorker index, so chains reuse its memory run after run
// — after the first run on a worker, a steady-state iteration performs no
// allocations (enforced by TestSimulateRunSteadyStateAllocs).
type runScratch struct {
	s   Sampler
	bud *budget.Worker
}

// EstimateCracksCtx is EstimateCracks under a work budget: every run charges
// one operation per move proposal, so a deadline or operation limit aborts
// the chains between sweeps instead of hanging. The runs execute on at most
// parallel.Workers(ctx) goroutines and charge ONE shared budget atomically
// (budget.Shared), so an operation limit bounds the whole simulation — the
// same work the serial execution would have done — not each run separately.
// The first budget error (by run index) is returned verbatim, so it stays
// degradable for the caller's cascade; no partial estimate is produced.
func EstimateCracksCtx(ctx context.Context, g *bipartite.Graph, cfg Config, rng *rand.Rand) (*Estimate, error) {
	cfg = cfg.withDefaults()
	est := &Estimate{
		Samples:  cfg.Samples,
		RunMeans: make([]float64, cfg.Runs),
	}
	root := rng.Int63()
	shared := budget.NewShared(ctx, budget.Config{})
	workers := parallel.PoolWorkers(ctx, 0, cfg.Runs)
	scratch := make([]runScratch, workers)
	for w := range scratch {
		scratch[w].bud = shared.Worker()
	}
	err := parallel.ForEachWorker(ctx, workers, cfg.Runs, func(worker, run int) error {
		mean, err := simulateRun(g, cfg, parallel.SplitSeed(root, uint64(run)), &scratch[worker])
		if err != nil {
			return fmt.Errorf("matching: run %d: %w", run, err)
		}
		est.RunMeans[run] = mean
		return nil
	})
	if err != nil {
		return nil, err
	}
	est.Mean = dataset.Mean(est.RunMeans)
	est.StdDev = dataset.StdDev(est.RunMeans)
	return est, nil
}

// simulateRun executes one independent simulation run on the worker's
// scratch, charging the budget one operation per proposal (n per sweep).
// Everything the run computes is a pure function of (g, cfg, seed); the
// scratch only supplies reusable memory.
func simulateRun(g *bipartite.Graph, cfg Config, seed int64, sc *runScratch) (float64, error) {
	bud := sc.bud
	if err := bud.Check(); err != nil {
		return 0, err
	}
	sweepCost := int64(g.Items())
	s := &sc.s
	if err := s.Reset(g, seed); err != nil {
		return 0, err
	}
	s.PaperMoves = cfg.PaperMoves
	s.BatchK = cfg.BatchK
	reseed := func() error {
		s.reseed()
		for i := 0; i < cfg.SeedSweeps; i++ {
			if err := bud.Charge(sweepCost); err != nil {
				return fmt.Errorf("matching: burn-in: %w", err)
			}
			s.Step()
		}
		return nil
	}
	if err := reseed(); err != nil {
		return 0, err
	}
	total := 0.0
	sinceSeed := 0
	for k := 0; k < cfg.Samples; k++ {
		if sinceSeed == cfg.SamplesPerSeed {
			if err := reseed(); err != nil {
				return 0, err
			}
			sinceSeed = 0
		}
		for sw := 0; sw < cfg.SampleGap; sw++ {
			if err := bud.Charge(sweepCost); err != nil {
				return 0, fmt.Errorf("matching: sampling: %w", err)
			}
			s.Step()
		}
		total += float64(s.Cracks())
		sinceSeed++
	}
	return total / float64(cfg.Samples), nil
}

// ExpectedCracksEnumerated computes the exact expected crack count of a small
// explicit graph by exhaustive enumeration — ground truth for sampler tests.
func ExpectedCracksEnumerated(e *bipartite.Explicit) (float64, error) {
	total, sum := 0, 0
	err := e.EnumeratePerfectMatchings(0, func(match []int) {
		total++
		for w, x := range match {
			if w == x {
				sum++
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, fmt.Errorf("matching: %w", bipartite.ErrInfeasible)
	}
	return float64(sum) / float64(total), nil
}
