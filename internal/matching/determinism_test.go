package matching

// The RNG-splitting contract of the parallel engine: for a fixed seed, the
// sampler's estimate is bit-identical at every worker count, because each of
// the R runs owns a generator split off the root seed and the run means are
// reduced in run order.

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/belief"
	"repro/internal/parallel"
)

func estimateAt(t *testing.T, workers int) *Estimate {
	t.Helper()
	ft := mustTable(t, 40, []int{3, 3, 8, 8, 8, 14, 14, 21, 21, 30, 30, 30})
	bf := belief.UniformWidth(ft.Frequencies(), 0.08)
	g := buildGraph(t, bf, ft)
	ctx := parallel.WithWorkers(context.Background(), workers)
	est, err := EstimateCracksCtx(ctx, g, Config{
		SeedSweeps: 10, SampleGap: 2, SamplesPerSeed: 50, Samples: 200, Runs: 6,
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestSamplerBitIdenticalAcrossWorkerCounts(t *testing.T) {
	ref := estimateAt(t, 1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := estimateAt(t, workers)
		if got.Mean != ref.Mean || got.StdDev != ref.StdDev {
			t.Errorf("workers=%d: estimate %v ± %v differs from serial %v ± %v",
				workers, got.Mean, got.StdDev, ref.Mean, ref.StdDev)
		}
		for r := range ref.RunMeans {
			if got.RunMeans[r] != ref.RunMeans[r] {
				t.Errorf("workers=%d: run %d mean %v differs from serial %v",
					workers, r, got.RunMeans[r], ref.RunMeans[r])
			}
		}
	}
}

func TestSamplerSameSeedSameEstimate(t *testing.T) {
	a, b := estimateAt(t, 4), estimateAt(t, 4)
	if a.Mean != b.Mean || a.StdDev != b.StdDev {
		t.Errorf("same-seed estimates differ: %v ± %v vs %v ± %v", a.Mean, a.StdDev, b.Mean, b.StdDev)
	}
}
