package matching

// Allocation-regression tests for the flat kernel (DESIGN.md §11): sampling
// must be allocation-free after setup, and the incremental crack counter must
// never drift from a fresh O(n) recount. A regression in either silently
// costs the ≥3× kernel win (GC pressure) or corrupts every simulated
// estimate (counter drift), so both are pinned here.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/budget"
	"repro/internal/parallel"
)

func allocSampler(t testing.TB) *Sampler {
	t.Helper()
	ft := mustTable(t, 60, []int{4, 4, 11, 11, 11, 19, 19, 28, 28, 39, 39, 39, 50, 50})
	bf := belief.UniformWidth(ft.Frequencies(), 0.09)
	g := buildGraph(t, bf, ft)
	s, err := NewSampler(g, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepZeroAllocs(t *testing.T) {
	s := allocSampler(t)
	if n := testing.AllocsPerRun(200, func() { s.Sweep() }); n != 0 {
		t.Errorf("Sweep allocates %v per call, want 0", n)
	}
}

func TestTargetedSweepZeroAllocs(t *testing.T) {
	s := allocSampler(t)
	if n := testing.AllocsPerRun(200, func() { s.TargetedSweep() }); n != 0 {
		t.Errorf("TargetedSweep allocates %v per call, want 0", n)
	}
}

func TestCracksZeroAllocs(t *testing.T) {
	s := allocSampler(t)
	sink := 0
	if n := testing.AllocsPerRun(200, func() { sink += s.Cracks() }); n != 0 {
		t.Errorf("Cracks allocates %v per call, want 0", n)
	}
	_ = sink
}

func TestTargetedSweepBatchZeroAllocs(t *testing.T) {
	s := allocSampler(t)
	s.targetedSweepBatch(64) // first call sizes the word buffer
	if n := testing.AllocsPerRun(200, func() { s.targetedSweepBatch(64) }); n != 0 {
		t.Errorf("targetedSweepBatch allocates %v per call, want 0", n)
	}
}

func TestReseedZeroAllocs(t *testing.T) {
	s := allocSampler(t)
	if n := testing.AllocsPerRun(200, func() { s.Reseed(2) }); n != 0 {
		t.Errorf("Reseed allocates %v per call, want 0", n)
	}
}

// TestSimulateRunSteadyStateAllocs drives entire runs through a warm
// runScratch: after the first run binds the scratch to the graph, a full
// simulateRun — reseeds, burn-in, sampling, budget charges included — must
// not allocate at all. This is the per-worker reuse contract that
// EstimateCracksCtx's pool relies on.
func TestSimulateRunSteadyStateAllocs(t *testing.T) {
	ft := mustTable(t, 60, []int{4, 4, 11, 11, 11, 19, 19, 28, 28, 39, 39, 39, 50, 50})
	bf := belief.UniformWidth(ft.Frequencies(), 0.09)
	g := buildGraph(t, bf, ft)
	cfg := Config{SeedSweeps: 5, SampleGap: 2, SamplesPerSeed: 10, Samples: 30, Runs: 1}.withDefaults()
	sc := &runScratch{bud: budget.NewShared(context.Background(), budget.Config{}).Worker()}
	if _, err := simulateRun(g, cfg, parallel.SplitSeed(1, 0), sc); err != nil {
		t.Fatal(err) // warm-up run binds the scratch
	}
	run := uint64(1)
	n := testing.AllocsPerRun(50, func() {
		if _, err := simulateRun(g, cfg, parallel.SplitSeed(1, run), sc); err != nil {
			t.Fatal(err)
		}
		run++
	})
	if n != 0 {
		t.Errorf("steady-state simulateRun allocates %v per run, want 0", n)
	}
}

// TestSimulateRunBatchedSteadyStateAllocs is the batched-kernel row of the
// same contract: with BatchK set, the word buffer is sized on the warm-up
// run and steady-state runs stay allocation-free.
func TestSimulateRunBatchedSteadyStateAllocs(t *testing.T) {
	ft := mustTable(t, 60, []int{4, 4, 11, 11, 11, 19, 19, 28, 28, 39, 39, 39, 50, 50})
	bf := belief.UniformWidth(ft.Frequencies(), 0.09)
	g := buildGraph(t, bf, ft)
	cfg := Config{SeedSweeps: 5, SampleGap: 2, SamplesPerSeed: 10, Samples: 30, Runs: 1, BatchK: 64}.withDefaults()
	sc := &runScratch{bud: budget.NewShared(context.Background(), budget.Config{}).Worker()}
	if _, err := simulateRun(g, cfg, parallel.SplitSeed(1, 0), sc); err != nil {
		t.Fatal(err) // warm-up run binds the scratch and sizes the buffer
	}
	run := uint64(1)
	n := testing.AllocsPerRun(50, func() {
		if _, err := simulateRun(g, cfg, parallel.SplitSeed(1, run), sc); err != nil {
			t.Fatal(err)
		}
		run++
	})
	if n != 0 {
		t.Errorf("steady-state batched simulateRun allocates %v per run, want 0", n)
	}
}

// TestIncrementalCracksMatchesRecount sweeps 10k times across both move
// kinds, graphs with and without identity seeds, and periodic reseeds,
// asserting after every sweep that the O(1) incremental counter equals a
// fresh O(n) recount of the current matching.
func TestIncrementalCracksMatchesRecount(t *testing.T) {
	recount := func(m []int) int {
		c := 0
		for x, w := range m {
			if w == x {
				c++
			}
		}
		return c
	}
	rng := rand.New(rand.NewSource(31))
	sweeps := 0
	for trial := 0; sweeps < 10000; trial++ {
		n := 6 + rng.Intn(8)
		m := 30
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft := mustTable(t, m, counts)
		bf := belief.RandomCompliant(ft.Frequencies(), 0.25, rng)
		g := buildGraph(t, bf, ft)
		s, err := NewSampler(g, rng)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 500; k++ {
			switch k % 10 {
			case 9:
				s.Reseed(1)
			case 4:
				s.PaperMoves = true
				s.Step()
				s.PaperMoves = false
			default:
				s.Step()
			}
			sweeps++
			if got, want := s.Cracks(), recount(s.Matching()); got != want {
				t.Fatalf("trial %d sweep %d: incremental cracks %d != recount %d", trial, k, got, want)
			}
		}
	}
}
