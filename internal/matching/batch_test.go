package matching

// Contract tests for the batched targeted kernel (targetedSweepBatch): K=1
// is byte-identical to the legacy per-draw kernel, K>1 is deterministic per
// seed and worker count, and every K samples the same stationary
// distribution — pinned against the exact permanent-based expectations like
// the per-draw kernel is.

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/belief"
	"repro/internal/core"
	"repro/internal/parallel"
)

// TestBatchK1ByteIdentical pins the compatibility contract: BatchK ≤ 1
// dispatches to the legacy kernel, so trajectories AND the stream position
// afterwards are byte-identical — historical seeds replay exactly.
func TestBatchK1ByteIdentical(t *testing.T) {
	ft := mustTable(t, 60, []int{4, 4, 11, 11, 11, 19, 19, 28, 28, 39, 39, 39, 50, 50})
	bf := belief.UniformWidth(ft.Frequencies(), 0.09)
	g := buildGraph(t, bf, ft)
	legacy, err := NewSampler(g, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewSampler(g, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	batched.BatchK = 1
	for sweep := 0; sweep < 25; sweep++ {
		al, ab := legacy.TargetedSweep(), batched.Step()
		if al != ab {
			t.Fatalf("sweep %d: legacy accepted %d, BatchK=1 accepted %d", sweep, al, ab)
		}
		if !reflect.DeepEqual(legacy.Matching(), batched.Matching()) {
			t.Fatalf("sweep %d: matchings diverged", sweep)
		}
		if legacy.Cracks() != batched.Cracks() {
			t.Fatalf("sweep %d: crack counts diverged", sweep)
		}
	}
	// The streams must be in the same position too: the next draws agree.
	if l, b := legacy.rng.Uint64(), batched.rng.Uint64(); l != b {
		t.Fatalf("stream positions diverged: %#x vs %#x", l, b)
	}
}

// TestBatchEstimateDeterministic pins batched estimates as pure functions of
// (seed, cfg): bit-identical across repeated calls and worker counts, the
// same contract determinism_test.go pins for the per-draw kernel.
func TestBatchEstimateDeterministic(t *testing.T) {
	ft := mustTable(t, 40, []int{3, 3, 8, 8, 8, 14, 14, 21, 21, 30, 30, 30})
	bf := belief.UniformWidth(ft.Frequencies(), 0.08)
	g := buildGraph(t, bf, ft)
	cfg := Config{SeedSweeps: 10, SampleGap: 2, SamplesPerSeed: 50, Samples: 200, Runs: 6, BatchK: 64}
	at := func(workers int) *Estimate {
		ctx := parallel.WithWorkers(context.Background(), workers)
		est, err := EstimateCracksCtx(ctx, g, cfg, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	ref := at(1)
	for _, workers := range []int{1, 4} {
		got := at(workers)
		if !reflect.DeepEqual(got.RunMeans, ref.RunMeans) {
			t.Errorf("workers=%d: run means %v differ from serial %v", workers, got.RunMeans, ref.RunMeans)
		}
	}
}

// TestBatchSweepMatchesExact validates the batched kernel's stationary
// distribution at several batch sizes — including K larger than n, so the
// partial-final-batch path runs — against exact permanent-based
// expectations on random graphs.
func TestBatchSweepMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, k := range []int{2, 7, 64, 1024} {
		for trial := 0; trial < 4; trial++ {
			n := 3 + rng.Intn(5)
			m := 20
			counts := make([]int, n)
			for i := range counts {
				counts[i] = rng.Intn(m + 1)
			}
			ft := mustTable(t, m, counts)
			bf := belief.RandomCompliant(ft.Frequencies(), 0.2, rng)
			g := buildGraph(t, bf, ft)
			exact, err := core.ExactExpectedCracks(g.ToExplicit())
			if err != nil {
				t.Fatal(err)
			}
			est, err := EstimateCracks(g, Config{Samples: 3000, Runs: 3, BatchK: k}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(est.Mean-exact) > math.Max(0.15, 4*est.StdDev+0.05) {
				t.Errorf("k=%d trial %d (n=%d): simulated %v ± %v, exact %v",
					k, trial, n, est.Mean, est.StdDev, exact)
			}
		}
	}
}

// TestBatchSweepInvariants checks that batched sweeps preserve the matching
// invariants and the incremental crack counter on a larger graph.
func TestBatchSweepInvariants(t *testing.T) {
	ft := mustTable(t, 60, []int{4, 4, 11, 11, 11, 19, 19, 28, 28, 39, 39, 39, 50, 50})
	bf := belief.UniformWidth(ft.Frequencies(), 0.09)
	g := buildGraph(t, bf, ft)
	s, err := NewSampler(g, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s.BatchK = 8
	n := g.Items()
	for sweep := 0; sweep < 40; sweep++ {
		s.Step()
		match := s.Matching()
		seen := make([]bool, n)
		cracks := 0
		for x, w := range match {
			if seen[w] {
				t.Fatalf("sweep %d: anonymized item %d matched twice", sweep, w)
			}
			seen[w] = true
			gw := g.ItemGroup[w]
			if gw < g.ItemLo[x] || gw > g.ItemHi[x] {
				t.Fatalf("sweep %d: inconsistent edge (%d,%d)", sweep, w, x)
			}
			if w == x {
				cracks++
			}
		}
		if cracks != s.Cracks() {
			t.Fatalf("sweep %d: incremental cracks %d, recount %d", sweep, s.Cracks(), cracks)
		}
	}
}
