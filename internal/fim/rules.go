package fim

import (
	"fmt"
	"math/bits"
	"sort"
)

// Rule is an association rule Antecedent ⇒ Consequent with its standard
// quality measures. Support counts are absolute (transactions).
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	Support    int     // support count of Antecedent ∪ Consequent
	Confidence float64 // Support / support(Antecedent)
	Lift       float64 // Confidence / frequency(Consequent)
}

func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (sup=%d conf=%.3f lift=%.3f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// Rules derives all association rules with confidence >= minConfidence from
// a collection of frequent itemsets (as produced by Apriori or FPGrowth over
// nTransactions transactions), using the classic Agrawal–Srikant scheme:
// every non-empty proper subset of a frequent itemset is a candidate
// antecedent, with downward pruning on confidence (if A ⇒ B fails, so does
// every A' ⊂ A with the same union).
func Rules(sets []FrequentItemset, nTransactions int, minConfidence float64) ([]Rule, error) {
	if minConfidence <= 0 || minConfidence > 1 {
		return nil, fmt.Errorf("fim: confidence %v outside (0,1]", minConfidence)
	}
	if nTransactions <= 0 {
		return nil, fmt.Errorf("fim: %d transactions, want > 0", nTransactions)
	}
	support := make(map[string]int, len(sets))
	for _, fs := range sets {
		support[fs.Items.Key()] = fs.Support
	}
	var rules []Rule
	for _, fs := range sets {
		if len(fs.Items) < 2 {
			continue
		}
		if len(fs.Items) > 24 {
			return nil, fmt.Errorf("fim: itemset of size %d too large for rule enumeration", len(fs.Items))
		}
		rules = appendRules(rules, fs, support, nTransactions, minConfidence)
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].Antecedent.Key() < rules[j].Antecedent.Key()
	})
	return rules, nil
}

// appendRules enumerates antecedents of one frequent itemset by descending
// antecedent size, pruning sub-antecedents of failures (shrinking the
// antecedent can only lower confidence, since the union is fixed and the
// antecedent support grows).
func appendRules(rules []Rule, fs FrequentItemset, support map[string]int, m int, minConf float64) []Rule {
	k := len(fs.Items)
	// Enumerate antecedent bitmasks grouped by popcount, largest first.
	bySize := make([][]uint, k)
	for mask := uint(1); mask < uint(1)<<uint(k)-1; mask++ {
		bySize[bits.OnesCount(mask)-1] = append(bySize[bits.OnesCount(mask)-1], mask)
	}
	failed := map[uint]bool{}
	for size := k - 1; size >= 1; size-- {
		for _, mask := range bySize[size-1] {
			// Prune: if any superset antecedent (within this itemset) with
			// one more item already failed... supersets were processed in the
			// previous (larger) round; if a superset failed, this one will
			// too. Check all one-item extensions.
			pruned := false
			for b := 0; b < k; b++ {
				sup := mask | 1<<uint(b)
				if sup != mask && bits.OnesCount(sup) == size+1 && failed[sup] {
					pruned = true
					break
				}
			}
			if pruned {
				failed[mask] = true
				continue
			}
			ant, cons := splitByMask(fs.Items, mask)
			antSup, ok := support[ant.Key()]
			if !ok || antSup == 0 {
				continue // cannot happen for frequent supersets, but be safe
			}
			conf := float64(fs.Support) / float64(antSup)
			if conf < minConf {
				failed[mask] = true
				continue
			}
			rule := Rule{
				Antecedent: ant,
				Consequent: cons,
				Support:    fs.Support,
				Confidence: conf,
			}
			if consSup, ok := support[cons.Key()]; ok && consSup > 0 {
				rule.Lift = conf / (float64(consSup) / float64(m))
			}
			rules = append(rules, rule)
		}
	}
	return rules
}

func splitByMask(items Itemset, mask uint) (in, out Itemset) {
	for i, x := range items {
		if mask&(1<<uint(i)) != 0 {
			in = append(in, x)
		} else {
			out = append(out, x)
		}
	}
	return in, out
}

