package fim

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Eclat mines all itemsets with support count >= minSupport using the
// vertical layout: each item carries its tidset (sorted transaction ids) and
// candidates are extended depth-first by tidset intersection. A third
// independent implementation alongside Apriori and FP-Growth; the three
// cross-validate each other in the package tests.
func Eclat(db *dataset.Database, minSupport int) ([]FrequentItemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fim: minimum support %d, want >= 1", minSupport)
	}
	// Vertical layout.
	tidsets := make([][]int32, db.Items())
	for t := 0; t < db.Transactions(); t++ {
		for _, x := range db.Transaction(t) {
			tidsets[x] = append(tidsets[x], int32(t))
		}
	}
	type node struct {
		item dataset.Item
		tids []int32
	}
	var frontier []node
	for x, tids := range tidsets {
		if len(tids) >= minSupport {
			frontier = append(frontier, node{item: dataset.Item(x), tids: tids})
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].item < frontier[j].item })

	var result []FrequentItemset
	var rec func(prefix Itemset, class []node)
	rec = func(prefix Itemset, class []node) {
		for i, a := range class {
			items := make(Itemset, 0, len(prefix)+1)
			items = append(items, prefix...)
			items = append(items, a.item)
			result = append(result, FrequentItemset{Items: items, Support: len(a.tids)})
			var next []node
			for _, b := range class[i+1:] {
				inter := intersectTids(a.tids, b.tids)
				if len(inter) >= minSupport {
					next = append(next, node{item: b.item, tids: inter})
				}
			}
			if len(next) > 0 {
				rec(items, next)
			}
		}
	}
	rec(nil, frontier)
	SortItemsets(result)
	return result, nil
}

// intersectTids merges two sorted tid lists.
func intersectTids(a, b []int32) []int32 {
	out := make([]int32, 0, minInt(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
