// Package fim provides the frequent-itemset mining substrate the paper's
// scenarios rest on ("mining as a service", "mining for the common good"):
// the Apriori algorithm of Agrawal, Imielinski and Swami (reference [6] of
// the paper, which also defines the notion of item frequency used throughout)
// and FP-Growth as an independent implementation for cross-validation.
//
// Anonymization commutes with mining: the frequent itemsets of an anonymized
// database are exactly the images of the original frequent itemsets under
// the anonymization bijection — this is what makes releasing anonymized data
// useful, and risky.
package fim

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Itemset is a sorted, duplicate-free set of item ids.
type Itemset []dataset.Item

// NewItemset builds a canonical itemset from the given items.
func NewItemset(items ...dataset.Item) Itemset {
	s := append(Itemset(nil), items...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Equal reports whether two itemsets contain the same items.
func (s Itemset) Equal(o Itemset) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Contains reports whether the itemset contains item x.
func (s Itemset) Contains(x dataset.Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// SubsetOf reports whether s ⊆ t (both sorted).
func (s Itemset) SubsetOf(t Itemset) bool {
	i := 0
	for _, x := range s {
		for i < len(t) && t[i] < x {
			i++
		}
		if i == len(t) || t[i] != x {
			return false
		}
		i++
	}
	return true
}

// Key returns a canonical string key for use in maps.
func (s Itemset) Key() string {
	b := make([]byte, 0, len(s)*4)
	for i, x := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendInt(b, int(x))
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [12]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// Map applies an item renaming (e.g. an anonymization bijection) to the
// itemset, returning the canonical image.
func (s Itemset) Map(perm []int) Itemset {
	out := make(Itemset, len(s))
	for i, x := range s {
		out[i] = dataset.Item(perm[x])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s Itemset) String() string { return "{" + s.Key() + "}" }

// FrequentItemset pairs an itemset with its support count.
type FrequentItemset struct {
	Items   Itemset
	Support int
}

// SortItemsets puts frequent itemsets into the canonical report order:
// by length, then lexicographically by items.
func SortItemsets(sets []FrequentItemset) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i].Items, sets[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// AbsoluteSupport converts a fractional minimum support into an absolute
// transaction count (ceiling, at least 1).
func AbsoluteSupport(db *dataset.Database, fraction float64) (int, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("fim: support fraction %v outside (0,1]", fraction)
	}
	s := int(float64(db.Transactions())*fraction + 0.999999)
	if s < 1 {
		s = 1
	}
	return s, nil
}
