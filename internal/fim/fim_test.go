package fim

import (
	"math/rand"
	"testing"

	"repro/internal/anonymize"
	"repro/internal/dataset"
)

func TestItemsetBasics(t *testing.T) {
	s := NewItemset(3, 1, 3, 2)
	if !s.Equal(Itemset{1, 2, 3}) {
		t.Errorf("NewItemset = %v, want {1,2,3}", s)
	}
	if !s.Contains(2) || s.Contains(4) {
		t.Error("Contains wrong")
	}
	if !NewItemset(1, 3).SubsetOf(s) || NewItemset(1, 4).SubsetOf(s) {
		t.Error("SubsetOf wrong")
	}
	if NewItemset().SubsetOf(s) != true {
		t.Error("empty set is a subset of everything")
	}
	if s.Key() != "1,2,3" {
		t.Errorf("Key = %q, want 1,2,3", s.Key())
	}
	if s.String() != "{1,2,3}" {
		t.Errorf("String = %q", s.String())
	}
	if NewItemset(0).Key() != "0" {
		t.Errorf("Key(0) = %q", NewItemset(0).Key())
	}
	mapped := s.Map([]int{9, 5, 7, 6})
	if !mapped.Equal(Itemset{5, 6, 7}) {
		t.Errorf("Map = %v, want {5,6,7}", mapped)
	}
}

// classicDB is the textbook FP-growth example.
func classicDB(t testing.TB) *dataset.Database {
	t.Helper()
	return dataset.MustNew(6, []dataset.Transaction{
		{0, 1, 4},
		{1, 3},
		{1, 2},
		{0, 1, 3},
		{0, 2},
		{1, 2},
		{0, 2},
		{0, 1, 2, 4},
		{0, 1, 2},
	})
}

func TestAprioriClassicExample(t *testing.T) {
	sets, err := Apriori(classicDB(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"0": 6, "1": 7, "2": 6, "3": 2, "4": 2,
		"0,1": 4, "0,2": 4, "0,4": 2, "1,2": 4, "1,3": 2, "1,4": 2,
		"0,1,2": 2, "0,1,4": 2,
	}
	got := map[string]int{}
	for _, fs := range sets {
		got[fs.Items.Key()] = fs.Support
	}
	if len(got) != len(want) {
		t.Fatalf("got %d itemsets %v, want %d", len(got), got, len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("support(%s) = %d, want %d", k, got[k], v)
		}
	}
}

func TestAprioriValidation(t *testing.T) {
	if _, err := Apriori(classicDB(t), 0); err == nil {
		t.Error("minSupport 0: want error")
	}
	if _, err := FPGrowth(classicDB(t), 0); err == nil {
		t.Error("minSupport 0: want error")
	}
}

func TestAprioriHighSupportEmpty(t *testing.T) {
	sets, err := Apriori(classicDB(t), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 0 {
		t.Errorf("got %d itemsets, want none", len(sets))
	}
}

func TestFPGrowthMatchesApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(10)
		var txs []dataset.Transaction
		for i := 0; i < 30+rng.Intn(60); i++ {
			l := 1 + rng.Intn(6)
			tx := make(dataset.Transaction, l)
			for j := range tx {
				tx[j] = dataset.Item(rng.Intn(n))
			}
			txs = append(txs, tx)
		}
		db := dataset.MustNew(n, txs)
		minSup := 1 + rng.Intn(8)
		a, err := Apriori(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		f, err := FPGrowth(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(f) {
			t.Fatalf("trial %d (minSup %d): Apriori %d sets, FPGrowth %d", trial, minSup, len(a), len(f))
		}
		for i := range a {
			if !a[i].Items.Equal(f[i].Items) || a[i].Support != f[i].Support {
				t.Fatalf("trial %d: mismatch at %d: %v/%d vs %v/%d",
					trial, i, a[i].Items, a[i].Support, f[i].Items, f[i].Support)
			}
		}
	}
}

func TestDownwardClosure(t *testing.T) {
	// Every subset of a frequent itemset is frequent with >= support.
	rng := rand.New(rand.NewSource(17))
	n := 8
	var txs []dataset.Transaction
	for i := 0; i < 80; i++ {
		l := 1 + rng.Intn(5)
		tx := make(dataset.Transaction, l)
		for j := range tx {
			tx[j] = dataset.Item(rng.Intn(n))
		}
		txs = append(txs, tx)
	}
	db := dataset.MustNew(n, txs)
	sets, err := Apriori(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	support := map[string]int{}
	for _, fs := range sets {
		support[fs.Items.Key()] = fs.Support
	}
	for _, fs := range sets {
		if len(fs.Items) < 2 {
			continue
		}
		for drop := range fs.Items {
			sub := make(Itemset, 0, len(fs.Items)-1)
			for i, x := range fs.Items {
				if i != drop {
					sub = append(sub, x)
				}
			}
			subSup, ok := support[sub.Key()]
			if !ok {
				t.Fatalf("subset %v of frequent %v missing", sub, fs.Items)
			}
			if subSup < fs.Support {
				t.Fatalf("support(%v) = %d < support(%v) = %d", sub, subSup, fs.Items, fs.Support)
			}
		}
	}
}

func TestMiningCommutesWithAnonymization(t *testing.T) {
	// The load-bearing invariant of the paper's setting: mining an anonymized
	// database yields exactly the images of the original frequent itemsets.
	rng := rand.New(rand.NewSource(19))
	db := classicDB(t)
	m := anonymize.NewRandomMapping(db.Items(), rng)
	anonDB, err := m.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Apriori(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := Apriori(anonDB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != len(anon) {
		t.Fatalf("itemset counts differ: %d vs %d", len(orig), len(anon))
	}
	anonSupport := map[string]int{}
	for _, fs := range anon {
		anonSupport[fs.Items.Key()] = fs.Support
	}
	for _, fs := range orig {
		img := fs.Items.Map(m.ToAnon)
		if got, ok := anonSupport[img.Key()]; !ok || got != fs.Support {
			t.Errorf("image %v of %v has support %d, want %d", img, fs.Items, got, fs.Support)
		}
	}
}

func TestAbsoluteSupport(t *testing.T) {
	db := classicDB(t) // 9 transactions
	if s, err := AbsoluteSupport(db, 0.25); err != nil || s != 3 {
		t.Errorf("AbsoluteSupport(0.25) = %d (%v), want 3", s, err)
	}
	if s, err := AbsoluteSupport(db, 1.0); err != nil || s != 9 {
		t.Errorf("AbsoluteSupport(1.0) = %d (%v), want 9", s, err)
	}
	if s, err := AbsoluteSupport(db, 0.0001); err != nil || s != 1 {
		t.Errorf("AbsoluteSupport(tiny) = %d (%v), want 1", s, err)
	}
	if _, err := AbsoluteSupport(db, 0); err == nil {
		t.Error("fraction 0: want error")
	}
	if _, err := AbsoluteSupport(db, 1.5); err == nil {
		t.Error("fraction > 1: want error")
	}
}

func TestSortItemsets(t *testing.T) {
	sets := []FrequentItemset{
		{Items: Itemset{1, 2}, Support: 5},
		{Items: Itemset{0}, Support: 9},
		{Items: Itemset{1}, Support: 7},
		{Items: Itemset{0, 3}, Support: 2},
	}
	SortItemsets(sets)
	wantOrder := []string{"0", "1", "0,3", "1,2"}
	for i, w := range wantOrder {
		if sets[i].Items.Key() != w {
			t.Errorf("position %d = %s, want %s", i, sets[i].Items.Key(), w)
		}
	}
}

func TestEclatMatchesAprioriAndFPGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(10)
		var txs []dataset.Transaction
		for i := 0; i < 30+rng.Intn(60); i++ {
			l := 1 + rng.Intn(6)
			tx := make(dataset.Transaction, l)
			for j := range tx {
				tx[j] = dataset.Item(rng.Intn(n))
			}
			txs = append(txs, tx)
		}
		db := dataset.MustNew(n, txs)
		minSup := 1 + rng.Intn(8)
		a, err := Apriori(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Eclat(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(e) {
			t.Fatalf("trial %d: Apriori %d sets, Eclat %d", trial, len(a), len(e))
		}
		for i := range a {
			if !a[i].Items.Equal(e[i].Items) || a[i].Support != e[i].Support {
				t.Fatalf("trial %d: mismatch at %d: %v/%d vs %v/%d",
					trial, i, a[i].Items, a[i].Support, e[i].Items, e[i].Support)
			}
		}
	}
	if _, err := Eclat(classicDB(t), 0); err == nil {
		t.Error("minSupport 0: want error")
	}
}

func TestEclatClassicExample(t *testing.T) {
	sets, err := Eclat(classicDB(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := Apriori(classicDB(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != len(ap) {
		t.Fatalf("Eclat %d sets, Apriori %d", len(sets), len(ap))
	}
}
