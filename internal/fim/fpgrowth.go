package fim

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// fpNode is a node of an FP-tree. Children are kept in a map keyed by item;
// header chains link nodes carrying the same item across the tree.
type fpNode struct {
	item     dataset.Item
	count    int
	parent   *fpNode
	children map[dataset.Item]*fpNode
	next     *fpNode // header-table chain
}

// fpTree is an FP-tree plus its header table.
type fpTree struct {
	root    *fpNode
	headers map[dataset.Item]*fpNode
	counts  map[dataset.Item]int // item -> total count in this tree
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{item: -1, children: map[dataset.Item]*fpNode{}},
		headers: map[dataset.Item]*fpNode{},
		counts:  map[dataset.Item]int{},
	}
}

// insert adds a (sorted-by-rank) item path with the given count.
func (t *fpTree) insert(path []dataset.Item, count int) {
	node := t.root
	for _, x := range path {
		child := node.children[x]
		if child == nil {
			child = &fpNode{item: x, parent: node, children: map[dataset.Item]*fpNode{}}
			child.next = t.headers[x]
			t.headers[x] = child
			node.children[x] = child
		}
		child.count += count
		t.counts[x] += count
		node = child
	}
}

// FPGrowth mines all itemsets with support count >= minSupport by building an
// FP-tree and recursively mining conditional trees. It produces exactly the
// same result set as Apriori; the two implementations cross-validate each
// other in the package tests.
func FPGrowth(db *dataset.Database, minSupport int) ([]FrequentItemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fim: minimum support %d, want >= 1", minSupport)
	}
	counts := db.SupportCounts()
	rank := frequencyRank(counts, minSupport)

	tree := newFPTree()
	var path []dataset.Item
	for i := 0; i < db.Transactions(); i++ {
		path = path[:0]
		for _, x := range db.Transaction(i) {
			if rank[x] >= 0 {
				path = append(path, x)
			}
		}
		sort.Slice(path, func(a, b int) bool { return rank[path[a]] < rank[path[b]] })
		if len(path) > 0 {
			tree.insert(path, 1)
		}
	}

	var result []FrequentItemset
	mineTree(tree, nil, minSupport, &result)
	SortItemsets(result)
	return result, nil
}

// frequencyRank assigns each frequent item a dense rank by decreasing support
// (ties broken by item id); infrequent items get -1.
func frequencyRank(counts []int, minSupport int) []int {
	type ic struct{ item, count int }
	var freq []ic
	for x, c := range counts {
		if c >= minSupport {
			freq = append(freq, ic{x, c})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].count != freq[j].count {
			return freq[i].count > freq[j].count
		}
		return freq[i].item < freq[j].item
	})
	rank := make([]int, len(counts))
	for i := range rank {
		rank[i] = -1
	}
	for r, f := range freq {
		rank[f.item] = r
	}
	return rank
}

// mineTree emits every frequent itemset of the tree extended by suffix.
func mineTree(t *fpTree, suffix Itemset, minSupport int, out *[]FrequentItemset) {
	// Iterate items in the tree in a deterministic order.
	items := make([]dataset.Item, 0, len(t.counts))
	for x := range t.counts {
		items = append(items, x)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	for _, x := range items {
		support := t.counts[x]
		if support < minSupport {
			continue
		}
		withX := make(Itemset, 0, len(suffix)+1)
		withX = append(withX, x)
		withX = append(withX, suffix...)
		sort.Slice(withX, func(i, j int) bool { return withX[i] < withX[j] })
		*out = append(*out, FrequentItemset{Items: withX, Support: support})

		// Build x's conditional tree from its prefix paths.
		cond := newFPTree()
		for node := t.headers[x]; node != nil; node = node.next {
			var prefix []dataset.Item
			for p := node.parent; p != nil && p.item != -1; p = p.parent {
				prefix = append(prefix, p.item)
			}
			// prefix is leaf-to-root; reverse to root-to-leaf insertion order.
			for i, j := 0, len(prefix)-1; i < j; i, j = i+1, j-1 {
				prefix[i], prefix[j] = prefix[j], prefix[i]
			}
			if len(prefix) > 0 {
				cond.insert(prefix, node.count)
			}
		}
		// Drop infrequent items inside the conditional tree by rebuilding it
		// pruned (simple and correct; conditional trees are small).
		pruned := pruneTree(cond, minSupport)
		if len(pruned.counts) > 0 {
			mineTree(pruned, withX, minSupport, out)
		}
	}
}

// pruneTree rebuilds a conditional tree keeping only items whose conditional
// support reaches the threshold.
func pruneTree(t *fpTree, minSupport int) *fpTree {
	keep := map[dataset.Item]bool{}
	for x, c := range t.counts {
		if c >= minSupport {
			keep[x] = true
		}
	}
	out := newFPTree()
	var walk func(node *fpNode, path []dataset.Item)
	walk = func(node *fpNode, path []dataset.Item) {
		// Children live in a map; visit them in item order so the rebuilt
		// tree's header chains (and hence mining order) are deterministic.
		items := make([]dataset.Item, 0, len(node.children))
		for it := range node.children {
			items = append(items, it)
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		for _, it := range items {
			child := node.children[it]
			p := path
			if keep[child.item] {
				p = append(append([]dataset.Item(nil), path...), child.item)
			}
			// Insert the increment contributed by this node itself (its
			// count minus its children's counts flows through unchanged, but
			// inserting per-node deltas is equivalent and simpler: insert the
			// node's own count and subtract children's counts).
			delta := child.count
			for _, gc := range child.children {
				delta -= gc.count
			}
			if delta > 0 && len(p) > 0 {
				out.insert(p, delta)
			}
			walk(child, p)
		}
	}
	walk(t.root, nil)
	return out
}
