package fim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestRulesClassicExample(t *testing.T) {
	db := classicDB(t)
	sets, err := Apriori(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(sets, db.Transactions(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules found")
	}
	// Every reported rule must be self-consistent and above threshold.
	support := map[string]int{}
	for _, fs := range sets {
		support[fs.Items.Key()] = fs.Support
	}
	for _, r := range rules {
		if r.Confidence < 0.7 {
			t.Errorf("rule %v below confidence threshold", r)
		}
		union := NewItemset(append(append(Itemset{}, r.Antecedent...), r.Consequent...)...)
		if support[union.Key()] != r.Support {
			t.Errorf("rule %v: union support %d, want %d", r, support[union.Key()], r.Support)
		}
		wantConf := float64(r.Support) / float64(support[r.Antecedent.Key()])
		if math.Abs(r.Confidence-wantConf) > 1e-12 {
			t.Errorf("rule %v: confidence %v, want %v", r, r.Confidence, wantConf)
		}
		wantLift := wantConf / (float64(support[r.Consequent.Key()]) / 9)
		if math.Abs(r.Lift-wantLift) > 1e-12 {
			t.Errorf("rule %v: lift %v, want %v", r, r.Lift, wantLift)
		}
		if r.String() == "" {
			t.Error("empty rule string")
		}
	}
	// A known rule: {0,4} has support 2 and {0,4} ⊆ {0,1,4} support 2, so
	// {0,4} => {1} has confidence 1.
	found := false
	for _, r := range rules {
		if r.Antecedent.Equal(Itemset{0, 4}) && r.Consequent.Equal(Itemset{1}) {
			found = true
			if r.Confidence != 1 {
				t.Errorf("{0,4}=>{1} confidence %v, want 1", r.Confidence)
			}
		}
	}
	if !found {
		t.Error("expected rule {0,4}=>{1} missing")
	}
}

func TestRulesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(5)
		var txs []dataset.Transaction
		for i := 0; i < 40+rng.Intn(40); i++ {
			l := 1 + rng.Intn(4)
			tx := make(dataset.Transaction, l)
			for j := range tx {
				tx[j] = dataset.Item(rng.Intn(n))
			}
			txs = append(txs, tx)
		}
		db := dataset.MustNew(n, txs)
		minSup := 2 + rng.Intn(5)
		minConf := 0.3 + rng.Float64()*0.6
		sets, err := Apriori(db, minSup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Rules(sets, db.Transactions(), minConf)
		if err != nil {
			t.Fatal(err)
		}
		gotKeys := map[string]bool{}
		for _, r := range got {
			gotKeys[r.Antecedent.Key()+"=>"+r.Consequent.Key()] = true
		}
		// Brute force: every split of every frequent itemset.
		support := map[string]int{}
		for _, fs := range sets {
			support[fs.Items.Key()] = fs.Support
		}
		want := 0
		for _, fs := range sets {
			k := len(fs.Items)
			if k < 2 {
				continue
			}
			for mask := uint(1); mask < uint(1)<<uint(k)-1; mask++ {
				ant, cons := splitByMask(fs.Items, mask)
				conf := float64(fs.Support) / float64(support[ant.Key()])
				if conf >= minConf {
					want++
					if !gotKeys[ant.Key()+"=>"+cons.Key()] {
						t.Fatalf("trial %d: missing rule %v => %v (conf %v)", trial, ant, cons, conf)
					}
				}
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: %d rules, brute force says %d", trial, len(got), want)
		}
	}
}

func TestRulesValidation(t *testing.T) {
	sets := []FrequentItemset{{Items: Itemset{0, 1}, Support: 3}, {Items: Itemset{0}, Support: 4}, {Items: Itemset{1}, Support: 5}}
	if _, err := Rules(sets, 10, 0); err == nil {
		t.Error("confidence 0: want error")
	}
	if _, err := Rules(sets, 10, 1.5); err == nil {
		t.Error("confidence > 1: want error")
	}
	if _, err := Rules(sets, 0, 0.5); err == nil {
		t.Error("0 transactions: want error")
	}
	huge := []FrequentItemset{{Items: make(Itemset, 25), Support: 1}}
	for i := range huge[0].Items {
		huge[0].Items[i] = dataset.Item(i)
	}
	if _, err := Rules(huge, 10, 0.5); err == nil {
		t.Error("oversized itemset: want error")
	}
}

func TestRulesSortedByConfidence(t *testing.T) {
	db := classicDB(t)
	sets, err := Apriori(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(sets, db.Transactions(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence+1e-12 {
			t.Fatalf("rules not sorted at %d: %v then %v", i, rules[i-1].Confidence, rules[i].Confidence)
		}
	}
}
