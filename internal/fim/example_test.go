package fim_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fim"
)

// Mining the textbook example at absolute support 2 with FP-Growth; Apriori
// and Eclat produce the identical result.
func ExampleFPGrowth() {
	db := dataset.MustNew(6, []dataset.Transaction{
		{0, 1, 4}, {1, 3}, {1, 2}, {0, 1, 3}, {0, 2},
		{1, 2}, {0, 2}, {0, 1, 2, 4}, {0, 1, 2},
	})
	sets, _ := fim.FPGrowth(db, 4)
	for _, fs := range sets {
		fmt.Printf("%s support=%d\n", fs.Items, fs.Support)
	}
	// Output:
	// {0} support=6
	// {1} support=7
	// {2} support=6
	// {0,1} support=4
	// {0,2} support=4
	// {1,2} support=4
}

// Association rules with at least 90% confidence.
func ExampleRules() {
	db := dataset.MustNew(4, []dataset.Transaction{
		{0, 1}, {0, 1}, {0, 1}, {0, 2}, {1, 3},
	})
	sets, _ := fim.Apriori(db, 3)
	rules, _ := fim.Rules(sets, db.Transactions(), 0.7)
	for _, r := range rules {
		fmt.Println(r)
	}
	// Output:
	// {0} => {1} (sup=3 conf=0.750 lift=0.938)
	// {1} => {0} (sup=3 conf=0.750 lift=0.938)
}
