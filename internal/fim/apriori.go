package fim

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Apriori mines all itemsets with support count >= minSupport using the
// classic level-wise algorithm: candidates of size k are joined from frequent
// (k-1)-itemsets sharing a (k-2)-prefix, pruned by the downward-closure
// property, and counted in one database pass per level.
func Apriori(db *dataset.Database, minSupport int) ([]FrequentItemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fim: minimum support %d, want >= 1", minSupport)
	}
	var result []FrequentItemset

	// Level 1 from support counts.
	counts := db.SupportCounts()
	var frequent []Itemset
	for x, c := range counts {
		if c >= minSupport {
			s := Itemset{dataset.Item(x)}
			frequent = append(frequent, s)
			result = append(result, FrequentItemset{Items: s, Support: c})
		}
	}

	for len(frequent) > 0 {
		candidates := generateCandidates(frequent)
		if len(candidates) == 0 {
			break
		}
		supports := countSupports(db, candidates)
		frequent = frequent[:0]
		for i, c := range candidates {
			if supports[i] >= minSupport {
				frequent = append(frequent, c)
				result = append(result, FrequentItemset{Items: c, Support: supports[i]})
			}
		}
	}
	SortItemsets(result)
	return result, nil
}

// generateCandidates joins frequent (k-1)-itemsets sharing their first k-2
// items and prunes candidates having an infrequent (k-1)-subset.
func generateCandidates(frequent []Itemset) []Itemset {
	sortLex(frequent)
	seen := make(map[string]bool, len(frequent))
	for _, f := range frequent {
		seen[f.Key()] = true
	}
	var candidates []Itemset
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i], frequent[j]
			if !samePrefix(a, b) {
				break // sorted order: no later j shares the prefix either
			}
			cand := make(Itemset, 0, len(a)+1)
			cand = append(cand, a...)
			cand = append(cand, b[len(b)-1])
			if allSubsetsFrequent(cand, seen) {
				candidates = append(candidates, cand)
			}
		}
	}
	return candidates
}

// sortLex sorts same-length itemsets lexicographically.
func sortLex(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// samePrefix reports whether a and b agree on all but their last element
// (and differ there), the Apriori join condition.
func samePrefix(a, b Itemset) bool {
	for k := 0; k < len(a)-1; k++ {
		if a[k] != b[k] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

// allSubsetsFrequent checks downward closure: every (k-1)-subset of cand must
// itself be frequent.
func allSubsetsFrequent(cand Itemset, seen map[string]bool) bool {
	sub := make(Itemset, 0, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		for i, x := range cand {
			if i != drop {
				sub = append(sub, x)
			}
		}
		if !seen[sub.Key()] {
			return false
		}
	}
	return true
}

// countSupports counts each candidate's support in one database pass,
// indexing candidates by their smallest item to skip impossible checks.
func countSupports(db *dataset.Database, candidates []Itemset) []int {
	supports := make([]int, len(candidates))
	byFirst := make(map[dataset.Item][]int)
	for i, c := range candidates {
		byFirst[c[0]] = append(byFirst[c[0]], i)
	}
	for t := 0; t < db.Transactions(); t++ {
		tx := db.Transaction(t)
		for _, x := range tx {
			for _, ci := range byFirst[x] {
				if candidates[ci].SubsetOf(Itemset(tx)) {
					supports[ci]++
				}
			}
		}
	}
	return supports
}
