package fim

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func questDB(b *testing.B, items, trans int) *dataset.Database {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	db, err := datagen.Quest(datagen.QuestConfig{Items: items, Transactions: trans}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkApriori(b *testing.B) {
	db := questDB(b, 80, 5000)
	minSup, _ := AbsoluteSupport(db, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apriori(db, minSup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPGrowth(b *testing.B) {
	db := questDB(b, 80, 5000)
	minSup, _ := AbsoluteSupport(db, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPGrowth(db, minSup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRules(b *testing.B) {
	db := questDB(b, 80, 5000)
	minSup, _ := AbsoluteSupport(db, 0.05)
	sets, err := FPGrowth(db, minSup)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rules(sets, db.Transactions(), 0.8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEclat(b *testing.B) {
	db := questDB(b, 80, 5000)
	minSup, _ := AbsoluteSupport(db, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eclat(db, minSup); err != nil {
			b.Fatal(err)
		}
	}
}
