// Package anonymize implements the anonymization model of Section 2.1 of the
// SIGMOD 2005 paper: a bijection from the original item domain I to a
// disjoint anonymized domain J, applied uniformly to every transaction.
// Anonymization preserves all data characteristics — supports, itemset
// structure, transaction lengths — which is exactly why the paper asks how
// safe it really is.
package anonymize

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Mapping is an anonymization bijection over a domain of n items: item x is
// released under the pseudonym ToAnon[x] (also an id in [0, n), understood as
// naming the disjoint anonymized domain J).
type Mapping struct {
	ToAnon []int // original -> anonymized
	ToOrig []int // anonymized -> original
}

// NewRandomMapping draws a uniformly random anonymization bijection.
func NewRandomMapping(n int, rng *rand.Rand) *Mapping {
	m := &Mapping{ToAnon: rng.Perm(n), ToOrig: make([]int, n)}
	for orig, anon := range m.ToAnon {
		m.ToOrig[anon] = orig
	}
	return m
}

// NewMapping wraps an explicit permutation (original -> anonymized),
// validating that it is a bijection on [0, n).
func NewMapping(perm []int) (*Mapping, error) {
	n := len(perm)
	toOrig := make([]int, n)
	seen := make([]bool, n)
	for orig, anon := range perm {
		if anon < 0 || anon >= n || seen[anon] {
			return nil, fmt.Errorf("anonymize: not a bijection at %d -> %d", orig, anon)
		}
		seen[anon] = true
		toOrig[anon] = orig
	}
	return &Mapping{ToAnon: append([]int(nil), perm...), ToOrig: toOrig}, nil
}

// Items returns the domain size.
func (m *Mapping) Items() int { return len(m.ToAnon) }

// Apply anonymizes a database: every item of every transaction is replaced
// with its pseudonym. The transaction order is preserved (the paper's
// transformation renames items only).
func (m *Mapping) Apply(db *dataset.Database) (*dataset.Database, error) {
	if db.Items() != m.Items() {
		return nil, fmt.Errorf("anonymize: mapping over %d items, database over %d", m.Items(), db.Items())
	}
	txs := make([]dataset.Transaction, db.Transactions())
	for i := range txs {
		src := db.Transaction(i)
		dst := make(dataset.Transaction, len(src))
		for j, x := range src {
			dst[j] = dataset.Item(m.ToAnon[x])
		}
		txs[i] = dst
	}
	return dataset.New(db.Items(), txs)
}

// ApplyTable anonymizes a frequency table: the pseudonym's support count is
// the original's. This is the invariant the whole paper rests on — observed
// frequency multisets are preserved by anonymization.
func (m *Mapping) ApplyTable(ft *dataset.FrequencyTable) (*dataset.FrequencyTable, error) {
	if ft.NItems != m.Items() {
		return nil, fmt.Errorf("anonymize: mapping over %d items, table over %d", m.Items(), ft.NItems)
	}
	counts := make([]int, ft.NItems)
	for orig, c := range ft.Counts {
		counts[m.ToAnon[orig]] = c
	}
	return dataset.NewTable(ft.NTransactions, counts)
}

// CrackMapping is a hacker's 1-1 guess C : J -> I assigning an original item
// to each anonymized item (Section 2.3).
type CrackMapping struct {
	Guess []int // Guess[anon] = guessed original item
}

// NewCrackMapping validates a guess permutation.
func NewCrackMapping(guess []int) (*CrackMapping, error) {
	n := len(guess)
	seen := make([]bool, n)
	for anon, orig := range guess {
		if orig < 0 || orig >= n || seen[orig] {
			return nil, fmt.Errorf("anonymize: crack mapping not 1-1 at %d -> %d", anon, orig)
		}
		seen[orig] = true
	}
	return &CrackMapping{Guess: append([]int(nil), guess...)}, nil
}

// Cracks counts the items whose identity the guess reveals: anonymized items
// a with Guess[a] equal to the item the owner actually hid behind a.
func (c *CrackMapping) Cracks(truth *Mapping) (int, error) {
	if len(c.Guess) != truth.Items() {
		return 0, fmt.Errorf("anonymize: crack mapping over %d items, truth over %d", len(c.Guess), truth.Items())
	}
	cracks := 0
	for anon, guessed := range c.Guess {
		if truth.ToOrig[anon] == guessed {
			cracks++
		}
	}
	return cracks, nil
}

// CrackedItems lists the original item ids revealed by the guess.
func (c *CrackMapping) CrackedItems(truth *Mapping) ([]int, error) {
	if len(c.Guess) != truth.Items() {
		return nil, fmt.Errorf("anonymize: crack mapping over %d items, truth over %d", len(c.Guess), truth.Items())
	}
	var items []int
	for anon, guessed := range c.Guess {
		if truth.ToOrig[anon] == guessed {
			items = append(items, guessed)
		}
	}
	return items, nil
}
