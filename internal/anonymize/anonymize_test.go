package anonymize

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestNewMappingValidation(t *testing.T) {
	if _, err := NewMapping([]int{0, 0}); err == nil {
		t.Error("duplicate image: want error")
	}
	if _, err := NewMapping([]int{0, 2}); err == nil {
		t.Error("out of range: want error")
	}
	m, err := NewMapping([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.ToOrig[2] != 0 || m.ToOrig[0] != 1 || m.ToOrig[1] != 2 {
		t.Errorf("inverse wrong: %v", m.ToOrig)
	}
}

func TestRandomMappingIsBijection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		m := NewRandomMapping(n, rng)
		seen := make([]bool, n)
		for orig, anon := range m.ToAnon {
			if anon < 0 || anon >= n || seen[anon] || m.ToOrig[anon] != orig {
				return false
			}
			seen[anon] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := dataset.MustNew(5, []dataset.Transaction{
		{0, 1, 2}, {1, 3}, {0, 4}, {2, 3, 4},
	})
	m := NewRandomMapping(5, rng)
	anon, err := m.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if anon.Transactions() != db.Transactions() || anon.Size() != db.Size() {
		t.Fatal("anonymization changed database shape")
	}
	// Support multiset is preserved.
	a, b := db.SupportCounts(), anon.SupportCounts()
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("support multiset changed: %v vs %v", a, b)
		}
	}
	// Per-item: pseudonym's count equals original's.
	origCounts, anonCounts := db.SupportCounts(), anon.SupportCounts()
	for x := 0; x < 5; x++ {
		if anonCounts[m.ToAnon[x]] != origCounts[x] {
			t.Errorf("item %d: count %d, pseudonym has %d", x, origCounts[x], anonCounts[m.ToAnon[x]])
		}
	}
	// Transaction contents map exactly.
	for i := 0; i < db.Transactions(); i++ {
		src, dst := db.Transaction(i), anon.Transaction(i)
		if len(src) != len(dst) {
			t.Fatalf("transaction %d length changed", i)
		}
		want := map[int]bool{}
		for _, x := range src {
			want[m.ToAnon[int(x)]] = true
		}
		for _, y := range dst {
			if !want[int(y)] {
				t.Fatalf("transaction %d: unexpected item %d", i, y)
			}
		}
	}
}

func TestApplyTableMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := dataset.MustNew(6, []dataset.Transaction{
		{0, 1}, {1, 2, 3}, {4}, {0, 5}, {2, 5},
	})
	m := NewRandomMapping(6, rng)
	viaDB, err := m.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	viaTable, err := m.ApplyTable(db.Table())
	if err != nil {
		t.Fatal(err)
	}
	dbCounts := viaDB.SupportCounts()
	for x := range dbCounts {
		if dbCounts[x] != viaTable.Counts[x] {
			t.Errorf("count[%d]: Apply gives %d, ApplyTable gives %d", x, dbCounts[x], viaTable.Counts[x])
		}
	}
}

func TestApplyDomainMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewRandomMapping(4, rng)
	db := dataset.MustNew(5, []dataset.Transaction{{0}})
	if _, err := m.Apply(db); err == nil {
		t.Error("domain mismatch: want error")
	}
	if _, err := m.ApplyTable(db.Table()); err == nil {
		t.Error("table domain mismatch: want error")
	}
}

func TestCrackMapping(t *testing.T) {
	truth, err := NewMapping([]int{1, 2, 0}) // 0->1', 1->2', 2->0'
	if err != nil {
		t.Fatal(err)
	}
	// Perfect guess: anonymized a maps back to ToOrig[a] = (2,0,1).
	perfect, err := NewCrackMapping([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c, err := perfect.Cracks(truth); err != nil || c != 3 {
		t.Errorf("perfect guess cracks = %d (%v), want 3", c, err)
	}
	items, err := perfect.CrackedItems(truth)
	if err != nil || len(items) != 3 {
		t.Errorf("CrackedItems = %v (%v), want all three", items, err)
	}
	// A partially right guess.
	partial, err := NewCrackMapping([]int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := partial.Cracks(truth); c != 1 {
		t.Errorf("partial guess cracks = %d, want 1 (only item 2)", c)
	}
	if _, err := NewCrackMapping([]int{0, 0, 1}); err == nil {
		t.Error("non-injective guess: want error")
	}
	short, _ := NewCrackMapping([]int{0, 1})
	if _, err := short.Cracks(truth); err == nil {
		t.Error("size mismatch: want error")
	}
	if _, err := short.CrackedItems(truth); err == nil {
		t.Error("size mismatch: want error")
	}
}

func TestIdentityGuessExpectedCracks(t *testing.T) {
	// Over many random anonymizations, a fixed guess cracks 1 item on
	// average (Lemma 1 from the hacker's side).
	rng := rand.New(rand.NewSource(11))
	n := 10
	guess, err := NewCrackMapping(rng.Perm(n))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	total := 0
	for i := 0; i < trials; i++ {
		truth := NewRandomMapping(n, rng)
		c, err := guess.Cracks(truth)
		if err != nil {
			t.Fatal(err)
		}
		total += c
	}
	mean := float64(total) / trials
	if mean < 0.9 || mean > 1.1 {
		t.Errorf("mean cracks of fixed guess = %v, want ~1", mean)
	}
}
