package dataset

import (
	"fmt"
	"math/rand"
)

// Sample draws a uniform random sample of ceil(fraction*|D|) transactions
// without replacement, preserving the universe size. It implements the
// similarity-by-sampling substrate of Section 7.4: the data owner simulates a
// hacker holding "similar data" by sampling the original database.
// fraction must be in (0, 1].
func Sample(db *Database, fraction float64, rng *rand.Rand) (*Database, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("dataset: sample fraction %v outside (0,1]", fraction)
	}
	m := db.Transactions()
	k := int(float64(m)*fraction + 0.999999)
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	idx := rng.Perm(m)[:k]
	txs := make([]Transaction, k)
	for i, j := range idx {
		txs[i] = db.Transaction(j)
	}
	return New(db.Items(), txs)
}

// SampleCounts draws the support-count vector of a transaction sample without
// materializing transactions. For a sample of k of m transactions drawn
// without replacement, an item with support count c appears in a
// Hypergeometric(m, c, k) number of sampled transactions — but counts of
// different items are not independent, so this is exact only marginally.
//
// For the planted-count synthetic benchmarks of internal/datagen, items are
// planted into transactions independently, which makes the joint distribution
// of sampled counts exactly a product of (conditionally) hypergeometric laws;
// SampleCounts therefore reproduces dataset.Sample's count statistics for
// those generators at a fraction of the cost, enabling Figure 12 at the
// paper's full scale (16,470 items / 88,163 transactions for RETAIL).
func SampleCounts(ft *FrequencyTable, fraction float64, rng *rand.Rand) (*FrequencyTable, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("dataset: sample fraction %v outside (0,1]", fraction)
	}
	m := ft.NTransactions
	k := int(float64(m)*fraction + 0.999999)
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	counts := make([]int, ft.NItems)
	for x, c := range ft.Counts {
		counts[x] = Hypergeometric(m, c, k, rng)
	}
	return &FrequencyTable{NItems: ft.NItems, NTransactions: k, Counts: counts}, nil
}

// Hypergeometric samples the number of successes when drawing k items without
// replacement from a population of size n containing succ successes. Two
// symmetries — swapping draws with leftovers, and swapping the roles of the
// drawn set and the success set — bound the cost by
// O(min(k, n-k, succ, n-succ)).
func Hypergeometric(n, succ, k int, rng *rand.Rand) int {
	if k < 0 || succ < 0 || n < 0 || succ > n || k > n {
		panic(fmt.Sprintf("dataset: invalid hypergeometric parameters n=%d succ=%d k=%d", n, succ, k))
	}
	// Counting marked elements among k drawn equals counting drawn elements
	// among succ marked.
	if succ < k {
		succ, k = k, succ
	}
	// Symmetry: drawing k is the same as leaving n-k behind.
	if k > n/2 {
		return succ - Hypergeometric(n, succ, n-k, rng)
	}
	// Sequential simulation: draw k times, tracking remaining successes.
	got := 0
	remSucc, remTotal := succ, n
	for i := 0; i < k; i++ {
		if remSucc == 0 {
			break
		}
		if remSucc == remTotal {
			// Every remaining draw is a success.
			return got + (k - i)
		}
		if rng.Intn(remTotal) < remSucc {
			got++
			remSucc--
		}
		remTotal--
	}
	return got
}
