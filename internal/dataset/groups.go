package dataset

import "sort"

// Group is a frequency group: the set of items sharing one exact support
// count. Grouping is by integer support count, so equality is exact — no
// floating-point comparisons are involved.
type Group struct {
	Count int     // the shared support count
	Items []int   // item ids in this group, ascending
	Freq  float64 // Count / NTransactions, for convenience
}

// Grouping is the partition of the universe into frequency groups, ordered by
// increasing frequency. It is the central structure of the paper: the hacker
// observes only these groups in the anonymized release, and every closed-form
// lemma is stated in terms of group sizes.
type Grouping struct {
	NTransactions int
	Groups        []Group // ascending by Count
	itemGroup     []int   // item id -> index into Groups
}

// GroupItems groups the items of the table by exact support count.
func GroupItems(ft *FrequencyTable) *Grouping {
	byCount := make(map[int][]int)
	for x, c := range ft.Counts {
		byCount[c] = append(byCount[c], x)
	}
	counts := make([]int, 0, len(byCount))
	for c := range byCount {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	g := &Grouping{
		NTransactions: ft.NTransactions,
		Groups:        make([]Group, 0, len(counts)),
		itemGroup:     make([]int, ft.NItems),
	}
	m := float64(ft.NTransactions)
	for gi, c := range counts {
		items := byCount[c]
		sort.Ints(items)
		g.Groups = append(g.Groups, Group{Count: c, Items: items, Freq: float64(c) / m})
		for _, x := range items {
			g.itemGroup[x] = gi
		}
	}
	return g
}

// NumGroups returns g, the number of distinct observed frequencies.
func (gr *Grouping) NumGroups() int { return len(gr.Groups) }

// NumItems returns the universe size.
func (gr *Grouping) NumItems() int { return len(gr.itemGroup) }

// GroupOf returns the index of the frequency group containing item x.
func (gr *Grouping) GroupOf(x int) int { return gr.itemGroup[x] }

// Sizes returns the group sizes n_1..n_g in increasing frequency order.
func (gr *Grouping) Sizes() []int {
	sizes := make([]int, len(gr.Groups))
	for i, g := range gr.Groups {
		sizes[i] = len(g.Items)
	}
	return sizes
}

// Freqs returns the distinct group frequencies in increasing order.
func (gr *Grouping) Freqs() []float64 {
	fs := make([]float64, len(gr.Groups))
	for i, g := range gr.Groups {
		fs[i] = g.Freq
	}
	return fs
}

// SingletonGroups returns the number of groups containing exactly one item.
// The paper reports this per benchmark (Figure 9): a high singleton count
// means the compliant point-valued belief function cracks almost everything.
func (gr *Grouping) SingletonGroups() int {
	s := 0
	for _, g := range gr.Groups {
		if len(g.Items) == 1 {
			s++
		}
	}
	return s
}

// Gaps returns the g-1 differences between successive group frequencies,
// in increasing frequency order. It returns nil when g < 2.
func (gr *Grouping) Gaps() []float64 {
	if len(gr.Groups) < 2 {
		return nil
	}
	gaps := make([]float64, len(gr.Groups)-1)
	for i := 1; i < len(gr.Groups); i++ {
		gaps[i-1] = gr.Groups[i].Freq - gr.Groups[i-1].Freq
	}
	return gaps
}

// MedianGap returns δ_med, the median gap between successive frequency
// groups — the interval half-width the recipe of Figure 8 uses. It returns
// 0 when there are fewer than two groups.
func (gr *Grouping) MedianGap() float64 {
	return Median(gr.Gaps())
}

// MeanGap returns the average gap between successive frequency groups.
// The paper warns (Sections 6.1 and 7.4) that using the mean instead of the
// median under-estimates the risk; it is provided so that the comparison can
// be reproduced.
func (gr *Grouping) MeanGap() float64 {
	return Mean(gr.Gaps())
}
