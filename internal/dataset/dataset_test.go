package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bigMart is the paper's running example (Figure 1): six items, ten
// transactions chosen so that the observed frequencies are (with the paper's
// 1-based items mapped to ids 0..5) f(1)=f(3)=f(4)=f(6)=0.5, f(2)=0.4 and
// f(5)=0.3 — support counts (5,4,5,5,3,5).
func bigMart(t testing.TB) *Database {
	t.Helper()
	txs := []Transaction{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 3}, {0, 1, 3}, {0, 3, 5},
		{2, 3, 5}, {2, 4, 5}, {2, 5}, {4, 5}, {3, 4},
	}
	db, err := New(6, txs)
	if err != nil {
		t.Fatalf("New(bigMart): %v", err)
	}
	counts := db.SupportCounts()
	want := []int{5, 4, 5, 5, 3, 5}
	for x, c := range want {
		if counts[x] != c {
			t.Fatalf("bigMart count[%d] = %d, want %d", x, counts[x], c)
		}
	}
	return db
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("New(0, nil): want error for empty universe")
	}
	if _, err := New(3, []Transaction{{}}); err == nil {
		t.Error("New with empty transaction: want error")
	}
	if _, err := New(3, []Transaction{{3}}); err == nil {
		t.Error("New with out-of-range item: want error")
	}
	if _, err := New(3, []Transaction{{-1}}); err == nil {
		t.Error("New with negative item: want error")
	}
}

func TestNewSortsAndDedups(t *testing.T) {
	db := MustNew(5, []Transaction{{3, 1, 3, 0, 1}})
	got := db.Transaction(0)
	want := Transaction{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("transaction = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transaction = %v, want %v", got, want)
		}
	}
	if db.Size() != 3 {
		t.Errorf("Size = %d, want 3", db.Size())
	}
}

func TestSupportCountsBigMart(t *testing.T) {
	db := bigMart(t)
	counts := db.SupportCounts()
	freqs := db.Frequencies()
	// Compute truth directly from the transaction list instead of trusting a
	// hand-derived table.
	check := make([]int, 6)
	for i := 0; i < db.Transactions(); i++ {
		for _, x := range db.Transaction(i) {
			check[x]++
		}
	}
	for x := range check {
		if counts[x] != check[x] {
			t.Errorf("count[%d] = %d, want %d", x, counts[x], check[x])
		}
		if got := freqs[x]; got != float64(check[x])/10 {
			t.Errorf("freq[%d] = %v, want %v", x, got, float64(check[x])/10)
		}
	}
}

func TestGroupingBigMart(t *testing.T) {
	db := bigMart(t)
	gr := GroupItems(db.Table())
	// The BigMart example has three observed frequencies: 0.3, 0.4 and 0.5.
	counts := db.SupportCounts()
	distinct := map[int]bool{}
	for _, c := range counts {
		distinct[c] = true
	}
	if gr.NumGroups() != len(distinct) {
		t.Fatalf("NumGroups = %d, want %d", gr.NumGroups(), len(distinct))
	}
	// Groups must be ordered by increasing frequency and partition the items.
	seen := map[int]bool{}
	prev := -1
	for gi, g := range gr.Groups {
		if g.Count <= prev {
			t.Errorf("group %d count %d not increasing (prev %d)", gi, g.Count, prev)
		}
		prev = g.Count
		for _, x := range g.Items {
			if seen[x] {
				t.Errorf("item %d appears in two groups", x)
			}
			seen[x] = true
			if counts[x] != g.Count {
				t.Errorf("item %d in group with count %d, has count %d", x, g.Count, counts[x])
			}
			if gr.GroupOf(x) != gi {
				t.Errorf("GroupOf(%d) = %d, want %d", x, gr.GroupOf(x), gi)
			}
		}
	}
	if len(seen) != 6 {
		t.Errorf("groups cover %d items, want 6", len(seen))
	}
}

func TestGroupingGapsAndMedian(t *testing.T) {
	ft, err := NewTable(10, []int{1, 3, 3, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	gr := GroupItems(ft)
	// Frequencies: 0.1, 0.3, 0.7, 0.9 -> gaps 0.2, 0.4, 0.2.
	gaps := gr.Gaps()
	want := []float64{0.2, 0.4, 0.2}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if diff := gaps[i] - want[i]; diff > 1e-15 || diff < -1e-15 {
			t.Errorf("gap[%d] = %v, want %v", i, gaps[i], want[i])
		}
	}
	if got := gr.MedianGap(); got < 0.2-1e-12 || got > 0.2+1e-12 {
		t.Errorf("MedianGap = %v, want 0.2", got)
	}
	if got := gr.MeanGap(); got < 0.26 || got > 0.27 {
		t.Errorf("MeanGap = %v, want ~0.2667", got)
	}
	if gr.SingletonGroups() != 3 {
		t.Errorf("SingletonGroups = %d, want 3", gr.SingletonGroups())
	}
}

func TestGroupingSingleGroup(t *testing.T) {
	ft, err := NewTable(4, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	gr := GroupItems(ft)
	if gr.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d, want 1", gr.NumGroups())
	}
	if gr.Gaps() != nil {
		t.Errorf("Gaps = %v, want nil", gr.Gaps())
	}
	if gr.MedianGap() != 0 {
		t.Errorf("MedianGap = %v, want 0", gr.MedianGap())
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(0, []int{1}); err == nil {
		t.Error("NewTable(0): want error")
	}
	if _, err := NewTable(5, nil); err == nil {
		t.Error("NewTable(empty counts): want error")
	}
	if _, err := NewTable(5, []int{6}); err == nil {
		t.Error("NewTable(count > m): want error")
	}
	if _, err := NewTable(5, []int{-1}); err == nil {
		t.Error("NewTable(negative count): want error")
	}
}

func TestTableCloneIndependent(t *testing.T) {
	ft, _ := NewTable(10, []int{1, 2, 3})
	cp := ft.Clone()
	cp.Counts[0] = 9
	if ft.Counts[0] != 1 {
		t.Error("Clone shares count storage with original")
	}
}

func TestGroupingProperty(t *testing.T) {
	// Property: for random count vectors, grouping partitions items and the
	// number of groups equals the number of distinct counts.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		m := 1 + rng.Intn(50)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft, err := NewTable(m, counts)
		if err != nil {
			return false
		}
		gr := GroupItems(ft)
		distinct := map[int]bool{}
		total := 0
		for _, c := range counts {
			distinct[c] = true
		}
		for _, g := range gr.Groups {
			total += len(g.Items)
		}
		return gr.NumGroups() == len(distinct) && total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := MustNew(4, []Transaction{{0, 1}, {2}})
	b := MustNew(4, []Transaction{{3}, {1, 2}})
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Transactions() != 4 || m.Items() != 4 {
		t.Fatalf("merged shape (%d,%d)", m.Items(), m.Transactions())
	}
	ca, cb, cm := a.SupportCounts(), b.SupportCounts(), m.SupportCounts()
	for x := range cm {
		if cm[x] != ca[x]+cb[x] {
			t.Errorf("count[%d] = %d, want %d", x, cm[x], ca[x]+cb[x])
		}
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge: want error")
	}
	if _, err := Merge(a, MustNew(3, []Transaction{{0}})); err == nil {
		t.Error("universe mismatch: want error")
	}
}
