// Package dataset provides the transaction-database substrate used throughout
// the reproduction of Lakshmanan, Ng and Ramesh, "To Do or Not To Do: The
// Dilemma of Disclosing Anonymized Data" (SIGMOD 2005).
//
// A database is a sequence of transactions over a universe of n items,
// identified by dense integer ids 0..n-1. The frequency of an item is the
// fraction of transactions containing it (Agrawal et al., SIGMOD 1993). All
// of the paper's risk analyses depend on the data only through the multiset
// of item support counts, so the package exposes both a full Database (with
// transactions, for mining and I/O) and a lighter FrequencyTable (counts
// only, for large-scale risk experiments).
package dataset

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Item is a dense item identifier in [0, n).
type Item = int32

// Transaction is a set of items, stored sorted and duplicate-free.
type Transaction []Item

// Database is a transaction database over a fixed universe of items.
// The universe size is fixed at construction; items that appear in no
// transaction still belong to the universe (they form a support-0 group,
// which matters for the bipartite-graph analyses).
type Database struct {
	n  int           // universe size |I|
	tx []Transaction // transactions, each sorted, non-empty
}

// ErrEmptyTransaction is returned when constructing a database containing an
// empty transaction; the paper requires every transaction to be a non-empty
// subset of the universe.
var ErrEmptyTransaction = errors.New("dataset: empty transaction")

// New builds a database over a universe of n items from the given
// transactions. Each transaction is defensively copied, sorted and
// de-duplicated. It returns an error if n <= 0, any transaction is empty, or
// any item id is outside [0, n).
func New(n int, transactions []Transaction) (*Database, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: universe size %d, want > 0", n)
	}
	db := &Database{n: n, tx: make([]Transaction, 0, len(transactions))}
	for i, t := range transactions {
		if len(t) == 0 {
			return nil, fmt.Errorf("dataset: transaction %d: %w", i, ErrEmptyTransaction)
		}
		c := append(Transaction(nil), t...)
		sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
		c = dedupSorted(c)
		if c[0] < 0 || int(c[len(c)-1]) >= n {
			return nil, fmt.Errorf("dataset: transaction %d: item out of range [0,%d)", i, n)
		}
		db.tx = append(db.tx, c)
	}
	return db, nil
}

// MustNew is New, panicking on error. Intended for tests and examples.
func MustNew(n int, transactions []Transaction) *Database {
	db, err := New(n, transactions)
	if err != nil {
		panic(err)
	}
	return db
}

func dedupSorted(t Transaction) Transaction {
	out := t[:1]
	for _, x := range t[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Items returns the universe size |I|.
func (db *Database) Items() int { return db.n }

// Transactions returns the number of transactions |D|.
func (db *Database) Transactions() int { return len(db.tx) }

// Transaction returns the i-th transaction. The returned slice must not be
// modified.
func (db *Database) Transaction(i int) Transaction { return db.tx[i] }

// Size returns the total number of item occurrences across all transactions.
func (db *Database) Size() int {
	total := 0
	for _, t := range db.tx {
		total += len(t)
	}
	return total
}

// SupportCounts returns, for each item, the number of transactions that
// contain it.
func (db *Database) SupportCounts() []int {
	counts := make([]int, db.n)
	for _, t := range db.tx {
		for _, x := range t {
			counts[x]++
		}
	}
	return counts
}

// Frequencies returns, for each item, its frequency: support count divided by
// the number of transactions.
func (db *Database) Frequencies() []float64 {
	counts := db.SupportCounts()
	m := float64(len(db.tx))
	freqs := make([]float64, db.n)
	for i, c := range counts {
		freqs[i] = float64(c) / m
	}
	return freqs
}

// FrequencyTable captures exactly the information the paper's risk analyses
// need from a database: the universe size, the number of transactions, and
// each item's support count.
type FrequencyTable struct {
	NItems        int
	NTransactions int
	Counts        []int // len NItems; Counts[x] in [0, NTransactions]

	// digest memoizes Digest(). The server shares one table across many
	// concurrent requests, so the memo is an atomic pointer rather than a
	// plain field; ApplyDiff stores nil to invalidate it. Mutating Counts or
	// NTransactions directly (nothing outside this package does) would leave
	// a stale memo — go through ApplyDiff.
	digest atomic.Pointer[string]
}

// Table extracts the FrequencyTable of the database.
func (db *Database) Table() *FrequencyTable {
	return &FrequencyTable{
		NItems:        db.n,
		NTransactions: len(db.tx),
		Counts:        db.SupportCounts(),
	}
}

// NewTable validates and wraps raw support counts. It returns an error if
// nTransactions <= 0 or any count is outside [0, nTransactions].
func NewTable(nTransactions int, counts []int) (*FrequencyTable, error) {
	if nTransactions <= 0 {
		return nil, fmt.Errorf("dataset: %d transactions, want > 0", nTransactions)
	}
	if len(counts) == 0 {
		return nil, errors.New("dataset: empty count vector")
	}
	for x, c := range counts {
		if c < 0 || c > nTransactions {
			return nil, fmt.Errorf("dataset: item %d: count %d outside [0,%d]", x, c, nTransactions)
		}
	}
	cp := append([]int(nil), counts...)
	return &FrequencyTable{NItems: len(cp), NTransactions: nTransactions, Counts: cp}, nil
}

// Frequency returns item x's frequency Counts[x]/NTransactions.
func (ft *FrequencyTable) Frequency(x int) float64 {
	return float64(ft.Counts[x]) / float64(ft.NTransactions)
}

// Frequencies returns the full frequency vector.
func (ft *FrequencyTable) Frequencies() []float64 {
	freqs := make([]float64, ft.NItems)
	for x := range freqs {
		freqs[x] = ft.Frequency(x)
	}
	return freqs
}

// Clone returns a deep copy of the table.
func (ft *FrequencyTable) Clone() *FrequencyTable {
	return &FrequencyTable{
		NItems:        ft.NItems,
		NTransactions: ft.NTransactions,
		Counts:        append([]int(nil), ft.Counts...),
	}
}

// Merge concatenates the transactions of several databases over a shared
// universe — the consortium pooling of the paper's "mining for the common
// good" scenario. All inputs must agree on the universe size.
func Merge(dbs ...*Database) (*Database, error) {
	if len(dbs) == 0 {
		return nil, errors.New("dataset: nothing to merge")
	}
	n := dbs[0].n
	var txs []Transaction
	for i, db := range dbs {
		if db.n != n {
			return nil, fmt.Errorf("dataset: database %d has universe %d, want %d", i, db.n, n)
		}
		txs = append(txs, db.tx...)
	}
	return New(n, txs)
}
