package dataset

import (
	"strings"
	"testing"
)

func TestReadFIMIRejectsHugeItemID(t *testing.T) {
	// Without the limit this one line would allocate a multi-gigabyte dense
	// counts slice.
	in := "999999999999\n"
	if _, err := ReadFIMI(strings.NewReader(in), 0); err == nil {
		t.Error("ReadFIMI: want item-id limit error")
	}
	if _, err := ReadFIMICounts(strings.NewReader(in), 0); err == nil {
		t.Error("ReadFIMICounts: want item-id limit error")
	}
}

func TestReadFIMILimitedCustomBounds(t *testing.T) {
	in := "0 1 500\n"
	if _, err := ReadFIMILimited(strings.NewReader(in), 0, Limits{MaxItemID: 100}); err == nil {
		t.Error("want error for id 500 under limit 100")
	}
	db, err := ReadFIMILimited(strings.NewReader(in), 0, Limits{MaxItemID: 500})
	if err != nil {
		t.Fatalf("id at the limit must parse: %v", err)
	}
	if db.Items() != 501 {
		t.Errorf("universe = %d, want 501", db.Items())
	}
	ft, err := ReadFIMICountsLimited(strings.NewReader(in), 0, Limits{MaxItemID: 500})
	if err != nil {
		t.Fatal(err)
	}
	if ft.NItems != 501 || ft.Counts[500] != 1 {
		t.Errorf("counts table = %d items, counts[500]=%d", ft.NItems, ft.Counts[500])
	}
}

func TestReadFIMIRejectsOversizedLine(t *testing.T) {
	long := strings.Repeat("1 ", 200) // 400 bytes
	lim := Limits{MaxLineBytes: 64}
	if _, err := ReadFIMILimited(strings.NewReader(long), 0, lim); err == nil {
		t.Error("ReadFIMILimited: want line-length error")
	} else if !strings.Contains(err.Error(), "64 bytes") {
		t.Errorf("error should name the limit: %v", err)
	}
	if _, err := ReadFIMICountsLimited(strings.NewReader(long), 0, lim); err == nil {
		t.Error("ReadFIMICountsLimited: want line-length error")
	}
}

func TestReadFIMIUnlimitedOptOut(t *testing.T) {
	in := strings.Repeat("7 ", 100) + "\n"
	db, err := ReadFIMILimited(strings.NewReader(in), 0, Limits{MaxItemID: -1, MaxLineBytes: -1})
	if err != nil {
		t.Fatalf("negative limits mean unlimited: %v", err)
	}
	if db.Items() != 8 {
		t.Errorf("universe = %d, want 8", db.Items())
	}
}
