package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFIMI asserts the reader's contract on arbitrary bytes: it either
// returns a database that survives a write/read round trip, or a descriptive
// error — never a panic, and never an item id beyond the configured limit.
func FuzzReadFIMI(f *testing.F) {
	f.Add("1 2 3\n4 5\n")
	f.Add("0\n")
	f.Add("")
	f.Add("  7  7   7\n\n\n2\n")
	f.Add("-1\n")
	f.Add("999999999999\n")
	f.Add("1 two 3\n")
	f.Add("\t 5 \r\n 6\r\n")
	f.Add("18446744073709551616\n") // overflows int64
	f.Fuzz(func(t *testing.T, in string) {
		lim := Limits{MaxItemID: 1 << 12, MaxLineBytes: 1 << 12}
		db, err := ReadFIMILimited(strings.NewReader(in), 0, lim)
		if err != nil {
			return
		}
		if db.Items() > 1<<12+1 {
			t.Fatalf("universe %d escaped the item-id limit", db.Items())
		}
		var buf bytes.Buffer
		if err := WriteFIMI(&buf, db); err != nil {
			t.Fatalf("write-back of accepted input: %v", err)
		}
		back, err := ReadFIMILimited(&buf, db.Items(), lim)
		if err != nil {
			t.Fatalf("round trip of accepted input: %v", err)
		}
		if back.Transactions() != db.Transactions() {
			t.Fatalf("round trip: %d transactions, want %d", back.Transactions(), db.Transactions())
		}

		// The streaming counts reader must agree with the materializing one.
		ft, err := ReadFIMICountsLimited(strings.NewReader(in), db.Items(), lim)
		if err != nil {
			t.Fatalf("counts reader rejects what ReadFIMI accepted: %v", err)
		}
		want := db.Table()
		if ft.NTransactions != want.NTransactions {
			t.Fatalf("counts: %d transactions, want %d", ft.NTransactions, want.NTransactions)
		}
		for x, c := range want.Counts {
			if ft.Counts[x] != c {
				t.Fatalf("counts[%d] = %d, want %d", x, ft.Counts[x], c)
			}
		}
	})
}
