package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Digest returns a stable content address of the table: a hex SHA-256 over
// the transaction count and the support counts in item order. Two tables
// digest equal exactly when every risk analysis in this repo would score them
// identically — the paper's estimates depend on the data only through the
// support-count view, so the digest is the natural cache key for repeated
// assessments of one release (see internal/riskcache).
//
// The digest is memoized; ApplyDiff invalidates the memo, so the value
// returned here always reflects the current counts. The delta tests pin
// Digest(apply(diff)) == Digest(rebuild) to keep the memo honest.
func (ft *FrequencyTable) Digest() string {
	if d := ft.digest.Load(); d != nil {
		return *d
	}
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(ft.NTransactions))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(ft.NItems))
	h.Write(buf[:])
	for _, c := range ft.Counts {
		binary.LittleEndian.PutUint64(buf[:], uint64(c))
		h.Write(buf[:])
	}
	d := hex.EncodeToString(h.Sum(nil))
	ft.digest.Store(&d)
	return d
}
