package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadFIMIBasic(t *testing.T) {
	in := "1 2 3\n0 2\n\n4\n"
	db, err := ReadFIMI(strings.NewReader(in), 0)
	if err != nil {
		t.Fatalf("ReadFIMI: %v", err)
	}
	if db.Items() != 5 {
		t.Errorf("Items = %d, want 5 (inferred from max id 4)", db.Items())
	}
	if db.Transactions() != 3 {
		t.Errorf("Transactions = %d, want 3 (blank line skipped)", db.Transactions())
	}
	if got := db.Transaction(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Transaction(1) = %v, want [0 2]", got)
	}
}

func TestReadFIMIExplicitUniverse(t *testing.T) {
	db, err := ReadFIMI(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatalf("ReadFIMI: %v", err)
	}
	if db.Items() != 10 {
		t.Errorf("Items = %d, want 10 (explicit universe)", db.Items())
	}
}

func TestReadFIMIErrors(t *testing.T) {
	for _, in := range []string{"a b\n", "1 -2\n", ""} {
		if _, err := ReadFIMI(strings.NewReader(in), 0); err == nil {
			t.Errorf("ReadFIMI(%q): want error", in)
		}
	}
}

func TestFIMIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 40
	var txs []Transaction
	for i := 0; i < 100; i++ {
		l := 1 + rng.Intn(8)
		tx := make(Transaction, l)
		for j := range tx {
			tx[j] = Item(rng.Intn(n))
		}
		txs = append(txs, tx)
	}
	db := MustNew(n, txs)
	var buf bytes.Buffer
	if err := WriteFIMI(&buf, db); err != nil {
		t.Fatalf("WriteFIMI: %v", err)
	}
	back, err := ReadFIMI(&buf, n)
	if err != nil {
		t.Fatalf("ReadFIMI(round trip): %v", err)
	}
	if back.Transactions() != db.Transactions() {
		t.Fatalf("round trip transactions = %d, want %d", back.Transactions(), db.Transactions())
	}
	a, b := db.SupportCounts(), back.SupportCounts()
	for x := range a {
		if a[x] != b[x] {
			t.Errorf("round trip count[%d] = %d, want %d", x, b[x], a[x])
		}
	}
}

func TestSampleBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var txs []Transaction
	for i := 0; i < 200; i++ {
		txs = append(txs, Transaction{Item(i % 10)})
	}
	db := MustNew(10, txs)
	s, err := Sample(db, 0.25, rng)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if s.Transactions() != 50 {
		t.Errorf("sample size = %d, want 50", s.Transactions())
	}
	if s.Items() != 10 {
		t.Errorf("sample universe = %d, want 10", s.Items())
	}
	if _, err := Sample(db, 0, rng); err == nil {
		t.Error("Sample(0): want error")
	}
	if _, err := Sample(db, 1.5, rng); err == nil {
		t.Error("Sample(1.5): want error")
	}
}

func TestSampleFullIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := MustNew(3, []Transaction{{0}, {1}, {2}, {0, 1}})
	s, err := Sample(db, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Transactions() != 4 {
		t.Fatalf("full sample has %d transactions, want 4", s.Transactions())
	}
	a, b := db.SupportCounts(), s.SupportCounts()
	for x := range a {
		if a[x] != b[x] {
			t.Errorf("full sample count[%d] = %d, want %d", x, b[x], a[x])
		}
	}
}

func TestHypergeometricMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, succ, k := 100, 30, 20
	const trials = 20000
	sum := 0
	for i := 0; i < trials; i++ {
		v := Hypergeometric(n, succ, k, rng)
		if v < 0 || v > succ || v > k {
			t.Fatalf("Hypergeometric out of range: %d", v)
		}
		sum += v
	}
	mean := float64(sum) / trials
	want := float64(k) * float64(succ) / float64(n) // 6.0
	if mean < want-0.15 || mean > want+0.15 {
		t.Errorf("Hypergeometric mean = %v, want ~%v", mean, want)
	}
}

func TestHypergeometricEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if got := Hypergeometric(10, 0, 5, rng); got != 0 {
		t.Errorf("no successes in population: got %d, want 0", got)
	}
	if got := Hypergeometric(10, 10, 5, rng); got != 5 {
		t.Errorf("all successes: got %d, want 5", got)
	}
	if got := Hypergeometric(10, 4, 10, rng); got != 4 {
		t.Errorf("draw everything: got %d, want 4", got)
	}
	if got := Hypergeometric(10, 4, 0, rng); got != 0 {
		t.Errorf("draw nothing: got %d, want 0", got)
	}
}

func TestSampleCountsMatchesTransactionSampling(t *testing.T) {
	// For planted independent items, SampleCounts should match the mean
	// per-item counts of real transaction sampling.
	rng := rand.New(rand.NewSource(5))
	m := 400
	counts := []int{200, 40, 399, 1}
	ft, err := NewTable(m, counts)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 2000
	sums := make([]float64, len(counts))
	for i := 0; i < trials; i++ {
		s, err := SampleCounts(ft, 0.25, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s.NTransactions != 100 {
			t.Fatalf("sampled m = %d, want 100", s.NTransactions)
		}
		for x, c := range s.Counts {
			sums[x] += float64(c)
		}
	}
	for x, c := range counts {
		mean := sums[x] / trials
		want := float64(c) * 0.25
		tol := 0.05*want + 0.3
		if mean < want-tol || mean > want+tol {
			t.Errorf("item %d sampled mean = %v, want ~%v", x, mean, want)
		}
	}
}

func TestReadFIMIRobustness(t *testing.T) {
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"crlf", "1 2\r\n3\r\n", true},
		{"tabs", "1\t2\n", true},
		{"leading spaces", "  1 2  \n", true},
		{"huge id", "999999999999999999999999\n", false},
		{"float", "1.5\n", false},
		{"hex", "0x10\n", false},
		{"only blank lines", "\n\n\n", false},
		{"plus sign", "+3\n", true}, // strconv.Atoi accepts a sign
	}
	for _, tc := range cases {
		_, err := ReadFIMI(strings.NewReader(tc.in), 0)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestReadFIMINeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("0123456789 \n\t-x.")
	for trial := 0; trial < 500; trial++ {
		b := make([]byte, rng.Intn(200))
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		// Must return a database or an error, never panic.
		db, err := ReadFIMI(strings.NewReader(string(b)), 0)
		if err == nil && db.Transactions() == 0 {
			t.Fatalf("trial %d: nil error with empty database", trial)
		}
	}
}

func TestReadFIMICountsMatchesReadFIMI(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	var buf bytes.Buffer
	n := 30
	var txs []Transaction
	for i := 0; i < 200; i++ {
		l := 1 + rng.Intn(6)
		tx := make(Transaction, l)
		for j := range tx {
			tx[j] = Item(rng.Intn(n))
		}
		txs = append(txs, tx)
	}
	db := MustNew(n, txs)
	if err := WriteFIMI(&buf, db); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	ft, err := ReadFIMICounts(strings.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ReadFIMI(strings.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := full.Table()
	if ft.NTransactions != want.NTransactions {
		t.Fatalf("m = %d, want %d", ft.NTransactions, want.NTransactions)
	}
	for x := range want.Counts {
		if ft.Counts[x] != want.Counts[x] {
			t.Errorf("count[%d] = %d, want %d", x, ft.Counts[x], want.Counts[x])
		}
	}
}

func TestReadFIMICountsDuplicatesAndUniverse(t *testing.T) {
	// Duplicates within a line count once; explicit n pads the universe.
	ft, err := ReadFIMICounts(strings.NewReader("2 2 0\n2\n"), 6)
	if err != nil {
		t.Fatal(err)
	}
	if ft.NItems != 6 {
		t.Errorf("universe = %d, want 6", ft.NItems)
	}
	if ft.Counts[2] != 2 || ft.Counts[0] != 1 || ft.Counts[5] != 0 {
		t.Errorf("counts = %v", ft.Counts)
	}
	if _, err := ReadFIMICounts(strings.NewReader("x\n"), 0); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := ReadFIMICounts(strings.NewReader("-1\n"), 0); err == nil {
		t.Error("negative: want error")
	}
	if _, err := ReadFIMICounts(strings.NewReader(""), 0); err == nil {
		t.Error("empty: want error")
	}
}
