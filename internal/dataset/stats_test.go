package dataset

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanMedianMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Mean(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Median(xs); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Median(even) = %v, want 2.5", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := Max(xs); got != 3 {
		t.Errorf("Max = %v, want 3", got)
	}
	for _, f := range []func([]float64) float64{Mean, Median, Min, Max, StdDev} {
		if got := f(nil); got != 0 {
			t.Errorf("empty-slice statistic = %v, want 0", got)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestStdDev(t *testing.T) {
	// Sample stddev of {2,4,4,4,5,5,7,9} is sqrt(32/7).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if !almostEq(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev(single) = %v, want 0", got)
	}
}

func TestComputeStats(t *testing.T) {
	// Counts 1,3,3,7,9 over m=10: groups at .1,.3,.7,.9; gaps .2,.4,.2.
	ft, err := NewTable(10, []int{1, 3, 3, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats("toy", ft)
	if s.NItems != 5 || s.NTransactions != 10 {
		t.Errorf("sizes = (%d,%d), want (5,10)", s.NItems, s.NTransactions)
	}
	if s.NGroups != 4 || s.Singleton != 3 {
		t.Errorf("groups = (%d,%d), want (4,3)", s.NGroups, s.Singleton)
	}
	if !almostEq(s.MedianGap, 0.2, 1e-12) || !almostEq(s.MinGap, 0.2, 1e-12) ||
		!almostEq(s.MaxGap, 0.4, 1e-12) || !almostEq(s.MeanGap, 0.8/3, 1e-12) {
		t.Errorf("gap stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("String() returned empty")
	}
}

func TestComputeStatsSingleGroup(t *testing.T) {
	ft, err := NewTable(4, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats("flat", ft)
	if s.NGroups != 1 || s.MeanGap != 0 || s.MaxGap != 0 {
		t.Errorf("single-group stats = %+v", s)
	}
}
