package dataset

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func mustTable(t *testing.T, m int, counts []int) *FrequencyTable {
	t.Helper()
	ft, err := NewTable(m, counts)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return ft
}

func TestDiffValidateRejections(t *testing.T) {
	base := []int{0, 3, 5, 10}
	cases := []struct {
		name string
		d    CountsDiff
	}{
		{"negative count", CountsDiff{Items: []int{1}, Deltas: []int{-4}}},
		{"past NTransactions", CountsDiff{Items: []int{2}, Deltas: []int{6}}},
		{"past shrunk total", CountsDiff{DTransactions: -1, Items: []int{3}, Deltas: []int{1}}},
		{"untouched past shrunk total", CountsDiff{DTransactions: -3, Items: []int{1}, Deltas: []int{1}}},
		{"zero delta", CountsDiff{Items: []int{1}, Deltas: []int{0}}},
		{"item out of range", CountsDiff{Items: []int{4}, Deltas: []int{1}}},
		{"negative item", CountsDiff{Items: []int{-1}, Deltas: []int{1}}},
		{"not ascending", CountsDiff{Items: []int{2, 1}, Deltas: []int{1, 1}}},
		{"duplicate item", CountsDiff{Items: []int{1, 1}, Deltas: []int{1, 1}}},
		{"length mismatch", CountsDiff{Items: []int{1, 2}, Deltas: []int{1}}},
		{"total to zero", CountsDiff{DTransactions: -10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ft := mustTable(t, 10, base)
			err := ft.ApplyDiff(&tc.d)
			if !errors.Is(err, ErrDiffMismatch) {
				t.Fatalf("ApplyDiff: got %v, want ErrDiffMismatch", err)
			}
			// A rejected diff must leave the table untouched.
			if ft.NTransactions != 10 || !reflect.DeepEqual(ft.Counts, base) {
				t.Fatalf("table mutated by rejected diff: m=%d counts=%v", ft.NTransactions, ft.Counts)
			}
		})
	}
}

func TestApplyDiffDigestMatchesRebuild(t *testing.T) {
	ft := mustTable(t, 10, []int{0, 3, 5, 10})
	pre := ft.Digest() // warm the memo so a stale value would be observed
	d := &CountsDiff{DTransactions: 2, Items: []int{0, 2}, Deltas: []int{4, -1}}
	if err := ft.ApplyDiff(d); err != nil {
		t.Fatalf("ApplyDiff: %v", err)
	}
	rebuilt := mustTable(t, 12, []int{4, 3, 4, 10})
	if got, want := ft.Digest(), rebuilt.Digest(); got != want {
		t.Fatalf("Digest(apply(diff)) = %s, want Digest(rebuild) = %s", got, want)
	}
	if ft.Digest() == pre {
		t.Fatal("digest memo not invalidated by ApplyDiff")
	}
}

func TestDiffRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		old := randomTable(rng)
		cur := randomTable(rng)
		for cur.NItems != old.NItems {
			cur = randomTable(rng)
		}
		d, err := Diff(old, cur)
		if err != nil {
			t.Fatalf("Diff: %v", err)
		}
		got := old.Clone()
		if err := got.ApplyDiff(d); err != nil {
			t.Fatalf("trial %d: ApplyDiff(Diff(old,cur)): %v", trial, err)
		}
		if got.NTransactions != cur.NTransactions || !reflect.DeepEqual(got.Counts, cur.Counts) {
			t.Fatalf("trial %d: round trip diverged: %v vs %v", trial, got, cur)
		}
		if got.Digest() != cur.Digest() {
			t.Fatalf("trial %d: round-trip digest mismatch", trial)
		}
	}
}

func randomTable(rng *rand.Rand) *FrequencyTable {
	n := 2 + rng.Intn(12)
	m := 4 + rng.Intn(30)
	counts := make([]int, n)
	for x := range counts {
		counts[x] = rng.Intn(m + 1)
	}
	ft, err := NewTable(m, counts)
	if err != nil {
		panic(err)
	}
	return ft
}

// randomDiff builds a valid random diff against ft: a few count moves, and
// sometimes a transaction-total change.
func randomDiff(rng *rand.Rand, ft *FrequencyTable) *CountsDiff {
	d := &CountsDiff{}
	if rng.Intn(2) == 0 {
		d.DTransactions = 1 + rng.Intn(5) // grow only; shrink can invalidate untouched counts
	}
	newM := ft.NTransactions + d.DTransactions
	k := 1 + rng.Intn(ft.NItems)
	for x := 0; x < ft.NItems && len(d.Items) < k; x++ {
		if rng.Intn(2) == 1 {
			continue
		}
		c := rng.Intn(newM + 1)
		if c == ft.Counts[x] {
			c = (c + 1) % (newM + 1)
		}
		d.Items = append(d.Items, x)
		d.Deltas = append(d.Deltas, c-ft.Counts[x])
	}
	return d
}

func TestApplyDiffGroupingMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		ft := randomTable(rng)
		gr := GroupItems(ft)
		d := randomDiff(rng, ft)
		post := ft.Clone()
		if err := post.ApplyDiff(d); err != nil {
			t.Fatalf("trial %d: ApplyDiff: %v", trial, err)
		}
		got, rd, err := ApplyDiffGrouping(gr, post, d)
		if err != nil {
			t.Fatalf("trial %d: ApplyDiffGrouping: %v", trial, err)
		}
		want := GroupItems(post)
		if got.NTransactions != want.NTransactions {
			t.Fatalf("trial %d: NTransactions %d vs %d", trial, got.NTransactions, want.NTransactions)
		}
		if !reflect.DeepEqual(got.Groups, want.Groups) {
			t.Fatalf("trial %d: groups diverged\n got %+v\nwant %+v\ndiff %+v", trial, got.Groups, want.Groups, d)
		}
		if !reflect.DeepEqual(got.itemGroup, want.itemGroup) {
			t.Fatalf("trial %d: itemGroup diverged\n got %v\nwant %v", trial, got.itemGroup, want.itemGroup)
		}

		// RebinDelta invariants.
		if !reflect.DeepEqual(rd.Moved, d.Items) && !(len(rd.Moved) == 0 && len(d.Items) == 0) {
			t.Fatalf("trial %d: Moved %v, want %v", trial, rd.Moved, d.Items)
		}
		if rd.FirstGroup < 0 || rd.FirstGroup > len(got.Groups) {
			t.Fatalf("trial %d: FirstGroup %d outside [0,%d]", trial, rd.FirstGroup, len(got.Groups))
		}
		for gi := 0; gi < rd.FirstGroup; gi++ {
			if gi >= len(gr.Groups) ||
				gr.Groups[gi].Count != got.Groups[gi].Count ||
				!reflect.DeepEqual(gr.Groups[gi].Items, got.Groups[gi].Items) {
				t.Fatalf("trial %d: group %d below FirstGroup=%d differs from old grouping",
					trial, gi, rd.FirstGroup)
			}
		}
		wantFreqsChanged := d.DTransactions != 0 || !reflect.DeepEqual(distinctCounts(gr), distinctCounts(want))
		if rd.FreqsChanged != wantFreqsChanged {
			t.Fatalf("trial %d: FreqsChanged = %v, want %v (diff %+v)", trial, rd.FreqsChanged, wantFreqsChanged, d)
		}
		if !rd.FreqsChanged && !reflect.DeepEqual(gr.Freqs(), want.Freqs()) {
			t.Fatalf("trial %d: FreqsChanged=false but frequency vector moved", trial)
		}
	}
}

func distinctCounts(gr *Grouping) []int {
	cs := make([]int, len(gr.Groups))
	for i, g := range gr.Groups {
		cs[i] = g.Count
	}
	return cs
}

// TestApplyDiffGroupingSharesUntouchedSlices pins the reuse property the
// incremental path exists for: groups the diff does not touch share their
// member slices with the old grouping rather than being copied.
func TestApplyDiffGroupingSharesUntouchedSlices(t *testing.T) {
	ft := mustTable(t, 10, []int{1, 1, 3, 5, 5, 7})
	gr := GroupItems(ft)
	d := &CountsDiff{Items: []int{2}, Deltas: []int{2}} // 3 -> 5
	post := ft.Clone()
	if err := post.ApplyDiff(d); err != nil {
		t.Fatal(err)
	}
	got, rd, err := ApplyDiffGrouping(gr, post, d)
	if err != nil {
		t.Fatal(err)
	}
	// Old groups: count 1 {0,1}, 3 {2}, 5 {3,4}, 7 {5}.
	// New groups: count 1 {0,1}, 5 {2,3,4}, 7 {5}. FirstGroup = 1.
	if rd.FirstGroup != 1 {
		t.Fatalf("FirstGroup = %d, want 1", rd.FirstGroup)
	}
	if &got.Groups[0].Items[0] != &gr.Groups[0].Items[0] {
		t.Fatal("untouched group 0 did not share its member slice")
	}
	if &got.Groups[2].Items[0] != &gr.Groups[3].Items[0] {
		t.Fatal("untouched (but shifted) group did not share its member slice")
	}
	if !rd.FreqsChanged {
		t.Fatal("a vanished group must set FreqsChanged")
	}
}
