package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ReadFIMI parses a database in the FIMI workshop format: one transaction per
// line, items as whitespace-separated non-negative integers. Blank lines are
// skipped. The universe size is max(item)+1 unless a larger n is given
// (pass n = 0 to infer).
func ReadFIMI(r io.Reader, n int) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var txs []Transaction
	maxItem := -1
	line := 0
	for sc.Scan() {
		line++
		fields := splitFields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		t := make(Transaction, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %q is not an item id", line, f)
			}
			if v < 0 {
				return nil, fmt.Errorf("dataset: line %d: negative item id %d", line, v)
			}
			if v > maxItem {
				maxItem = v
			}
			t = append(t, Item(v))
		}
		txs = append(txs, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading FIMI input: %w", err)
	}
	if len(txs) == 0 {
		return nil, fmt.Errorf("dataset: FIMI input contains no transactions")
	}
	if n <= maxItem {
		n = maxItem + 1
	}
	return New(n, txs)
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\r' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// WriteFIMI writes the database in FIMI format, one transaction per line.
func WriteFIMI(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := 0; i < db.Transactions(); i++ {
		buf = buf[:0]
		for j, x := range db.Transaction(i) {
			if j > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendInt(buf, int64(x), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("dataset: writing FIMI output: %w", err)
		}
	}
	return bw.Flush()
}

// ReadFIMICounts streams a FIMI-format database and returns only its
// frequency table, without materializing transactions — the risk analyses
// need nothing else, and this handles releases far larger than memory.
// Duplicate items within a line are counted once, matching ReadFIMI's
// de-duplication. Pass n = 0 to infer the universe from the data.
func ReadFIMICounts(r io.Reader, n int) (*FrequencyTable, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var counts []int
	seenLine := map[int]bool{}
	m := 0
	line := 0
	for sc.Scan() {
		line++
		fields := splitFields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		m++
		for k := range seenLine {
			delete(seenLine, k)
		}
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %q is not an item id", line, f)
			}
			if v < 0 {
				return nil, fmt.Errorf("dataset: line %d: negative item id %d", line, v)
			}
			if seenLine[v] {
				continue
			}
			seenLine[v] = true
			for v >= len(counts) {
				counts = append(counts, 0)
			}
			counts[v]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading FIMI input: %w", err)
	}
	if m == 0 {
		return nil, fmt.Errorf("dataset: FIMI input contains no transactions")
	}
	for len(counts) < n {
		counts = append(counts, 0)
	}
	return NewTable(m, counts)
}
