package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Input hardening defaults. FIMI files come from outside the trust boundary
// (public benchmark mirrors, user uploads), so the readers bound both the
// item-id magnitude — a single line "999999999999" would otherwise allocate a
// terabyte-scale counts slice — and the line length.
const (
	// DefaultMaxItemID caps item ids at 16M: larger than every published
	// FIMI benchmark by orders of magnitude, small enough that the induced
	// dense universe stays comfortably in memory.
	DefaultMaxItemID = 1 << 24
	// DefaultMaxLineBytes caps one transaction line at 16 MiB.
	DefaultMaxLineBytes = 1 << 24
)

// Limits bounds what the FIMI readers accept. The zero value means the
// package defaults; use a negative field to make that dimension unlimited.
type Limits struct {
	MaxItemID    int // largest acceptable item id (0 = DefaultMaxItemID, <0 = unlimited)
	MaxLineBytes int // longest acceptable input line (0 = DefaultMaxLineBytes, <0 = unlimited)
}

func (l Limits) maxItemID() int {
	switch {
	case l.MaxItemID < 0:
		return int(^uint(0) >> 1)
	case l.MaxItemID == 0:
		return DefaultMaxItemID
	default:
		return l.MaxItemID
	}
}

// newScanner builds a line scanner honoring the byte limit. The initial
// capacity must not exceed the max: bufio.Scanner takes the larger of the two
// as the effective token limit.
func (l Limits) newScanner(r io.Reader) *bufio.Scanner {
	maxLine := l.maxLineBytes()
	initial := 1 << 20
	if initial > maxLine {
		initial = maxLine
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, initial), maxLine)
	return sc
}

func (l Limits) maxLineBytes() int {
	switch {
	case l.MaxLineBytes < 0:
		return int(^uint(0)>>1) - 1
	case l.MaxLineBytes == 0:
		return DefaultMaxLineBytes
	default:
		return l.MaxLineBytes
	}
}

// scanErr converts scanner failures into descriptive errors; the stock
// bufio.ErrTooLong message does not say which limit was hit or how to raise
// it.
func scanErr(err error, lim Limits) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("dataset: input line longer than %d bytes (raise Limits.MaxLineBytes to accept): %w",
			lim.maxLineBytes(), err)
	}
	return fmt.Errorf("dataset: reading FIMI input: %w", err)
}

// parseItem parses and validates one item id field.
func parseItem(f string, line, maxID int) (int, error) {
	v, err := strconv.Atoi(f)
	if err != nil {
		return 0, fmt.Errorf("dataset: line %d: %q is not an item id", line, f)
	}
	if v < 0 {
		return 0, fmt.Errorf("dataset: line %d: negative item id %d", line, v)
	}
	if v > maxID {
		return 0, fmt.Errorf("dataset: line %d: item id %d exceeds limit %d (raise Limits.MaxItemID to accept)",
			line, v, maxID)
	}
	return v, nil
}

// ReadFIMI parses a database in the FIMI workshop format: one transaction per
// line, items as whitespace-separated non-negative integers. Blank lines are
// skipped. The universe size is max(item)+1 unless a larger n is given
// (pass n = 0 to infer). Inputs are bounded by the default Limits; use
// ReadFIMILimited for other bounds.
func ReadFIMI(r io.Reader, n int) (*Database, error) {
	return ReadFIMILimited(r, n, Limits{})
}

// ReadFIMILimited is ReadFIMI with explicit input bounds.
func ReadFIMILimited(r io.Reader, n int, lim Limits) (*Database, error) {
	sc := lim.newScanner(r)
	maxID := lim.maxItemID()
	var txs []Transaction
	maxItem := -1
	line := 0
	for sc.Scan() {
		line++
		fields := splitFields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		t := make(Transaction, 0, len(fields))
		for _, f := range fields {
			v, err := parseItem(f, line, maxID)
			if err != nil {
				return nil, err
			}
			if v > maxItem {
				maxItem = v
			}
			t = append(t, Item(v))
		}
		txs = append(txs, t)
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr(err, lim)
	}
	if len(txs) == 0 {
		return nil, fmt.Errorf("dataset: FIMI input contains no transactions")
	}
	if n <= maxItem {
		n = maxItem + 1
	}
	return New(n, txs)
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\r' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// WriteFIMI writes the database in FIMI format, one transaction per line.
func WriteFIMI(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := 0; i < db.Transactions(); i++ {
		buf = buf[:0]
		for j, x := range db.Transaction(i) {
			if j > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendInt(buf, int64(x), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("dataset: writing FIMI output: %w", err)
		}
	}
	return bw.Flush()
}

// ReadFIMIFile streams the FIMI file at path into a frequency table, with
// the default input Limits. Errors opening the file are returned unwrapped
// so callers can distinguish a missing file (fs.ErrNotExist) from malformed
// content.
func ReadFIMIFile(path string) (*FrequencyTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFIMICounts(f, 0)
}

// ReadFIMICounts streams a FIMI-format database and returns only its
// frequency table, without materializing transactions — the risk analyses
// need nothing else, and this handles releases far larger than memory.
// Duplicate items within a line are counted once, matching ReadFIMI's
// de-duplication. Pass n = 0 to infer the universe from the data. Inputs are
// bounded by the default Limits; use ReadFIMICountsLimited for other bounds.
func ReadFIMICounts(r io.Reader, n int) (*FrequencyTable, error) {
	return ReadFIMICountsLimited(r, n, Limits{})
}

// ReadFIMICountsLimited is ReadFIMICounts with explicit input bounds. The
// item-id limit matters most here: counts is dense in the largest id, so an
// unbounded id turns one short line into an enormous allocation.
func ReadFIMICountsLimited(r io.Reader, n int, lim Limits) (*FrequencyTable, error) {
	sc := lim.newScanner(r)
	maxID := lim.maxItemID()
	var counts []int
	seenLine := map[int]bool{}
	m := 0
	line := 0
	for sc.Scan() {
		line++
		fields := splitFields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		m++
		for k := range seenLine {
			delete(seenLine, k)
		}
		for _, f := range fields {
			v, err := parseItem(f, line, maxID)
			if err != nil {
				return nil, err
			}
			if seenLine[v] {
				continue
			}
			seenLine[v] = true
			for v >= len(counts) {
				counts = append(counts, 0)
			}
			counts[v]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr(err, lim)
	}
	if m == 0 {
		return nil, fmt.Errorf("dataset: FIMI input contains no transactions")
	}
	for len(counts) < n {
		counts = append(counts, 0)
	}
	return NewTable(m, counts)
}
