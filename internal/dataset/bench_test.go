package dataset

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchTable(b *testing.B, n, m int) *FrequencyTable {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := range counts {
		counts[i] = rng.Intn(m + 1)
	}
	ft, err := NewTable(m, counts)
	if err != nil {
		b.Fatal(err)
	}
	return ft
}

func BenchmarkGroupItems16k(b *testing.B) {
	ft := benchTable(b, 16470, 88163)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupItems(ft)
	}
}

func BenchmarkComputeStats16k(b *testing.B) {
	ft := benchTable(b, 16470, 88163)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeStats("bench", ft)
	}
}

func BenchmarkSampleCounts16k(b *testing.B) {
	ft := benchTable(b, 16470, 88163)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SampleCounts(ft, 0.1, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFIMIRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var txs []Transaction
	for i := 0; i < 5000; i++ {
		l := 1 + rng.Intn(10)
		tx := make(Transaction, l)
		for j := range tx {
			tx[j] = Item(rng.Intn(500))
		}
		txs = append(txs, tx)
	}
	db := MustNew(500, txs)
	var buf bytes.Buffer
	if err := WriteFIMI(&buf, db); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFIMI(bytes.NewReader(raw), 500); err != nil {
			b.Fatal(err)
		}
	}
}
