package dataset

import (
	"errors"
	"fmt"
	"sort"
)

// CountsDiff is a sparse delta between two frequency tables over the same
// universe: the recurring-release setting of Section 6 re-assesses nearly
// identical data, where a day of new transactions moves a handful of support
// counts. Applying a diff to the pre-release table yields the post-release
// table exactly, so the delta assessment pipeline (bipartite.Rebin,
// core.OEDelta, recipe.DeltaSession) can patch its structures in place
// instead of rebuilding them, while remaining bit-for-bit equivalent to a
// full recompute.
type CountsDiff struct {
	// DTransactions is the change to NTransactions (post = pre + DTransactions).
	DTransactions int `json:"dtransactions,omitempty"`
	// Items lists the item ids whose support count changed, strictly
	// ascending. Deltas is parallel: post count = pre count + Deltas[i],
	// every entry nonzero.
	Items  []int `json:"items"`
	Deltas []int `json:"deltas"`
}

// ErrDiffMismatch reports a diff that does not apply to the table it was
// offered: an out-of-range item, a count driven negative or past the
// post-diff transaction total, or malformed item/delta vectors.
var ErrDiffMismatch = errors.New("dataset: diff does not apply to table")

// Len returns the number of changed support counts.
func (d *CountsDiff) Len() int { return len(d.Items) }

// IsZero reports whether the diff changes nothing.
func (d *CountsDiff) IsZero() bool { return d.DTransactions == 0 && len(d.Items) == 0 }

// Validate checks that applying d to ft would produce a valid frequency
// table, without modifying ft. It is the complete precondition of ApplyDiff:
// items strictly ascending and in range, deltas nonzero and parallel to
// items, the post-diff transaction count positive, and every post-diff count
// — including the counts the diff does not touch, which matters when
// DTransactions shrinks the total — inside [0, NTransactions+DTransactions].
func (d *CountsDiff) Validate(ft *FrequencyTable) error {
	if len(d.Items) != len(d.Deltas) {
		return fmt.Errorf("%w: %d items but %d deltas", ErrDiffMismatch, len(d.Items), len(d.Deltas))
	}
	newM := ft.NTransactions + d.DTransactions
	if newM <= 0 {
		return fmt.Errorf("%w: post-diff transaction count %d, want > 0", ErrDiffMismatch, newM)
	}
	for i, x := range d.Items {
		if x < 0 || x >= ft.NItems {
			return fmt.Errorf("%w: item %d outside [0,%d)", ErrDiffMismatch, x, ft.NItems)
		}
		if i > 0 && x <= d.Items[i-1] {
			return fmt.Errorf("%w: items not strictly ascending at index %d", ErrDiffMismatch, i)
		}
		if d.Deltas[i] == 0 {
			return fmt.Errorf("%w: zero delta for item %d", ErrDiffMismatch, x)
		}
		c := ft.Counts[x] + d.Deltas[i]
		if c < 0 || c > newM {
			return fmt.Errorf("%w: item %d count %d+%d outside [0,%d]",
				ErrDiffMismatch, x, ft.Counts[x], d.Deltas[i], newM)
		}
	}
	if d.DTransactions < 0 {
		// A shrinking total can invalidate counts the diff never touches.
		di := 0
		for x, c := range ft.Counts {
			for di < len(d.Items) && d.Items[di] < x {
				di++
			}
			if di < len(d.Items) && d.Items[di] == x {
				continue // already validated post-diff above
			}
			if c > newM {
				return fmt.Errorf("%w: untouched item %d count %d exceeds post-diff total %d",
					ErrDiffMismatch, x, c, newM)
			}
		}
	}
	return nil
}

// Diff computes the sparse delta turning old into new. The tables must share
// the same universe size.
func Diff(old, cur *FrequencyTable) (*CountsDiff, error) {
	if old.NItems != cur.NItems {
		return nil, fmt.Errorf("dataset: diff universes %d vs %d", old.NItems, cur.NItems)
	}
	d := &CountsDiff{DTransactions: cur.NTransactions - old.NTransactions}
	for x := range old.Counts {
		if dc := cur.Counts[x] - old.Counts[x]; dc != 0 {
			d.Items = append(d.Items, x)
			d.Deltas = append(d.Deltas, dc)
		}
	}
	return d, nil
}

// ApplyDiff mutates ft into the post-diff table. The diff is validated in
// full before the first count moves, so a rejected diff leaves ft untouched.
// Any memoized digest is invalidated: Digest() after ApplyDiff is always the
// digest of the post-diff counts, and the delta-equivalence tests pin
// Digest(apply(diff)) == Digest(rebuild) so content addresses can never
// alias distinct tables.
func (ft *FrequencyTable) ApplyDiff(d *CountsDiff) error {
	if err := d.Validate(ft); err != nil {
		return err
	}
	ft.NTransactions += d.DTransactions
	for i, x := range d.Items {
		ft.Counts[x] += d.Deltas[i]
	}
	ft.digest.Store(nil)
	return nil
}

// RebinDelta reports how a Grouping changed under a CountsDiff — the work
// order for bipartite.Rebin.
type RebinDelta struct {
	// FreqsChanged marks that the distinct-frequency vector changed: the
	// transaction total moved (every group frequency shifts) or the set of
	// distinct counts changed (groups appeared or vanished). When false, the
	// graph's Freqs array — and every belief range computed against it — is
	// still valid.
	FreqsChanged bool
	// Moved lists the items whose frequency-group membership changed,
	// ascending. A nonzero count delta always moves its item (grouping is by
	// exact count), so this equals the diff's item list.
	Moved []int
	// FirstGroup is the index, in the NEW grouping, of the first group whose
	// (count, membership) pair differs from the old grouping; NumGroups when
	// only frequencies moved. Groups below it are identical in both, so the
	// graph's flat candidate array is untouched below its prefix offset.
	FirstGroup int
}

// ApplyDiffGrouping returns the grouping of the post-diff table, reusing the
// member slices of every group the diff left alone, plus the RebinDelta
// describing what changed. gr must be the grouping of the table BEFORE the
// diff was applied, and post the same table AFTER ApplyDiff(d) — the
// pre-diff counts are reconstructed as post.Counts[x] - d.Deltas[i].
//
// The result is structurally identical to GroupItems(post): same groups,
// same order, same membership — the delta-equivalence property the
// incremental assessment pipeline rests on.
func ApplyDiffGrouping(gr *Grouping, post *FrequencyTable, d *CountsDiff) (*Grouping, *RebinDelta, error) {
	if gr.NumItems() != post.NItems {
		return nil, nil, fmt.Errorf("dataset: grouping universe %d vs table %d", gr.NumItems(), post.NItems)
	}
	// Per-count removal and addition sets for the touched counts only.
	removed := make(map[int][]int) // pre count  -> items leaving it
	added := make(map[int][]int)   // post count -> items entering it
	for i, x := range d.Items {
		pre := post.Counts[x] - d.Deltas[i]
		post_ := post.Counts[x]
		removed[pre] = append(removed[pre], x)
		added[post_] = append(added[post_], x)
	}
	// Counts that gain members but have no existing group, ascending.
	var newCounts []int
	have := make(map[int]bool, len(gr.Groups))
	for _, g := range gr.Groups {
		have[g.Count] = true
	}
	for c := range added {
		if !have[c] {
			newCounts = append(newCounts, c)
		}
	}
	sort.Ints(newCounts)

	out := &Grouping{
		NTransactions: post.NTransactions,
		Groups:        make([]Group, 0, len(gr.Groups)+len(newCounts)),
		itemGroup:     append([]int(nil), gr.itemGroup...),
	}
	rd := &RebinDelta{
		FreqsChanged: d.DTransactions != 0,
		Moved:        append([]int(nil), d.Items...),
		FirstGroup:   -1,
	}
	m := float64(post.NTransactions)
	ni := 0 // cursor into newCounts
	emit := func(count int, items []int, identical bool) {
		if !identical && rd.FirstGroup < 0 {
			rd.FirstGroup = len(out.Groups)
		}
		out.Groups = append(out.Groups, Group{Count: count, Items: items, Freq: float64(count) / m})
	}
	for _, g := range gr.Groups {
		for ni < len(newCounts) && newCounts[ni] < g.Count {
			c := newCounts[ni]
			items := append([]int(nil), added[c]...)
			sort.Ints(items)
			rd.FreqsChanged = true
			emit(c, items, false)
			ni++
		}
		rm, ad := removed[g.Count], added[g.Count]
		if len(rm) == 0 && len(ad) == 0 {
			emit(g.Count, g.Items, true) // untouched: share the member slice
			continue
		}
		items := mergeMembers(g.Items, rm, ad)
		if len(items) == 0 {
			rd.FreqsChanged = true // group vanished: the frequency vector shrinks
			if rd.FirstGroup < 0 {
				rd.FirstGroup = len(out.Groups)
			}
			continue
		}
		emit(g.Count, items, false)
	}
	for ; ni < len(newCounts); ni++ {
		c := newCounts[ni]
		items := append([]int(nil), added[c]...)
		sort.Ints(items)
		rd.FreqsChanged = true
		emit(c, items, false)
	}
	if rd.FirstGroup < 0 {
		rd.FirstGroup = len(out.Groups)
	}
	// Groups at or beyond the first change may sit at shifted indices even
	// when their membership is unchanged; re-point their members.
	for gi := rd.FirstGroup; gi < len(out.Groups); gi++ {
		for _, x := range out.Groups[gi].Items {
			out.itemGroup[x] = gi
		}
	}
	return out, rd, nil
}

// mergeMembers removes rm from the sorted member list and merges in ad,
// returning a fresh sorted slice (the input is shared with the old grouping
// and never mutated).
func mergeMembers(items, rm, ad []int) []int {
	drop := make(map[int]bool, len(rm))
	for _, x := range rm {
		drop[x] = true
	}
	out := make([]int, 0, len(items)-len(rm)+len(ad))
	for _, x := range items {
		if !drop[x] {
			out = append(out, x)
		}
	}
	out = append(out, ad...)
	sort.Ints(out)
	return out
}
