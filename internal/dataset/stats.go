package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Stats is one row of the paper's Figure 9: the frequency-structure summary
// of a dataset that drives the entire risk assessment.
type Stats struct {
	Name          string
	NItems        int
	NTransactions int
	NGroups       int // distinct observed frequencies g
	Singleton     int // groups of size 1
	MeanGap       float64
	MedianGap     float64
	MinGap        float64
	MaxGap        float64
}

// ComputeStats summarizes a frequency table in the form of Figure 9.
func ComputeStats(name string, ft *FrequencyTable) Stats {
	gr := GroupItems(ft)
	gaps := gr.Gaps()
	s := Stats{
		Name:          name,
		NItems:        ft.NItems,
		NTransactions: ft.NTransactions,
		NGroups:       gr.NumGroups(),
		Singleton:     gr.SingletonGroups(),
	}
	if len(gaps) > 0 {
		s.MeanGap = Mean(gaps)
		s.MedianGap = Median(gaps)
		s.MinGap = Min(gaps)
		s.MaxGap = Max(gaps)
	}
	return s
}

// String renders the row roughly as the paper's table does.
func (s Stats) String() string {
	return fmt.Sprintf("%-10s items=%-6d trans=%-7d groups=%-5d singletons=%-5d gaps(mean=%.5f median=%.6f min=%.6f max=%.5f)",
		s.Name, s.NItems, s.NTransactions, s.NGroups, s.Singleton,
		s.MeanGap, s.MedianGap, s.MinGap, s.MaxGap)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (average of the two middle elements for
// even lengths), or 0 for an empty slice. The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation of xs (n-1 denominator), or 0
// when len(xs) < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}
