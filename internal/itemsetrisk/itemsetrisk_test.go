package itemsetrisk

import (
	"math/rand"
	"testing"

	"repro/internal/anonymize"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/fim"
)

func TestPairTableBasics(t *testing.T) {
	db := dataset.MustNew(4, []dataset.Transaction{
		{0, 1, 2}, {0, 1}, {2, 3}, {0, 2},
	})
	pt := ComputePairs(db)
	want := map[[2]int]int{
		{0, 1}: 2, {0, 2}: 2, {1, 2}: 1, {2, 3}: 1,
	}
	for pair, w := range want {
		if got := pt.Support(pair[0], pair[1]); got != w {
			t.Errorf("Support(%d,%d) = %d, want %d", pair[0], pair[1], got, w)
		}
		if got := pt.Support(pair[1], pair[0]); got != w {
			t.Errorf("Support symmetric (%d,%d) = %d, want %d", pair[1], pair[0], got, w)
		}
	}
	if pt.Support(0, 3) != 0 {
		t.Errorf("Support(0,3) = %d, want 0", pt.Support(0, 3))
	}
	if pt.Pairs() != 4 {
		t.Errorf("Pairs = %d, want 4", pt.Pairs())
	}
	defer func() {
		if recover() == nil {
			t.Error("Support(x,x) should panic")
		}
	}()
	pt.Support(1, 1)
}

func TestRefineSplitsEqualFrequencies(t *testing.T) {
	// Items 0 and 1 share a frequency; so do 2 and 3. Pair structure breaks
	// the first tie ({0,2} co-occurs, {1,2} does not) but items 2,3 are
	// exchangeable, staying merged.
	db := dataset.MustNew(4, []dataset.Transaction{
		{0, 2}, {0, 3}, {1}, {2}, {3}, {0, 1},
	})
	// counts: 0 -> 3, 1 -> 2, 2 -> 2, 3 -> 2. Groups: {0}, {1,2,3}.
	gr := dataset.GroupItems(db.Table())
	if gr.NumGroups() != 2 {
		t.Fatalf("groups = %d, want 2", gr.NumGroups())
	}
	cracks, ref, err := ExpectedCracksPairAware(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pair supports: (0,1)=1, (0,2)=1, (0,3)=1, others 0. Items 1,2,3 all
	// co-occur once with item 0 and never with each other: exchangeable.
	if ref.Classes != 2 || cracks != 2 {
		t.Fatalf("classes = %d (cracks %v), want 2 — items 1,2,3 are exchangeable", ref.Classes, cracks)
	}
	// Now give item 1 a second co-occurrence with 0: splits {1} from {2,3}.
	db2 := dataset.MustNew(4, []dataset.Transaction{
		{0, 2}, {0, 3}, {0, 1}, {0, 1}, {2}, {3},
	})
	// counts: 0 -> 4, 1 -> 2, 2 -> 2, 3 -> 2; pair(0,1)=2, pair(0,2)=1=pair(0,3).
	_, ref2, err := ExpectedCracksPairAware(db2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref2.Classes != 3 {
		t.Fatalf("classes = %d, want 3 ({0}, {1}, {2,3})", ref2.Classes)
	}
	if ref2.Colors[2] != ref2.Colors[3] || ref2.Colors[1] == ref2.Colors[2] {
		t.Errorf("colors = %v: want 2,3 merged and 1 separate", ref2.Colors)
	}
}

func TestRefineNeverCoarserThanGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		db, err := datagen.Quest(datagen.QuestConfig{Items: 12 + rng.Intn(20), Transactions: 100}, rng)
		if err != nil {
			t.Fatal(err)
		}
		gr := dataset.GroupItems(db.Table())
		_, ref, err := ExpectedCracksPairAware(db, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Classes < gr.NumGroups() {
			t.Fatalf("trial %d: %d classes < %d groups", trial, ref.Classes, gr.NumGroups())
		}
		// Refinement must respect the initial grouping: same class implies
		// same frequency group.
		for x := 0; x < db.Items(); x++ {
			for y := x + 1; y < db.Items(); y++ {
				if ref.Colors[x] == ref.Colors[y] && gr.GroupOf(x) != gr.GroupOf(y) {
					t.Fatalf("trial %d: items %d,%d share a class across groups", trial, x, y)
				}
			}
		}
	}
}

func TestRefineRoundCap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db, err := datagen.Quest(datagen.QuestConfig{Items: 20, Transactions: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Refine(db.Table(), ComputePairs(db), 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Refine(db.Table(), ComputePairs(db), 1)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Rounds > 1 {
		t.Errorf("capped refinement ran %d rounds", capped.Rounds)
	}
	if capped.Classes > full.Classes {
		t.Errorf("capped classes %d > full classes %d", capped.Classes, full.Classes)
	}
}

func TestRefineDomainMismatch(t *testing.T) {
	db := dataset.MustNew(3, []dataset.Transaction{{0, 1, 2}})
	other := dataset.MustNew(4, []dataset.Transaction{{0, 1, 2, 3}})
	if _, err := Refine(db.Table(), ComputePairs(other), 0); err == nil {
		t.Error("mismatched domains: want error")
	}
}

// TestRefinementIsAnonymizationInvariant is the load-bearing property: the
// partition computed on the anonymized release equals the image of the
// original partition under the secret mapping, so the hacker really can
// observe it.
func TestRefinementIsAnonymizationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		db, err := datagen.Quest(datagen.QuestConfig{Items: 15, Transactions: 150}, rng)
		if err != nil {
			t.Fatal(err)
		}
		key := anonymize.NewRandomMapping(db.Items(), rng)
		anonDB, err := key.Apply(db)
		if err != nil {
			t.Fatal(err)
		}
		_, orig, err := ExpectedCracksPairAware(db, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, anon, err := ExpectedCracksPairAware(anonDB, 0)
		if err != nil {
			t.Fatal(err)
		}
		if orig.Classes != anon.Classes {
			t.Fatalf("trial %d: classes changed under anonymization: %d vs %d", trial, orig.Classes, anon.Classes)
		}
		// Same-class relations must transport through the key.
		n := db.Items()
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				same := orig.Colors[x] == orig.Colors[y]
				sameAnon := anon.Colors[key.ToAnon[x]] == anon.Colors[key.ToAnon[y]]
				if same != sameAnon {
					t.Fatalf("trial %d: class relation of (%d,%d) broke under anonymization", trial, x, y)
				}
			}
		}
	}
}

func TestIdentifiedItemsets(t *testing.T) {
	// Colors: 0 and 1 share class 0; 2 is class 1; 3 is class 2.
	colors := []int{0, 0, 1, 2}
	sets := []fim.FrequentItemset{
		{Items: fim.Itemset{0, 2}, Support: 5}, // sig (2,5,{0,1})
		{Items: fim.Itemset{1, 2}, Support: 5}, // same sig -> ambiguous
		{Items: fim.Itemset{0, 3}, Support: 5}, // sig (2,5,{0,2}) -> unique
		{Items: fim.Itemset{2, 3}, Support: 4}, // unique
		{Items: fim.Itemset{0, 1}, Support: 3}, // unique even within one class
	}
	ident, total := IdentifiedItemsets(sets, colors)
	if total != 5 || ident != 3 {
		t.Errorf("identified %d of %d, want 3 of 5", ident, total)
	}
	if id, tot := IdentifiedItemsets(nil, colors); id != 0 || tot != 0 {
		t.Errorf("empty input: %d/%d", id, tot)
	}
}

func TestPairAwareAtLeastItemLevelOnBenchmarks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	plan := datagen.GroupPlan{Name: "small", Items: 60, Transactions: 500, Groups: 20, Singletons: 10,
		MedianGapFreq: 0.01, MeanGapFreq: 0.03}
	db, err := plan.Database(rng)
	if err != nil {
		t.Fatal(err)
	}
	gr := dataset.GroupItems(db.Table())
	cracks, ref, err := ExpectedCracksPairAware(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cracks < float64(gr.NumGroups()) {
		t.Errorf("pair-aware cracks %v < item-level g %d", cracks, gr.NumGroups())
	}
	if ref.Classes > db.Items() {
		t.Errorf("classes %d > n %d", ref.Classes, db.Items())
	}
}
