package itemsetrisk

import (
	"context"
	"fmt"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/budget"
)

// PairBelief is the hacker's prior about one 2-itemset of the original
// domain: the support of {A, B} lies in the closed fraction interval Iv.
// This is the paper's §8.2 direction made operational: belief functions
// "defined over the powerset" instead of single items.
type PairBelief struct {
	A, B int
	Iv   belief.Interval
}

// PruneWithPairBeliefs refines an item-level consistency graph using
// 2-itemset beliefs by arc consistency: the edge (w′, x) survives only if,
// for every believed pair {x, y}, some candidate w2′ of y co-occurs with w′
// at a rate inside the believed interval (and symmetrically). Pruning
// iterates to a fixed point (AC-3 style).
//
// Soundness: a deleted edge belongs to no crack mapping that satisfies every
// pair belief, because any such mapping would provide the missing witness.
// The pruning is not complete — surviving edges may still be jointly
// unsatisfiable — mirroring the O-estimate's local character.
//
// pairs must hold the co-occurrence counts of the *anonymized release* over
// nTransactions transactions; since anonymization preserves co-occurrence,
// callers working in the identity-aligned id space can pass the original's
// pair table.
func PruneWithPairBeliefs(g *bipartite.Explicit, pairs *PairTable, nTransactions int, beliefs []PairBelief) (*bipartite.Explicit, int, error) {
	return PruneWithPairBeliefsCtx(context.Background(), g, pairs, nTransactions, beliefs)
}

// PruneWithPairBeliefsCtx is PruneWithPairBeliefs under a work budget. Each
// candidate-edge revision charges one operation per belief it must witness;
// the AC-3 loop can revise an edge once per removal elsewhere, so the budget
// is what bounds adversarially slow fixpoints.
func PruneWithPairBeliefsCtx(ctx context.Context, g *bipartite.Explicit, pairs *PairTable, nTransactions int, beliefs []PairBelief) (*bipartite.Explicit, int, error) {
	n := g.N
	if pairs.Items() != n {
		return nil, 0, fmt.Errorf("itemsetrisk: pair table over %d items, graph over %d", pairs.Items(), n)
	}
	if nTransactions <= 0 {
		return nil, 0, fmt.Errorf("itemsetrisk: %d transactions, want > 0", nTransactions)
	}
	// Beliefs indexed per item.
	perItem := make([][]PairBelief, n)
	for _, pb := range beliefs {
		if pb.A == pb.B || pb.A < 0 || pb.B < 0 || pb.A >= n || pb.B >= n {
			return nil, 0, fmt.Errorf("itemsetrisk: invalid pair belief {%d,%d}", pb.A, pb.B)
		}
		perItem[pb.A] = append(perItem[pb.A], pb)
		perItem[pb.B] = append(perItem[pb.B], PairBelief{A: pb.B, B: pb.A, Iv: pb.Iv})
	}

	// Mutable candidate sets: cand[x] = set of anonymized items that may map
	// to x.
	cand := make([]map[int]bool, n)
	for x := range cand {
		cand[x] = map[int]bool{}
	}
	for w := 0; w < n; w++ {
		for _, x := range g.Adj[w] {
			cand[x][w] = true
		}
	}
	m := float64(nTransactions)
	removed := 0
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, 0, err
	}

	supported := func(x, w int) bool {
		// Every pair belief {x, y} needs a witness candidate for y.
		for _, pb := range perItem[x] {
			y := pb.B
			ok := false
			for w2 := range cand[y] {
				if w2 == w {
					continue // a 1-1 mapping cannot reuse w
				}
				//lint:allow maporder existential scan of a pure predicate: any witness order yields the same boolean
				if pb.Iv.Contains(float64(pairs.Support(w, w2)) / m) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	changed := true
	for changed {
		changed = false
		for x := 0; x < n; x++ {
			if len(perItem[x]) == 0 {
				continue
			}
			for w := range cand[x] {
				if err := bud.Charge(int64(len(perItem[x]) + 1)); err != nil {
					return nil, 0, fmt.Errorf("itemsetrisk: pair-belief pruning: %w", err)
				}
				//lint:allow maporder monotone pruning to a unique fixed point: deletions commute, so visit order cannot change the result
				if !supported(x, w) {
					delete(cand[x], w)
					removed++
					changed = true
				}
			}
		}
	}

	adj := make([][]int, n)
	for w := 0; w < n; w++ {
		for _, x := range g.Adj[w] {
			if cand[x][w] {
				adj[w] = append(adj[w], x)
			}
		}
	}
	pruned, err := bipartite.NewExplicit(n, adj)
	if err != nil {
		return nil, 0, err
	}
	return pruned, removed, nil
}

// ExactPairBeliefs builds fully compliant point-like pair beliefs for the
// given pairs from the true database supports, with slack delta on each side
// — the 2-itemset analogue of belief.UniformWidth.
func ExactPairBeliefs(pairs *PairTable, nTransactions int, whichPairs [][2]int, delta float64) []PairBelief {
	m := float64(nTransactions)
	out := make([]PairBelief, 0, len(whichPairs))
	for _, p := range whichPairs {
		f := float64(pairs.Support(p[0], p[1])) / m
		out = append(out, PairBelief{
			A: p[0], B: p[1],
			Iv: belief.Interval{Lo: f - delta, Hi: f + delta}.Clamp(),
		})
	}
	return out
}
