package itemsetrisk

import (
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

// paperClosingExample builds the situation of the paper's §8.2 closing
// remark (the Figure 6(b) groups): items 0,1 share a frequency, items 2,3
// share another, and item-level knowledge cannot tell 0 from 1. Pair
// knowledge about {0, 1} does not split them (the pair maps to itself as a
// set) — but pair knowledge involving a *distinguishable* partner does.
func paperClosingExample(t testing.TB) (*dataset.Database, *bipartite.Explicit, *PairTable) {
	t.Helper()
	// counts: 0,1 -> 4 of 8; 2,3 -> 2 of 8. Pair supports engineered so that
	// (0,2) co-occur twice but (1,2) never.
	db := dataset.MustNew(4, []dataset.Transaction{
		{0, 2}, {0, 2}, {0, 1}, {0, 1}, {1, 3}, {1, 3}, {0, 3}, {1, 2, 3},
	})
	counts := db.SupportCounts()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("construction broken: counts %v", counts)
	}
	ft := db.Table()
	g, err := bipartite.Build(belief.PointValued(ft.Frequencies()), dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	return db, g.ToExplicit(), ComputePairs(db)
}

func TestPruneSplitsEqualFrequencyPair(t *testing.T) {
	db, e, pairs := paperClosingExample(t)
	m := db.Transactions()
	// Item-level: 0 and 1 are mutual candidates.
	if !e.HasEdge(0, 1) || !e.HasEdge(1, 0) {
		t.Fatal("expected items 0,1 to camouflage each other at item level")
	}
	// The hacker knows the exact support of {0, 2}.
	beliefs := ExactPairBeliefs(pairs, m, [][2]int{{0, 2}}, 0.01)
	pruned, removed, err := PruneWithPairBeliefs(e, pairs, m, beliefs)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("pair belief should prune something")
	}
	// sup({0,2}) = 2/8; sup({1,2}) = 1/8 and sup({1,3})=2/8... the edge
	// (1', 0) requires a witness w2 for item 2 with pair support 2/8 with
	// anonymized 1'. Candidates of 2 are {2', 3'}; sup(1,2)=1/8, sup(1,3)=3/8.
	// Neither matches 2/8, so (1', 0) must be gone while (0', 0) survives.
	if pruned.HasEdge(1, 0) {
		t.Error("edge (1',0) should be pruned by the {0,2} belief")
	}
	if !pruned.HasEdge(0, 0) {
		t.Error("edge (0',0) must survive (it has the witness)")
	}
	// The disclosure estimate rises accordingly.
	before, err := core.OEstimateExplicit(e, core.OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := core.OEstimateExplicit(pruned, core.OEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Value <= before.Value {
		t.Errorf("pair knowledge should raise the estimate: %v -> %v", before.Value, after.Value)
	}
}

// TestPruneSoundness verifies, by brute force, that pruned edges belong to
// no crack mapping satisfying every pair belief.
func TestPruneSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		db, err := datagen.Quest(datagen.QuestConfig{Items: 6, Transactions: 40}, rng)
		if err != nil {
			t.Fatal(err)
		}
		ft := db.Table()
		g, err := bipartite.Build(belief.UniformWidth(ft.Frequencies(), 0.1), dataset.GroupItems(ft))
		if err != nil {
			t.Fatal(err)
		}
		e := g.ToExplicit()
		pairs := ComputePairs(db)
		// Believe two random true pairs with small slack.
		var which [][2]int
		for len(which) < 2 {
			a, b := rng.Intn(6), rng.Intn(6)
			if a != b {
				which = append(which, [2]int{a, b})
			}
		}
		beliefs := ExactPairBeliefs(pairs, db.Transactions(), which, 0.02)
		pruned, _, err := PruneWithPairBeliefs(e, pairs, db.Transactions(), beliefs)
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate matchings of the ORIGINAL graph that satisfy every
		// belief; each such matching must use only surviving edges.
		m := float64(db.Transactions())
		err = e.EnumeratePerfectMatchings(0, func(match []int) {
			for _, pb := range beliefs {
				// match maps anonymized -> item; invert for item -> anon.
				wa, wb := -1, -1
				for w, x := range match {
					if x == pb.A {
						wa = w
					}
					if x == pb.B {
						wb = w
					}
				}
				if wa < 0 || wb < 0 || !pb.Iv.Contains(float64(pairs.Support(wa, wb))/m) {
					return // mapping violates a belief; irrelevant
				}
			}
			for w, x := range match {
				if !pruned.HasEdge(w, x) {
					t.Fatalf("trial %d: consistent mapping uses pruned edge (%d,%d)", trial, w, x)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPruneValidation(t *testing.T) {
	db := dataset.MustNew(3, []dataset.Transaction{{0, 1}, {1, 2}})
	pairs := ComputePairs(db)
	e := bipartite.Complete(3)
	if _, _, err := PruneWithPairBeliefs(e, pairs, 0, nil); err == nil {
		t.Error("0 transactions: want error")
	}
	if _, _, err := PruneWithPairBeliefs(e, pairs, 2, []PairBelief{{A: 0, B: 0}}); err == nil {
		t.Error("self pair: want error")
	}
	if _, _, err := PruneWithPairBeliefs(e, pairs, 2, []PairBelief{{A: 0, B: 9}}); err == nil {
		t.Error("out-of-range pair: want error")
	}
	other := ComputePairs(dataset.MustNew(4, []dataset.Transaction{{0, 1, 2, 3}}))
	if _, _, err := PruneWithPairBeliefs(e, other, 2, nil); err == nil {
		t.Error("domain mismatch: want error")
	}
	// No beliefs: graph unchanged.
	same, removed, err := PruneWithPairBeliefs(e, pairs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 || same.NumEdges() != e.NumEdges() {
		t.Errorf("no-belief pruning changed the graph (removed %d)", removed)
	}
}
