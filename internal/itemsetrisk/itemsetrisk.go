// Package itemsetrisk implements the paper's Section 8.2 "ongoing work":
// extending the identity-disclosure analysis from individual items to sets of
// items. The paper's closing example: even when nothing distinguishes
// anonymized items 1′ and 2′ individually, the *itemset* {1′, 2′}
// indisputably maps to {1, 2} — and knowledge of itemset supports can in turn
// break the camouflage that equal item frequencies provide.
//
// The machinery is a color refinement (1-dimensional Weisfeiler–Leman) over
// the pairwise co-occurrence structure:
//
//   - items start colored by their frequency group (exactly the information
//     a compliant point-valued belief function gives the hacker, Lemma 3);
//   - each round recolors every item by the multiset of (neighbour color,
//     pair support) pairs over the whole domain;
//   - the fixpoint partition is invariant under anonymization (renaming items
//     is an isomorphism of the support structure), so a hacker who knows the
//     original pairwise supports — the natural 2-itemset extension of exact
//     frequency knowledge — observes the same partition in the release.
//
// Items in distinct classes are distinguishable, so the Lemma 3 analysis
// applies with classes in place of frequency groups: the expected number of
// cracks is (at least) the number of classes. (Classes are not guaranteed to
// be automorphism orbits — 1-WL is incomplete — so the class count is a
// lower bound on what an unbounded adversary separates, and the per-class
// uniformity of Lemma 3 is exact only when classes are orbits; for risk
// assessment the bound errs on the safe side for the hacker and the paper's
// "too conservative" side for the owner.)
package itemsetrisk

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/fim"
)

// PairTable stores the support of every co-occurring item pair.
type PairTable struct {
	n      int
	counts map[uint64]int
}

func pairKey(x, y int) uint64 {
	if x > y {
		x, y = y, x
	}
	return uint64(x)<<32 | uint64(uint32(y))
}

// ComputePairs counts pairwise co-occurrences in one database pass. The cost
// is Σ_t |t|², so it is meant for the small and mid-size benchmarks.
func ComputePairs(db *dataset.Database) *PairTable {
	pt, _ := ComputePairsCtx(context.Background(), db)
	return pt
}

// ComputePairsCtx is ComputePairs under a work budget, charging the |t|²
// pair enumerations of each transaction as it is scanned.
func ComputePairsCtx(ctx context.Context, db *dataset.Database) (*PairTable, error) {
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	pt := &PairTable{n: db.Items(), counts: make(map[uint64]int)}
	for i := 0; i < db.Transactions(); i++ {
		tx := db.Transaction(i)
		if err := bud.Charge(int64(len(tx)*(len(tx)-1)/2 + 1)); err != nil {
			return nil, fmt.Errorf("itemsetrisk: pair counting: %w", err)
		}
		for a := 0; a < len(tx); a++ {
			for b := a + 1; b < len(tx); b++ {
				pt.counts[pairKey(int(tx[a]), int(tx[b]))]++
			}
		}
	}
	return pt, nil
}

// Items returns the domain size.
func (pt *PairTable) Items() int { return pt.n }

// Support returns the number of transactions containing both x and y.
func (pt *PairTable) Support(x, y int) int {
	if x == y {
		panic(fmt.Sprintf("itemsetrisk: pair support of (%d,%d) is undefined", x, y))
	}
	return pt.counts[pairKey(x, y)]
}

// Pairs returns the number of co-occurring pairs.
func (pt *PairTable) Pairs() int { return len(pt.counts) }

// Refinement is the result of the color refinement.
type Refinement struct {
	Colors  []int // per item, dense class ids 0..Classes-1
	Classes int   // number of distinguishable classes
	Rounds  int   // rounds until fixpoint (or the cap)
}

// Refine runs color refinement from the frequency-group coloring, using the
// pair supports as edge labels, for at most maxRounds rounds (0 means run to
// the fixpoint, which takes at most n rounds).
func Refine(ft *dataset.FrequencyTable, pairs *PairTable, maxRounds int) (*Refinement, error) {
	return RefineCtx(context.Background(), ft, pairs, maxRounds)
}

// RefineCtx is Refine under a work budget: each round costs one operation per
// item plus one per directed co-occurrence edge (signature construction
// dominates, and its cost is exactly that sum).
func RefineCtx(ctx context.Context, ft *dataset.FrequencyTable, pairs *PairTable, maxRounds int) (*Refinement, error) {
	if pairs.Items() != ft.NItems {
		return nil, fmt.Errorf("itemsetrisk: pair table over %d items, counts over %d", pairs.Items(), ft.NItems)
	}
	n := ft.NItems
	gr := dataset.GroupItems(ft)
	colors := make([]int, n)
	for x := 0; x < n; x++ {
		colors[x] = gr.GroupOf(x)
	}
	classes := gr.NumGroups()
	if maxRounds <= 0 {
		maxRounds = n
	}

	// Adjacency in the co-occurrence graph, for per-item signatures.
	adj := make([][][2]int, n) // adj[x] = list of (neighbour, support)
	for key, c := range pairs.counts {
		x, y := int(key>>32), int(uint32(key))
		adj[x] = append(adj[x], [2]int{y, c})
		adj[y] = append(adj[y], [2]int{x, c})
	}
	// The counts map iterates in random order; canonicalize each adjacency
	// list so signature construction sees one layout per input, not one per
	// process.
	for x := range adj {
		sort.Slice(adj[x], func(i, j int) bool {
			if adj[x][i][0] != adj[x][j][0] {
				return adj[x][i][0] < adj[x][j][0]
			}
			return adj[x][i][1] < adj[x][j][1]
		})
	}

	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	roundCost := int64(n + 2*pairs.Pairs() + 1)

	res := &Refinement{Colors: colors, Classes: classes}
	classSize := make([]int, n+1)
	for round := 0; round < maxRounds; round++ {
		if err := bud.Charge(roundCost); err != nil {
			return nil, fmt.Errorf("itemsetrisk: refinement round %d: %w", round, err)
		}
		for i := range classSize {
			classSize[i] = 0
		}
		for _, c := range colors {
			classSize[c]++
		}
		sig := make([]string, n)
		for x := 0; x < n; x++ {
			sig[x] = signature(x, colors, adj[x], classSize)
		}
		// Canonicalize signatures to dense new colors.
		index := map[string]int{}
		next := 0
		newColors := make([]int, n)
		for x := 0; x < n; x++ {
			id, ok := index[sig[x]]
			if !ok {
				id = next
				next++
				index[sig[x]] = id
			}
			newColors[x] = id
		}
		res.Rounds = round + 1
		if next == classes {
			// Refinement is monotone, so an unchanged class count means the
			// partition itself is stable: fixpoint.
			break
		}
		classes = next
		colors = newColors
		res.Colors = colors
		res.Classes = classes
	}
	return res, nil
}

// signature encodes (own color, multiset of (neighbour color, pair support)),
// with non-co-occurring pairs represented implicitly per class so that the
// encoding is exact yet stays proportional to the co-occurrence degree.
func signature(x int, colors []int, neigh [][2]int, classSize []int) string {
	type edge struct{ color, support int }
	edges := make([]edge, 0, len(neigh))
	nonzeroPerColor := map[int]int{}
	for _, e := range neigh {
		c := colors[e[0]]
		edges = append(edges, edge{color: c, support: e[1]})
		nonzeroPerColor[c]++
	}
	// Zero-support co-memberships per color complete the multiset; only
	// colors with any member besides x matter, and zero-edges to a class are
	// determined by classSize - nonzero (minus x itself for its own class).
	for c, nz := range nonzeroPerColor {
		size := classSize[c]
		if c == colors[x] {
			size--
		}
		if zero := size - nz; zero > 0 {
			edges = append(edges, edge{color: c, support: 0})
			// Encode the count of zeros in the support field's twin entry
			// below via repetition-free form: (color, 0) plus the count.
			edges[len(edges)-1].support = -zero
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].color != edges[j].color {
			return edges[i].color < edges[j].color
		}
		return edges[i].support < edges[j].support
	})
	buf := make([]byte, 0, 16+len(edges)*10)
	buf = appendVarint(buf, colors[x])
	for _, e := range edges {
		buf = appendVarint(buf, e.color)
		buf = appendVarint(buf, e.support)
	}
	return string(buf)
}

func appendVarint(b []byte, v int) []byte {
	// Zig-zag then base-128 varint.
	u := uint64(uint(v) << 1)
	if v < 0 {
		u = uint64(uint(^v)<<1) | 1
	}
	for u >= 0x80 {
		b = append(b, byte(u)|0x80)
		u >>= 7
	}
	return append(b, byte(u), 0xff)
}

// ExpectedCracksPairAware returns the Lemma 3-style expected crack count for
// a hacker holding exact item frequencies AND exact pairwise supports: the
// number of refinement classes. It also returns the refinement itself.
func ExpectedCracksPairAware(db *dataset.Database, maxRounds int) (float64, *Refinement, error) {
	ref, err := Refine(db.Table(), ComputePairs(db), maxRounds)
	if err != nil {
		return 0, nil, err
	}
	return float64(ref.Classes), ref, nil
}

// IdentifiedItemsets counts how many of the given frequent itemsets are
// uniquely identified by their observable signature (size, support, multiset
// of member classes): an anonymized itemset with a unique signature maps
// "indisputably" (the paper's word) to its original. Returns the number
// identified and the total.
func IdentifiedItemsets(sets []fim.FrequentItemset, colors []int) (identified, total int) {
	bySig := map[string][]int{}
	for i, fs := range sets {
		bySig[itemsetSignature(fs, colors)] = append(bySig[itemsetSignature(fs, colors)], i)
	}
	for _, idx := range bySig {
		if len(idx) == 1 {
			identified++
		}
	}
	return identified, len(sets)
}

func itemsetSignature(fs fim.FrequentItemset, colors []int) string {
	cs := make([]int, len(fs.Items))
	for i, x := range fs.Items {
		cs[i] = colors[x]
	}
	sort.Ints(cs)
	buf := appendVarint(nil, len(fs.Items))
	buf = appendVarint(buf, fs.Support)
	for _, c := range cs {
		buf = appendVarint(buf, c)
	}
	return string(buf)
}
