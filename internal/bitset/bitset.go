// Package bitset provides the packed boolean-set representation shared by
// the repo's word-parallel kernels (DESIGN.md §16). A Set stores one bit per
// item in []uint64 words, so the O-estimate scans, the propagation sweeps,
// and the Ryser permanent walk 64 items per load with math/bits popcounts
// instead of burning a branch per item on a []bool.
//
// Layout contract: item i lives at bit (i & 63) of word (i >> 6), and every
// bit at position >= Len() is zero. Kernels rely on the tail invariant — a
// word-parallel AND/OR over two sets of the same length never conjures
// phantom items — so every mutating method preserves it and Words exposes
// the raw words as shared, not copied, state.
//
// Iteration order is ascending item order: ForEach peels bits with
// TrailingZeros64 from word 0 upward. The O-estimate kernels depend on this
// to keep float accumulation order — and therefore bit-for-bit results —
// identical to the historical per-item loops.
package bitset

import "math/bits"

// wordShift and wordMask convert item indices to (word, bit) coordinates.
const (
	wordShift = 6
	wordMask  = 63
)

// WordsFor returns the number of 64-bit words needed for n items.
func WordsFor(n int) int {
	return (n + wordMask) >> wordShift
}

// Set is a fixed-capacity packed set of items [0, Len()). The zero Set has
// length zero and doubles as the "absent" value for optional masks (IsZero).
// Like a slice, a Set is a small header over shared backing words: copies
// alias the same storage, and mutating methods use value receivers.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the domain [0, n).
func New(n int) Set {
	return Set{n: n, words: make([]uint64, WordsFor(n))}
}

// FromWords wraps a caller-owned word slice as a Set over [0, n) without
// copying. The caller must uphold the layout contract: len(words) ==
// WordsFor(n) and all bits >= n zero. Kernels use it to expose scratch
// buffers through the Set API.
func FromWords(n int, words []uint64) Set {
	return Set{n: n, words: words}
}

// FromBools packs a []bool into a Set of the same length.
func FromBools(bs []bool) Set {
	s := New(len(bs))
	for i, b := range bs {
		if b {
			s.words[i>>wordShift] |= 1 << uint(i&wordMask)
		}
	}
	return s
}

// Len returns the domain size n.
func (s Set) Len() int { return s.n }

// IsZero reports whether s is the zero Set — the conventional "no mask"
// value for optional bitset options.
func (s Set) IsZero() bool { return s.n == 0 && s.words == nil }

// Words returns the backing words, shared with the set. Hot loops capture
// this once and index it directly; they must preserve the tail invariant
// when writing.
func (s Set) Words() []uint64 { return s.words }

// Contains reports whether item i is in the set.
func (s Set) Contains(i int) bool {
	return s.words[i>>wordShift]&(1<<uint(i&wordMask)) != 0
}

// Add inserts item i.
func (s Set) Add(i int) {
	s.words[i>>wordShift] |= 1 << uint(i&wordMask)
}

// Remove deletes item i.
func (s Set) Remove(i int) {
	s.words[i>>wordShift] &^= 1 << uint(i&wordMask)
}

// Clear empties the set in place.
func (s Set) Clear() {
	for k := range s.words {
		s.words[k] = 0
	}
}

// Fill inserts every item of the domain, preserving the tail invariant.
func (s Set) Fill() {
	for k := range s.words {
		s.words[k] = ^uint64(0)
	}
	s.trimTail()
}

// trimTail zeroes the bits at positions >= n in the last word.
func (s Set) trimTail() {
	if rem := s.n & wordMask; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of items in the set, one popcount per word.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether two sets have the same domain size and members.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for k, w := range s.words {
		if w != t.words[k] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s's members with t's. The domains must match.
func (s Set) CopyFrom(t Set) {
	copy(s.words, t.words)
}

// Bools unpacks the set into a []bool of length Len().
func (s Set) Bools() []bool {
	out := make([]bool, s.n)
	for i := range out {
		out[i] = s.Contains(i)
	}
	return out
}

// ForEach calls fn for every member in ascending order. Convenience for
// cold paths; hot kernels iterate Words() inline instead so the closure
// call does not dominate the word scan.
func (s Set) ForEach(fn func(i int)) {
	for k, w := range s.words {
		base := k << wordShift
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Members appends the set's items to dst in ascending order and returns the
// extended slice.
func (s Set) Members(dst []int) []int {
	s.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}
