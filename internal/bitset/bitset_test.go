package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130, 1000} {
		s := New(n)
		if s.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, s.Len())
		}
		if got, want := len(s.Words()), WordsFor(n); got != want {
			t.Fatalf("n=%d: %d words, want %d", n, got, want)
		}
		if s.Count() != 0 {
			t.Fatalf("n=%d: fresh set has %d members", n, s.Count())
		}
		for i := 0; i < n; i += 7 {
			s.Add(i)
		}
		for i := 0; i < n; i++ {
			if got, want := s.Contains(i), i%7 == 0; got != want {
				t.Fatalf("n=%d: Contains(%d)=%v, want %v", n, i, got, want)
			}
		}
		want := (n + 6) / 7
		if s.Count() != want {
			t.Fatalf("n=%d: Count=%d, want %d", n, s.Count(), want)
		}
		for i := 0; i < n; i += 7 {
			s.Remove(i)
		}
		if s.Count() != 0 {
			t.Fatalf("n=%d: Count=%d after removing all", n, s.Count())
		}
	}
}

func TestTailInvariant(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 127, 129} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("n=%d: Fill gives Count=%d", n, s.Count())
		}
		words := s.Words()
		if rem := n & 63; rem != 0 {
			if hi := words[len(words)-1] >> uint(rem); hi != 0 {
				t.Fatalf("n=%d: tail bits set: %#x", n, hi)
			}
		}
		s.Clear()
		for _, w := range words {
			if w != 0 {
				t.Fatalf("n=%d: Clear left word %#x", n, w)
			}
		}
	}
}

func TestFromBoolsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		bs := make([]bool, n)
		for i := range bs {
			bs[i] = rng.Intn(2) == 0
		}
		s := FromBools(bs)
		got := s.Bools()
		for i := range bs {
			if got[i] != bs[i] {
				t.Fatalf("trial %d: round-trip mismatch at %d", trial, i)
			}
		}
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(200)
	want := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	members := s.Members(nil)
	for k := range want {
		if members[k] != want[k] {
			t.Fatalf("Members = %v, want %v", members, want)
		}
	}
}

func TestEqualCloneCopy(t *testing.T) {
	a := New(100)
	a.Add(3)
	a.Add(77)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(50)
	if a.Equal(b) {
		t.Fatal("clone shares storage with original")
	}
	c := New(100)
	c.CopyFrom(b)
	if !c.Equal(b) {
		t.Fatal("CopyFrom mismatch")
	}
	if a.Equal(New(101)) {
		t.Fatal("sets of different lengths compare equal")
	}
}

func TestIsZero(t *testing.T) {
	var zero Set
	if !zero.IsZero() {
		t.Fatal("zero Set not IsZero")
	}
	if New(0).IsZero() {
		t.Fatal("New(0) reported IsZero")
	}
	if New(5).IsZero() {
		t.Fatal("New(5) reported IsZero")
	}
}

func TestFromWords(t *testing.T) {
	words := make([]uint64, WordsFor(70))
	s := FromWords(70, words)
	s.Add(69)
	if words[1] != 1<<5 {
		t.Fatalf("FromWords does not alias caller storage: %#x", words[1])
	}
	if !s.Contains(69) {
		t.Fatal("Contains(69) false after Add")
	}
}
