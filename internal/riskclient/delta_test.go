package riskclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestParseRetryAfter pins both header forms RFC 9110 allows and the
// fall-back-to-backoff cases.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		h    string
		want int
	}{
		{"absent", "", 0},
		{"delta seconds", "7", 7},
		{"delta with spaces", "  42  ", 42},
		{"zero delta", "0", 0},
		{"negative delta", "-3", 0},
		{"garbage", "soon", 0},
		{"http date future", now.Add(30 * time.Second).Format(http.TimeFormat), 30},
		{"http date past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"http date now", now.Format(http.TimeFormat), 0},
		{"ansi c date", now.Add(90 * time.Second).Format(time.ANSIC), 90},
		{"rfc 850 date", now.Add(10 * time.Second).Format(time.RFC850), 10},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.h, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %d, want %d", tc.name, tc.h, got, tc.want)
		}
	}
	// HTTP-dates carry whole seconds, so a fractional wait can only arise
	// from a sub-second clock: 30.5s until the date must round UP to 31.
	h := now.Add(31 * time.Second).Format(http.TimeFormat)
	if got := parseRetryAfter(h, now.Add(500*time.Millisecond)); got != 31 {
		t.Errorf("sub-second wait: parseRetryAfter = %d, want 31 (rounded up)", got)
	}
}

// TestRetryAfterHTTPDateHonored is satellite (b)'s end-to-end check: a 503
// whose Retry-After is an HTTP-date (a proxy rewrote riskd's delta-seconds)
// must drive the wait, exactly like the seconds form.
func TestRetryAfterHTTPDateHonored(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s := newScript(t, 503, 200)
	s.headers = []http.Header{{"Retry-After": []string{now.Add(9 * time.Second).Format(http.TimeFormat)}}, nil}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c, slept := newTestClient(t, ts, func(cfg *Config) {
		cfg.Now = func() time.Time { return now }
	})

	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 9*time.Second {
		t.Errorf("slept %v, want exactly the 9s HTTP-date hint", *slept)
	}
	if st := c.Stats(); st.RetryAfterHonored != 1 {
		t.Errorf("stats = %+v, want the date hint counted as honored", st)
	}
}

// TestRetryAfterHTTPDateClamped: the 60s clamp applies to dates too.
func TestRetryAfterHTTPDateClamped(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s := newScript(t, 503, 200)
	s.headers = []http.Header{{"Retry-After": []string{now.Add(2 * time.Hour).Format(http.TimeFormat)}}, nil}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c, slept := newTestClient(t, ts, func(cfg *Config) {
		cfg.Now = func() time.Time { return now }
	})

	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != maxRetryAfterHonored {
		t.Errorf("slept %v, want the %v clamp", *slept, maxRetryAfterHonored)
	}
}

func deltaReq() *server.DeltaRequest {
	return &server.DeltaRequest{
		BaseDigest: "abc123",
		Diff:       server.DiffSpec{Items: []int{0}, Deltas: []int{1}},
	}
}

// TestAssessDeltaRetriesAndDecodes drives the delta endpoint through the
// shared retry machinery: transient 5xx retried, response decoded with its
// delta-specific fields, idempotency key stable across attempts.
func TestAssessDeltaRetriesAndDecodes(t *testing.T) {
	var hits atomic.Int64
	keys := make(chan string, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/assess/delta" {
			t.Errorf("delta call hit %s", r.URL.Path)
		}
		keys <- r.Header.Get("Idempotency-Key")
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte(`{"error": "transient"}`))
			return
		}
		w.Write([]byte(`{"cached": false, "key": "k", "digest": "d2", "base_digest": "abc123",
			"incremental": true, "elapsed_ms": 1, "mode": "recipe", "method": "stub", "degraded": false}`))
	}))
	defer ts.Close()
	c, slept := newTestClient(t, ts, nil)

	resp, err := c.AssessDelta(context.Background(), deltaReq())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Incremental || resp.Digest != "d2" || resp.BaseDigest != "abc123" {
		t.Errorf("decoded delta response %+v", resp)
	}
	if hits.Load() != 2 || len(*slept) != 1 {
		t.Errorf("hits=%d slept=%v, want one retry", hits.Load(), *slept)
	}
	first := <-keys
	if first == "" {
		t.Fatal("no Idempotency-Key on delta request")
	}
	if second := <-keys; second != first {
		t.Error("delta retry changed the idempotency key")
	}
}

// TestAssessDelta404IsFinal: a base-miss must not be retried — the server
// told us to fall back to a full assessment.
func TestAssessDelta404IsFinal(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error": "base digest unknown"}`))
	}))
	defer ts.Close()
	c, slept := newTestClient(t, ts, nil)

	_, err := c.AssessDelta(context.Background(), deltaReq())
	var herr *HTTPError
	if !errors.As(err, &herr) || herr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want HTTP 404", err)
	}
	if hits.Load() != 1 || len(*slept) != 0 {
		t.Errorf("404 retried: hits=%d slept=%v", hits.Load(), *slept)
	}
	// The server answered; the breaker must stay closed.
	if st := c.Stats(); st.ConsecutiveFailures != 0 {
		t.Errorf("404 counted as breaker failure: %+v", st)
	}
}

// TestSubscribeEndToEnd runs the whole loop against a real riskd: assess,
// subscribe, delta, pushed verdict, drain, ErrServerDraining.
func TestSubscribeEndToEnd(t *testing.T) {
	srv := server.New(server.Config{KeepAlive: 20 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, _ := newTestClient(t, ts, nil)
	ctx := context.Background()

	base, err := c.Assess(ctx, &server.AssessRequest{
		Dataset: server.DatasetRef{Transactions: 24, Counts: []int{1, 3, 5, 7, 9, 11, 2, 4, 6, 8}},
		Runs:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Digest == "" {
		t.Fatal("assess response carries no digest")
	}

	sub, err := c.Subscribe(ctx, base.Digest, &SubscribeOptions{Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	initial, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if initial.Digest != base.Digest || initial.Recipe == nil {
		t.Fatalf("initial verdict %+v, want digest %s with recipe outcome", initial, base.Digest)
	}

	dres, err := c.AssessDelta(ctx, &server.DeltaRequest{
		BaseDigest: base.Digest,
		Diff:       server.DiffSpec{DTransactions: 1, Items: []int{0}, Deltas: []int{2}},
		Runs:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dres.Incremental {
		t.Error("real-pipeline delta: want incremental")
	}
	pushed, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if pushed.Digest != dres.Digest || pushed.BaseDigest != base.Digest {
		t.Errorf("pushed verdict chain %s->%s, want %s->%s",
			pushed.BaseDigest, pushed.Digest, base.Digest, dres.Digest)
	}

	srv.BeginDrain()
	if _, err := sub.Next(); !errors.Is(err, ErrServerDraining) {
		t.Errorf("after drain: err = %v, want ErrServerDraining", err)
	}
	// A draining server also refuses fresh subscriptions with a 503.
	_, err = c.Subscribe(ctx, base.Digest, nil)
	var herr *HTTPError
	if !errors.As(err, &herr) || herr.Status != http.StatusServiceUnavailable {
		t.Errorf("subscribe while draining: err = %v, want HTTP 503", err)
	}
}
