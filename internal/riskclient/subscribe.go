// SSE verdict subscriptions: the client side of riskd's
// GET /v1/assess/subscribe. A Subscription is a long-lived stream, so it
// deliberately bypasses the retry/backoff machinery — reconnect policy
// belongs to the caller, who knows whether a dropped watch matters — and
// does not consume breaker budget (the breaker protects request/response
// calls; a stream that dies reports it through Next and stays dead).
package riskclient

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/server"
)

// ErrServerDraining reports a stream closed by the server's terminal
// shutdown event: riskd flipped /readyz to 503 and is draining. The client
// should reconnect elsewhere (or to the same address after the restart), not
// treat the close as a failure.
var ErrServerDraining = errors.New("riskclient: server draining")

// SubscribeOptions selects the recipe options of the verdicts the stream's
// initial event carries; nil fields take the server defaults. They mirror
// the option fields of server.AssessRequest.
type SubscribeOptions struct {
	Tau       *float64
	Runs      int
	Seed      *int64
	Comfort   float64
	Propagate *bool
}

// Subscription is a live verdict stream. Not safe for concurrent Next calls.
type Subscription struct {
	body io.ReadCloser
	br   *bufio.Reader
}

// Subscribe opens a verdict stream for a table digest (from a previous
// assessment's response). The returned Subscription's first Next is the
// current verdict; later Nexts deliver fresh verdicts as deltas evolve the
// watched table, following the digest chain. ctx bounds the whole stream:
// canceling it unblocks Next with the context error.
func (c *Client) Subscribe(ctx context.Context, digest string, opts *SubscribeOptions) (*Subscription, error) {
	q := url.Values{"digest": {digest}}
	if opts != nil {
		if opts.Tau != nil {
			q.Set("tau", strconv.FormatFloat(*opts.Tau, 'g', -1, 64))
		}
		if opts.Runs > 0 {
			q.Set("runs", strconv.Itoa(opts.Runs))
		}
		if opts.Seed != nil {
			q.Set("seed", strconv.FormatInt(*opts.Seed, 10))
		}
		if opts.Comfort > 0 {
			q.Set("comfort", strconv.FormatFloat(opts.Comfort, 'g', -1, 64))
		}
		if opts.Propagate != nil {
			q.Set("propagate", strconv.FormatBool(*opts.Propagate))
		}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/assess/subscribe?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<16))
		hresp.Body.Close()
		return nil, &HTTPError{
			Status:     hresp.StatusCode,
			Body:       string(raw),
			RetryAfter: parseRetryAfter(hresp.Header.Get("Retry-After"), c.cfg.Now()),
		}
	}
	return &Subscription{body: hresp.Body, br: bufio.NewReader(hresp.Body)}, nil
}

// Next blocks for the next verdict. It returns ErrServerDraining when the
// server sent its terminal shutdown event, io.EOF (or the subscribe
// context's error) when the stream ended without one.
func (sub *Subscription) Next() (*server.DeltaResponse, error) {
	for {
		name, data, err := sub.readEvent()
		if err != nil {
			return nil, err
		}
		switch name {
		case "verdict":
			var v server.DeltaResponse
			if err := json.Unmarshal([]byte(data), &v); err != nil {
				return nil, fmt.Errorf("riskclient: decoding verdict event: %w", err)
			}
			return &v, nil
		case "shutdown":
			return nil, ErrServerDraining
		}
		// Unknown event names are skipped for forward compatibility.
	}
}

// readEvent parses one Server-Sent Event, skipping keep-alive comments.
func (sub *Subscription) readEvent() (name, data string, err error) {
	for {
		line, err := sub.br.ReadString('\n')
		if err != nil {
			return "", "", err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, ":"): // comment / keep-alive
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "":
			if name != "" || data != "" {
				return name, data, nil
			}
		}
	}
}

// Close tears the stream down. Safe after any Next error.
func (sub *Subscription) Close() error { return sub.body.Close() }
