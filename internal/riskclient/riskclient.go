// Package riskclient is the production-grade client for riskd
// (internal/server): the transport a coordinator will use to talk to worker
// shards, and the reference implementation of how any caller should treat
// an assessment service that is allowed to fail.
//
// Three mechanisms compose, in request order:
//
//   - A consecutive-failure circuit breaker. After Threshold transport-level
//     or 5xx failures in a row the breaker opens and calls fail immediately
//     with ErrCircuitOpen — no socket is touched, so a dead peer costs
//     microseconds instead of timeouts. After Cooldown one half-open probe
//     is let through; its success closes the breaker, its failure re-opens
//     it for another cooldown.
//   - Budget-aware retries with exponential backoff and full jitter.
//     Transport errors and 5xx responses retry up to MaxAttempts; the delay
//     before attempt k is uniform in [0, min(MaxBackoff, BaseBackoff·2^k)),
//     which decorrelates a thundering herd of retrying clients. A 503's
//     Retry-After header overrides the computed backoff — the server derives
//     it from its observed compute latency (EWMA), so honoring it waits
//     exactly as long as the server thinks recovery takes. All waiting is
//     bounded by the caller's context. 4xx responses never retry: the
//     request itself is wrong, and repeating it cannot help.
//   - Idempotency keyed on content. Assessments are pure functions of their
//     request, so a retry is always safe; the client derives an
//     Idempotency-Key from the canonical request body (the same digest
//     discipline as the server's cache key) and sends the identical body
//     each attempt, letting the server's content-addressed cache collapse
//     duplicate deliveries into one computation.
//
// Jitter comes from a seeded source so tests and the chaos suite replay the
// exact retry timeline; production callers pick any seed (the jitter only
// needs to differ *across* clients, not to be unpredictable).
//
// Backoff is exported for other subsystems: the riskvet retrysleep rule
// bans naked time.Sleep retry loops everywhere outside this package, and
// this is the helper it points offenders to.
package riskclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/riskcache"
	"repro/internal/server"
)

// ErrCircuitOpen reports a call rejected without touching the network
// because the breaker is open (or another probe holds the half-open slot).
var ErrCircuitOpen = errors.New("riskclient: circuit breaker open")

// HTTPError is a non-2xx response that was not retried away: a 4xx, or the
// last 5xx once attempts ran out.
type HTTPError struct {
	Status     int
	Body       string
	RetryAfter int // seconds, from the Retry-After header; 0 if absent
}

func (e *HTTPError) Error() string {
	body := e.Body
	if len(body) > 200 {
		body = body[:200] + "..."
	}
	return fmt.Sprintf("riskclient: HTTP %d: %s", e.Status, strings.TrimSpace(body))
}

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// Closed: requests flow; consecutive failures are being counted.
	Closed BreakerState = iota
	// Open: requests fail fast until the cooldown elapses.
	Open
	// HalfOpen: one probe is in flight deciding the breaker's fate.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Config tunes a Client. The zero value of every field gets a sensible
// default from New.
type Config struct {
	// BaseURL is the riskd root, e.g. "http://127.0.0.1:8321". Required.
	BaseURL string
	// HTTPClient performs the round trips. Default: a plain &http.Client{}.
	// Wrap its Transport with faultinject.Transport to chaos-test a caller.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call (first + retries). Default 4.
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule. Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps a computed backoff delay. Default 5s. A server
	// Retry-After hint may exceed it (capped at maxRetryAfterHonored).
	MaxBackoff time.Duration
	// Threshold is the consecutive-failure count that opens the breaker.
	// Default 5.
	Threshold int
	// Cooldown is how long the breaker stays open before a half-open
	// probe. Default 5s.
	Cooldown time.Duration
	// Seed drives the jitter stream. Default 1 — deterministic on purpose;
	// give each production client a distinct seed.
	Seed int64
	// Sleep waits between attempts; tests substitute a recorder. The
	// default waits on a timer, returning early with the context's error.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now supplies the clock for cooldown arithmetic; tests substitute a
	// fake. Default time.Now.
	Now func() time.Time
}

// maxRetryAfterHonored caps how long a server Retry-After hint can make the
// client wait; anything longer is treated as this. Matches the server-side
// clamp so the two ends agree on the ceiling.
const maxRetryAfterHonored = 60 * time.Second

// Stats is a point-in-time snapshot of the client's counters.
type Stats struct {
	// Calls counts Assess invocations; Attempts the HTTP tries under them.
	Calls    int64 `json:"calls"`
	Attempts int64 `json:"attempts"`
	// Retries counts attempts after the first.
	Retries int64 `json:"retries"`
	// Successes / Failures tally call outcomes; ShortCircuits are calls
	// rejected by the open breaker (a subset of Failures).
	Successes     int64 `json:"successes"`
	Failures      int64 `json:"failures"`
	ShortCircuits int64 `json:"short_circuits"`
	// RetryAfterHonored counts waits taken from a server hint instead of
	// the backoff schedule.
	RetryAfterHonored int64 `json:"retry_after_honored"`
	// BreakerOpens counts closed/half-open → open transitions.
	BreakerOpens int64  `json:"breaker_opens"`
	BreakerState string `json:"breaker_state"`
	// ConsecutiveFailures is the breaker's current failure streak.
	ConsecutiveFailures int `json:"consecutive_failures"`
}

// Client is a resilient riskd client. Construct with New; safe for
// concurrent use.
type Client struct {
	cfg  Config
	base string

	mu       sync.Mutex
	rng      *rand.Rand
	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool

	calls, attempts, retries       int64
	successes, failures, shorted   int64
	retryAfterHonored, breakerOpen int64
}

// New builds a Client, applying Config defaults.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("riskclient: Config.BaseURL is required")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = ctxSleep
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Client{
		cfg:  cfg,
		base: strings.TrimRight(cfg.BaseURL, "/"),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Backoff returns the delay before retry attempt (0-based: attempt 0 is the
// wait after the first failure): uniform in [0, min(max, base·2^attempt)),
// the "full jitter" schedule. Decorrelated random delays spread synchronized
// retry storms; this helper is the sanctioned alternative to naked
// time.Sleep retry loops (riskvet's retrysleep rule).
func Backoff(rng *rand.Rand, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	ceil := base
	for i := 0; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	if ceil <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(ceil)))
}

// Assess submits one assessment, retrying transient failures within ctx and
// the breaker's consent. On a 2xx it returns the decoded response; a 4xx or
// a final non-retryable failure returns *HTTPError; breaker rejections
// return ErrCircuitOpen.
func (c *Client) Assess(ctx context.Context, req *server.AssessRequest) (*server.AssessResponse, error) {
	var out server.AssessResponse
	if err := c.do(ctx, "/v1/assess", "assess", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AssessDelta submits an incremental assessment for an evolved release: the
// base table's digest (from a previous response) plus a sparse counts diff.
// Retry, breaker, and idempotency semantics match Assess — a delta is the
// same pure function of its request, just cheaper for the server. A 404
// means the server no longer holds the base table; the caller falls back to
// a full Assess with the evolved counts.
func (c *Client) AssessDelta(ctx context.Context, req *server.DeltaRequest) (*server.DeltaResponse, error) {
	var out server.DeltaResponse
	if err := c.do(ctx, "/v1/assess/delta", "assess-delta", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do runs the shared retry/breaker loop for one POST endpoint, decoding a
// 2xx body into out.
func (c *Client) do(ctx context.Context, path, kind string, req any, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("riskclient: encoding request: %w", err)
	}
	// Content-derived idempotency key: identical across retries, identical
	// across clients sending the same logical request. kind keeps the assess
	// and delta keyspaces disjoint even for byte-identical bodies.
	idemKey := riskcache.Key(kind, string(body))

	c.mu.Lock()
	c.calls++
	c.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			c.recordCallFailure()
			return err
		}
		probe, err := c.allow()
		if err != nil {
			c.mu.Lock()
			c.shorted++
			c.failures++
			c.mu.Unlock()
			return err
		}

		retryable, err := c.attempt(ctx, path, body, idemKey, out)
		c.settle(probe, err == nil || isClientError(err))
		if err == nil {
			c.mu.Lock()
			c.successes++
			c.mu.Unlock()
			return nil
		}
		lastErr = err
		if !retryable {
			c.recordCallFailure()
			return err
		}
		if attempt == c.cfg.MaxAttempts-1 {
			break
		}
		delay := c.nextDelay(attempt, err)
		if err := c.cfg.Sleep(ctx, delay); err != nil {
			c.recordCallFailure()
			return err
		}
		c.mu.Lock()
		c.retries++
		c.mu.Unlock()
	}
	c.recordCallFailure()
	return fmt.Errorf("riskclient: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// Ready probes GET /readyz. nil means the server is accepting work; an
// *HTTPError with status 503 means it is draining.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return &HTTPError{Status: resp.StatusCode, Body: string(raw)}
	}
	return nil
}

// attempt performs one HTTP try against path, decoding a 2xx into out.
// retryable classifies the failure; client errors (4xx) and decode failures
// are final.
func (c *Client) attempt(ctx context.Context, path string, body []byte, idemKey string, out any) (retryable bool, err error) {
	c.mu.Lock()
	c.attempts++
	c.mu.Unlock()

	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Idempotency-Key", idemKey)

	hresp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return true, err // transport-level: the peer may be back next try
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 32<<20))
	if err != nil {
		return true, err
	}
	if hresp.StatusCode/100 == 2 {
		if err := json.Unmarshal(raw, out); err != nil {
			return false, fmt.Errorf("riskclient: decoding response: %w", err)
		}
		return false, nil
	}
	herr := &HTTPError{
		Status:     hresp.StatusCode,
		Body:       string(raw),
		RetryAfter: parseRetryAfter(hresp.Header.Get("Retry-After"), c.cfg.Now()),
	}
	// 5xx (including 503 + Retry-After) is the server struggling: retry.
	// 4xx is this request being wrong: final.
	return hresp.StatusCode >= 500, herr
}

// parseRetryAfter reads a Retry-After header value in either form RFC 9110
// §10.2.3 allows: a non-negative integer delay in seconds, or an HTTP-date
// (riskd sends delta-seconds; proxies and other servers may rewrite it to a
// date). A date is converted to whole seconds from now, rounded up so a
// 500ms hint still waits rather than retrying immediately. Returns 0 —
// meaning "no usable hint, use the backoff schedule" — for absent values,
// garbage, and dates in the past.
func parseRetryAfter(h string, now time.Time) int {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if sec, err := strconv.Atoi(h); err == nil {
		if sec > 0 {
			return sec
		}
		return 0
	}
	when, err := http.ParseTime(h)
	if err != nil {
		return 0
	}
	until := when.Sub(now)
	if until <= 0 {
		return 0
	}
	return int((until + time.Second - 1) / time.Second)
}

// nextDelay picks the wait before the next attempt: the server's Retry-After
// hint when the failure carried one (clamped to maxRetryAfterHonored),
// otherwise the jittered exponential schedule.
func (c *Client) nextDelay(attempt int, err error) time.Duration {
	var herr *HTTPError
	if errors.As(err, &herr) && herr.RetryAfter > 0 {
		d := time.Duration(herr.RetryAfter) * time.Second
		if d > maxRetryAfterHonored {
			d = maxRetryAfterHonored
		}
		c.mu.Lock()
		c.retryAfterHonored++
		c.mu.Unlock()
		return d
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Backoff(c.rng, attempt, c.cfg.BaseBackoff, c.cfg.MaxBackoff)
}

func isClientError(err error) bool {
	var herr *HTTPError
	return errors.As(err, &herr) && herr.Status >= 400 && herr.Status < 500
}

// allow asks the breaker whether an attempt may proceed. probe reports that
// this attempt is the half-open probe whose outcome settles the breaker.
func (c *Client) allow() (probe bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case Closed:
		return false, nil
	case Open:
		if c.cfg.Now().Sub(c.openedAt) < c.cfg.Cooldown {
			return false, ErrCircuitOpen
		}
		c.state = HalfOpen
		c.probing = true
		return true, nil
	case HalfOpen:
		if c.probing {
			return false, ErrCircuitOpen
		}
		c.probing = true
		return true, nil
	}
	return false, nil
}

// settle reports an attempt's outcome to the breaker. ok covers successes
// and 4xx responses — the server answered, so the path is healthy even if
// this request was rejected.
func (c *Client) settle(probe, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if probe {
		c.probing = false
		if ok {
			c.state = Closed
			c.fails = 0
		} else {
			c.state = Open
			c.openedAt = c.cfg.Now()
			c.breakerOpen++
		}
		return
	}
	if ok {
		c.fails = 0
		return
	}
	c.fails++
	if c.state == Closed && c.fails >= c.cfg.Threshold {
		c.state = Open
		c.openedAt = c.cfg.Now()
		c.breakerOpen++
	}
}

func (c *Client) recordCallFailure() {
	c.mu.Lock()
	c.failures++
	c.mu.Unlock()
}

// State returns the breaker's current position (cooldown expiry is only
// observed by the next call, so an idle open breaker reports Open even
// after the cooldown).
func (c *Client) State() BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Stats snapshots the counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Calls:               c.calls,
		Attempts:            c.attempts,
		Retries:             c.retries,
		Successes:           c.successes,
		Failures:            c.failures,
		ShortCircuits:       c.shorted,
		RetryAfterHonored:   c.retryAfterHonored,
		BreakerOpens:        c.breakerOpen,
		BreakerState:        c.state.String(),
		ConsecutiveFailures: c.fails,
	}
}
