package riskclient

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

// scriptServer answers /v1/assess from a queue of canned statuses; 200s
// carry a minimal valid AssessResponse. It records hits and the
// Idempotency-Key of every attempt.
type scriptServer struct {
	t        *testing.T
	statuses []int
	headers  []http.Header // optional per-status extra headers
	hits     atomic.Int64
	keys     chan string
}

func newScript(t *testing.T, statuses ...int) *scriptServer {
	return &scriptServer{t: t, statuses: statuses, keys: make(chan string, 64)}
}

func (s *scriptServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(s.hits.Add(1)) - 1
		s.keys <- r.Header.Get("Idempotency-Key")
		status := http.StatusOK
		if n < len(s.statuses) {
			status = s.statuses[n]
		}
		if s.headers != nil && n < len(s.headers) && s.headers[n] != nil {
			for k, vs := range s.headers[n] {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
		}
		w.WriteHeader(status)
		if status == http.StatusOK {
			w.Write([]byte(`{"cached": false, "key": "k", "elapsed_ms": 1, "mode": "recipe", "method": "stub", "degraded": false}`))
		} else {
			w.Write([]byte(`{"error": "scripted failure"}`))
		}
	})
}

// newTestClient builds a client against ts with fast defaults and a sleep
// recorder; returns the client and the recorded delays.
func newTestClient(t *testing.T, ts *httptest.Server, mut func(*Config)) (*Client, *[]time.Duration) {
	t.Helper()
	var slept []time.Duration
	cfg := Config{
		BaseURL:     ts.URL,
		HTTPClient:  ts.Client(),
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Threshold:   3,
		Cooldown:    time.Minute,
		Seed:        42,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, &slept
}

func assessReq() *server.AssessRequest {
	return &server.AssessRequest{
		Dataset: server.DatasetRef{Transactions: 10, Counts: []int{1, 2, 3}},
	}
}

func TestSuccessFirstAttempt(t *testing.T) {
	s := newScript(t)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c, slept := newTestClient(t, ts, nil)

	resp, err := c.Assess(context.Background(), assessReq())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Method != "stub" {
		t.Errorf("method %q", resp.Method)
	}
	if len(*slept) != 0 {
		t.Errorf("slept %v on a clean call", *slept)
	}
	st := c.Stats()
	if st.Calls != 1 || st.Attempts != 1 || st.Retries != 0 || st.Successes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	s := newScript(t, 500, 502, 200)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c, slept := newTestClient(t, ts, nil)

	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Fatal(err)
	}
	if got := s.hits.Load(); got != 3 {
		t.Errorf("server hit %d times, want 3", got)
	}
	if len(*slept) != 2 {
		t.Errorf("slept %d times, want 2 (between the 3 attempts)", len(*slept))
	}
	for i, d := range *slept {
		if d < 0 || d >= 80*time.Millisecond {
			t.Errorf("delay %d = %v outside [0, MaxBackoff)", i, d)
		}
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Successes != 1 || st.Failures != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAttemptsExhausted(t *testing.T) {
	s := newScript(t, 500, 500, 500, 500, 500)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c, _ := newTestClient(t, ts, func(cfg *Config) { cfg.Threshold = 100 })

	_, err := c.Assess(context.Background(), assessReq())
	var herr *HTTPError
	if !errors.As(err, &herr) || herr.Status != 500 {
		t.Fatalf("err = %v, want wrapped HTTP 500", err)
	}
	if got := s.hits.Load(); got != 4 {
		t.Errorf("server hit %d times, want MaxAttempts=4", got)
	}
	if st := c.Stats(); st.Failures != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func Test4xxIsFinal(t *testing.T) {
	s := newScript(t, 400)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c, slept := newTestClient(t, ts, nil)

	_, err := c.Assess(context.Background(), assessReq())
	var herr *HTTPError
	if !errors.As(err, &herr) || herr.Status != 400 {
		t.Fatalf("err = %v, want HTTP 400", err)
	}
	if s.hits.Load() != 1 || len(*slept) != 0 {
		t.Errorf("4xx retried: hits=%d slept=%v", s.hits.Load(), *slept)
	}
	// A 4xx means the server answered: the breaker must not count it.
	if st := c.Stats(); st.ConsecutiveFailures != 0 {
		t.Errorf("4xx counted as breaker failure: %+v", st)
	}
}

func TestRetryAfterHonored(t *testing.T) {
	s := newScript(t, 503, 200)
	s.headers = []http.Header{{"Retry-After": []string{"7"}}, nil}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c, slept := newTestClient(t, ts, nil)

	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 7*time.Second {
		t.Errorf("slept %v, want exactly the 7s Retry-After hint", *slept)
	}
	if st := c.Stats(); st.RetryAfterHonored != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRetryAfterClamped(t *testing.T) {
	s := newScript(t, 503, 200)
	s.headers = []http.Header{{"Retry-After": []string{"3600"}}, nil}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c, slept := newTestClient(t, ts, nil)

	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != maxRetryAfterHonored {
		t.Errorf("slept %v, want the %v clamp", *slept, maxRetryAfterHonored)
	}
}

func TestIdempotencyKeyStableAcrossRetries(t *testing.T) {
	s := newScript(t, 500, 500, 200)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c, _ := newTestClient(t, ts, nil)

	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Fatal(err)
	}
	first := <-s.keys
	if first == "" {
		t.Fatal("no Idempotency-Key header sent")
	}
	for i := 0; i < 2; i++ {
		if k := <-s.keys; k != first {
			t.Errorf("retry %d changed the idempotency key: %s vs %s", i+1, k, first)
		}
	}

	// A different request must get a different key.
	other := assessReq()
	other.Seed = new(int64)
	*other.Seed = 99
	if _, err := c.Assess(context.Background(), other); err != nil {
		t.Fatal(err)
	}
	if k := <-s.keys; k == first {
		t.Error("distinct requests share an idempotency key")
	}
}

func TestBreakerOpensAtThresholdAndShortCircuits(t *testing.T) {
	s := newScript(t, 500, 500, 500, 500, 500, 500, 500, 500)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	// MaxAttempts 1 so each call is exactly one attempt: threshold 3 must
	// open the breaker on the third call's failure.
	c, _ := newTestClient(t, ts, func(cfg *Config) { cfg.MaxAttempts = 1 })

	for i := 0; i < 3; i++ {
		if _, err := c.Assess(context.Background(), assessReq()); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
		wantState := Closed
		if i == 2 {
			wantState = Open
		}
		if got := c.State(); got != wantState {
			t.Fatalf("after failure %d: breaker %v, want %v", i+1, got, wantState)
		}
	}
	hitsAtOpen := s.hits.Load()
	if hitsAtOpen != 3 {
		t.Fatalf("server hit %d times before open, want 3", hitsAtOpen)
	}

	_, err := c.Assess(context.Background(), assessReq())
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("call while open: err = %v, want ErrCircuitOpen", err)
	}
	if s.hits.Load() != hitsAtOpen {
		t.Error("open breaker still let a request through")
	}
	st := c.Stats()
	if st.BreakerOpens != 1 || st.ShortCircuits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBreakerHalfOpenProbeClosesOnSuccess(t *testing.T) {
	s := newScript(t, 500, 500, 500, 200, 200)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	now := time.Unix(1000, 0)
	c, _ := newTestClient(t, ts, func(cfg *Config) {
		cfg.MaxAttempts = 1
		cfg.Cooldown = 10 * time.Second
		cfg.Now = func() time.Time { return now }
	})

	for i := 0; i < 3; i++ {
		c.Assess(context.Background(), assessReq())
	}
	if c.State() != Open {
		t.Fatalf("breaker %v after threshold failures, want open", c.State())
	}

	// Before the cooldown: still short-circuiting.
	now = now.Add(5 * time.Second)
	if _, err := c.Assess(context.Background(), assessReq()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("pre-cooldown call: %v, want ErrCircuitOpen", err)
	}

	// After the cooldown: the probe goes through and closes the breaker.
	now = now.Add(6 * time.Second)
	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if c.State() != Closed {
		t.Errorf("breaker %v after successful probe, want closed", c.State())
	}
	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Errorf("post-close call failed: %v", err)
	}
}

func TestBreakerHalfOpenProbeReopensOnFailure(t *testing.T) {
	s := newScript(t, 500, 500, 500, 500, 200)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	now := time.Unix(1000, 0)
	c, _ := newTestClient(t, ts, func(cfg *Config) {
		cfg.MaxAttempts = 1
		cfg.Cooldown = 10 * time.Second
		cfg.Now = func() time.Time { return now }
	})

	for i := 0; i < 3; i++ {
		c.Assess(context.Background(), assessReq())
	}
	now = now.Add(11 * time.Second)
	if _, err := c.Assess(context.Background(), assessReq()); err == nil {
		t.Fatal("failing probe unexpectedly succeeded")
	}
	if c.State() != Open {
		t.Fatalf("breaker %v after failed probe, want open again", c.State())
	}
	if st := c.Stats(); st.BreakerOpens != 2 {
		t.Errorf("BreakerOpens = %d, want 2", st.BreakerOpens)
	}

	// The fresh cooldown starts at the failed probe.
	now = now.Add(5 * time.Second)
	if _, err := c.Assess(context.Background(), assessReq()); !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("re-opened breaker let a call through early: %v", err)
	}
	now = now.Add(6 * time.Second)
	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Errorf("second probe (healthy server) failed: %v", err)
	}
	if c.State() != Closed {
		t.Errorf("breaker %v, want closed", c.State())
	}
}

func TestTransportFaultsRetryViaInjector(t *testing.T) {
	s := newScript(t)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	inj := faultinject.New(1, faultinject.Rule{Op: "transport", Nth: 1, Err: true})
	c, slept := newTestClient(t, ts, func(cfg *Config) {
		cfg.HTTPClient = &http.Client{
			Transport: faultinject.Transport(ts.Client().Transport, inj, "transport"),
		}
	})
	if _, err := c.Assess(context.Background(), assessReq()); err != nil {
		t.Fatalf("call with one injected transport fault failed: %v", err)
	}
	if len(*slept) != 1 {
		t.Errorf("slept %d times, want 1 retry after the injected fault", len(*slept))
	}
	if s.hits.Load() != 1 {
		t.Errorf("server hit %d times, want 1 (fault fired before the wire)", s.hits.Load())
	}
}

func TestContextCancelStopsRetrying(t *testing.T) {
	s := newScript(t, 500, 500, 500, 500)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c, _ := newTestClient(t, ts, func(cfg *Config) {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			cancel() // the world ends mid-backoff
			return ctx.Err()
		}
	})
	_, err := c.Assess(ctx, assessReq())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.hits.Load() != 1 {
		t.Errorf("server hit %d times after cancellation, want 1", s.hits.Load())
	}
}

func TestBackoffSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, max := 100*time.Millisecond, 2*time.Second
	seen := make([]time.Duration, 0, 512)
	for attempt := 0; attempt < 8; attempt++ {
		ceil := base << attempt
		if ceil > max {
			ceil = max
		}
		for i := 0; i < 64; i++ {
			d := Backoff(rng, attempt, base, max)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, ceil)
			}
			seen = append(seen, d)
		}
	}
	var sum time.Duration
	for _, d := range seen {
		sum += d
	}
	if sum == 0 {
		t.Error("all delays were zero; jitter is not jittering")
	}

	// Determinism: same seed, same schedule.
	a, b := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 32; i++ {
		if Backoff(a, i%6, base, max) != Backoff(b, i%6, base, max) {
			t.Fatal("same-seed backoff sequences diverged")
		}
	}
}

func TestReady(t *testing.T) {
	draining := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		if draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, nil)

	if err := c.Ready(context.Background()); err != nil {
		t.Errorf("ready server reported not ready: %v", err)
	}
	draining.Store(true)
	err := c.Ready(context.Background())
	var herr *HTTPError
	if !errors.As(err, &herr) || herr.Status != http.StatusServiceUnavailable {
		t.Errorf("draining server: err = %v, want HTTP 503", err)
	}
}
