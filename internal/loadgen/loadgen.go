// Package loadgen replays deterministic traffic mixes against a live riskd
// and reports latency percentiles and throughput. Each mix is a pure
// function of (seed, request count): the same inputs generate byte-identical
// request streams, summarized by a workload digest, so two benchmark runs on
// the same build are comparing identical work.
//
// The four mixes cover the serving regimes that matter operationally:
//
//   - hot_digest: one release assessed over and over — after the cold first
//     request everything is a content-addressed cache hit (or coalesces onto
//     an in-flight duplicate). Measures the O(1) fast path.
//   - cold_digest: every request is a distinct release — no request ever
//     hits the cache. Measures full-pipeline compute latency.
//   - delta: one base release evolved through a digest-chained sequence of
//     sparse diffs via /v1/assess/delta. Measures the incremental path.
//     Chained on the previous response's digest, so this mix is sequential.
//   - degraded: large releases under a deliberately tight per-request
//     timeout_ms, forcing the budget to expire and a cheaper tier (or a 503
//     with Retry-After when even the floor cannot run) to answer. Measures
//     behavior at saturation.
package loadgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
)

// Mix names, in canonical report order.
const (
	MixHot      = "hot_digest"
	MixCold     = "cold_digest"
	MixDelta    = "delta"
	MixDegraded = "degraded"
)

// Mixes lists every mix in canonical order.
var Mixes = []string{MixHot, MixCold, MixDelta, MixDegraded}

// Config drives one Run.
type Config struct {
	// BaseURL roots the target service, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// Mix selects the traffic shape: one of Mixes.
	Mix string
	// Requests is the stream length (default 50). For the delta mix this
	// counts the base assess plus Requests-1 chained diffs.
	Requests int
	// Concurrency is the number of in-flight requests (default 1). The
	// delta mix is digest-chained and always runs sequentially.
	Concurrency int
	// Seed parameterizes the deterministic request stream.
	Seed int64
	// Client optionally overrides the HTTP client (tests inject one with a
	// short timeout).
	Client *http.Client
}

// Result summarizes one replayed mix. Latency percentiles are nearest-rank
// over every answered request (200s and budget 503s both answered; only
// transport failures are excluded and counted as Errors).
type Result struct {
	Mix         string `json:"mix"`
	Seed        int64  `json:"seed"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`

	// WorkloadDigest fingerprints the deterministic request stream: equal
	// digests mean two runs replayed byte-identical work.
	WorkloadDigest string `json:"workload_digest"`

	// Outcome counters. Cached+Coalesced are the hot path; Degraded counts
	// 200s whose budget expired mid-cascade; Throttled counts 503s where
	// even the floor could not run; Incremental counts delta responses
	// served from a warm session patch.
	Answered    int `json:"answered"`
	Errors      int `json:"errors"`
	Cached      int `json:"cached"`
	Coalesced   int `json:"coalesced"`
	Degraded    int `json:"degraded"`
	Throttled   int `json:"throttled"`
	Incremental int `json:"incremental"`
	// ErrorSample holds the first transport error, for diagnosis.
	ErrorSample string `json:"error_sample,omitempty"`

	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`
	WallMS        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// planned is one request in a mix's deterministic stream. Exactly one field
// is set. A delta's BaseDigest is left empty at plan time (it depends on the
// previous response) and injected at send time; the workload digest covers
// the plan as generated, so it stays a pure function of (seed, mix, count).
type planned struct {
	Assess *server.AssessRequest `json:"assess,omitempty"`
	Delta  *server.DeltaRequest  `json:"delta,omitempty"`
}

// stream is splitmix64 over a seed folded from tagged parts — the
// deterministic generator behind every mix payload.
type stream struct{ s uint64 }

func newStream(parts ...uint64) *stream {
	st := &stream{}
	for _, p := range parts {
		st.s = (st.s ^ p) * 0x9e3779b97f4a7c15
		st.next()
	}
	return st
}

func (st *stream) next() uint64 {
	st.s += 0x9e3779b97f4a7c15
	z := st.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [1, n].
func (st *stream) intn(n int) int { return 1 + int(st.next()%uint64(n)) }

// mixTag gives each mix its own stream domain so hot and cold never share
// payloads even under the same seed.
func mixTag(mix string) uint64 {
	h := sha256.Sum256([]byte(mix))
	var t uint64
	for i := 0; i < 8; i++ {
		t = t<<8 | uint64(h[i])
	}
	return t
}

// smallDataset builds a cheap but non-trivial release (the recipe reaches
// the α search): nItems supports over 3×nItems transactions.
func smallDataset(st *stream, nItems int) server.DatasetRef {
	m := 3 * nItems
	counts := make([]int, nItems)
	for i := range counts {
		counts[i] = st.intn(m)
	}
	return server.DatasetRef{Transactions: m, Counts: counts}
}

// buildPlan generates the deterministic request stream for one mix.
func buildPlan(mix string, seed int64, requests int) ([]planned, error) {
	plan := make([]planned, 0, requests)
	tag := mixTag(mix)
	switch mix {
	case MixHot:
		// One release, repeated: request 0 is the cold fill, the rest hit
		// the cache (or coalesce under concurrency).
		st := newStream(tag, uint64(seed))
		ds := smallDataset(st, 40)
		for i := 0; i < requests; i++ {
			plan = append(plan, planned{Assess: &server.AssessRequest{Dataset: ds}})
		}
	case MixCold:
		// A distinct release per request: the cache never hits.
		for i := 0; i < requests; i++ {
			st := newStream(tag, uint64(seed), uint64(i))
			plan = append(plan, planned{Assess: &server.AssessRequest{Dataset: smallDataset(st, 40)}})
		}
	case MixDelta:
		// One base release, then a chain of sparse diffs. Deltas are
		// positive and DTransactions grows by 1 per step, so every evolved
		// table stays valid.
		st := newStream(tag, uint64(seed))
		base := smallDataset(st, 40)
		plan = append(plan, planned{Assess: &server.AssessRequest{Dataset: base}})
		for i := 1; i < requests; i++ {
			item := st.intn(len(base.Counts)) - 1
			plan = append(plan, planned{Delta: &server.DeltaRequest{
				Diff: server.DiffSpec{
					DTransactions: 1,
					Items:         []int{item},
					Deltas:        []int{st.intn(2)},
				},
			}})
		}
	case MixDegraded:
		// Distinct large releases under a tight budget: the recipe cannot
		// finish its preferred tiers in 5ms at this size, so responses come
		// back degraded (or 503-throttled when even the floor cannot run).
		for i := 0; i < requests; i++ {
			st := newStream(tag, uint64(seed), uint64(i))
			ds := smallDataset(st, 2500)
			plan = append(plan, planned{Assess: &server.AssessRequest{Dataset: ds, TimeoutMS: 5}})
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown mix %q (want one of %v)", mix, Mixes)
	}
	return plan, nil
}

// planDigest fingerprints the request stream. Delta BaseDigests are empty at
// plan time, so the digest depends only on (mix, seed, requests).
func planDigest(mix string, plan []planned) (string, error) {
	h := sha256.New()
	io.WriteString(h, mix)
	enc := json.NewEncoder(h)
	for i := range plan {
		if err := enc.Encode(&plan[i]); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:32], nil
}

// outcome is the per-request record a worker fills in.
type outcome struct {
	latencyMS   float64
	answered    bool
	cached      bool
	coalesced   bool
	degraded    bool
	throttled   bool
	incremental bool
	err         error
}

// Run replays one mix against cfg.BaseURL and aggregates the outcomes.
// Transport failures are recorded, not returned: Run errors only on invalid
// configuration.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 50
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 1
	}
	if cfg.Mix == MixDelta {
		conc = 1 // digest-chained: each diff needs the previous response
	}
	plan, err := buildPlan(cfg.Mix, cfg.Seed, cfg.Requests)
	if err != nil {
		return nil, err
	}
	digest, err := planDigest(cfg.Mix, plan)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}

	outcomes := make([]outcome, len(plan))
	start := time.Now()
	if conc == 1 {
		baseDigest := ""
		for i := range plan {
			if ctx.Err() != nil {
				break
			}
			baseDigest = sendOne(ctx, client, cfg.BaseURL, &plan[i], baseDigest, &outcomes[i])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					sendOne(ctx, client, cfg.BaseURL, &plan[i], "", &outcomes[i])
				}
			}()
		}
		for i := range plan {
			if ctx.Err() != nil {
				break
			}
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	wall := time.Since(start)

	res := &Result{
		Mix:            cfg.Mix,
		Seed:           cfg.Seed,
		Requests:       len(plan),
		Concurrency:    conc,
		WorkloadDigest: digest,
		WallMS:         float64(wall) / float64(time.Millisecond),
	}
	var lats []float64
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			res.Errors++
			if res.ErrorSample == "" {
				res.ErrorSample = o.err.Error()
			}
			continue
		}
		if !o.answered {
			continue // canceled before send
		}
		res.Answered++
		lats = append(lats, o.latencyMS)
		if o.cached {
			res.Cached++
		}
		if o.coalesced {
			res.Coalesced++
		}
		if o.degraded {
			res.Degraded++
		}
		if o.throttled {
			res.Throttled++
		}
		if o.incremental {
			res.Incremental++
		}
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		res.P50MS = percentile(lats, 0.50)
		res.P99MS = percentile(lats, 0.99)
		res.MaxMS = lats[len(lats)-1]
	}
	if wall > 0 {
		res.ThroughputRPS = float64(res.Answered) / wall.Seconds()
	}
	return res, nil
}

// percentile is nearest-rank over a sorted slice.
func percentile(sorted []float64, q float64) float64 {
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// sendOne issues one planned request, fills in the outcome, and returns the
// digest the next chained delta should build on (the response digest on
// success, the incoming baseDigest otherwise).
func sendOne(ctx context.Context, client *http.Client, baseURL string, p *planned, baseDigest string, o *outcome) string {
	var path string
	var body any
	switch {
	case p.Assess != nil:
		path, body = "/v1/assess", p.Assess
	case p.Delta != nil:
		d := *p.Delta // shallow copy: don't bake the digest into the plan
		d.BaseDigest = baseDigest
		path, body = "/v1/assess/delta", &d
	default:
		o.err = fmt.Errorf("loadgen: empty planned request")
		return baseDigest
	}
	raw, err := json.Marshal(body)
	if err != nil {
		o.err = err
		return baseDigest
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, bytes.NewReader(raw))
	if err != nil {
		o.err = err
		return baseDigest
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(req)
	o.latencyMS = float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		o.err = err
		return baseDigest
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		o.err = err
		return baseDigest
	}
	o.answered = true
	if resp.StatusCode == http.StatusServiceUnavailable {
		// The budget could not run even the floor: an answered throttle
		// with a Retry-After hint, not a transport failure.
		o.throttled = true
		return baseDigest
	}
	if resp.StatusCode != http.StatusOK {
		o.answered = false
		o.err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
		return baseDigest
	}
	var dr server.DeltaResponse // superset of AssessResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		o.answered = false
		o.err = err
		return baseDigest
	}
	o.cached = dr.Cached
	o.coalesced = dr.Coalesced
	o.incremental = dr.Incremental
	if dr.Outcome != nil {
		o.degraded = dr.Outcome.Degraded
	}
	if dr.Digest != "" {
		return dr.Digest
	}
	return baseDigest
}
