package loadgen

// Contract tests for the load generator: every mix replays cleanly against
// an in-process riskd, the workload digest is a pure function of
// (mix, seed, requests), and each mix produces the serving regime it is
// named for (hot hits the cache, cold never does, delta chains
// incrementally, degraded trips the budget).

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

func benchServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func runMix(t *testing.T, ts *httptest.Server, mix string, requests, conc int, seed int64) *Result {
	t.Helper()
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Mix:         mix,
		Requests:    requests,
		Concurrency: conc,
		Seed:        seed,
		Client:      &http.Client{Timeout: time.Minute},
	})
	if err != nil {
		t.Fatalf("%s: %v", mix, err)
	}
	if res.Errors > 0 {
		t.Fatalf("%s: %d transport errors (first: %s)", mix, res.Errors, res.ErrorSample)
	}
	if res.Answered != res.Requests {
		t.Fatalf("%s: answered %d of %d", mix, res.Answered, res.Requests)
	}
	return res
}

func TestHotMixHitsCache(t *testing.T) {
	ts := benchServer(t)
	res := runMix(t, ts, MixHot, 8, 1, 7)
	// Sequential: request 0 is the cold fill, every repeat is a cache hit.
	if res.Cached != res.Requests-1 {
		t.Errorf("hot mix: %d cached of %d, want %d", res.Cached, res.Requests, res.Requests-1)
	}
	if res.P50MS <= 0 || res.P99MS < res.P50MS || res.ThroughputRPS <= 0 {
		t.Errorf("hot mix: implausible stats %+v", res)
	}
}

func TestColdMixNeverHitsCache(t *testing.T) {
	ts := benchServer(t)
	res := runMix(t, ts, MixCold, 6, 2, 7)
	if res.Cached != 0 || res.Coalesced != 0 {
		t.Errorf("cold mix: %d cached, %d coalesced, want 0/0", res.Cached, res.Coalesced)
	}
}

func TestDeltaMixChainsIncrementally(t *testing.T) {
	ts := benchServer(t)
	res := runMix(t, ts, MixDelta, 6, 4, 7) // concurrency is forced to 1
	if res.Concurrency != 1 {
		t.Errorf("delta mix ran at concurrency %d, want 1 (digest-chained)", res.Concurrency)
	}
	if res.Incremental == 0 {
		t.Errorf("delta mix: no incremental responses in %d requests", res.Requests)
	}
}

func TestDegradedMixTripsBudget(t *testing.T) {
	ts := benchServer(t)
	res := runMix(t, ts, MixDegraded, 4, 1, 7)
	if res.Degraded+res.Throttled == 0 {
		t.Errorf("degraded mix: no degraded or throttled responses in %d requests", res.Requests)
	}
}

// TestWorkloadDigestReproducible pins the reproducibility contract: the same
// (mix, seed, requests) triple always replays the same workload, different
// seeds replay different ones, and no two mixes share a digest.
func TestWorkloadDigestReproducible(t *testing.T) {
	seen := map[string]string{}
	for _, mix := range Mixes {
		plan1, err := buildPlan(mix, 7, 5)
		if err != nil {
			t.Fatal(err)
		}
		plan2, err := buildPlan(mix, 7, 5)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := planDigest(mix, plan1)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := planDigest(mix, plan2)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Errorf("%s: same (seed, requests) gave digests %s and %s", mix, d1, d2)
		}
		other, err := buildPlan(mix, 8, 5)
		if err != nil {
			t.Fatal(err)
		}
		dOther, err := planDigest(mix, other)
		if err != nil {
			t.Fatal(err)
		}
		if dOther == d1 {
			t.Errorf("%s: seeds 7 and 8 share workload digest %s", mix, d1)
		}
		if prev, dup := seen[d1]; dup {
			t.Errorf("mixes %s and %s share workload digest %s", prev, mix, d1)
		}
		seen[d1] = mix
	}
}

// TestRunDigestMatchesPlan checks Run reports the digest of the plan it
// actually replayed.
func TestRunDigestMatchesPlan(t *testing.T) {
	ts := benchServer(t)
	res := runMix(t, ts, MixHot, 3, 1, 11)
	plan, err := buildPlan(MixHot, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := planDigest(MixHot, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkloadDigest != want {
		t.Errorf("Run digest %s, plan digest %s", res.WorkloadDigest, want)
	}
}

func TestUnknownMixRejected(t *testing.T) {
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mix: "warm"}); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
