package recipe

// Recipe-level lemma oracle and the worker-count determinism contract: the
// α sweep at full compliancy must reproduce the closed-form chain O-estimate,
// and every sweep must be bit-identical at any worker count for a fixed seed.

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/belief"
	"repro/internal/core"
	"repro/internal/parallel"
)

// TestCurveFullComplianceMatchesChainOE: at α = 1 every run's compliant set is
// the whole domain, so the averaged sweep collapses to the plain O-estimate,
// which on chain shapes has the §5.2 closed form.
func TestCurveFullComplianceMatchesChainOE(t *testing.T) {
	specs := []core.ChainSpec{
		core.Figure4aChain(),
		{GroupSizes: []int{4, 6, 4}, Exclusive: []int{2, 3, 2}, Shared: []int{3, 4}},
	}
	for _, spec := range specs {
		counts := make([]int, len(spec.GroupSizes))
		for i := range counts {
			counts[i] = 10 + 25*i
		}
		ft, bf, err := spec.Realize(100, counts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := spec.OEstimate()
		if err != nil {
			t.Fatal(err)
		}
		search, err := NewAlphaSearch(ft, bf, 3, false, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		curve, err := search.Curve([]float64{1})
		if err != nil {
			t.Fatal(err)
		}
		got := curve[0] * float64(ft.NItems)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%+v: Curve(1)·n = %v, closed-form OE = %v", spec, got, want)
		}
		at, err := search.OEAt(1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(at-want) > 1e-9 {
			t.Errorf("%+v: OEAt(1) = %v, closed-form OE = %v", spec, at, want)
		}
	}
}

// curveAt evaluates a fixed-seed compliancy sweep at the given worker count.
func curveAt(t *testing.T, workers int) []float64 {
	t.Helper()
	ft := mustTable(t, 60, []int{2, 2, 7, 7, 7, 12, 18, 18, 25, 25, 33, 33, 33, 42, 51})
	bf := belief.UniformWidth(ft.Frequencies(), 0.06)
	search, err := NewAlphaSearch(ft, bf, 4, true, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := parallel.WithWorkers(context.Background(), workers)
	curve, err := search.CurveCtx(ctx, []float64{0, 0.2, 0.4, 0.6, 0.8, 1})
	if err != nil {
		t.Fatal(err)
	}
	return curve
}

func TestCurveBitIdenticalAcrossWorkerCounts(t *testing.T) {
	ref := curveAt(t, 1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := curveAt(t, workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d: curve[%d] = %v differs from serial %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// assessAt runs the full recipe at the given worker count.
func assessAt(t *testing.T, workers int) *Result {
	t.Helper()
	ft := mustTable(t, 60, []int{2, 2, 7, 7, 7, 12, 18, 18, 25, 25, 33, 33, 33, 42, 51})
	ctx := parallel.WithWorkers(context.Background(), workers)
	res, err := AssessRiskCtx(ctx, ft, Options{
		Tolerance: 0.15,
		Propagate: true,
		Rng:       rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAssessRiskBitIdenticalAcrossWorkerCounts(t *testing.T) {
	ref := assessAt(t, 1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := assessAt(t, workers)
		if got.Disclose != ref.Disclose || got.Stage != ref.Stage ||
			got.AlphaMax != ref.AlphaMax || got.OEFull != ref.OEFull {
			t.Errorf("workers=%d: result (%v, %v, %v, %v) differs from serial (%v, %v, %v, %v)",
				workers, got.Disclose, got.Stage, got.AlphaMax, got.OEFull,
				ref.Disclose, ref.Stage, ref.AlphaMax, ref.OEFull)
		}
		if got.Workers != workers {
			t.Errorf("result records %d workers, want %d", got.Workers, workers)
		}
	}
}

func TestResultRecordsTiming(t *testing.T) {
	res := assessAt(t, 1)
	if res.Wall <= 0 {
		t.Errorf("Result.Wall = %v, want > 0", res.Wall)
	}
	// CPU is 0 only on platforms without rusage; on unix it must move.
	if parallel.CPUTime() > 0 && res.CPU < 0 {
		t.Errorf("Result.CPU = %v, want >= 0", res.CPU)
	}
}
