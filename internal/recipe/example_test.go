package recipe_test

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/recipe"
)

// Assess-Risk on a database whose items all share one frequency: the
// point-valued worst case (one expected crack) is already within a 25%
// tolerance, so the recipe stops at step 2.
func ExampleAssessRisk() {
	counts := []int{7, 7, 7, 7, 7}
	ft, _ := dataset.NewTable(20, counts)
	res, _ := recipe.AssessRisk(ft, recipe.Options{
		Tolerance: 0.25,
		Rng:       rand.New(rand.NewSource(1)),
	})
	fmt.Printf("disclose=%v stage=%d groups=%d\n", res.Disclose, res.Stage, res.Groups)
	// Output:
	// disclose=true stage=1 groups=1
}
