// Provenance serialization: the JSON-stable projection of a Result that the
// experiment registry threads into run manifests. Degradation facts (which
// method decided, whether a budget forced a conservative answer) become
// first-class diffable records there — a PR that silently flips a benchmark
// from the closed-form O-estimate to the degraded α-search shows up in
// `experiments diff` even when the rendered cells happen to agree.
package recipe

// Method names the decision tier a Result came from, mirroring the
// anonrisk.Method convention for attack reports.
const (
	// MethodWorstCase: the Lemma 3 point-valued worst case settled it.
	MethodWorstCase = "worst-case"
	// MethodOEstimate: the δ_med compliant-interval O-estimate settled it.
	MethodOEstimate = "oestimate"
	// MethodAlphaSearch: the sampled binary search on α produced α_max.
	MethodAlphaSearch = "alpha-search"
)

// Provenance is the serializable evidence trail of one Assess-Risk call.
// Field names are frozen: they are stored in registry manifests and compared
// across git revisions, so renaming one would make every historical run look
// changed. wall_ms, cpu_ms, and workers are treated as volatile by the
// registry's diff — they vary between byte-identical runs.
type Provenance struct {
	Stage          int     `json:"stage"`
	Method         string  `json:"method"`
	Disclose       bool    `json:"disclose"`
	Degraded       bool    `json:"degraded"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	AlphaMax       float64 `json:"alpha_max"`
	OEFull         float64 `json:"oe_full"`
	DeltaMed       float64 `json:"delta_med"`
	Tolerance      float64 `json:"tolerance"`
	Workers        int     `json:"workers"`
	WallMS         int64   `json:"wall_ms"`
	CPUMS          int64   `json:"cpu_ms"`
}

// Provenance projects the Result onto its serializable form.
func (r *Result) Provenance() Provenance {
	method := ""
	switch r.Stage {
	case StagePointValued:
		method = MethodWorstCase
	case StageCompliantInterval:
		method = MethodOEstimate
	case StageAlphaSearch:
		method = MethodAlphaSearch
	}
	return Provenance{
		Stage:          int(r.Stage),
		Method:         method,
		Disclose:       r.Disclose,
		Degraded:       r.Degraded,
		DegradedReason: r.DegradedReason,
		AlphaMax:       r.AlphaMax,
		OEFull:         r.OEFull,
		DeltaMed:       r.DeltaMed,
		Tolerance:      r.Tolerance,
		Workers:        r.Workers,
		WallMS:         r.Wall.Milliseconds(),
		CPUMS:          r.CPU.Milliseconds(),
	}
}
