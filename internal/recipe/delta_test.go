package recipe

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

func randomSessionTable(rng *rand.Rand) *dataset.FrequencyTable {
	n := 3 + rng.Intn(12)
	m := 6 + rng.Intn(30)
	counts := make([]int, n)
	for x := range counts {
		counts[x] = rng.Intn(m + 1)
	}
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		panic(err)
	}
	return ft
}

func randomSessionDiff(rng *rand.Rand, ft *dataset.FrequencyTable) *dataset.CountsDiff {
	d := &dataset.CountsDiff{}
	if rng.Intn(2) == 0 {
		d.DTransactions = 1 + rng.Intn(5)
	}
	newM := ft.NTransactions + d.DTransactions
	k := 1 + rng.Intn(ft.NItems)
	for x := 0; x < ft.NItems && len(d.Items) < k; x++ {
		if rng.Intn(2) == 1 {
			continue
		}
		c := rng.Intn(newM + 1)
		if c == ft.Counts[x] {
			c = (c + 1) % (newM + 1)
		}
		d.Items = append(d.Items, x)
		d.Deltas = append(d.Deltas, c-ft.Counts[x])
	}
	return d
}

// stripVolatile zeroes the provenance fields that legitimately differ
// between two runs of the same assessment (wall/CPU time); everything else
// must match bit-for-bit.
func stripVolatile(r *Result) Result {
	c := *r
	c.Wall, c.CPU = 0, 0
	return c
}

// TestDeltaSessionMatchesFullAssess is the end-to-end delta-equivalence
// property of ISSUE 8: across ≥200 random (table, diff-chain) pairs, the
// incremental path — ApplyDiff + ApplyDiffGrouping + Rebin + restricted
// O-estimate + cached orders — produces a Result byte-identical (every
// float compared with ==, no tolerance) to AssessRiskCtx on a freshly built
// table with the same counts, options, and seed, and the session's digest
// equals the rebuilt table's digest. Run at one worker and at GOMAXPROCS so
// the parallel α sweep is covered at both extremes.
func TestDeltaSessionMatchesFullAssess(t *testing.T) {
	workerCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workerCounts = append(workerCounts, p)
	} else {
		workerCounts = append(workerCounts, 4)
	}
	for _, workers := range workerCounts {
		ctx := parallel.WithWorkers(context.Background(), workers)
		rng := rand.New(rand.NewSource(71))
		for trial := 0; trial < 200; trial++ {
			ft := randomSessionTable(rng)
			seed := rng.Int63()
			opts := Options{
				Tolerance:    0.05 + rng.Float64()*0.4,
				Runs:         1 + rng.Intn(4),
				AlphaComfort: 0.2 + rng.Float64()*0.6,
				Propagate:    rng.Intn(4) == 0,
			}
			sess, err := NewDeltaSessionCtx(ctx, ft, seed, opts)
			if err != nil {
				t.Fatalf("workers=%d trial %d: NewDeltaSessionCtx: %v", workers, trial, err)
			}
			steps := 1 + rng.Intn(3)
			current := ft.Clone()
			for step := 0; step < steps; step++ {
				d := randomSessionDiff(rng, current)
				got, err := sess.ApplyDiffCtx(ctx, d)
				if err != nil {
					t.Fatalf("workers=%d trial %d step %d: ApplyDiffCtx: %v", workers, trial, step, err)
				}
				if err := current.ApplyDiff(d); err != nil {
					t.Fatalf("workers=%d trial %d step %d: reference ApplyDiff: %v", workers, trial, step, err)
				}
				fresh, err := dataset.NewTable(current.NTransactions, current.Counts)
				if err != nil {
					t.Fatal(err)
				}
				fopts := opts
				fopts.Rng = rand.New(rand.NewSource(seed))
				want, err := AssessRiskCtx(ctx, fresh, fopts)
				if err != nil {
					t.Fatalf("workers=%d trial %d step %d: AssessRiskCtx: %v", workers, trial, step, err)
				}
				if !reflect.DeepEqual(stripVolatile(got), stripVolatile(want)) {
					t.Fatalf("workers=%d trial %d step %d: results diverged\n got %+v\nwant %+v\ndiff %+v",
						workers, trial, step, stripVolatile(got), stripVolatile(want), d)
				}
				if sess.Digest() != fresh.Digest() {
					t.Fatalf("workers=%d trial %d step %d: session digest %s != rebuilt digest %s",
						workers, trial, step, sess.Digest(), fresh.Digest())
				}
				if sess.Result() != got {
					t.Fatalf("workers=%d trial %d step %d: Result() does not return the last verdict",
						workers, trial, step)
				}
			}
		}
	}
}

// TestDeltaSessionRejectsInvalidDiffIntact pins that a rejected diff leaves
// the session usable and its verdict unchanged.
func TestDeltaSessionRejectsInvalidDiffIntact(t *testing.T) {
	ctx := context.Background()
	ft, err := dataset.NewTable(10, []int{1, 3, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewDeltaSessionCtx(ctx, ft, 3, Options{Tolerance: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	before, err := sess.AssessCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bad := &dataset.CountsDiff{Items: []int{0}, Deltas: []int{-5}} // drives count negative
	if _, err := sess.ApplyDiffCtx(ctx, bad); err == nil {
		t.Fatal("invalid diff accepted")
	}
	if sess.Broken() {
		t.Fatal("validation failure must not break the session")
	}
	after, err := sess.AssessCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripVolatile(before), stripVolatile(after)) {
		t.Fatal("verdict moved after rejected diff")
	}
}

// TestDeltaSessionHealsAfterBudgetError pins that an assessment aborted by a
// canceled context leaves the session consistent: the next assessment on a
// fresh context matches a full recompute.
func TestDeltaSessionHealsAfterBudgetError(t *testing.T) {
	ctx := context.Background()
	ft, err := dataset.NewTable(20, []int{2, 5, 5, 9, 11, 14, 17, 17, 19, 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Tolerance: 0.1, Runs: 2}
	sess, err := NewDeltaSessionCtx(ctx, ft, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := &dataset.CountsDiff{DTransactions: 1, Items: []int{0, 3}, Deltas: []int{3, -2}}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := sess.ApplyDiffCtx(canceled, d); err == nil {
		t.Fatal("canceled context: want error")
	}
	if sess.Broken() {
		t.Fatal("assessment error must not break the session")
	}
	got, err := sess.AssessCtx(ctx)
	if err != nil {
		t.Fatalf("AssessCtx after cancellation: %v", err)
	}
	applied := ft.Clone()
	if err := applied.ApplyDiff(d); err != nil {
		t.Fatal(err)
	}
	fopts := opts
	fopts.Rng = rand.New(rand.NewSource(5))
	want, err := AssessRiskCtx(ctx, applied, fopts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripVolatile(got), stripVolatile(want)) {
		t.Fatalf("healed session diverged\n got %+v\nwant %+v", stripVolatile(got), stripVolatile(want))
	}
}

// TestDeltaSessionFasterPathSmoke is a cheap sanity check (not a benchmark)
// that repeated small diffs on a large table stay responsive through the
// session — it guards against an accidental O(full rebuild) regression
// hiding behind the equivalence property.
func TestDeltaSessionFasterPathSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke")
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	n, m := 4000, 100000
	counts := make([]int, n)
	for x := range counts {
		counts[x] = rng.Intn(m + 1)
	}
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewDeltaSessionCtx(ctx, ft, 11, Options{Tolerance: 0.05, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AssessCtx(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	table := ft.Clone()
	for i := 0; i < 20; i++ {
		d := &dataset.CountsDiff{Items: []int{i * 7}, Deltas: []int{1}}
		if table.Counts[i*7] >= m {
			d.Deltas[0] = -1
		}
		if err := table.ApplyDiff(d); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.ApplyDiffCtx(ctx, d); err != nil {
			t.Fatalf("diff %d: %v", i, err)
		}
	}
	t.Logf("20 single-item diffs on n=%d in %v", n, time.Since(start))
}
