// Package recipe implements the decision procedures the paper hands the data
// owner: Algorithm Assess-Risk (Section 6, Figure 8), which decides whether
// anonymized data is safe to disclose under a crack tolerance τ, and
// Similarity-by-Sampling (Section 7.4, Figure 13), which calibrates how much
// compliancy a hacker could plausibly reach from "similar data".
package recipe

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/parallel"
)

// Options configures Assess-Risk.
type Options struct {
	// Tolerance is τ: the fraction of items the owner can tolerate being
	// cracked. Required, in (0, 1).
	Tolerance float64
	// Runs is the number of random compliant subsets averaged per α level
	// (Section 6.2; the paper uses 5). Default 5.
	Runs int
	// AlphaPrecision is the width at which the binary search on α stops.
	// Default 1/64.
	AlphaPrecision float64
	// Propagate applies degree-1 propagation inside the O-estimates.
	Propagate bool
	// AlphaComfort is the α_max level at or above which the final verdict is
	// "disclose": the owner judges it unlikely that a hacker guesses the
	// frequency intervals of that fraction of the domain (the paper discusses
	// 0.8 as comfortable and 0.2 as alarming). Default 0.5.
	AlphaComfort float64
	// Rng drives the random compliant subsets. Required.
	Rng *rand.Rand
}

func (o Options) withDefaults() (Options, error) {
	if o.Tolerance <= 0 || o.Tolerance >= 1 {
		return o, fmt.Errorf("recipe: tolerance %v outside (0,1)", o.Tolerance)
	}
	if o.Rng == nil {
		return o, fmt.Errorf("recipe: Options.Rng is required")
	}
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.AlphaPrecision <= 0 {
		o.AlphaPrecision = 1.0 / 64
	}
	if o.AlphaComfort <= 0 {
		o.AlphaComfort = 0.5
	}
	return o, nil
}

// Stage identifies which step of Figure 8 settled the decision.
type Stage int

const (
	// StagePointValued: the Lemma 3 worst case already fits the tolerance
	// (steps 1-2).
	StagePointValued Stage = iota + 1
	// StageCompliantInterval: the δ_med compliant-interval O-estimate fits
	// the tolerance (steps 3-7).
	StageCompliantInterval
	// StageAlphaSearch: the binary search on α produced α_max and the
	// verdict compares it against the comfort level (steps 8-10).
	StageAlphaSearch
)

func (s Stage) String() string {
	switch s {
	case StagePointValued:
		return "point-valued worst case within tolerance"
	case StageCompliantInterval:
		return "compliant-interval O-estimate within tolerance"
	case StageAlphaSearch:
		return "alpha binary search"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Result reports the full evidence trail of Assess-Risk.
type Result struct {
	Disclose bool  // the recipe's verdict
	Stage    Stage // which step decided

	Items     int     // n
	Groups    int     // g, the Lemma 3 expected cracks
	DeltaMed  float64 // δ_med, the interval half-width used
	OEFull    float64 // O-estimate at full compliance (step 6)
	AlphaMax  float64 // largest α within tolerance (1 when earlier stages decide)
	Tolerance float64 // τ echoed back

	// Degraded marks that the work budget ran out mid-way through the α
	// binary search. AlphaMax is then the largest α *proven* within
	// tolerance so far — a conservative lower bound — and the verdict is
	// taken against it, erring toward "withhold". DegradedReason records
	// which budget was exhausted.
	Degraded       bool
	DegradedReason string

	// Provenance of the parallel engine: how many workers the sweep was
	// allowed (parallel.Workers of the assessment context), and the wall and
	// cumulative process CPU time the assessment took. Wall shrinks with
	// workers on multi-core hardware while CPU stays roughly flat; CPU is 0
	// on platforms without rusage.
	Workers int
	Wall    time.Duration
	CPU     time.Duration
}

// FractionPointValued returns g/n, the worst-case crack fraction.
func (r *Result) FractionPointValued() float64 { return float64(r.Groups) / float64(r.Items) }

// FractionOEFull returns OEFull/n.
func (r *Result) FractionOEFull() float64 { return r.OEFull / float64(r.Items) }

// AssessRisk executes Algorithm Assess-Risk (Figure 8) on the frequency
// table of the database under assessment.
func AssessRisk(ft *dataset.FrequencyTable, opts Options) (*Result, error) {
	return AssessRiskCtx(context.Background(), ft, opts)
}

// AssessRiskCtx is AssessRisk under a work budget. The cheap early stages
// (Lemma 3 worst case, one O-estimate) run to completion or error; the α
// binary search — the only stage whose cost is a multiple of the domain
// size — degrades gracefully: when the budget runs out mid-search the
// result carries the largest α proven within tolerance so far, Degraded is
// set, and the verdict is taken conservatively against that lower bound.
func AssessRiskCtx(ctx context.Context, ft *dataset.FrequencyTable, opts Options) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	gr := dataset.GroupItems(ft)
	// The δ_med belief function and its consistency graph are built once,
	// lazily, and shared between the step-6 O-estimate and the step-8 α
	// search — Build is deterministic, so reusing the graph is bit-identical
	// to the historical rebuild-per-evaluation and removes the dominant
	// per-evaluation cost of the binary search.
	var (
		bf *belief.Function
		g  *bipartite.Graph
	)
	oeFull := func(ctx context.Context) (float64, error) {
		bf = belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
		var err error
		if g, err = bipartite.Build(bf, gr); err != nil {
			return 0, err
		}
		oe, err := core.OEstimateGraphCtx(ctx, g, core.OEOptions{Propagate: opts.Propagate})
		if err != nil {
			return 0, err
		}
		return oe.Value, nil
	}
	search := func(context.Context) (*AlphaSearch, error) {
		return newAlphaSearchGraph(ft, g, opts.Runs, opts.Propagate, false, opts.Rng)
	}
	return assessStaged(ctx, ft.NItems, opts, gr, oeFull, search)
}

// assessStaged is the staged decision logic of Figure 8, shared verbatim by
// the full path (AssessRiskCtx) and the incremental path (DeltaSession) so
// the two can never drift: the expensive stages arrive as lazy evaluators
// and everything else — short circuits, degradation, provenance — lives
// here once. oeFull is only called when steps 1-2 do not settle the verdict,
// and search only when step 7 does not.
func assessStaged(ctx context.Context, n int, opts Options, gr *dataset.Grouping,
	oeFull func(context.Context) (float64, error),
	search func(context.Context) (*AlphaSearch, error)) (*Result, error) {
	crackBudget := opts.Tolerance * float64(n)
	res := &Result{
		Items:     n,
		Groups:    gr.NumGroups(),
		Tolerance: opts.Tolerance,
		AlphaMax:  1,
		Workers:   parallel.Workers(ctx),
	}
	startWall, startCPU := time.Now(), parallel.CPUTime() //lint:allow detrand timing provenance only; Wall/CPU are excluded from determinism comparisons
	defer func() {
		res.Wall = time.Since(startWall) //lint:allow detrand timing provenance only; Wall/CPU are excluded from determinism comparisons
		if startCPU > 0 {
			res.CPU = parallel.CPUTime() - startCPU
		}
	}()

	// Steps 1-2: compliant point-valued worst case (Lemma 3).
	if core.ExpectedCracksPointValued(gr) <= crackBudget {
		res.Disclose = true
		res.Stage = StagePointValued
		return res, nil
	}

	// Steps 3-6: compliant interval belief function with width δ_med.
	res.DeltaMed = gr.MedianGap()
	v, err := oeFull(ctx)
	if err != nil {
		return nil, err
	}
	res.OEFull = v

	// Step 7.
	if res.OEFull <= crackBudget {
		res.Disclose = true
		res.Stage = StageCompliantInterval
		return res, nil
	}

	// Steps 8-9: binary search for α_max. Each run r holds a fixed random
	// item order; the compliant set at level α is the order's first ⌈αn⌉
	// items, so the sets are nested across α exactly as Lemma 10's
	// monotonicity requires (Section 6.2).
	s, err := search(ctx)
	if err != nil {
		return nil, err
	}
	res.Stage = StageAlphaSearch
	res.AlphaMax, err = s.MaxAlphaWithinCtx(ctx, crackBudget, opts.AlphaPrecision)
	if budget.Degradable(err) {
		res.Degraded = true
		res.DegradedReason = err.Error()
	} else if err != nil {
		return nil, err
	}
	res.Disclose = res.AlphaMax >= opts.AlphaComfort
	return res, nil
}

// AlphaSearch evaluates averaged α-compliant O-estimates over nested
// compliant subsets, supporting both the recipe's binary search and the α
// sweep of Figure 11.
type AlphaSearch struct {
	ft        *dataset.FrequencyTable
	g         *bipartite.Graph // δ_med consistency graph, shared by all evaluations
	orders    [][]int          // one item order per run; level α keeps the first ⌈αn⌉
	propagate bool
}

// NewAlphaSearch prepares `runs` independent uniformly random item orders
// over the domain of ft, using the compliant belief function bf. This is the
// paper's Section 6.2 subset model: which items the hacker guesses right is
// uniform.
func NewAlphaSearch(ft *dataset.FrequencyTable, bf *belief.Function, runs int, propagate bool, rng *rand.Rand) (*AlphaSearch, error) {
	return newAlphaSearch(ft, bf, runs, propagate, false, rng)
}

// NewAlphaSearchBiased is the ablation variant where the hacker's wrong
// guesses land preferentially on the *distinctive* items — those with the
// highest crack contribution 1/O_x — so the O-estimate decays super-linearly
// as α falls. The paper's Figure 11 curves for PUMSB and ACCIDENTS are
// super-linear, which uniform subsets cannot produce (OE is then linear in α
// in expectation); this variant quantifies how much that modelling choice
// matters (see EXPERIMENTS.md).
func NewAlphaSearchBiased(ft *dataset.FrequencyTable, bf *belief.Function, runs int, propagate bool, rng *rand.Rand) (*AlphaSearch, error) {
	return newAlphaSearch(ft, bf, runs, propagate, true, rng)
}

func newAlphaSearch(ft *dataset.FrequencyTable, bf *belief.Function, runs int, propagate, biased bool, rng *rand.Rand) (*AlphaSearch, error) {
	if bf.Items() != ft.NItems {
		return nil, fmt.Errorf("recipe: belief domain %d != table domain %d", bf.Items(), ft.NItems)
	}
	g, err := bipartite.Build(bf, dataset.GroupItems(ft))
	if err != nil {
		return nil, err
	}
	return newAlphaSearchGraph(ft, g, runs, propagate, biased, rng)
}

// newAlphaSearchGraph builds the search over a prebuilt consistency graph —
// the graph the caller computed for the step-6 O-estimate, or the patched
// graph a DeltaSession maintains. Every evaluation reads the graph instead
// of rebuilding grouping and graph per (α, run) pair; since Build is a pure
// function of (belief, grouping), the values are bit-identical to the
// rebuild-per-evaluation path.
func newAlphaSearchGraph(ft *dataset.FrequencyTable, g *bipartite.Graph, runs int, propagate, biased bool, rng *rand.Rand) (*AlphaSearch, error) {
	if g.Items() != ft.NItems {
		return nil, fmt.Errorf("recipe: graph domain %d != table domain %d", g.Items(), ft.NItems)
	}
	if runs <= 0 {
		runs = 5
	}
	s := &AlphaSearch{ft: ft, g: g, propagate: propagate}
	n := ft.NItems
	var contrib []float64
	if biased {
		oe, err := core.OEstimateGraph(g, core.OEOptions{})
		if err != nil {
			return nil, err
		}
		contrib = make([]float64, n)
		oe.Crackable.ForEach(func(x int) {
			contrib[x] = 1 / float64(oe.Outdeg[x])
		})
	}
	for r := 0; r < runs; r++ {
		if !biased {
			s.orders = append(s.orders, rng.Perm(n))
			continue
		}
		// Exponential-race ordering: item x gets priority Exp(1)·contrib(x);
		// ascending sort keeps low contributors compliant longest, with
		// randomness across runs.
		type pr struct {
			x int
			p float64
		}
		ps := make([]pr, n)
		for x := 0; x < n; x++ {
			ps[x] = pr{x: x, p: rng.ExpFloat64() * (contrib[x] + 1e-9)}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].p < ps[j].p })
		order := make([]int, n)
		for i, p := range ps {
			order[i] = p.x
		}
		s.orders = append(s.orders, order)
	}
	return s, nil
}

// OEAt returns the mean O-estimate across runs at compliancy level α: in each
// run only the first ⌈αn⌉ items of the run's order count as compliant.
func (s *AlphaSearch) OEAt(alpha float64) (float64, error) {
	return s.OEAtCtx(context.Background(), alpha)
}

// OEAtCtx is OEAt under a work budget: each of the runs' O-estimates checks
// the context's deadline and operation limit. The runs evaluate on the
// parallel worker pool, each worker reusing one lazily-built mask buffer
// across its items; the per-run values are reduced in run order, so the mean
// is bit-identical at any worker count.
func (s *AlphaSearch) OEAtCtx(ctx context.Context, alpha float64) (float64, error) {
	if alpha < 0 || alpha > 1 {
		return 0, fmt.Errorf("recipe: alpha %v outside [0,1]", alpha)
	}
	runs := len(s.orders)
	workers := parallel.PoolWorkers(ctx, 0, runs)
	masks := make([]bitset.Set, workers)
	vals := make([]float64, runs)
	err := parallel.ForEachWorker(ctx, workers, runs, func(w, r int) error {
		if masks[w].IsZero() {
			masks[w] = bitset.New(s.ft.NItems)
		}
		v, err := s.oeOne(ctx, alpha, s.orders[r], masks[w])
		if err != nil {
			return err
		}
		vals[r] = v
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total / float64(len(s.orders)), nil
}

// oeOne evaluates the O-estimate of a single run's compliant subset at level
// alpha. It is the independent work item of the package's parallel sweeps:
// pure in (alpha, order) given the search's read-only tables. The caller
// supplies mask — a zeroed n-length scratch buffer reused across the items of
// one worker — and gets it back zeroed, whether or not the estimate errored.
// Which worker's buffer arrives here can never change the value: the mask is
// fully determined by (alpha, order) before the estimate reads it.
func (s *AlphaSearch) oeOne(ctx context.Context, alpha float64, order []int, mask bitset.Set) (float64, error) {
	k := int(alpha*float64(s.ft.NItems) + 0.5)
	for _, x := range order[:k] {
		mask.Add(x)
	}
	oe, err := core.OEstimateGraphCtx(ctx, s.g, core.OEOptions{Mask: mask, Propagate: s.propagate})
	for _, x := range order[:k] {
		mask.Remove(x)
	}
	if err != nil {
		return 0, err
	}
	return oe.Value, nil
}

// MaxAlphaWithin binary-searches the largest α whose averaged O-estimate is
// within the given crack budget, to the given precision. The search is valid
// because the nested compliant sets make OEAt monotone in α (Lemma 10).
func (s *AlphaSearch) MaxAlphaWithin(crackBudget, precision float64) (float64, error) {
	return s.MaxAlphaWithinCtx(context.Background(), crackBudget, precision)
}

// MaxAlphaWithinCtx is MaxAlphaWithin under a work budget. The whole search
// shares one operation budget (runs × n charged per α evaluation), so a
// budget.WithMaxOps limit or a context deadline can stop it between
// iterations. On exhaustion it returns the best PROVEN α so far — the lower
// bound of the bracketing invariant, safe because OEAt is monotone in α —
// together with the budget error, so callers can keep the conservative
// partial answer while recording the degradation.
func (s *AlphaSearch) MaxAlphaWithinCtx(ctx context.Context, crackBudget, precision float64) (float64, error) {
	bud := budget.New(ctx, budget.Config{CheckEvery: 1})
	evalCost := int64(len(s.orders)) * int64(s.ft.NItems)
	if err := bud.Check(); err != nil {
		return 0, err
	}
	hiVal, err := s.OEAtCtx(ctx, 1)
	if err != nil {
		return 0, err
	}
	if hiVal <= crackBudget {
		return 1, nil
	}
	lo, hi := 0.0, 1.0 // invariant: OEAt(lo) <= crackBudget < OEAt(hi)
	if err := bud.Charge(evalCost); err != nil {
		return lo, fmt.Errorf("recipe: alpha search: %w", err)
	}
	for hi-lo > precision {
		mid := (lo + hi) / 2
		v, err := s.OEAtCtx(ctx, mid)
		if err != nil {
			if budget.Degradable(err) {
				return lo, fmt.Errorf("recipe: alpha search: %w", err)
			}
			return 0, err
		}
		if v <= crackBudget {
			lo = mid
		} else {
			hi = mid
		}
		if err := bud.Charge(evalCost); err != nil {
			return lo, fmt.Errorf("recipe: alpha search: %w", err)
		}
	}
	return lo, nil
}

// Curve evaluates OEAt on each α in alphas, returning O-estimates as
// fractions of the domain — one series of Figure 11.
func (s *AlphaSearch) Curve(alphas []float64) ([]float64, error) {
	return s.CurveCtx(context.Background(), alphas)
}

// CurveCtx is Curve under a work budget, evaluated on the parallel worker
// pool. The fan-out is the flattened α × run grid — every (point, subset)
// O-estimate is an independent work item — so the pool stays saturated even
// when the curve has more workers than α points. Each worker reuses one
// lazily-built mask buffer across its grid items. Per-point means reduce in
// run order and the output in α order, keeping the curve bit-identical at
// any worker count.
func (s *AlphaSearch) CurveCtx(ctx context.Context, alphas []float64) ([]float64, error) {
	for _, a := range alphas {
		if a < 0 || a > 1 {
			return nil, fmt.Errorf("recipe: alpha %v outside [0,1]", a)
		}
	}
	runs := len(s.orders)
	grid := len(alphas) * runs
	workers := parallel.PoolWorkers(ctx, 0, grid)
	masks := make([]bitset.Set, workers)
	vals := make([]float64, grid)
	err := parallel.ForEachWorker(ctx, workers, grid, func(w, k int) error {
		if masks[w].IsZero() {
			masks[w] = bitset.New(s.ft.NItems)
		}
		v, err := s.oeOne(ctx, alphas[k/runs], s.orders[k%runs], masks[w])
		if err != nil {
			return err
		}
		vals[k] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(alphas))
	n := float64(s.ft.NItems)
	for i := range alphas {
		total := 0.0
		for r := 0; r < runs; r++ {
			total += vals[i*runs+r]
		}
		out[i] = total / float64(runs) / n
	}
	return out, nil
}
