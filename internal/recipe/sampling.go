package recipe

import (
	"fmt"
	"math/rand"

	"repro/internal/belief"
	"repro/internal/dataset"
)

// SamplePoint is one point of a Figure 12 curve: how compliant a belief
// function built from a p-fraction sample of the database turns out to be.
type SamplePoint struct {
	Fraction   float64 // sample size p as a fraction of |D|
	AlphaMean  float64 // mean degree of compliancy across samples
	AlphaStd   float64 // sample standard deviation
	MedianGaps float64 // mean of the sampled median gaps δ'_med used
}

// GapChoice selects which statistic of the sampled frequency gaps becomes
// the interval half-width of the sample-derived belief function.
type GapChoice int

const (
	// UseMedianGap is the recipe's default (δ'_med); Section 7.4 shows it
	// yields informative compliancy curves.
	UseMedianGap GapChoice = iota
	// UseMeanGap uses the sampled average gap instead; the paper reports it
	// drives compliancy to ≈0.99 uniformly, "confirming that using the
	// average can be misleading".
	UseMeanGap
)

// SimilarityBySampling implements Figure 13 on a full transaction database:
// for each sample fraction p it draws `samples` transaction samples D_p,
// builds the belief function [f̂_x − δ', f̂_x + δ'] from each sample's
// frequencies and gap statistic, and measures its degree of compliancy
// against the true frequencies.
func SimilarityBySampling(db *dataset.Database, fractions []float64, samples int, gap GapChoice, rng *rand.Rand) ([]SamplePoint, error) {
	trueFreqs := db.Frequencies()
	return similarityCurve(fractions, samples, trueFreqs, func(p float64) (*dataset.FrequencyTable, error) {
		s, err := dataset.Sample(db, p, rng)
		if err != nil {
			return nil, err
		}
		return s.Table(), nil
	}, gap)
}

// SimilarityBySamplingCounts is the count-level variant used for the planted
// synthetic benchmarks, where per-item sampled counts follow independent
// hypergeometric laws (see dataset.SampleCounts); it runs Figure 13 at the
// paper's full RETAIL scale in milliseconds.
func SimilarityBySamplingCounts(ft *dataset.FrequencyTable, fractions []float64, samples int, gap GapChoice, rng *rand.Rand) ([]SamplePoint, error) {
	trueFreqs := ft.Frequencies()
	return similarityCurve(fractions, samples, trueFreqs, func(p float64) (*dataset.FrequencyTable, error) {
		return dataset.SampleCounts(ft, p, rng)
	}, gap)
}

func similarityCurve(fractions []float64, samples int, trueFreqs []float64,
	sample func(p float64) (*dataset.FrequencyTable, error), gap GapChoice) ([]SamplePoint, error) {

	if samples <= 0 {
		samples = 10 // the paper's Figure 13 averages 10 samples
	}
	if len(fractions) == 0 {
		return nil, fmt.Errorf("recipe: no sample fractions given")
	}
	var out []SamplePoint
	for _, p := range fractions {
		if p <= 0 || p > 1 {
			return nil, fmt.Errorf("recipe: sample fraction %v outside (0,1]", p)
		}
		var alphas []float64
		gapSum := 0.0
		for s := 0; s < samples; s++ {
			st, err := sample(p)
			if err != nil {
				return nil, err
			}
			gr := dataset.GroupItems(st)
			var delta float64
			switch gap {
			case UseMeanGap:
				delta = gr.MeanGap()
			default:
				delta = gr.MedianGap()
			}
			bf := belief.FromSample(st.Frequencies(), delta)
			alphas = append(alphas, bf.Alpha(trueFreqs))
			gapSum += delta
		}
		out = append(out, SamplePoint{
			Fraction:   p,
			AlphaMean:  dataset.Mean(alphas),
			AlphaStd:   dataset.StdDev(alphas),
			MedianGaps: gapSum / float64(samples),
		})
	}
	return out, nil
}
