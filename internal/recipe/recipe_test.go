package recipe

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func mustTable(t testing.TB, m int, counts []int) *dataset.FrequencyTable {
	t.Helper()
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestOptionsValidation(t *testing.T) {
	ft := mustTable(t, 10, []int{5, 5})
	rng := rand.New(rand.NewSource(1))
	if _, err := AssessRisk(ft, Options{Tolerance: 0, Rng: rng}); err == nil {
		t.Error("tolerance 0: want error")
	}
	if _, err := AssessRisk(ft, Options{Tolerance: 1, Rng: rng}); err == nil {
		t.Error("tolerance 1: want error")
	}
	if _, err := AssessRisk(ft, Options{Tolerance: 0.5}); err == nil {
		t.Error("missing rng: want error")
	}
}

func TestStage1PointValuedDisclose(t *testing.T) {
	// One big group: g = 1 <= τ·n for τ = 0.3, n = 10.
	counts := make([]int, 10)
	for i := range counts {
		counts[i] = 7
	}
	ft := mustTable(t, 20, counts)
	res, err := AssessRisk(ft, Options{Tolerance: 0.3, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Disclose || res.Stage != StagePointValued {
		t.Errorf("result %+v, want stage-1 disclose", res)
	}
	if res.Groups != 1 || res.FractionPointValued() != 0.1 {
		t.Errorf("groups %d fraction %v", res.Groups, res.FractionPointValued())
	}
}

func TestStage2IntervalDisclose(t *testing.T) {
	// Counts packed at unit gaps: point-valued cracks everything (g = n),
	// but δ_med-wide intervals overlap heavily, dropping the O-estimate.
	n, m := 40, 100
	counts := make([]int, n)
	for i := range counts {
		counts[i] = 30 + i
	}
	ft := mustTable(t, m, counts)
	res, err := AssessRisk(ft, Options{Tolerance: 0.5, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Disclose || res.Stage != StageCompliantInterval {
		t.Fatalf("result %+v, want stage-2 disclose", res)
	}
	if res.DeltaMed <= 0 {
		t.Errorf("DeltaMed = %v, want > 0", res.DeltaMed)
	}
	if res.OEFull > 0.5*float64(n) {
		t.Errorf("OEFull = %v exceeds the budget yet stage 2 disclosed", res.OEFull)
	}
}

func TestStage3AlphaSearch(t *testing.T) {
	// Equally spaced counts 20 apart: every item is its own group, and the
	// δ_med = 0.02 interval reaches exactly the two neighbouring groups, so
	// O_x = 3 for interior items and OE(α) ≈ αn/3. The budget τn is hit at
	// α_max ≈ 3τ, which stays below the default 0.5 comfort for τ = 0.1.
	n := 32
	counts := make([]int, n)
	for i := range counts {
		counts[i] = 10 + 20*i
	}
	ft := mustTable(t, 1000, counts)
	tau := 0.1
	res, err := AssessRisk(ft, Options{Tolerance: tau, Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage != StageAlphaSearch {
		t.Fatalf("stage = %v, want alpha search", res.Stage)
	}
	if math.Abs(res.AlphaMax-3*tau) > 0.07 {
		t.Errorf("AlphaMax = %v, want ≈ %v", res.AlphaMax, 3*tau)
	}
	if res.Disclose {
		t.Error("α_max ≈ 0.3 < default comfort 0.5: want withhold")
	}
	// With a generous comfort level the same evidence discloses.
	res2, err := AssessRisk(ft, Options{Tolerance: tau, AlphaComfort: 0.2, Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Disclose {
		t.Error("comfort 0.2 <= α_max: want disclose")
	}
}

func TestAlphaSearchMonotoneCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	plan := datagen.GroupPlan{Name: "t", Items: 120, Transactions: 600, Groups: 40, Singletons: 25,
		MedianGapFreq: 0.004, MeanGapFreq: 0.02}
	ft, err := plan.Counts(rng)
	if err != nil {
		t.Fatal(err)
	}
	gr := dataset.GroupItems(ft)
	bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
	s, err := NewAlphaSearch(ft, bf, 5, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	alphas := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	curve, err := s.Curve(alphas)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Errorf("curve not monotone at %v: %v < %v", alphas[i], curve[i], curve[i-1])
		}
	}
	if curve[0] != 0 {
		t.Errorf("curve at α=0 is %v, want 0", curve[0])
	}
	// Binary search against the curve: α_max for a mid-curve budget.
	budget := curve[3] * float64(ft.NItems) // budget hit exactly at α=0.6
	amax, err := s.MaxAlphaWithin(budget, 1.0/128)
	if err != nil {
		t.Fatal(err)
	}
	if amax < 0.55 || amax > 0.85 {
		t.Errorf("MaxAlphaWithin = %v, want near 0.6", amax)
	}
	// A huge budget saturates at 1.
	if amax, _ := s.MaxAlphaWithin(float64(ft.NItems), 1.0/64); amax != 1 {
		t.Errorf("unbounded budget: α_max = %v, want 1", amax)
	}
	if _, err := s.OEAt(-0.1); err == nil {
		t.Error("OEAt(-0.1): want error")
	}
}

func TestAlphaSearchDomainMismatch(t *testing.T) {
	ft := mustTable(t, 10, []int{3, 7})
	if _, err := NewAlphaSearch(ft, belief.Ignorant(3), 2, false, rand.New(rand.NewSource(1))); err == nil {
		t.Error("domain mismatch: want error")
	}
}

func TestSimilarityBySamplingBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	plan := datagen.GroupPlan{Name: "sim", Items: 60, Transactions: 2000, Groups: 25, Singletons: 15,
		MedianGapFreq: 0.005, MeanGapFreq: 0.02}
	db, err := plan.Database(rng)
	if err != nil {
		t.Fatal(err)
	}
	points, err := SimilarityBySampling(db, []float64{0.1, 0.5, 0.9}, 5, UseMedianGap, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.AlphaMean < 0 || p.AlphaMean > 1 {
			t.Errorf("alpha %v outside [0,1]", p.AlphaMean)
		}
	}
	// A 90% sample should be quite compliant for a "normal" dataset.
	if points[2].AlphaMean < 0.5 {
		t.Errorf("90%% sample alpha = %v, want >= 0.5", points[2].AlphaMean)
	}
	if _, err := SimilarityBySampling(db, nil, 5, UseMedianGap, rng); err == nil {
		t.Error("no fractions: want error")
	}
	if _, err := SimilarityBySampling(db, []float64{1.5}, 5, UseMedianGap, rng); err == nil {
		t.Error("fraction > 1: want error")
	}
}

func TestSimilarityCountsMeanGapNearOne(t *testing.T) {
	// The paper (Section 7.4, RETAIL discussion): with the sampled AVERAGE
	// gap as width, compliancy sits at ~0.99 across sample sizes — the
	// average is dominated by a few huge gaps, making intervals so wide they
	// are trivially compliant.
	rng := rand.New(rand.NewSource(7))
	ft, err := datagen.RETAIL.Counts(rng)
	if err != nil {
		t.Fatal(err)
	}
	points, err := SimilarityBySamplingCounts(ft, []float64{0.1, 0.5}, 3, UseMeanGap, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.AlphaMean < 0.95 {
			t.Errorf("mean-gap alpha at p=%v is %v, want >= 0.95", p.Fraction, p.AlphaMean)
		}
	}
}

func TestSimilarityCountsMedianVsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ft, err := datagen.ACCIDENTS.Counts(rng)
	if err != nil {
		t.Fatal(err)
	}
	med, err := SimilarityBySamplingCounts(ft, []float64{0.2}, 3, UseMedianGap, rng)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := SimilarityBySamplingCounts(ft, []float64{0.2}, 3, UseMeanGap, rng)
	if err != nil {
		t.Fatal(err)
	}
	if med[0].AlphaMean > mean[0].AlphaMean {
		t.Errorf("median-gap alpha %v should not exceed mean-gap alpha %v",
			med[0].AlphaMean, mean[0].AlphaMean)
	}
}

func TestStageString(t *testing.T) {
	for _, s := range []Stage{StagePointValued, StageCompliantInterval, StageAlphaSearch, Stage(99)} {
		if s.String() == "" {
			t.Errorf("empty String for %d", int(s))
		}
	}
}

func TestAlphaSearchBiasedDominatesUniform(t *testing.T) {
	// Dropping the high-contribution items first can only stretch the
	// tolerance: at every α the biased estimate is (weakly) below the
	// uniform one, so the biased α_max dominates.
	rng := rand.New(rand.NewSource(41))
	plan := datagen.GroupPlan{Name: "b", Items: 150, Transactions: 800, Groups: 60, Singletons: 40,
		MedianGapFreq: 0.003, MeanGapFreq: 0.012}
	ft, err := plan.Counts(rng)
	if err != nil {
		t.Fatal(err)
	}
	gr := dataset.GroupItems(ft)
	bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
	uni, err := NewAlphaSearch(ft, bf, 4, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	bia, err := NewAlphaSearchBiased(ft, bf, 4, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []float64{0.25, 0.5, 0.75} {
		u, err := uni.OEAt(a)
		if err != nil {
			t.Fatal(err)
		}
		b, err := bia.OEAt(a)
		if err != nil {
			t.Fatal(err)
		}
		if b > u+0.05*u+0.5 {
			t.Errorf("α=%v: biased OE %v exceeds uniform %v", a, b, u)
		}
	}
	budget := 0.1 * float64(ft.NItems)
	uMax, err := uni.MaxAlphaWithin(budget, 1.0/64)
	if err != nil {
		t.Fatal(err)
	}
	bMax, err := bia.MaxAlphaWithin(budget, 1.0/64)
	if err != nil {
		t.Fatal(err)
	}
	if bMax < uMax-1.0/32 {
		t.Errorf("biased α_max %v below uniform %v", bMax, uMax)
	}
	// Biased curves are super-linear: the midpoint sits below the chord.
	full, err := bia.OEAt(1)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := bia.OEAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if full > 1 && mid > 0.5*full {
		t.Errorf("biased curve not super-linear: OE(0.5)=%v vs OE(1)/2=%v", mid, 0.5*full)
	}
	if _, err := NewAlphaSearchBiased(ft, belief.Ignorant(3), 2, false, rng); err == nil {
		t.Error("domain mismatch: want error")
	}
}

func TestResultFractions(t *testing.T) {
	r := &Result{Items: 10, Groups: 4, OEFull: 2.5}
	if r.FractionPointValued() != 0.4 {
		t.Errorf("FractionPointValued = %v", r.FractionPointValued())
	}
	if r.FractionOEFull() != 0.25 {
		t.Errorf("FractionOEFull = %v", r.FractionOEFull())
	}
}
