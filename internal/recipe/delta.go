package recipe

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/belief"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dataset"
)

// ErrSessionBroken marks a DeltaSession whose internal structures may be
// inconsistent after a mid-patch failure; it must be discarded and rebuilt
// from the table.
var ErrSessionBroken = errors.New("recipe: delta session broken by earlier failure")

// DeltaSession assesses an evolving release incrementally: it owns a copy of
// the frequency table plus every derived structure Assess-Risk needs —
// grouping, δ_med belief function, consistency graph, O-estimate
// contributions, α-search item orders — and on each counts diff patches them
// in place (dataset.ApplyDiffGrouping, bipartite.Rebin, core.OEDelta)
// instead of rebuilding from scratch.
//
// The equivalence invariant (pinned by TestDeltaSessionMatchesFullAssess):
// after any chain of diffs, AssessCtx returns a Result byte-identical —
// verdict, stage, every float compared with ==, digests included — to
// AssessRiskCtx on a fresh table with the same counts, the same options, and
// a fresh rng seeded with the session seed, at any worker count. The session
// therefore composes soundly with riskcache content addressing: a verdict
// computed through the delta path is THE verdict for that table digest.
//
// Sessions are not safe for concurrent use; the server checks one out
// exclusively per request.
type DeltaSession struct {
	opts Options
	seed int64

	ft       *dataset.FrequencyTable // owned; only ApplyDiffCtx mutates it
	gr       *dataset.Grouping
	deltaMed float64
	g        *bipartite.Graph
	oe       *core.OEDelta // nil when opts.Propagate (no restricted form)

	// orders caches the α-search item orders. AssessRiskCtx draws them from
	// opts.Rng at search-construction time; with a fresh rand.NewSource(seed)
	// they are the first Runs permutations of that stream, which depend only
	// on (seed, runs, n) — all fixed for the session's lifetime — so one
	// generation serves every diff bit-identically.
	orders [][]int

	dirty  []int // items whose OE contribution awaits recomputation, ascending
	last   *Result
	broken bool
}

// NewDeltaSessionCtx builds a session for the given table. The table is
// cloned; the caller's copy is never touched. seed plays the role opts.Rng
// plays in AssessRiskCtx — any Rng already set in opts is ignored. No
// assessment is run yet: call AssessCtx for the current verdict or
// ApplyDiffCtx to advance.
func NewDeltaSessionCtx(ctx context.Context, ft *dataset.FrequencyTable, seed int64, opts Options) (*DeltaSession, error) {
	rng := rand.New(rand.NewSource(seed))
	opts.Rng = rng
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &DeltaSession{
		opts:     opts,
		seed:     seed,
		ft:       ft.Clone(),
		deltaMed: -1,
	}
	s.gr = dataset.GroupItems(s.ft)
	s.deltaMed = s.gr.MedianGap()
	bf := belief.UniformWidth(s.ft.Frequencies(), s.deltaMed)
	if s.g, err = bipartite.Build(bf, s.gr); err != nil {
		return nil, err
	}
	if !opts.Propagate {
		if s.oe, err = core.NewOEDeltaCtx(ctx, s.g); err != nil {
			return nil, err
		}
	}
	n := s.ft.NItems
	for r := 0; r < opts.Runs; r++ {
		s.orders = append(s.orders, rng.Perm(n))
	}
	return s, nil
}

// Digest returns the content digest of the session's current table — the
// address its verdicts cache under.
func (s *DeltaSession) Digest() string { return s.ft.Digest() }

// Items returns the domain size n.
func (s *DeltaSession) Items() int { return s.ft.NItems }

// Result returns the most recent verdict, or nil before the first
// assessment.
func (s *DeltaSession) Result() *Result { return s.last }

// Broken reports whether a mid-patch failure has invalidated the session.
func (s *DeltaSession) Broken() bool { return s.broken }

// ApplyDiffCtx applies a counts diff and returns the fresh verdict. A diff
// that fails validation leaves the session fully intact (the table rejects
// it before mutating); a failure after the table moved marks the session
// broken. Assessment errors (budget exhaustion below the floor, canceled
// context) do NOT break the session — the patched structures stay
// consistent and a later AssessCtx retries the pending O-estimate work.
func (s *DeltaSession) ApplyDiffCtx(ctx context.Context, d *dataset.CountsDiff) (*Result, error) {
	if s.broken {
		return nil, ErrSessionBroken
	}
	if err := s.ft.ApplyDiff(d); err != nil {
		return nil, err
	}
	postGr, rd, err := dataset.ApplyDiffGrouping(s.gr, s.ft, d)
	if err != nil {
		s.broken = true
		return nil, fmt.Errorf("recipe: delta regroup: %w", err)
	}
	postMed := postGr.MedianGap()
	postBF := belief.UniformWidth(s.ft.Frequencies(), postMed)
	changed, err := s.g.Rebin(postBF, bipartite.RebinUpdate{
		Grouping:         postGr,
		Delta:            rd,
		ChangedIntervals: rd.Moved,
		// δ_med or the transaction total moving shifts every belief interval
		// (UniformWidth recenters on the new frequencies with the new width);
		// otherwise only the moved items' intervals differ.
		AllIntervals: postMed != s.deltaMed || d.DTransactions != 0,
	})
	if err != nil {
		s.broken = true
		return nil, fmt.Errorf("recipe: delta rebin: %w", err)
	}
	s.gr, s.deltaMed = postGr, postMed
	s.dirty = mergeAscending(s.dirty, changed)
	return s.AssessCtx(ctx)
}

// AssessCtx runs the staged Assess-Risk decision on the session's current
// state, recomputing only the O-estimate contributions invalidated since the
// last assessment.
func (s *DeltaSession) AssessCtx(ctx context.Context) (*Result, error) {
	if s.broken {
		return nil, ErrSessionBroken
	}
	oeFull := func(ctx context.Context) (float64, error) {
		if s.oe == nil { // propagation has no restricted form; full pass on the patched graph
			oe, err := core.OEstimateGraphCtx(ctx, s.g, core.OEOptions{Propagate: true})
			if err != nil {
				return 0, err
			}
			return oe.Value, nil
		}
		oe, err := s.oe.RefreshCtx(ctx, s.dirty)
		if err != nil {
			// Keep dirty: recompute is idempotent against the current graph,
			// so the next assessment heals a partially-applied refresh.
			return 0, err
		}
		s.dirty = s.dirty[:0]
		return oe.Value, nil
	}
	search := func(context.Context) (*AlphaSearch, error) {
		return &AlphaSearch{ft: s.ft, g: s.g, orders: s.orders, propagate: s.opts.Propagate}, nil
	}
	res, err := assessStaged(ctx, s.ft.NItems, s.opts, s.gr, oeFull, search)
	if err != nil {
		return nil, err
	}
	s.last = res
	return res, nil
}

// mergeAscending merges two ascending int slices into a, deduplicating.
func mergeAscending(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append(a, b...)
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
