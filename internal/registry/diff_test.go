package registry

// Diff semantics: ε-aware float cells, structural reporting, volatile
// provenance keys, and the Changed contract (timing deltas never count).

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func recordPair(t *testing.T, s *Store, a, b RunSpec) (*Run, *Run) {
	t.Helper()
	ra, err := s.Record(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := s.Record(b)
	if err != nil {
		t.Fatal(err)
	}
	return ra, rb
}

func TestDiffIdenticalRunsReportNothing(t *testing.T) {
	s := testStore(t)
	a := sampleSpec("demo", 7)
	b := sampleSpec("demo", 7)
	b.Wall, b.CPU = 9*time.Second, 11*time.Second // volatile only
	ra, rb := recordPair(t, s, a, b)
	d, err := s.Diff(ra, rb, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if d.Changed() || d.CellCount() != 0 {
		t.Errorf("identical tables diff as changed: %+v", d)
	}
	if d.BWallMS-d.AWallMS != 9000-1500 {
		t.Errorf("wall delta = %d", d.BWallMS-d.AWallMS)
	}
}

func TestDiffEpsAbsorbsFloatNoise(t *testing.T) {
	s := testStore(t)
	a := sampleSpec("demo", 7)
	a.Tables = []SpecTable{{Name: "demo-0", CSV: []byte("x,y\nrow,1.000000\n")}}
	b := sampleSpec("demo", 7)
	b.Tables = []SpecTable{{Name: "demo-0", CSV: []byte("x,y\nrow,1.0000000000001\n")}}
	ra, rb := recordPair(t, s, a, b)

	d, err := s.Diff(ra, rb, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if d.CellCount() != 0 {
		t.Errorf("eps=1e-9 should absorb 1e-13 noise: %+v", d.Tables)
	}
	d, err = s.Diff(ra, rb, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if d.CellCount() != 1 {
		t.Fatalf("eps=1e-15 should flag the cell: %+v", d.Tables)
	}
	c := d.Tables[0].Cells[0]
	if !c.IsFloat || c.Row != 0 || c.Col != 1 || c.Column != "y" || c.RowLabel != "row" {
		t.Errorf("cell coordinates: %+v", c)
	}
}

func TestDiffReportsExactCellsAndStrings(t *testing.T) {
	s := testStore(t)
	a := sampleSpec("demo", 7)
	a.Tables = []SpecTable{{Name: "demo-0", CSV: []byte("ds,v,verdict\nA,1.5,disclose\nB,2.5,disclose\n")}}
	b := sampleSpec("demo", 7)
	b.Tables = []SpecTable{{Name: "demo-0", CSV: []byte("ds,v,verdict\nA,1.5,disclose\nB,2.75,withhold\n")}}
	ra, rb := recordPair(t, s, a, b)
	d, err := s.Diff(ra, rb, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if d.CellCount() != 2 {
		t.Fatalf("want exactly the 2 perturbed cells, got %d: %+v", d.CellCount(), d.Tables)
	}
	cells := d.Tables[0].Cells
	if cells[0].Row != 1 || cells[0].Col != 1 || !cells[0].IsFloat || cells[0].Delta != 0.25 {
		t.Errorf("float cell: %+v", cells[0])
	}
	if cells[1].Row != 1 || cells[1].Col != 2 || cells[1].IsFloat || cells[1].B != "withhold" {
		t.Errorf("string cell: %+v", cells[1])
	}
}

func TestDiffStructuralRowAndTableMismatch(t *testing.T) {
	s := testStore(t)
	a := sampleSpec("demo", 7)
	b := sampleSpec("demo", 7)
	b.Tables = []SpecTable{{Name: "demo-0", Title: "t0", CSV: []byte("a,b\n1,2.50\n")}} // one row and one table fewer
	ra, rb := recordPair(t, s, a, b)
	d, err := s.Diff(ra, rb, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Changed() || len(d.Structural) == 0 {
		t.Fatalf("structural mismatch not reported: %+v", d)
	}
	joined := strings.Join(d.Structural, "; ")
	if !strings.Contains(joined, "2 tables vs 1") || !strings.Contains(joined, "2 rows vs 1") {
		t.Errorf("structural notes: %q", joined)
	}
}

func TestDiffProvenanceSkipsVolatileKeys(t *testing.T) {
	s := testStore(t)
	a := sampleSpec("demo", 7)
	a.Provenance = json.RawMessage(`[{"row":"A","degraded":false,"method":"oestimate","wall_ms":10,"cpu_ms":20,"workers":1}]`)
	b := sampleSpec("demo", 7)
	b.Provenance = json.RawMessage(`[{"row":"A","degraded":true,"method":"alpha-search","wall_ms":99,"cpu_ms":5,"workers":8}]`)
	ra, rb := recordPair(t, s, a, b)
	d, err := s.Diff(ra, rb, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(d.Provenance, "; ")
	if !strings.Contains(joined, "degraded") || !strings.Contains(joined, "method") {
		t.Errorf("degradation flip not reported: %q", joined)
	}
	if strings.Contains(joined, "wall_ms") || strings.Contains(joined, "cpu_ms") || strings.Contains(joined, "workers") {
		t.Errorf("volatile provenance keys must be skipped: %q", joined)
	}
	if !d.Changed() {
		t.Errorf("a degradation flip must count as changed")
	}

	// Identical provenance modulo volatile keys: no change at all.
	c := sampleSpec("demo", 7)
	c.Provenance = json.RawMessage(`[{"row":"A","degraded":false,"method":"oestimate","wall_ms":77,"cpu_ms":1,"workers":4}]`)
	rc, err := s.Record(c)
	if err != nil {
		t.Fatal(err)
	}
	d, err = s.Diff(ra, rc, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Provenance) != 0 || d.Changed() {
		t.Errorf("volatile-only provenance delta reported: %+v", d.Provenance)
	}
}
