// ULID-style run identifiers: 48 bits of millisecond timestamp followed by
// 80 bits of entropy, rendered as 26 characters of Crockford base32. The
// encoding sorts lexicographically by creation time, so a plain string sort
// of run directories is a chronological `list`, and ids stay safe as file
// names (no separators, no case-folding collisions — the alphabet is upper-
// case and excludes I, L, O, U).
//
// Generation is monotonic within a Store: two ids minted in the same
// millisecond (or across a backwards clock step) share the clamped timestamp
// and the entropy increments as an 80-bit counter, so later ids always sort
// strictly after earlier ones.
package registry

import (
	"crypto/rand"
	"fmt"
	"io"
)

// ulidLen is the canonical 26-character text length.
const ulidLen = 26

// ulidAlphabet is Crockford base32.
const ulidAlphabet = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

var ulidDecode = func() [256]bool {
	var ok [256]bool
	for i := 0; i < len(ulidAlphabet); i++ {
		ok[ulidAlphabet[i]] = true
	}
	return ok
}()

// ValidID reports whether s is a well-formed run id. Load and List use it to
// refuse path-traversal lookups and to tell stray directories from runs.
func ValidID(s string) bool {
	if len(s) != ulidLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !ulidDecode[s[i]] {
			return false
		}
	}
	// 26 base32 chars hold 130 bits; the top 2 must be zero, which caps the
	// first character at '7'.
	return s[0] <= '7'
}

// newID mints the next monotonic id. Callers hold s.mu.
func (s *Store) newIDLocked() (string, error) {
	ms := uint64(s.now().UnixMilli()) & (1<<48 - 1)
	switch {
	case ms > s.lastMS:
		s.lastMS = ms
		if _, err := io.ReadFull(s.entropy, s.lastEnt[:]); err != nil {
			return "", fmt.Errorf("registry: reading id entropy: %w", err)
		}
	default:
		// Same millisecond, or the clock stepped back: reuse the last
		// timestamp and bump the entropy so ordering stays strict.
		for i := len(s.lastEnt) - 1; i >= 0; i-- {
			s.lastEnt[i]++
			if s.lastEnt[i] != 0 {
				break
			}
			if i == 0 {
				return "", fmt.Errorf("registry: id entropy overflow within one millisecond")
			}
		}
	}
	return encodeULID(s.lastMS, s.lastEnt), nil
}

// encodeULID renders the 128-bit (timestamp, entropy) pair as 26 characters.
func encodeULID(ms uint64, ent [10]byte) string {
	hi := ms<<16 | uint64(ent[0])<<8 | uint64(ent[1])
	var lo uint64
	for _, b := range ent[2:] {
		lo = lo<<8 | uint64(b)
	}
	var out [ulidLen]byte
	for i := ulidLen - 1; i >= 0; i-- {
		out[i] = ulidAlphabet[lo&31]
		lo = lo>>5 | hi<<59
		hi >>= 5
	}
	return string(out[:])
}

// cryptoEntropy is the default entropy source; tests substitute a
// deterministic reader.
var cryptoEntropy io.Reader = rand.Reader
