// Run diffing: cell-level comparison of two runs' stored tables with an
// ε-aware float rule (|a−b| ≤ eps counts as equal, mirroring belief.EqualEps
// — exact rationals rendered as float64 must not diff on formatting-level
// noise), plus wall/CPU deltas from timing.json and a structural comparison
// of the provenance records, so a degradation flip (exact → sampled, or a
// Degraded=true creeping in) is a first-class diffable fact and not
// something buried in a CSV cell.
package registry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CellDiff is one differing table cell.
type CellDiff struct {
	Table    string  // file name, e.g. recipe-0.csv
	Row, Col int     // 0-based data coordinates; Row -1 means header cell
	RowLabel string  // first cell of the row, the human anchor
	Column   string  // header of the column
	A, B     string  // the raw cell values
	Delta    float64 // B−A when both parse as floats, else 0
	IsFloat  bool
}

// TableDiff collects the differences of one aligned table pair.
type TableDiff struct {
	File         string
	Cells        []CellDiff
	RowsA, RowsB int
}

// DiffReport is the full comparison of two runs.
type DiffReport struct {
	AID, BID   string
	Eps        float64
	Tables     []TableDiff
	Structural []string // table-set or shape mismatches that defeat cell alignment
	Provenance []string // changed provenance facts (wall/CPU/workers excluded)

	// Volatile perf deltas from timing.json, reported but never part of
	// Changed: a faster identical run is still identical.
	AWallMS, BWallMS int64
	ACPUMS, BCPUMS   int64
}

// CellCount returns the number of differing cells across all tables.
func (d *DiffReport) CellCount() int {
	n := 0
	for _, t := range d.Tables {
		n += len(t.Cells)
	}
	return n
}

// Changed reports whether the two runs disagree on any replayable fact:
// differing cells, structural shape, or provenance. Timing deltas alone
// never count.
func (d *DiffReport) Changed() bool {
	return d.CellCount() > 0 || len(d.Structural) > 0 || len(d.Provenance) > 0
}

// volatileProvKeys are provenance fields that legitimately vary between
// byte-identical runs and are excluded from the provenance comparison.
var volatileProvKeys = map[string]bool{"wall_ms": true, "cpu_ms": true, "workers": true}

// Diff compares two loaded runs cell by cell. Tables are aligned by index;
// runs of the same experiment name them identically, and a name mismatch is
// reported as structural. eps ≤ 0 means exact string comparison only.
func (s *Store) Diff(a, b *Run, eps float64) (*DiffReport, error) {
	d := &DiffReport{
		AID: a.ID(), BID: b.ID(), Eps: eps,
		AWallMS: a.Timing.WallMS, BWallMS: b.Timing.WallMS,
		ACPUMS: a.Timing.CPUMS, BCPUMS: b.Timing.CPUMS,
	}
	if a.Manifest.Experiment != b.Manifest.Experiment {
		d.Structural = append(d.Structural, fmt.Sprintf(
			"experiment %q vs %q", a.Manifest.Experiment, b.Manifest.Experiment))
	}
	if len(a.Manifest.Tables) != len(b.Manifest.Tables) {
		d.Structural = append(d.Structural, fmt.Sprintf(
			"%d tables vs %d", len(a.Manifest.Tables), len(b.Manifest.Tables)))
	}
	n := len(a.Manifest.Tables)
	if len(b.Manifest.Tables) < n {
		n = len(b.Manifest.Tables)
	}
	for k := 0; k < n; k++ {
		ta, tb := a.Manifest.Tables[k], b.Manifest.Tables[k]
		if ta.File != tb.File {
			d.Structural = append(d.Structural, fmt.Sprintf(
				"table %d named %s vs %s", k, ta.File, tb.File))
		}
		rawA, err := s.ReadTable(a, k)
		if err != nil {
			return nil, err
		}
		rawB, err := s.ReadTable(b, k)
		if err != nil {
			return nil, err
		}
		td, structural, err := diffTables(ta.File, rawA, rawB, eps)
		if err != nil {
			return nil, err
		}
		d.Structural = append(d.Structural, structural...)
		if len(td.Cells) > 0 || td.RowsA != td.RowsB {
			d.Tables = append(d.Tables, td)
		}
	}
	prov, err := diffProvenance(a.Manifest.Provenance, b.Manifest.Provenance, eps)
	if err != nil {
		return nil, err
	}
	d.Provenance = prov
	return d, nil
}

// parseCSV reads a stored table: first record is the header, the rest data.
func parseCSV(name string, raw []byte) (header []string, rows [][]string, err error) {
	r := csv.NewReader(strings.NewReader(string(raw)))
	r.FieldsPerRecord = -1
	all, err := r.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("registry: parsing %s: %w", name, err)
	}
	if len(all) == 0 {
		return nil, nil, nil
	}
	return all[0], all[1:], nil
}

func diffTables(file string, rawA, rawB []byte, eps float64) (TableDiff, []string, error) {
	td := TableDiff{File: file}
	var structural []string
	headA, rowsA, err := parseCSV(file, rawA)
	if err != nil {
		return td, nil, err
	}
	headB, rowsB, err := parseCSV(file, rawB)
	if err != nil {
		return td, nil, err
	}
	td.RowsA, td.RowsB = len(rowsA), len(rowsB)
	compareRow := func(rowIdx int, ra, rb []string) {
		label := ""
		if rowIdx >= 0 && len(ra) > 0 {
			label = ra[0]
		}
		n := len(ra)
		if len(rb) > n {
			n = len(rb)
		}
		for c := 0; c < n; c++ {
			va, vb := "", ""
			if c < len(ra) {
				va = ra[c]
			}
			if c < len(rb) {
				vb = rb[c]
			}
			if eq, delta, isFloat := cellsEqual(va, vb, eps); !eq {
				col := ""
				if c < len(headA) {
					col = headA[c]
				}
				td.Cells = append(td.Cells, CellDiff{
					Table: file, Row: rowIdx, Col: c,
					RowLabel: label, Column: col,
					A: va, B: vb, Delta: delta, IsFloat: isFloat,
				})
			}
		}
	}
	compareRow(-1, headA, headB)
	n := len(rowsA)
	if len(rowsB) < n {
		n = len(rowsB)
	}
	for i := 0; i < n; i++ {
		compareRow(i, rowsA[i], rowsB[i])
	}
	if len(rowsA) != len(rowsB) {
		structural = append(structural, fmt.Sprintf(
			"%s: %d rows vs %d", file, len(rowsA), len(rowsB)))
	}
	return td, structural, nil
}

// cellsEqual applies the ε-aware comparison: byte equality first, then — when
// both cells parse as floats — |a−b| ≤ eps.
func cellsEqual(a, b string, eps float64) (eq bool, delta float64, isFloat bool) {
	if a == b {
		return true, 0, false
	}
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA != nil || errB != nil {
		return false, 0, false
	}
	delta = fb - fa
	return math.Abs(delta) <= eps, delta, true
}

// diffProvenance compares the two runs' provenance JSON generically, so the
// registry needs no knowledge of the recipe's provenance schema. Volatile
// keys (wall_ms, cpu_ms, workers) are skipped; numbers use the ε rule.
func diffProvenance(a, b json.RawMessage, eps float64) ([]string, error) {
	if len(a) == 0 && len(b) == 0 {
		return nil, nil
	}
	var va, vb any
	if len(a) > 0 {
		if err := json.Unmarshal(a, &va); err != nil {
			return nil, fmt.Errorf("registry: provenance of run A does not parse: %w", err)
		}
	}
	if len(b) > 0 {
		if err := json.Unmarshal(b, &vb); err != nil {
			return nil, fmt.Errorf("registry: provenance of run B does not parse: %w", err)
		}
	}
	var out []string
	walkProvDiff("provenance", va, vb, eps, &out)
	return out, nil
}

func walkProvDiff(path string, a, b any, eps float64, out *[]string) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			*out = append(*out, fmt.Sprintf("%s: %s vs %s", path, provRender(a), provRender(b)))
			return
		}
		keys := make([]string, 0, len(av)+len(bv))
		for k := range av {
			keys = append(keys, k)
		}
		for k := range bv {
			if _, dup := av[k]; !dup {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			if volatileProvKeys[k] {
				continue
			}
			walkProvDiff(path+"."+k, av[k], bv[k], eps, out)
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			*out = append(*out, fmt.Sprintf("%s: %s vs %s", path, provRender(a), provRender(b)))
			return
		}
		if len(av) != len(bv) {
			*out = append(*out, fmt.Sprintf("%s: %d entries vs %d", path, len(av), len(bv)))
		}
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			walkProvDiff(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], eps, out)
		}
	case float64:
		bf, ok := b.(float64)
		if !ok || !(math.Abs(bf-av) <= eps) {
			*out = append(*out, fmt.Sprintf("%s: %s -> %s", path, provRender(a), provRender(b)))
		}
	default:
		// strings, bools, nils: exact comparison via rendered form.
		if provRender(a) != provRender(b) {
			*out = append(*out, fmt.Sprintf("%s: %s -> %s", path, provRender(a), provRender(b)))
		}
	}
}

func provRender(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(data)
}
