// Package registry is the persistent experiment run store: every invocation
// of cmd/experiments can record the tables it produced as an append-only,
// content-addressed run record that later sessions list, show, diff, and —
// because the manifest pins (experiment, seed, quick, workers, git rev,
// input digests) — replay bit-for-bit. The golden files under
// internal/experiments/testdata pin only HEAD's behavior; the registry turns
// the same tables into a trajectory, so accuracy drift and degradation
// changes across PRs are queryable artifacts instead of overwritten history.
//
// Layout (append-only; one directory per run, committed atomically):
//
//	<root>/runs/<ULID>/manifest.json
//	<root>/runs/<ULID>/<experiment>-<k>.csv
//	<root>/runs/<ULID>/timing.json
//
// A run is staged in a dot-prefixed temp directory under <root>/runs and
// renamed into place only after every file inside it is written and synced,
// so a crashed run never leaves a readable-but-partial record: List skips
// dot-prefixed leftovers, and a record is only visible once complete.
package registry

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is a run registry rooted at a directory. It is safe for concurrent
// use within one process; cross-process safety comes from the atomic
// directory rename (two writers can race but each commits a whole run).
type Store struct {
	root string

	mu      sync.Mutex
	now     func() time.Time
	entropy io.Reader
	lastMS  uint64
	lastEnt [10]byte
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	s := &Store{root: dir, now: time.Now, entropy: cryptoEntropy}
	if err := os.MkdirAll(s.runsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("registry: opening store: %w", err)
	}
	return s, nil
}

func (s *Store) runsDir() string { return filepath.Join(s.root, "runs") }

// runDir returns the directory a run id maps to, refusing ids that are not
// well-formed ULIDs (which also blocks path traversal through `show ../x`).
func (s *Store) runDir(id string) (string, error) {
	if !ValidID(id) {
		return "", fmt.Errorf("registry: invalid run id %q", id)
	}
	return filepath.Join(s.runsDir(), id), nil
}

// SpecTable is one result table to record: Name becomes <Name>.csv inside
// the run directory and must be unique within the run.
type SpecTable struct {
	Name  string
	Title string
	CSV   []byte
}

// RunSpec is everything Record needs to mint a run.
type RunSpec struct {
	Experiment string
	Title      string
	Seed       int64
	Quick      bool
	Workers    int
	GitRev     string
	Inputs     []Input
	Tables     []SpecTable
	Notes      []string
	Provenance json.RawMessage
	Wall, CPU  time.Duration
}

// Run is a loaded, integrity-checked run record.
type Run struct {
	Dir      string
	Manifest Manifest
	Timing   Timing
}

// ID returns the run's identifier.
func (r *Run) ID() string { return r.Manifest.RunID }

var tableNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// ContentKey derives the run's content address: a hex SHA-256 over the
// identity tuple (experiment id, seed, quick, workers, git rev) and the
// sorted input digests. Two runs with equal keys claim the same computation;
// diff between them proving zero changed cells is the trajectory invariant.
func (spec *RunSpec) ContentKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nexperiment=%s\nseed=%d\nquick=%t\nworkers=%d\ngitrev=%s\n",
		manifestFormat, spec.Experiment, spec.Seed, spec.Quick, spec.Workers, spec.GitRev)
	inputs := append([]Input(nil), spec.Inputs...)
	sort.Slice(inputs, func(i, j int) bool {
		a, b := inputs[i], inputs[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Digest < b.Digest
	})
	for _, in := range inputs {
		fmt.Fprintf(h, "input=%s:%s:%s\n", in.Kind, in.Name, in.Digest)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Record stores one run and returns the loaded record. The run directory
// appears atomically: all tables, timing.json, and finally manifest.json are
// written and synced inside a staging directory, which is then renamed to
// its ULID name. A crash mid-record leaves only a dot-prefixed staging
// directory that List ignores.
func (s *Store) Record(spec RunSpec) (*Run, error) {
	if spec.Experiment == "" {
		return nil, fmt.Errorf("registry: RunSpec.Experiment is required")
	}
	seen := make(map[string]bool, len(spec.Tables))
	for _, tb := range spec.Tables {
		if !tableNameRe.MatchString(tb.Name) {
			return nil, fmt.Errorf("registry: invalid table name %q", tb.Name)
		}
		if seen[tb.Name] {
			return nil, fmt.Errorf("registry: duplicate table name %q", tb.Name)
		}
		seen[tb.Name] = true
	}

	s.mu.Lock()
	id, err := s.newIDLocked()
	createdMS := s.now().UnixMilli()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}

	m := Manifest{
		RunID:      id,
		Experiment: spec.Experiment,
		Title:      spec.Title,
		Seed:       spec.Seed,
		Quick:      spec.Quick,
		Workers:    spec.Workers,
		GitRev:     spec.GitRev,
		ContentKey: spec.ContentKey(),
		Inputs:     spec.Inputs,
		Notes:      spec.Notes,
		Provenance: spec.Provenance,
	}

	stage, err := os.MkdirTemp(s.runsDir(), "."+id+".stage-")
	if err != nil {
		return nil, fmt.Errorf("registry: staging run: %w", err)
	}
	defer os.RemoveAll(stage) // no-op after a successful rename

	for _, tb := range spec.Tables {
		file := tb.Name + ".csv"
		if err := AtomicWriteFile(filepath.Join(stage, file), tb.CSV, 0o644); err != nil {
			return nil, fmt.Errorf("registry: writing table %s: %w", file, err)
		}
		m.Tables = append(m.Tables, TableFile{
			File:  file,
			Title: tb.Title,
			Bytes: int64(len(tb.CSV)),
			CRC32: crcBytes(tb.CSV),
		})
	}

	timing := Timing{
		CreatedUnixMS: createdMS,
		WallMS:        spec.Wall.Milliseconds(),
		CPUMS:         spec.CPU.Milliseconds(),
	}
	timingData, err := json.MarshalIndent(&timing, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := AtomicWriteFile(filepath.Join(stage, "timing.json"), append(timingData, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("registry: writing timing: %w", err)
	}

	// The manifest goes last: a staging directory without one is trivially
	// recognizable as incomplete.
	manifestData, err := encodeManifest(&m)
	if err != nil {
		return nil, err
	}
	if err := AtomicWriteFile(filepath.Join(stage, "manifest.json"), manifestData, 0o644); err != nil {
		return nil, fmt.Errorf("registry: writing manifest: %w", err)
	}
	if err := syncDir(stage); err != nil {
		return nil, fmt.Errorf("registry: syncing staged run: %w", err)
	}

	final := filepath.Join(s.runsDir(), id)
	if err := os.Rename(stage, final); err != nil {
		return nil, fmt.Errorf("registry: committing run: %w", err)
	}
	if err := syncDir(s.runsDir()); err != nil {
		return nil, fmt.Errorf("registry: syncing runs directory: %w", err)
	}
	return &Run{Dir: final, Manifest: m, Timing: timing}, nil
}

// Load reads and integrity-checks the run with the given id. Any corruption
// — unparseable or CRC-mismatching manifest, missing table file, table bytes
// that disagree with the manifest — fails the whole load with ErrCorrupt in
// the chain; a valid-but-absent id fails with ErrNotExist.
func (s *Store) Load(id string) (*Run, error) {
	dir, err := s.runDir(id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, id)
		}
		return nil, fmt.Errorf("registry: reading manifest of %s: %w", id, err)
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("run %s: %w", id, err)
	}
	if m.RunID != id {
		return nil, fmt.Errorf("run %s: %w: manifest names run %s", id, ErrCorrupt, m.RunID)
	}
	for _, tf := range m.Tables {
		if filepath.Base(tf.File) != tf.File || strings.HasPrefix(tf.File, ".") {
			return nil, fmt.Errorf("run %s: %w: unsafe table file name %q", id, ErrCorrupt, tf.File)
		}
		blob, err := os.ReadFile(filepath.Join(dir, tf.File))
		if err != nil {
			return nil, fmt.Errorf("run %s: %w: table %s unreadable: %v", id, ErrCorrupt, tf.File, err)
		}
		if int64(len(blob)) != tf.Bytes || crcBytes(blob) != tf.CRC32 {
			return nil, fmt.Errorf("run %s: %w: table %s is %d bytes crc %08x, manifest says %d bytes crc %08x",
				id, ErrCorrupt, tf.File, len(blob), crcBytes(blob), tf.Bytes, tf.CRC32)
		}
	}
	return &Run{Dir: dir, Manifest: *m, Timing: readTiming(filepath.Join(dir, "timing.json"))}, nil
}

// ReadTable returns the bytes of the k-th table of a loaded run, re-checked
// against the manifest's CRC.
func (s *Store) ReadTable(run *Run, k int) ([]byte, error) {
	if k < 0 || k >= len(run.Manifest.Tables) {
		return nil, fmt.Errorf("registry: run %s has no table %d", run.ID(), k)
	}
	tf := run.Manifest.Tables[k]
	blob, err := os.ReadFile(filepath.Join(run.Dir, tf.File))
	if err != nil {
		return nil, fmt.Errorf("run %s: %w: table %s unreadable: %v", run.ID(), ErrCorrupt, tf.File, err)
	}
	if int64(len(blob)) != tf.Bytes || crcBytes(blob) != tf.CRC32 {
		return nil, fmt.Errorf("run %s: %w: table %s fails its checksum", run.ID(), ErrCorrupt, tf.File)
	}
	return blob, nil
}

// Entry is one row of List: a loaded run, or — when the record is corrupt —
// the id with the diagnostic. A corrupt run is reported, never half-loaded.
type Entry struct {
	ID  string
	Run *Run
	Err error
}

// List returns every committed run in id (= chronological) order. Staging
// leftovers and foreign directories are ignored; corrupt records come back
// as Entry{Err: ...} so callers can surface the diagnostic.
func (s *Store) List() ([]Entry, error) {
	dirents, err := os.ReadDir(s.runsDir())
	if err != nil {
		return nil, fmt.Errorf("registry: listing runs: %w", err)
	}
	var out []Entry
	for _, de := range dirents {
		name := de.Name()
		if strings.HasPrefix(name, ".") || !de.IsDir() || !ValidID(name) {
			continue
		}
		run, err := s.Load(name)
		if err != nil {
			out = append(out, Entry{ID: name, Err: err})
			continue
		}
		out = append(out, Entry{ID: name, Run: run})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// GitRev returns the repository HEAD revision (12 hex chars) for dir, or
// "unknown" when git is unavailable — the registry must keep working from a
// release tarball.
func GitRev(dir string) string {
	cmd := exec.Command("git", "-C", dir, "rev-parse", "--short=12", "HEAD")
	out, err := cmd.Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "unknown"
	}
	return rev
}
