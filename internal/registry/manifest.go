// The manifest format. Each run directory holds:
//
//	manifest.json   RREG1 envelope: {"format","crc32","payload":{...}}
//	<table>.csv     one CSV per result table, named <experiment>-<k>.csv
//	timing.json     volatile facts: creation time, wall/CPU milliseconds
//
// The envelope reuses the RSNP1 integrity discipline from
// internal/riskcache/snapshot.go, adapted to JSON: crc32 is IEEE CRC-32
// over the *compacted* payload bytes, so whitespace-only reformatting is
// harmless but a single flipped bit in any identity field, table checksum,
// or provenance record fails the load. Table files carry their own CRC and
// byte count inside the payload, so a torn CSV is detected without trusting
// file timestamps. timing.json sits outside the CRC on purpose: wall and
// CPU time legitimately differ between a run and its replay, and must never
// make a bit-identical result look corrupt.
package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// manifestFormat tags the envelope; bump it if the payload shape ever
// changes incompatibly.
const manifestFormat = "RREG1"

// ErrCorrupt reports a run record that failed an integrity check — a
// manifest that does not parse, a CRC mismatch, or a table file whose bytes
// disagree with the manifest. Loads fail whole: a corrupt run is never
// half-visible.
var ErrCorrupt = errors.New("registry: corrupt run record")

// ErrNotExist reports a run id with no record in the store.
var ErrNotExist = errors.New("registry: run does not exist")

// Input content-addresses one input a run consumed, e.g. a generated
// benchmark dataset or a belief function.
type Input struct {
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Digest string `json:"digest"`
}

// TableFile describes one stored result table.
type TableFile struct {
	File  string `json:"file"`
	Title string `json:"title,omitempty"`
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
}

// Manifest is the CRC-protected identity of a run: everything the replay
// needs to re-execute it and everything the diff needs to explain it.
type Manifest struct {
	RunID      string          `json:"run_id"`
	Experiment string          `json:"experiment"`
	Title      string          `json:"title,omitempty"`
	Seed       int64           `json:"seed"`
	Quick      bool            `json:"quick"`
	Workers    int             `json:"workers"`
	GitRev     string          `json:"git_rev"`
	ContentKey string          `json:"content_key"`
	Inputs     []Input         `json:"inputs,omitempty"`
	Tables     []TableFile     `json:"tables"`
	Notes      []string        `json:"notes,omitempty"`
	Provenance json.RawMessage `json:"provenance,omitempty"`
}

// Timing holds the volatile per-run measurements, stored beside the
// manifest rather than inside it so they stay out of the integrity check.
type Timing struct {
	CreatedUnixMS int64 `json:"created_unix_ms"`
	WallMS        int64 `json:"wall_ms"`
	CPUMS         int64 `json:"cpu_ms"`
}

type manifestEnvelope struct {
	Format  string          `json:"format"`
	CRC32   uint32          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// crcBytes is IEEE CRC-32 over raw bytes (table files).
func crcBytes(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// payloadCRC is IEEE CRC-32 over the compacted payload bytes.
func payloadCRC(raw json.RawMessage) (uint32, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(buf.Bytes()), nil
}

// encodeManifest renders the envelope with its payload CRC filled in.
func encodeManifest(m *Manifest) ([]byte, error) {
	payload, err := json.MarshalIndent(m, "    ", "  ")
	if err != nil {
		return nil, err
	}
	crc, err := payloadCRC(payload)
	if err != nil {
		return nil, err
	}
	env := manifestEnvelope{Format: manifestFormat, CRC32: crc, Payload: payload}
	data, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// decodeManifest parses and integrity-checks a manifest file's bytes.
func decodeManifest(data []byte) (*Manifest, error) {
	var env manifestEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: manifest does not parse: %v", ErrCorrupt, err)
	}
	if env.Format != manifestFormat {
		return nil, fmt.Errorf("%w: manifest format %q, want %q", ErrCorrupt, env.Format, manifestFormat)
	}
	crc, err := payloadCRC(env.Payload)
	if err != nil {
		return nil, fmt.Errorf("%w: manifest payload does not compact: %v", ErrCorrupt, err)
	}
	if crc != env.CRC32 {
		return nil, fmt.Errorf("%w: manifest crc32 %08x, recorded %08x", ErrCorrupt, crc, env.CRC32)
	}
	var m Manifest
	if err := json.Unmarshal(env.Payload, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest payload does not parse: %v", ErrCorrupt, err)
	}
	return &m, nil
}

// readTiming loads timing.json. Timing is advisory: a missing or corrupt
// timing file yields zero values, never a failed load — it carries no
// replayable fact.
func readTiming(path string) Timing {
	var tm Timing
	data, err := os.ReadFile(path)
	if err != nil {
		return Timing{}
	}
	if err := json.Unmarshal(data, &tm); err != nil {
		return Timing{}
	}
	return tm
}
