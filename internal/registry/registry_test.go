package registry

// Store round-trip and corruption tests, mirroring the snapshot_test.go
// discipline: a record either loads whole and checksum-clean, or fails with
// a diagnostic — never half-loaded. Corruption is simulated the same way
// (truncation, single bit flips) against real on-disk records.

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testStore returns a store with a deterministic clock (1ms per id) and
// entropy, so ids are stable and strictly increasing.
func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var tick int64
	s.now = func() time.Time {
		tick++
		return time.UnixMilli(1700000000000 + tick)
	}
	s.entropy = strings.NewReader(strings.Repeat("registry entropy stream ", 64))
	return s
}

func sampleSpec(exp string, seed int64) RunSpec {
	return RunSpec{
		Experiment: exp,
		Title:      "title of " + exp,
		Seed:       seed,
		Quick:      true,
		Workers:    2,
		GitRev:     "abcdef123456",
		Inputs: []Input{
			{Kind: "dataset", Name: "CONNECT", Digest: "d1"},
			{Kind: "belief", Name: "CONNECT/uniform", Digest: "b1"},
		},
		Tables: []SpecTable{
			{Name: exp + "-0", Title: "t0", CSV: []byte("a,b\n1,2.50\n3,4\n")},
			{Name: exp + "-1", Title: "t1", CSV: []byte("x\nhello\n")},
		},
		Notes:      []string{"a note"},
		Provenance: json.RawMessage(`[{"row":"CONNECT","degraded":false,"wall_ms":12}]`),
		Wall:       1500 * time.Millisecond,
		CPU:        2500 * time.Millisecond,
	}
}

func TestRecordLoadRoundTrip(t *testing.T) {
	s := testStore(t)
	run, err := s.Record(sampleSpec("demo", 7))
	if err != nil {
		t.Fatal(err)
	}
	if !ValidID(run.ID()) {
		t.Fatalf("run id %q is not a valid ULID", run.ID())
	}

	got, err := s.Load(run.ID())
	if err != nil {
		t.Fatal(err)
	}
	m := got.Manifest
	if m.Experiment != "demo" || m.Seed != 7 || !m.Quick || m.Workers != 2 || m.GitRev != "abcdef123456" {
		t.Errorf("identity fields round-trip: %+v", m)
	}
	want := sampleSpec("demo", 7)
	if m.ContentKey == "" || m.ContentKey != want.ContentKey() {
		t.Errorf("content key mismatch: %q", m.ContentKey)
	}
	if len(m.Inputs) != 2 || m.Inputs[0].Digest != "d1" {
		t.Errorf("inputs round-trip: %+v", m.Inputs)
	}
	if len(m.Tables) != 2 || m.Tables[0].File != "demo-0.csv" {
		t.Fatalf("tables round-trip: %+v", m.Tables)
	}
	if got.Timing.WallMS != 1500 || got.Timing.CPUMS != 2500 {
		t.Errorf("timing round-trip: %+v", got.Timing)
	}
	blob, err := s.ReadTable(got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, []byte("a,b\n1,2.50\n3,4\n")) {
		t.Errorf("table bytes round-trip: %q", blob)
	}
}

func TestContentKeyIgnoresInputOrder(t *testing.T) {
	a := sampleSpec("demo", 7)
	b := sampleSpec("demo", 7)
	b.Inputs = []Input{b.Inputs[1], b.Inputs[0]}
	if a.ContentKey() != b.ContentKey() {
		t.Errorf("content key depends on input order")
	}
	c := sampleSpec("demo", 8)
	if a.ContentKey() == c.ContentKey() {
		t.Errorf("content key ignores the seed")
	}
}

func TestIDsMonotonicAndSorted(t *testing.T) {
	s := testStore(t)
	var prev string
	for i := 0; i < 50; i++ {
		run, err := s.Record(RunSpec{Experiment: "demo", Tables: []SpecTable{{Name: "demo-0", CSV: []byte("a\n1\n")}}})
		if err != nil {
			t.Fatal(err)
		}
		if run.ID() <= prev {
			t.Fatalf("id %d (%s) does not sort after its predecessor (%s)", i, run.ID(), prev)
		}
		prev = run.ID()
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 50 {
		t.Fatalf("List returned %d entries, want 50", len(entries))
	}
}

func TestIDsMonotonicWithinOneMillisecond(t *testing.T) {
	s := testStore(t)
	s.now = func() time.Time { return time.UnixMilli(1700000000000) } // frozen clock
	a, err := s.newIDLockedForTest()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.newIDLockedForTest()
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Errorf("same-millisecond ids not monotonic: %s then %s", a, b)
	}
}

func TestLoadMissingAndInvalidIDs(t *testing.T) {
	s := testStore(t)
	if _, err := s.Load("01ARZ3NDEKTSV4RRFFQ69G5FAV"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing run: err = %v, want ErrNotExist", err)
	}
	for _, id := range []string{"", "../../etc/passwd", "short", "01ARZ3NDEKTSV4RRFFQ69G5FAU"} { // U not in alphabet
		if _, err := s.Load(id); err == nil || errors.Is(err, ErrNotExist) {
			t.Errorf("Load(%q) = %v, want invalid-id error", id, err)
		}
	}
}

// corrupt flips one byte in the named file of a run directory.
func corrupt(t *testing.T, s *Store, id, file string, off int) {
	t.Helper()
	path := filepath.Join(s.runsDir(), id, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off = len(data) + off
	}
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlippedManifestIsRejectedWholesale(t *testing.T) {
	s := testStore(t)
	run, err := s.Record(sampleSpec("demo", 7))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the payload (the seed digit region): the CRC must
	// catch it even though the JSON may still parse.
	path := filepath.Join(s.runsDir(), run.ID(), "manifest.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte(`"seed": 7`))
	if i < 0 {
		t.Fatalf("manifest layout changed; no seed field in %s", data)
	}
	data[i+len(`"seed": `)] = '9'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(run.ID()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit-flipped manifest: err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedManifestIsRejected(t *testing.T) {
	s := testStore(t)
	run, err := s.Record(sampleSpec("demo", 7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.runsDir(), run.ID(), "manifest.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(run.ID()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated manifest: err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptTableFailsLoad(t *testing.T) {
	s := testStore(t)
	run, err := s.Record(sampleSpec("demo", 7))
	if err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, run.ID(), "demo-0.csv", 3)
	if _, err := s.Load(run.ID()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt table: err = %v, want ErrCorrupt", err)
	}
}

func TestListSkipsCorruptWithDiagnosticAndKeepsRest(t *testing.T) {
	s := testStore(t)
	good, err := s.Record(sampleSpec("good", 1))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.Record(sampleSpec("bad", 2))
	if err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, bad.ID(), "manifest.json", -2)

	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("List returned %d entries, want 2", len(entries))
	}
	byID := map[string]Entry{}
	for _, e := range entries {
		byID[e.ID] = e
	}
	if e := byID[good.ID()]; e.Err != nil || e.Run == nil {
		t.Errorf("good run: %+v", e)
	}
	if e := byID[bad.ID()]; e.Err == nil || e.Run != nil {
		t.Errorf("corrupt run must surface Err and no Run: %+v", e)
	} else if !errors.Is(e.Err, ErrCorrupt) {
		t.Errorf("corrupt run diagnostic: %v", e.Err)
	}
}

func TestListIgnoresStagingLeftovers(t *testing.T) {
	s := testStore(t)
	if _, err := s.Record(sampleSpec("demo", 1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-record: a dot-prefixed staging directory with a
	// partial table and no manifest.
	stage := filepath.Join(s.runsDir(), ".01FAKEULID.stage-crashed")
	if err := os.MkdirAll(stage, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stage, "demo-0.csv"), []byte("a,b\n1"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a foreign directory that is not a ULID at all.
	if err := os.MkdirAll(filepath.Join(s.runsDir(), "not-a-run"), 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("List returned %d entries, want 1 (staging and foreign dirs ignored)", len(entries))
	}
}

func TestAtomicWriteFileReplacesWholly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := AtomicWriteFile(path, []byte("old contents\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("new\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "new\n" {
		t.Errorf("content = %q", data)
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirents) != 1 {
		t.Errorf("temp files left behind: %v", dirents)
	}
}

func TestRecordRejectsBadTableNames(t *testing.T) {
	s := testStore(t)
	for _, name := range []string{"", "../evil", "a/b", ".hidden"} {
		spec := RunSpec{Experiment: "demo", Tables: []SpecTable{{Name: name, CSV: []byte("a\n")}}}
		if _, err := s.Record(spec); err == nil {
			t.Errorf("Record accepted table name %q", name)
		}
	}
	spec := RunSpec{Experiment: "demo", Tables: []SpecTable{
		{Name: "dup", CSV: []byte("a\n")}, {Name: "dup", CSV: []byte("b\n")},
	}}
	if _, err := s.Record(spec); err == nil {
		t.Errorf("Record accepted duplicate table names")
	}
}

// newIDLockedForTest exposes id minting with the store's lock held, as
// Record does.
func (s *Store) newIDLockedForTest() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.newIDLocked()
}
