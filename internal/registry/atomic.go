// Crash-safe file plumbing, the same temp-file+fsync+rename discipline as
// internal/riskcache's snapshot writer: bytes land in a temporary file in
// the destination directory (so the rename never crosses a filesystem),
// are synced, and only then atomically renamed into place. A crash at any
// point leaves either the old file or no file — never a readable prefix.
package registry

import (
	"os"
	"path/filepath"
)

// AtomicWriteFile writes data to path atomically. cmd/experiments uses it
// for -csv output and the Store uses it for every file inside a staged run
// directory, so a partial table CSV can never be observed at its final name.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name()) // no-op after a successful rename
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// syncDir fsyncs a directory so a just-created entry (file or renamed run
// directory) survives power loss. Errors are returned for the caller to
// surface; some filesystems reject directory fsync, so callers may choose
// to tolerate it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
