package faultinject

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseSchedule(t *testing.T) {
	rules, err := Parse("cache.store:nth=3:err; compute:every=5:latency=200ms;transport:prob=0.25:err; snapshot:nth=1:partial=64; compute:after=10:crash")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("got %d rules, want 5", len(rules))
	}
	if r := rules[0]; r.Op != "cache.store" || r.Nth != 3 || !r.Err {
		t.Errorf("rule 0 = %+v", r)
	}
	if r := rules[1]; r.Op != "compute" || r.Every != 5 || r.Latency != 200*time.Millisecond {
		t.Errorf("rule 1 = %+v", r)
	}
	if r := rules[2]; r.Op != "transport" || r.Prob != 0.25 || !r.Err {
		t.Errorf("rule 2 = %+v", r)
	}
	if r := rules[3]; r.Op != "snapshot" || r.Nth != 1 || !r.PartialSet || r.Partial != 64 {
		t.Errorf("rule 3 = %+v", r)
	}
	if r := rules[4]; r.Op != "compute" || r.After != 10 || !r.Crash {
		t.Errorf("rule 4 = %+v", r)
	}

	if rules, err := Parse("  ; ; "); err != nil || len(rules) != 0 {
		t.Errorf("blank schedule: rules=%v err=%v, want empty, nil", rules, err)
	}

	bad := []string{
		"compute:every=5",            // missing action
		"compute:sometimes:err",      // unknown selector
		"compute:nth=0:err",          // non-positive occurrence
		"compute:prob=1.5:err",       // probability out of range
		"compute:nth=1:explode",      // unknown action
		"compute:nth=1:latency=-3ms", // negative latency
		"compute:nth=1:partial=-1",   // negative byte count
		"compute:nth=1:err=yes",      // err takes no value
		":nth=1:err",                 // empty op
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error", s)
		}
	}
}

func TestSelectors(t *testing.T) {
	in := New(1,
		Rule{Op: "a", Nth: 3, Err: true},
		Rule{Op: "b", Every: 2, Err: true},
		Rule{Op: "c", After: 4, Err: true},
	)
	var aFail, bFail, cFail []int
	for i := 1; i <= 6; i++ {
		if f := in.Eval("a"); f.Err != nil {
			aFail = append(aFail, i)
		}
		if f := in.Eval("b"); f.Err != nil {
			bFail = append(bFail, i)
		}
		if f := in.Eval("c"); f.Err != nil {
			cFail = append(cFail, i)
		}
	}
	if len(aFail) != 1 || aFail[0] != 3 {
		t.Errorf("nth=3 fired on %v, want [3]", aFail)
	}
	if want := []int{2, 4, 6}; len(bFail) != 3 || bFail[0] != 2 || bFail[1] != 4 || bFail[2] != 6 {
		t.Errorf("every=2 fired on %v, want %v", bFail, want)
	}
	if want := []int{5, 6}; len(cFail) != 2 || cFail[0] != 5 || cFail[1] != 6 {
		t.Errorf("after=4 fired on %v, want %v", cFail, want)
	}
}

func TestProbDeterministicForSeed(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed, Rule{Op: "x", Prob: 0.5, Err: true})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Eval("x").Err != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at occurrence %d", i+1)
		}
	}
	fires := 0
	for _, hit := range a {
		if hit {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("prob=0.5 fired %d/%d times; selector looks constant", fires, len(a))
	}
}

func TestFaultComposition(t *testing.T) {
	in := New(1,
		Rule{Op: "x", Nth: 1, Latency: 50 * time.Millisecond},
		Rule{Op: "x", Nth: 1, Latency: 30 * time.Millisecond},
		Rule{Op: "x", Nth: 1, Err: true},
	)
	f := in.Eval("x")
	if f.Latency != 80*time.Millisecond {
		t.Errorf("latencies did not add: %v", f.Latency)
	}
	if !errors.Is(f.Err, ErrInjected) {
		t.Errorf("err rule did not apply: %v", f.Err)
	}
}

func TestApplySleepsAndFails(t *testing.T) {
	in := New(1,
		Rule{Op: "x", Nth: 1, Latency: 250 * time.Millisecond},
		Rule{Op: "x", Nth: 2, Err: true},
		Rule{Op: "x", Nth: 3, Crash: true},
	)
	var slept time.Duration
	in.SetSleep(func(_ context.Context, d time.Duration) error {
		slept += d
		return nil
	})
	if err := in.Apply(context.Background(), "x"); err != nil {
		t.Errorf("occurrence 1: %v, want latency only", err)
	}
	if slept != 250*time.Millisecond {
		t.Errorf("slept %v, want 250ms", slept)
	}
	if err := in.Apply(context.Background(), "x"); !errors.Is(err, ErrInjected) {
		t.Errorf("occurrence 2: %v, want ErrInjected", err)
	}
	if err := in.Apply(context.Background(), "x"); !errors.Is(err, ErrCrash) {
		t.Errorf("occurrence 3: %v, want ErrCrash", err)
	}
	st := in.Stats()["x"]
	if st.Calls != 3 || st.Faults != 3 || st.Errors != 1 || st.Crashes != 1 || st.Delays != 1 {
		t.Errorf("stats = %+v", st)
	}
	if in.TotalFaults() != 3 {
		t.Errorf("TotalFaults = %d, want 3", in.TotalFaults())
	}
}

func TestApplyLatencyRespectsContext(t *testing.T) {
	in := New(1, Rule{Op: "x", Nth: 1, Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Apply(ctx, "x")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("Apply slept past its context")
	}
}

func TestTransport(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	in := New(1, Rule{Op: "transport", Every: 2, Err: true})
	client := &http.Client{Transport: Transport(nil, in, "transport")}
	for i := 1; i <= 4; i++ {
		resp, err := client.Get(backend.URL)
		if i%2 == 0 {
			if err == nil || !errors.Is(err, ErrInjected) {
				t.Errorf("request %d: err = %v, want injected", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
	}
}

func TestWriterPartial(t *testing.T) {
	in := New(1, Rule{Op: "snap", Nth: 2, Partial: 10, PartialSet: true})

	var clean bytes.Buffer
	w := Writer(&clean, in, "snap")
	if _, err := w.Write([]byte("hello world, this flows through")); err != nil {
		t.Fatalf("clean write: %v", err)
	}

	var torn bytes.Buffer
	w = Writer(&torn, in, "snap")
	n, err := w.Write([]byte("0123456"))
	if n != 7 || err != nil {
		t.Fatalf("first chunk: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("789abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("second chunk: n=%d err=%v, want 3 bytes then injected error", n, err)
	}
	if got := torn.String(); got != "0123456789" {
		t.Errorf("torn stream = %q, want exactly the first 10 bytes", got)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("write after cut-off: %v, want injected error", err)
	}
}

func TestWriterErr(t *testing.T) {
	in := New(1, Rule{Op: "snap", Nth: 1, Err: true})
	w := Writer(&strings.Builder{}, in, "snap")
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want injected", err)
	}
}
