// Package faultinject is the deterministic fault injector behind the chaos
// suite (internal/chaos, ci.sh -chaos) and riskd's -fault-schedule flag. The
// robustness claims this repo makes — degraded results never cached, no
// computation lost on drain, a restarted riskd serves warm from its snapshot
// — are only claims until something adversarial exercises them; this package
// is that something, built so every failure it produces is reproducible from
// a seed and a schedule string.
//
// A schedule is a semicolon-separated list of clauses, each
//
//	op ':' selector ':' action
//
// where op names an instrumentation point ("compute", "cache.store",
// "transport", "snapshot" in riskd; any string works), selector picks which
// occurrences fire, and action says what happens:
//
//	selector: nth=K     fire on the Kth occurrence only (1-based)
//	          every=K   fire on every Kth occurrence
//	          after=K   fire on every occurrence past the Kth
//	          prob=P    fire with probability P (seeded, deterministic
//	                    for a fixed seed and call order)
//	action:   err           the operation fails with ErrInjected
//	          latency=DUR   the operation is delayed by DUR first
//	          partial=N     a write is cut off after N bytes (Writer)
//	          crash         the operation fails with ErrCrash, standing in
//	                        for a process death at this point
//
// Example: "cache.store:nth=3:err; compute:every=5:latency=200ms" fails the
// third cache store and slows every fifth computation.
//
// The injector only decides; callers apply. Apply evaluates an op and
// enforces latency + error faults against a context; Transport and Writer
// wrap an http.RoundTripper and an io.Writer the same way. Faults compose:
// when several clauses fire on one occurrence the latencies add, the first
// error-class action (err before crash, in clause order) supplies the
// error, and the smallest partial-write limit wins.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the failure every err-action fault surfaces. Callers and
// tests match it with errors.Is to tell injected trouble from real bugs.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrCrash marks a crash point: the harness treats the operation's owner as
// having died there (abandon the instance, restart, recover), rather than as
// an ordinary failed call.
var ErrCrash = errors.New("faultinject: crash point")

// Fault is the combined decision for one occurrence of an op.
type Fault struct {
	// Latency delays the operation before any error applies.
	Latency time.Duration
	// Err is non-nil when the operation must fail (ErrInjected or ErrCrash,
	// wrapped with the op name).
	Err error
	// Partial is the byte limit for a cut-off write; -1 means no limit.
	Partial int
}

// Rule is one parsed schedule clause.
type Rule struct {
	Op string

	// Exactly one selector is set (non-zero).
	Nth   int
	Every int
	After int
	Prob  float64

	// Exactly one action is set.
	Err        bool
	Crash      bool
	Latency    time.Duration
	Partial    int // valid when PartialSet
	PartialSet bool
}

// fires reports whether the rule triggers on occurrence n (1-based) of its
// op; draw supplies the seeded uniform for prob selectors.
func (r *Rule) fires(n int, draw func() float64) bool {
	switch {
	case r.Nth > 0:
		return n == r.Nth
	case r.Every > 0:
		return n%r.Every == 0
	case r.After > 0:
		return n > r.After
	case r.Prob > 0:
		return draw() < r.Prob
	}
	return false
}

// Parse compiles a schedule string into rules. An empty (or all-whitespace)
// schedule is valid and yields no rules.
func Parse(schedule string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(schedule, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.SplitN(clause, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("faultinject: clause %q: want op:selector:action", clause)
		}
		r := Rule{Op: strings.TrimSpace(parts[0])}
		if r.Op == "" {
			return nil, fmt.Errorf("faultinject: clause %q: empty op", clause)
		}
		if err := parseSelector(&r, strings.TrimSpace(parts[1])); err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: %w", clause, err)
		}
		if err := parseAction(&r, strings.TrimSpace(parts[2])); err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: %w", clause, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseSelector(r *Rule, s string) error {
	key, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("selector %q: want nth=K, every=K, after=K, or prob=P", s)
	}
	switch key {
	case "nth", "every", "after":
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return fmt.Errorf("selector %q: want a positive integer", s)
		}
		switch key {
		case "nth":
			r.Nth = n
		case "every":
			r.Every = n
		case "after":
			r.After = n
		}
	case "prob":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p <= 0 || p > 1 {
			return fmt.Errorf("selector %q: want a probability in (0, 1]", s)
		}
		r.Prob = p
	default:
		return fmt.Errorf("selector %q: unknown kind %q", s, key)
	}
	return nil
}

func parseAction(r *Rule, s string) error {
	key, val, hasVal := strings.Cut(s, "=")
	switch key {
	case "err":
		if hasVal {
			return fmt.Errorf("action %q: err takes no value", s)
		}
		r.Err = true
	case "crash":
		if hasVal {
			return fmt.Errorf("action %q: crash takes no value", s)
		}
		r.Crash = true
	case "latency":
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("action %q: want a positive duration", s)
		}
		r.Latency = d
	case "partial":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("action %q: want a byte count >= 0", s)
		}
		r.Partial = n
		r.PartialSet = true
	default:
		return fmt.Errorf("action %q: unknown kind %q", s, key)
	}
	return nil
}

// OpStats counts one op's traffic through the injector.
type OpStats struct {
	Calls    int64 `json:"calls"`
	Faults   int64 `json:"faults"`
	Errors   int64 `json:"errors"`
	Crashes  int64 `json:"crashes"`
	Delays   int64 `json:"delays"`
	Partials int64 `json:"partials"`
}

// Injector evaluates a schedule against a stream of operation occurrences.
// All methods are safe for concurrent use; for a fixed seed, schedule, and
// sequence of Eval calls the injected faults are identical run to run.
type Injector struct {
	mu     sync.Mutex
	rules  []Rule
	rng    *rand.Rand
	counts map[string]int
	stats  map[string]*OpStats
	sleep  func(ctx context.Context, d time.Duration) error
}

// New builds an injector over rules. seed drives the prob selectors; two
// injectors with the same seed and rules make identical decisions.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rules:  rules,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]int),
		stats:  make(map[string]*OpStats),
		sleep:  ctxSleep,
	}
}

// NewFromSchedule parses schedule and builds an injector in one step.
func NewFromSchedule(seed int64, schedule string) (*Injector, error) {
	rules, err := Parse(schedule)
	if err != nil {
		return nil, err
	}
	return New(seed, rules...), nil
}

// SetSleep replaces the latency sleeper (tests substitute a recorder so
// latency faults don't cost wall-clock time). The default sleeps on a timer
// but returns early with the context's error when it ends first.
func (in *Injector) SetSleep(sleep func(ctx context.Context, d time.Duration) error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sleep = sleep
}

func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Eval records one occurrence of op and returns the combined fault decision.
// A zero Fault (Partial == -1) means "proceed normally".
func (in *Injector) Eval(op string) Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	n := in.counts[op]
	st := in.stats[op]
	if st == nil {
		st = &OpStats{}
		in.stats[op] = st
	}
	st.Calls++

	f := Fault{Partial: -1}
	fired := false
	for i := range in.rules {
		r := &in.rules[i]
		if r.Op != op || !r.fires(n, in.rng.Float64) {
			continue
		}
		fired = true
		switch {
		case r.Err:
			if f.Err == nil {
				f.Err = fmt.Errorf("%w (op %s, occurrence %d)", ErrInjected, op, n)
				st.Errors++
			}
		case r.Crash:
			if f.Err == nil {
				f.Err = fmt.Errorf("%w (op %s, occurrence %d)", ErrCrash, op, n)
				st.Crashes++
			}
		case r.Latency > 0:
			f.Latency += r.Latency
			st.Delays++
		case r.PartialSet:
			if f.Partial < 0 || r.Partial < f.Partial {
				f.Partial = r.Partial
			}
			st.Partials++
		}
	}
	if fired {
		st.Faults++
	}
	return f
}

// Apply evaluates op and enforces the latency and error parts of the
// decision: it sleeps any injected latency (bounded by ctx) and returns the
// injected error, ctx's error, or nil. Partial-write limits don't apply to
// plain operations; use Writer for those.
func (in *Injector) Apply(ctx context.Context, op string) error {
	f := in.Eval(op)
	if f.Latency > 0 {
		in.mu.Lock()
		sleep := in.sleep
		in.mu.Unlock()
		if err := sleep(ctx, f.Latency); err != nil {
			return err
		}
	}
	return f.Err
}

// Stats snapshots the per-op counters, keyed by op name.
func (in *Injector) Stats() map[string]OpStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]OpStats, len(in.stats))
	for op, st := range in.stats {
		out[op] = *st
	}
	return out
}

// TotalFaults sums injected faults across all ops.
func (in *Injector) TotalFaults() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, st := range in.stats {
		n += st.Faults
	}
	return n
}

// Ops returns the op names seen so far, sorted (stable diagnostics).
func (in *Injector) Ops() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	ops := make([]string, 0, len(in.counts))
	for op := range in.counts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// Transport wraps rt so every round trip first passes through the injector
// as op. Injected latency delays the request (respecting the request
// context); injected errors fail it before it reaches the wire, the way a
// dead peer or a dropped connection would. A nil rt wraps
// http.DefaultTransport.
func Transport(rt http.RoundTripper, in *Injector, op string) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &faultTransport{rt: rt, in: in, op: op}
}

type faultTransport struct {
	rt http.RoundTripper
	in *Injector
	op string
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.in.Apply(req.Context(), t.op); err != nil {
		return nil, err
	}
	return t.rt.RoundTrip(req)
}

// Writer wraps w with one fault decision for the whole stream, evaluated
// now: an err/crash decision fails the first Write, and a partial=N decision
// lets N bytes through before failing — the shape of a torn write at a
// process death. With no fault the writer is transparent.
func Writer(w io.Writer, in *Injector, op string) io.Writer {
	f := in.Eval(op)
	return &faultWriter{w: w, f: f}
}

type faultWriter struct {
	w       io.Writer
	f       Fault
	written int
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.f.Err != nil {
		return 0, fw.f.Err
	}
	if fw.f.Partial < 0 {
		return fw.w.Write(p)
	}
	remain := fw.f.Partial - fw.written
	if remain <= 0 {
		return 0, fmt.Errorf("%w (partial write cut off at %d bytes)", ErrInjected, fw.f.Partial)
	}
	if len(p) <= remain {
		n, err := fw.w.Write(p)
		fw.written += n
		return n, err
	}
	n, err := fw.w.Write(p[:remain])
	fw.written += n
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("%w (partial write cut off at %d bytes)", ErrInjected, fw.f.Partial)
}
