// Package cliutil holds the budget and parallelism plumbing shared by the
// cmd/ binaries: the -timeout / -max-work flag pair, the -workers flag, the
// context they induce, and the exit-code convention (0 ok, 1 error, 4 budget
// exhaustion or cancellation; individual commands may add their own domain
// statuses, like anonrisk's 3 for a withhold verdict).
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/budget"
	"repro/internal/faultinject"
	"repro/internal/parallel"
)

// BudgetFlags registers -timeout and -max-work on the default flag set and
// returns a builder to call after flag.Parse. The builder's context carries
// the wall-clock deadline and the per-computation operation limit; its cancel
// func must be deferred.
func BudgetFlags() func() (context.Context, context.CancelFunc) {
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget (e.g. 30s); expensive stages degrade or the command exits 4 (0 = unlimited)")
	maxWork := flag.Int64("max-work", 0,
		"operation-count budget per expensive computation (0 = unlimited)")
	return func() (context.Context, context.CancelFunc) {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		ctx = budget.WithMaxOps(ctx, *maxWork)
		return ctx, cancel
	}
}

// WorkersFlag registers -workers on the default flag set and returns an
// applier to call after flag.Parse. The applier stamps the chosen worker
// count onto the context (parallel.WithWorkers), where every pooled fan-out
// — MCMC chains, α-subset runs, curve points, experiment rows — picks it up.
// The default 0 means GOMAXPROCS; results are bit-identical for a fixed seed
// at any worker count.
func WorkersFlag() func(context.Context) context.Context {
	workers := flag.Int("workers", 0,
		"parallel workers for risk sweeps (0 = GOMAXPROCS); any value yields identical output for a fixed seed")
	return func(ctx context.Context) context.Context {
		return parallel.WithWorkers(ctx, *workers)
	}
}

// ProfileFlags registers -cpuprofile and -memprofile on the default flag set
// and returns a starter to call after flag.Parse. The starter begins CPU
// profiling when requested and returns a stop func to defer: it ends the CPU
// profile and writes the heap profile (after a GC, so the numbers reflect
// live memory, not garbage). Both flags default to off and cost nothing when
// unused — they exist so kernel regressions can be pinned down with pprof
// straight from the experiment harness, no test rig required.
func ProfileFlags() func() (stop func(), err error) {
	cpu := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mem := flag.String("memprofile", "", "write a heap profile to this file on exit")
	return func() (func(), error) {
		var cpuFile *os.File
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			cpuFile = f
		}
		memPath := *mem
		return func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "memprofile:", err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "memprofile:", err)
				}
			}
		}, nil
	}
}

// FaultConfig holds the parsed fault-injection flags. The schedule and seed
// stay accessible as raw values because the chaos selfcheck forwards them to
// internal/chaos rather than building an injector itself.
type FaultConfig struct {
	Schedule *string
	Seed     *int64
}

// Injector builds the configured injector after flag.Parse: nil (no
// injection) when no schedule was given, an error when the schedule does not
// parse.
func (fc *FaultConfig) Injector() (*faultinject.Injector, error) {
	if *fc.Schedule == "" {
		return nil, nil
	}
	return faultinject.NewFromSchedule(*fc.Seed, *fc.Schedule)
}

// FaultFlags registers -fault-schedule and -fault-seed on the default flag
// set. Fault injection is how riskd's robustness claims stay testable
// end-to-end (ci.sh -chaos, riskd -selfcheck-chaos); in normal operation the
// schedule is empty and the flags cost nothing.
func FaultFlags() *FaultConfig {
	return &FaultConfig{
		Schedule: flag.String("fault-schedule", "",
			"deterministic fault-injection schedule (\"op:selector:action; ...\", see internal/faultinject); empty = off"),
		Seed: flag.Int64("fault-seed", 1,
			"seed for probabilistic fault selectors and chaos runs"),
	}
}

// RequestContext derives a per-request work-budget context from a base
// context: the same -timeout / -max-work semantics the CLI binaries apply
// process-wide, applied per unit of served work. riskd uses it so every
// POST /v1/assess gets its own deadline and operation limit while sharing
// the server's base context (worker cap, shutdown). The cancel func must be
// called when the request finishes.
func RequestContext(base context.Context, timeout time.Duration, maxOps int64) (context.Context, context.CancelFunc) {
	ctx := base
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	return budget.WithMaxOps(ctx, maxOps), cancel
}

// Fatal prints the error prefixed with the command name and exits with the
// convention's status: 4 for budget exhaustion or cancellation, 1 otherwise.
func Fatal(name string, err error) {
	fmt.Fprintln(os.Stderr, name+":", err)
	os.Exit(budget.ExitCode(err))
}
