// Package cliutil holds the budget plumbing shared by the cmd/ binaries:
// the -timeout / -max-work flag pair, the context they induce, and the
// exit-code convention (0 ok, 1 error, 4 budget exhaustion or cancellation;
// individual commands may add their own domain statuses, like anonrisk's 3
// for a withhold verdict).
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/budget"
)

// BudgetFlags registers -timeout and -max-work on the default flag set and
// returns a builder to call after flag.Parse. The builder's context carries
// the wall-clock deadline and the per-computation operation limit; its cancel
// func must be deferred.
func BudgetFlags() func() (context.Context, context.CancelFunc) {
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget (e.g. 30s); expensive stages degrade or the command exits 4 (0 = unlimited)")
	maxWork := flag.Int64("max-work", 0,
		"operation-count budget per expensive computation (0 = unlimited)")
	return func() (context.Context, context.CancelFunc) {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		ctx = budget.WithMaxOps(ctx, *maxWork)
		return ctx, cancel
	}
}

// Fatal prints the error prefixed with the command name and exits with the
// convention's status: 4 for budget exhaustion or cancellation, 1 otherwise.
func Fatal(name string, err error) {
	fmt.Fprintln(os.Stderr, name+":", err)
	os.Exit(budget.ExitCode(err))
}
