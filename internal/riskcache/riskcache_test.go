package riskcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
)

func TestKeyDistinctAndStable(t *testing.T) {
	if Key("a", "bc") == Key("ab", "c") {
		t.Error("length-prefixing failed: concatenation collision")
	}
	if Key("x", "y") != Key("x", "y") {
		t.Error("Key not deterministic")
	}
	if Key() == Key("") {
		t.Error("empty part list should differ from one empty part")
	}
}

func TestGetOrComputeHitMissEvict(t *testing.T) {
	c := New[int](2)
	ctx := context.Background()
	compute := func(v int) func() (int, bool, error) {
		return func() (int, bool, error) { return v, true, nil }
	}

	v, src, err := c.GetOrCompute(ctx, "a", compute(1))
	if err != nil || v != 1 || src != Computed {
		t.Fatalf("first = (%d, %v, %v), want (1, computed, nil)", v, src, err)
	}
	v, src, err = c.GetOrCompute(ctx, "a", compute(99))
	if err != nil || v != 1 || src != Hit {
		t.Fatalf("second = (%d, %v, %v), want (1, hit, nil)", v, src, err)
	}

	// Fill beyond capacity: "a" was just used, so "b" is the LRU victim.
	c.GetOrCompute(ctx, "b", compute(2))
	c.GetOrCompute(ctx, "a", compute(99)) // touch a
	c.GetOrCompute(ctx, "c", compute(3))  // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived eviction")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries, 1 eviction", st)
	}
}

func TestErrorsAndUncacheableNotStored(t *testing.T) {
	c := New[int](4)
	ctx := context.Background()

	calls := 0
	fail := func() (int, bool, error) { calls++; return 0, true, errors.New("boom") }
	if _, _, err := c.GetOrCompute(ctx, "k", fail); err == nil {
		t.Fatal("want error")
	}
	if _, _, err := c.GetOrCompute(ctx, "k", fail); err == nil {
		t.Fatal("want error on retry (errors are not cached)")
	}
	if calls != 2 {
		t.Errorf("failed compute ran %d times, want 2 (no caching of errors)", calls)
	}

	degraded := func() (int, bool, error) { return 7, false, nil }
	v, src, err := c.GetOrCompute(ctx, "d", degraded)
	if err != nil || v != 7 || src != Computed {
		t.Fatalf("degraded = (%d, %v, %v)", v, src, err)
	}
	if _, ok := c.Get("d"); ok {
		t.Error("uncacheable result must not be stored")
	}
}

func TestSingleFlightDedup(t *testing.T) {
	c := New[int](4)
	ctx := context.Background()
	var computes atomic.Int64
	release := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	srcs := make([]Source, waiters)
	vals := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, src, err := c.GetOrCompute(ctx, "shared", func() (int, bool, error) {
				computes.Add(1)
				<-release
				return 42, true, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			vals[i], srcs[i] = v, src
		}(i)
	}
	// Wait until one leader is in flight, then let everyone through.
	deadline := time.After(5 * time.Second)
	for computes.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no leader started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under %d concurrent identical calls, want 1", n, waiters)
	}
	nComputed, nCoalesced := 0, 0
	for i := range srcs {
		if vals[i] != 42 {
			t.Errorf("waiter %d got %d, want 42", i, vals[i])
		}
		switch srcs[i] {
		case Computed:
			nComputed++
		case Coalesced:
			nCoalesced++
		default:
			t.Errorf("waiter %d: unexpected source %v", i, srcs[i])
		}
	}
	if nComputed != 1 || nCoalesced != waiters-1 {
		t.Errorf("sources: %d computed, %d coalesced; want 1 and %d", nComputed, nCoalesced, waiters-1)
	}
	if st := c.Stats(); st.Coalesced != waiters-1 {
		t.Errorf("Stats.Coalesced = %d, want %d", st.Coalesced, waiters-1)
	}
}

func TestCoalescedWaiterRespectsOwnContext(t *testing.T) {
	c := New[int](4)
	release := make(chan struct{})
	defer close(release)

	started := make(chan struct{})
	go c.GetOrCompute(context.Background(), "slow", func() (int, bool, error) {
		close(started)
		<-release
		return 1, true, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, src, err := c.GetOrCompute(ctx, "slow", func() (int, bool, error) {
		t.Error("second caller must coalesce, not compute")
		return 0, false, nil
	})
	if src != Coalesced {
		t.Errorf("source = %v, want coalesced", src)
	}
	if !errors.Is(err, budget.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New[string](8)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			want := fmt.Sprintf("v%d", i%4)
			v, _, err := c.GetOrCompute(ctx, key, func() (string, bool, error) {
				return want, true, nil
			})
			if err != nil || v != want {
				t.Errorf("key %s = (%q, %v), want %q", key, v, err, want)
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}
