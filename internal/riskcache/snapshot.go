// Snapshot persistence: a restarted riskd should serve its hot releases
// warm instead of recomputing a cache that took hours of assessment work to
// fill. The format is built for crash safety rather than speed — a snapshot
// is written beside the live file and atomically renamed over it, so a
// process death mid-write can never destroy the previous good snapshot, and
// every entry carries its own checksum so a torn or bit-rotted file
// degrades entry-by-entry instead of all-or-nothing.
//
// File layout (all integers little-endian):
//
//	magic   "RSNP1\n"
//	entry*  u32 keyLen | key | u32 valLen | val | u32 crc
//
// where crc is IEEE CRC-32 over the two length prefixes, the key, and the
// value. Entries are dumped oldest-first so a load that inserts in file
// order reconstructs the LRU recency order exactly.
package riskcache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

var snapMagic = []byte("RSNP1\n")

// ErrSkipEntry is returned by an encode callback to leave one entry out of
// the snapshot without failing the whole write. The server's encoder uses
// it as the belt-and-suspenders enforcement of the never-snapshot-degraded
// invariant.
var ErrSkipEntry = errors.New("riskcache: skip snapshot entry")

// ErrBadSnapshot reports a file that is not a snapshot at all (wrong or
// truncated magic). Loaders treat it as "no snapshot", not as fatal.
var ErrBadSnapshot = errors.New("riskcache: not a snapshot file")

// Entry limits: a corrupt length prefix must not make the loader allocate
// gigabytes before the checksum can catch it.
const (
	maxSnapKeyLen = 1 << 20  // 1 MiB
	maxSnapValLen = 64 << 20 // 64 MiB
)

type snapEntry[V any] struct {
	key string
	val V
}

// dump copies the completed entries oldest-first under the lock; encoding
// and I/O happen outside it.
func (c *Cache[V]) dump() []snapEntry[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]snapEntry[V], 0, c.ll.Len())
	for ele := c.ll.Back(); ele != nil; ele = ele.Prev() {
		e := ele.Value.(*entry[V])
		out = append(out, snapEntry[V]{key: e.key, val: e.val})
	}
	return out
}

// WriteSnapshot streams the cache's completed entries to w in snapshot
// format. encode serializes one value; returning ErrSkipEntry omits that
// entry, any other error aborts the write. Returns the number of entries
// written.
func (c *Cache[V]) WriteSnapshot(w io.Writer, encode func(V) ([]byte, error)) (int, error) {
	if _, err := w.Write(snapMagic); err != nil {
		return 0, err
	}
	var lens [8]byte
	written := 0
	for _, e := range c.dump() {
		data, err := encode(e.val)
		if err != nil {
			if errors.Is(err, ErrSkipEntry) {
				continue
			}
			return written, fmt.Errorf("riskcache: encoding snapshot entry %s: %w", e.key, err)
		}
		binary.LittleEndian.PutUint32(lens[0:4], uint32(len(e.key)))
		binary.LittleEndian.PutUint32(lens[4:8], uint32(len(data)))
		crc := crc32.NewIEEE()
		crc.Write(lens[:])
		crc.Write([]byte(e.key))
		crc.Write(data)
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
		for _, chunk := range [][]byte{lens[:4], []byte(e.key), lens[4:8], data, sum[:]} {
			if _, err := w.Write(chunk); err != nil {
				return written, err
			}
		}
		written++
	}
	return written, nil
}

// ReadSnapshot loads entries from r into the cache. decode deserializes one
// value and reports whether to accept it — the server's decoder rejects
// anything degraded, so the never-cache-degraded invariant survives even a
// forged or stale snapshot. Existing entries are never overwritten (live
// data beats snapshot data).
//
// Corruption is contained per entry: a checksum mismatch or a rejected
// value is counted in skipped and the load continues, while a torn tail
// (truncated mid-entry) or an implausible length prefix stops the load with
// what was recovered so far. Only r's own read errors are returned as err;
// a non-snapshot stream returns ErrBadSnapshot.
func (c *Cache[V]) ReadSnapshot(r io.Reader, decode func([]byte) (V, bool, error)) (loaded, skipped int, err error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, ErrBadSnapshot
		}
		return 0, 0, err
	}
	if string(magic) != string(snapMagic) {
		return 0, 0, ErrBadSnapshot
	}

	var lens [8]byte
	for {
		// Key length: a clean EOF here is the normal end of the file.
		if _, err := io.ReadFull(br, lens[0:4]); err != nil {
			if errors.Is(err, io.EOF) {
				return loaded, skipped, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return loaded, skipped + 1, nil // torn tail
			}
			return loaded, skipped, err
		}
		keyLen := binary.LittleEndian.Uint32(lens[0:4])
		if keyLen > maxSnapKeyLen {
			return loaded, skipped + 1, nil // corrupt length: cannot resync
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(br, key); err != nil {
			return loaded, skipped + 1, readErrOrNil(err)
		}
		if _, err := io.ReadFull(br, lens[4:8]); err != nil {
			return loaded, skipped + 1, readErrOrNil(err)
		}
		valLen := binary.LittleEndian.Uint32(lens[4:8])
		if valLen > maxSnapValLen {
			return loaded, skipped + 1, nil
		}
		val := make([]byte, valLen)
		if _, err := io.ReadFull(br, val); err != nil {
			return loaded, skipped + 1, readErrOrNil(err)
		}
		var sum [4]byte
		if _, err := io.ReadFull(br, sum[:]); err != nil {
			return loaded, skipped + 1, readErrOrNil(err)
		}

		crc := crc32.NewIEEE()
		crc.Write(lens[:])
		crc.Write(key)
		crc.Write(val)
		if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
			skipped++ // lengths were plausible, so the stream stays framed
			continue
		}
		v, accept, err := decode(val)
		if err != nil || !accept {
			skipped++
			continue
		}
		c.mu.Lock()
		_, exists := c.entries[string(key)]
		if !exists {
			c.add(string(key), v)
		}
		c.mu.Unlock()
		if exists {
			skipped++
		} else {
			loaded++
		}
	}
}

// readErrOrNil maps a torn read (unexpected EOF) to nil — the caller
// already counted the entry as skipped — and keeps real I/O errors.
func readErrOrNil(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return nil
	}
	return err
}

// SaveFile writes a snapshot to path crash-safely: the bytes go to a
// temporary file in the same directory (so the rename stays within one
// filesystem), are synced, and only then atomically renamed over path. A
// failure at any point leaves the previous snapshot untouched. wrap, when
// non-nil, interposes on the data stream — the fault-injection harness uses
// it to tear writes mid-snapshot and prove exactly that.
func (c *Cache[V]) SaveFile(path string, encode func(V) ([]byte, error), wrap func(io.Writer) io.Writer) (int, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return 0, err
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name()) // no-op after a successful rename
	}()

	var w io.Writer = tmp
	if wrap != nil {
		w = wrap(tmp)
	}
	bw := bufio.NewWriter(w)
	n, err := c.WriteSnapshot(bw, encode)
	if err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return n, nil
}

// LoadFile loads the snapshot at path into the cache with ReadSnapshot
// semantics. A missing file is not an error — a cold start is normal — and
// returns (0, 0, nil); a file that is not a snapshot returns ErrBadSnapshot.
func (c *Cache[V]) LoadFile(path string, decode func([]byte) (V, bool, error)) (loaded, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	defer f.Close()
	return c.ReadSnapshot(f, decode)
}
