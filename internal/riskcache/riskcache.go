// Package riskcache is the content-addressed assessment cache behind riskd
// (cmd/riskd, internal/server). Re-identification risk scoring is a repeated,
// per-release query: the same published table gets assessed many times — by
// different reviewers, dashboards, or retries — under the same belief spec
// and options. Every one of those computations is a pure function of
// (dataset digest, canonicalized belief digest, options), so the cache keys
// on exactly that triple and turns repeats into O(1) lookups.
//
// Two mechanisms compose:
//
//   - A bounded LRU over completed results. Entries are immutable once
//     stored; eviction is least-recently-used so the hot releases stay
//     resident under memory pressure.
//   - Single-flight deduplication over in-progress computations. Concurrent
//     identical requests share one computation: the first caller computes,
//     the rest wait on its result (or their own context, whichever ends
//     first). A thundering herd against one release costs one assessment.
//
// The compute callback decides cacheability: degraded results — produced
// under deadline pressure that a later, less-loaded run would not hit — are
// shared with concurrent waiters but not stored, so a transiently overloaded
// server does not pin a conservative answer forever.
package riskcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"repro/internal/budget"
)

// Key builds a content address from the parts that determine an assessment:
// each part is length-prefixed before hashing, so distinct part lists cannot
// collide by concatenation ("ab","c" vs "a","bc").
func Key(parts ...string) string {
	h := sha256.New()
	var buf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(p)))
		h.Write(buf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Source says how a GetOrCompute call obtained its value.
type Source int

const (
	// Computed: this caller ran the computation.
	Computed Source = iota
	// Hit: the value came from the LRU.
	Hit
	// Coalesced: an identical in-flight computation was joined.
	Coalesced
)

func (s Source) String() string {
	switch s {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "unknown"
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Coalesced int64 `json:"coalesced"`
	// StoreFailed counts computed results that could not be stored because
	// the store hook refused (fault injection, or a real admission policy).
	// The result was still returned to its callers; only the caching was
	// lost, so the next identical request recomputes.
	StoreFailed int64 `json:"store_failed"`
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type entry[V any] struct {
	key string
	val V
}

// Cache is the content-addressed LRU with single-flight deduplication. The
// zero value is not usable; construct with New. All methods are safe for
// concurrent use.
type Cache[V any] struct {
	mu          sync.Mutex
	maxEntries  int
	ll          *list.List
	entries     map[string]*list.Element
	inflight    map[string]*call[V]
	storeHook   func(key string) error
	hits        int64
	misses      int64
	evictions   int64
	coalesced   int64
	storeFailed int64
}

// New creates a cache holding at most maxEntries completed results
// (maxEntries <= 0 means an unbounded cache).
func New[V any](maxEntries int) *Cache[V] {
	return &Cache[V]{
		maxEntries: maxEntries,
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
		inflight:   make(map[string]*call[V]),
	}
}

// SetStoreHook installs a gate in front of every store of a computed
// result: a non-nil error from the hook skips the store (the value is still
// returned to callers) and bumps Stats.StoreFailed. The fault-injection
// harness uses it to model a cache backend that drops writes; nil removes
// the gate. Not safe to call concurrently with GetOrCompute — install it
// before serving.
func (c *Cache[V]) SetStoreHook(hook func(key string) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeHook = hook
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ele, ok := c.entries[key]; ok {
		c.ll.MoveToFront(ele)
		c.hits++
		return ele.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put stores val under key unconditionally, marking it most recently used
// and evicting the oldest entry on overflow. It is the registration path for
// values that arrive outside a computation — e.g. the delta endpoint's
// base-table registry, where the table IS the content rather than something
// computed from it.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(key, val)
}

// GetOrCompute returns the value for key, computing it at most once across
// concurrent callers:
//
//   - On an LRU hit the stored value returns immediately (Source Hit).
//   - When an identical computation is already in flight, the call blocks
//     until it finishes and shares its value and error (Source Coalesced).
//     ctx bounds only the wait: if it ends first, the caller gets the typed
//     budget error while the leader's computation keeps running for the
//     others.
//   - Otherwise this caller runs compute (Source Computed). compute returns
//     (value, cacheable, error); the value is stored only when the error is
//     nil and cacheable is true, so callers can share degraded results with
//     the coalesced waiters without pinning them in the cache. Errors are
//     never cached: the next request retries.
func (c *Cache[V]) GetOrCompute(ctx context.Context, key string, compute func() (V, bool, error)) (V, Source, error) {
	c.mu.Lock()
	if ele, ok := c.entries[key]; ok {
		c.ll.MoveToFront(ele)
		c.hits++
		c.mu.Unlock()
		return ele.Value.(*entry[V]).val, Hit, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, Coalesced, cl.err
		case <-ctx.Done():
			var zero V
			return zero, Coalesced, budget.WrapContextErr(ctx.Err())
		}
	}
	cl := &call[V]{done: make(chan struct{})}
	c.inflight[key] = cl
	c.misses++
	c.mu.Unlock()

	val, cacheable, err := compute()
	cl.val, cl.err = val, err
	close(cl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil && cacheable {
		if c.storeHook != nil {
			if hookErr := c.storeHook(key); hookErr != nil {
				c.storeFailed++
			} else {
				c.add(key, val)
			}
		} else {
			c.add(key, val)
		}
	}
	c.mu.Unlock()
	return val, Computed, err
}

// add inserts under c.mu, evicting the least recently used entry on overflow.
func (c *Cache[V]) add(key string, val V) {
	if ele, ok := c.entries[key]; ok {
		c.ll.MoveToFront(ele)
		ele.Value.(*entry[V]).val = val
		return
	}
	c.entries[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
	if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry[V]).key)
		c.evictions++
	}
}

// Len returns the number of completed results currently cached.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:     c.ll.Len(),
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Coalesced:   c.coalesced,
		StoreFailed: c.storeFailed,
	}
}
