package riskcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func strEncode(v string) ([]byte, error)       { return []byte(v), nil }
func strDecode(b []byte) (string, bool, error) { return string(b), true, nil }

// fill inserts n entries k0..k(n-1) -> v0.. in insertion order (k0 oldest).
func fill(c *Cache[string], n int) {
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		c.GetOrCompute(context.Background(), key, func() (string, bool, error) {
			return fmt.Sprintf("v%d", i), true, nil
		})
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := New[string](0)
	fill(src, 5)

	var buf bytes.Buffer
	n, err := src.WriteSnapshot(&buf, strEncode)
	if err != nil || n != 5 {
		t.Fatalf("WriteSnapshot: n=%d err=%v", n, err)
	}

	dst := New[string](0)
	loaded, skipped, err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()), strDecode)
	if err != nil || loaded != 5 || skipped != 0 {
		t.Fatalf("ReadSnapshot: loaded=%d skipped=%d err=%v", loaded, skipped, err)
	}
	for i := 0; i < 5; i++ {
		v, ok := dst.Get(fmt.Sprintf("k%d", i))
		if !ok || v != fmt.Sprintf("v%d", i) {
			t.Errorf("k%d = %q, %v", i, v, ok)
		}
	}
}

func TestSnapshotPreservesLRUOrder(t *testing.T) {
	src := New[string](0)
	fill(src, 4) // k0 oldest ... k3 newest
	var buf bytes.Buffer
	if _, err := src.WriteSnapshot(&buf, strEncode); err != nil {
		t.Fatal(err)
	}

	// Load into a cache whose capacity will evict exactly one entry on the
	// next insert: the evictee must be k0, the oldest at snapshot time.
	dst := New[string](4)
	if loaded, _, err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()), strDecode); err != nil || loaded != 4 {
		t.Fatalf("loaded=%d err=%v", loaded, err)
	}
	dst.GetOrCompute(context.Background(), "new", func() (string, bool, error) { return "x", true, nil })
	if _, ok := dst.Get("k0"); ok {
		t.Error("k0 survived eviction; snapshot did not preserve recency order")
	}
	if _, ok := dst.Get("k3"); !ok {
		t.Error("k3 (newest) was evicted; snapshot did not preserve recency order")
	}
}

func TestSnapshotSkipsEncodeSkipEntries(t *testing.T) {
	src := New[string](0)
	fill(src, 4)
	var buf bytes.Buffer
	n, err := src.WriteSnapshot(&buf, func(v string) ([]byte, error) {
		if v == "v2" {
			return nil, ErrSkipEntry
		}
		return []byte(v), nil
	})
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v, want 3 entries", n, err)
	}
	dst := New[string](0)
	loaded, _, err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()), strDecode)
	if err != nil || loaded != 3 {
		t.Fatalf("loaded=%d err=%v", loaded, err)
	}
	if _, ok := dst.Get("k2"); ok {
		t.Error("skipped entry k2 reappeared after the round trip")
	}
}

func TestSnapshotDecodeRejection(t *testing.T) {
	src := New[string](0)
	fill(src, 3)
	var buf bytes.Buffer
	src.WriteSnapshot(&buf, strEncode)

	dst := New[string](0)
	loaded, skipped, err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()),
		func(b []byte) (string, bool, error) {
			return string(b), string(b) != "v1", nil // reject v1
		})
	if err != nil || loaded != 2 || skipped != 1 {
		t.Fatalf("loaded=%d skipped=%d err=%v, want 2/1/nil", loaded, skipped, err)
	}
	if _, ok := dst.Get("k1"); ok {
		t.Error("rejected entry was loaded anyway")
	}
}

func TestSnapshotTornTail(t *testing.T) {
	src := New[string](0)
	fill(src, 5)
	var buf bytes.Buffer
	src.WriteSnapshot(&buf, strEncode)

	// Cut the file mid-way through the last entry: the prefix must load.
	torn := buf.Bytes()[:buf.Len()-7]
	dst := New[string](0)
	loaded, skipped, err := dst.ReadSnapshot(bytes.NewReader(torn), strDecode)
	if err != nil {
		t.Fatalf("torn tail returned error: %v", err)
	}
	if loaded != 4 || skipped != 1 {
		t.Errorf("loaded=%d skipped=%d, want 4 loaded and the torn tail skipped", loaded, skipped)
	}
}

func TestSnapshotCorruptEntrySkippedOthersLoad(t *testing.T) {
	src := New[string](0)
	fill(src, 3)
	var buf bytes.Buffer
	src.WriteSnapshot(&buf, strEncode)

	// Flip one byte inside the middle entry's value ("v1"); its checksum
	// fails, the neighbors still load.
	raw := buf.Bytes()
	idx := bytes.Index(raw, []byte("v1"))
	if idx < 0 {
		t.Fatal("fixture: value v1 not found in snapshot bytes")
	}
	raw[idx+1] ^= 0xff
	dst := New[string](0)
	loaded, skipped, err := dst.ReadSnapshot(bytes.NewReader(raw), strDecode)
	if err != nil {
		t.Fatalf("corrupt entry returned error: %v", err)
	}
	if loaded != 2 || skipped != 1 {
		t.Errorf("loaded=%d skipped=%d, want 2/1", loaded, skipped)
	}
	if _, ok := dst.Get("k1"); ok {
		t.Error("corrupt entry k1 was loaded")
	}
	for _, k := range []string{"k0", "k2"} {
		if _, ok := dst.Get(k); !ok {
			t.Errorf("healthy entry %s lost to a neighbor's corruption", k)
		}
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	dst := New[string](0)
	for _, junk := range []string{"", "RS", "not a snapshot at all"} {
		_, _, err := dst.ReadSnapshot(strings.NewReader(junk), strDecode)
		if !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("junk %q: err = %v, want ErrBadSnapshot", junk, err)
		}
	}
}

func TestSnapshotDoesNotOverwriteLiveEntries(t *testing.T) {
	src := New[string](0)
	fill(src, 2)
	var buf bytes.Buffer
	src.WriteSnapshot(&buf, strEncode)

	dst := New[string](0)
	dst.GetOrCompute(context.Background(), "k0", func() (string, bool, error) {
		return "live", true, nil
	})
	loaded, _, err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()), strDecode)
	if err != nil || loaded != 1 {
		t.Fatalf("loaded=%d err=%v, want only the missing entry", loaded, err)
	}
	if v, _ := dst.Get("k0"); v != "live" {
		t.Errorf("k0 = %q; snapshot clobbered a live entry", v)
	}
}

func TestSaveFileAtomicOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")

	good := New[string](0)
	fill(good, 3)
	if n, err := good.SaveFile(path, strEncode, nil); err != nil || n != 3 {
		t.Fatalf("SaveFile: n=%d err=%v", n, err)
	}

	// A failing writer must leave the previous snapshot byte-identical and
	// no temp litter behind.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bigger := New[string](0)
	fill(bigger, 6)
	boom := errors.New("disk full")
	_, err = bigger.SaveFile(path, strEncode, func(w io.Writer) io.Writer {
		return failAfter{w: w, n: 10, err: boom}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("SaveFile with failing writer: err=%v, want the writer's error", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save modified the previous snapshot")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp files left behind: %v", ents)
	}

	// The surviving snapshot still loads.
	dst := New[string](0)
	if loaded, _, err := dst.LoadFile(path, strDecode); err != nil || loaded != 3 {
		t.Errorf("previous snapshot unloadable after failed save: loaded=%d err=%v", loaded, err)
	}
}

type failAfter struct {
	w   io.Writer
	n   int
	err error
}

func (f failAfter) Write(p []byte) (int, error) {
	if len(p) > f.n {
		return 0, f.err
	}
	return f.w.Write(p)
}

func TestLoadFileMissingIsCold(t *testing.T) {
	dst := New[string](0)
	loaded, skipped, err := dst.LoadFile(filepath.Join(t.TempDir(), "nope.snap"), strDecode)
	if loaded != 0 || skipped != 0 || err != nil {
		t.Errorf("missing file: %d/%d/%v, want 0/0/nil", loaded, skipped, err)
	}
}

func TestStoreHook(t *testing.T) {
	c := New[string](0)
	fail := true
	c.SetStoreHook(func(key string) error {
		if fail {
			return errors.New("injected store failure")
		}
		return nil
	})
	v, src, err := c.GetOrCompute(context.Background(), "k", func() (string, bool, error) {
		return "v", true, nil
	})
	if err != nil || v != "v" || src != Computed {
		t.Fatalf("first call: %q %v %v", v, src, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("entry stored despite failing hook")
	}
	if st := c.Stats(); st.StoreFailed != 1 {
		t.Errorf("StoreFailed = %d, want 1", st.StoreFailed)
	}

	fail = false
	if _, src, _ := c.GetOrCompute(context.Background(), "k", func() (string, bool, error) {
		return "v", true, nil
	}); src != Computed {
		t.Fatalf("second call source %v, want Computed (first was never stored)", src)
	}
	if _, ok := c.Get("k"); !ok {
		t.Error("entry missing after hook allowed the store")
	}
}
