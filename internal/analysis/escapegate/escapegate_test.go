package escapegate

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// transcript is a canned -gcflags=-m stderr capture: package headers,
// inlining chatter, non-escaping params, multi-line -m=2 flow notes, and
// the three diagnostic shapes the parser must keep.
const transcript = `# repro/internal/bipartite
internal/bipartite/delta.go:52:95: ~r0 escapes to heap
internal/bipartite/delta.go:60:12: moved to heap: y
internal/bipartite/graph.go:70:6: can inline groupRange
internal/bipartite/graph.go:81:14: b does not escape
internal/bipartite/graph.go:88:20: &lo escapes to heap
	flow: {heap} = &lo:
	  from &lo (address-of) at internal/bipartite/graph.go:88:20
# repro/internal/core
internal/core/exact.go:40:9: make([]bool, n) escapes to heap
internal/core/exact.go:40:9: make([]bool, n) escapes to heap
not-a-position line without enough colons
internal/core/exact.go:bad:9: unparseable position escapes to heap
`

func TestParse(t *testing.T) {
	diags, err := Parse(strings.NewReader(transcript))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Diag{
		{Pkg: "repro/internal/bipartite", File: "internal/bipartite/delta.go", Line: 52, Col: 95, Message: "~r0 escapes to heap"},
		{Pkg: "repro/internal/bipartite", File: "internal/bipartite/delta.go", Line: 60, Col: 12, Message: "moved to heap: y"},
		{Pkg: "repro/internal/bipartite", File: "internal/bipartite/graph.go", Line: 88, Col: 20, Message: "&lo escapes to heap"},
		{Pkg: "repro/internal/core", File: "internal/core/exact.go", Line: 40, Col: 9, Message: "make([]bool, n) escapes to heap"},
		{Pkg: "repro/internal/core", File: "internal/core/exact.go", Line: 40, Col: 9, Message: "make([]bool, n) escapes to heap"},
	}
	if !reflect.DeepEqual(diags, want) {
		t.Errorf("Parse:\n got %+v\nwant %+v", diags, want)
	}
}

func TestAttribute(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func Free(n int) []int {
	s := make([]int, n)
	return s
}

type Box struct{ v int }

func (b *Box) Fill(n int) *int {
	x := n
	return &x
}

var sink = func() *int { y := 1; return &y }()
`
	if err := os.MkdirAll(filepath.Join(dir, "pkg"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pkg", "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diag{
		{Pkg: "x/pkg", File: "pkg/p.go", Line: 4, Message: "make([]int, n) escapes to heap"},
		{Pkg: "x/pkg", File: "pkg/p.go", Line: 11, Message: "moved to heap: x"},
		{Pkg: "x/pkg", File: "pkg/p.go", Line: 15, Message: "moved to heap: y"},
		{Pkg: "x/pkg", File: "pkg/missing.go", Line: 1, Message: "moved to heap: z"},
	}
	got := Attribute(diags, dir)
	want := Baseline{
		{Pkg: "x/pkg", Fn: "Free", Message: "make([]int, n) escapes to heap"}: 1,
		{Pkg: "x/pkg", Fn: "Box.Fill", Message: "moved to heap: x"}:           1,
		{Pkg: "x/pkg", Fn: "(init)", Message: "moved to heap: y"}:             1,
		{Pkg: "x/pkg", Fn: "(init)", Message: "moved to heap: z"}:             1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Attribute:\n got %v\nwant %v", got, want)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := Baseline{
		{Pkg: "a", Fn: "F", Message: "moved to heap: x"}:       2,
		{Pkg: "a", Fn: "T.M", Message: "&y escapes to heap"}:   1,
		{Pkg: "b", Fn: "(init)", Message: "z escapes to heap"}: 3,
	}
	var sb strings.Builder
	if err := WriteBaseline(&sb, b); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	got, err := ParseBaseline(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseBaseline: %v\n%s", err, sb.String())
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("round trip:\n got %v\nwant %v", got, b)
	}
	// Deterministic output: writing again yields the identical file.
	var sb2 strings.Builder
	if err := WriteBaseline(&sb2, b); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("WriteBaseline is not deterministic")
	}
}

func TestDiff(t *testing.T) {
	e1 := Entry{Pkg: "a", Fn: "F", Message: "moved to heap: x"}
	e2 := Entry{Pkg: "a", Fn: "G", Message: "&y escapes to heap"}
	e3 := Entry{Pkg: "b", Fn: "H", Message: "z escapes to heap"}

	if p := Diff(Baseline{e1: 1, e2: 2}, Baseline{e1: 1, e2: 2}); len(p) != 0 {
		t.Errorf("equal baselines: got problems %v", p)
	}
	p := Diff(Baseline{e1: 2, e3: 1}, Baseline{e1: 1, e2: 1})
	if len(p) != 3 {
		t.Fatalf("got %d problems, want 3: %v", len(p), p)
	}
	if !strings.Contains(p[0], "new escape") || !strings.Contains(p[0], "a F") {
		t.Errorf("p[0] = %q, want grown-count new escape for a.F", p[0])
	}
	if !strings.Contains(p[1], "stale baseline entry") {
		t.Errorf("p[1] = %q, want stale entry for a.G", p[1])
	}
	if !strings.Contains(p[2], "new escape") || !strings.Contains(p[2], "b H") {
		t.Errorf("p[2] = %q, want new escape for b.H", p[2])
	}
}

// TestGateLive runs the real gate against the committed baseline, so `go
// test` itself notices when kernel escape behaviour drifts from what is
// checked in. Skipped in -short: it shells out to go build.
func TestGateLive(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	problems, err := Check("../../..")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for _, p := range problems {
		t.Errorf("escape gate: %s", p)
	}
}
