// Package escapegate is a static escape-analysis gate for the numeric
// kernels. It runs the compiler's own escape analysis (go build
// -gcflags=-m) over the kernel packages, attributes every "escapes to
// heap" / "moved to heap" diagnostic to its enclosing function, and diffs
// the result against a committed baseline. A new escape — a value that
// used to stay on the stack and now does not — fails the gate before a
// profiler has to find it; a stale baseline entry (an escape that no
// longer happens) also fails, so the baseline never rots into an
// allow-everything list. Regenerate with riskvet -escape-update after a
// deliberate change.
//
// The gate needs no cache-busting: the Go build cache replays compiler
// diagnostics on cached compiles, so repeated runs are cheap and still
// see the full transcript.
package escapegate

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Packages are the kernel packages the gate watches: the inner-loop code
// where an accidental heap escape is a real regression. Mirrors
// loopbudget.Packages — the same packages whose loops must stay budgeted
// must also stay allocation-stable.
var Packages = []string{
	"repro/internal/bipartite",
	"repro/internal/matching",
	"repro/internal/core",
}

// BaselinePath is the committed baseline, relative to the module root.
const BaselinePath = "internal/analysis/escapegate/baseline.txt"

// Diag is one escape diagnostic from the compiler transcript.
type Diag struct {
	Pkg     string // import path, from the preceding "# pkg" header
	File    string // as printed by the compiler, relative to the build dir
	Line    int
	Col     int
	Message string // e.g. "moved to heap: y", "&x escapes to heap"
}

// Entry keys the baseline: diagnostics are aggregated per (package,
// function, message) rather than per line, so pure line-number churn from
// unrelated edits does not invalidate the baseline while a genuinely new
// escape still does.
type Entry struct {
	Pkg     string
	Fn      string // receiver-qualified function name, "(init)" at top level
	Message string
}

// Baseline maps entries to how many source positions report them.
type Baseline map[Entry]int

// Parse extracts escape diagnostics from a -gcflags=-m build transcript.
// "# import/path" headers attribute the lines that follow; lines that do
// not report an escape (inlining notes, "does not escape", bare errors)
// are ignored.
func Parse(r io.Reader) ([]Diag, error) {
	var (
		out []Diag
		pkg string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		d, ok := parseLine(line)
		if !ok {
			continue
		}
		d.Pkg = pkg
		out = append(out, d)
	}
	return out, sc.Err()
}

// parseLine parses "file.go:line:col: message", keeping only escape
// reports. The multi-line explanations of -m=2 (indented "flow:" chains)
// never match the position prefix and fall through harmlessly.
func parseLine(line string) (Diag, bool) {
	if strings.HasPrefix(line, "\t") || strings.HasPrefix(line, " ") {
		return Diag{}, false
	}
	rest := line
	var parts [3]string
	for i := 0; i < 3; i++ {
		j := strings.Index(rest, ":")
		if j < 0 {
			return Diag{}, false
		}
		parts[i] = rest[:j]
		rest = rest[j+1:]
	}
	msg := strings.TrimSpace(rest)
	if !isEscape(msg) {
		return Diag{}, false
	}
	ln, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || !strings.HasSuffix(parts[0], ".go") {
		return Diag{}, false
	}
	return Diag{File: parts[0], Line: ln, Col: col, Message: msg}, true
}

func isEscape(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") ||
		strings.HasPrefix(msg, "moved to heap:")
}

// Run builds the kernel packages with escape analysis enabled and returns
// the parsed diagnostics. moduleRoot is the directory holding go.mod; the
// compile itself goes to /dev/null — only the transcript matters.
func Run(moduleRoot string) ([]Diag, error) {
	args := append([]string{"build", "-o", os.DevNull, "-gcflags=-m"}, Packages...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot
	var buf bytes.Buffer
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escapegate: go build: %v\n%s", err, buf.String())
	}
	return Parse(&buf)
}

// Attribute aggregates diagnostics into a baseline, resolving each
// file:line to its enclosing function by parsing the source under
// moduleRoot. Files that cannot be read or parsed attribute to "(init)"
// rather than failing: the gate must degrade to coarser keys, not drop
// escapes on the floor.
func Attribute(diags []Diag, moduleRoot string) Baseline {
	type span struct {
		name       string
		start, end int
	}
	spans := map[string][]span{} // file -> sorted function spans
	funcSpans := func(file string) []span {
		if s, ok := spans[file]; ok {
			return s
		}
		var out []span
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(moduleRoot, file), nil, 0)
		if err == nil {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				out = append(out, span{
					name:  funcName(fd),
					start: fset.Position(fd.Pos()).Line,
					end:   fset.Position(fd.End()).Line,
				})
			}
		}
		spans[file] = out
		return out
	}

	b := Baseline{}
	for _, d := range diags {
		fn := "(init)"
		for _, s := range funcSpans(d.File) {
			if s.start <= d.Line && d.Line <= s.end {
				fn = s.name
				break
			}
		}
		b[Entry{Pkg: d.Pkg, Fn: fn, Message: d.Message}]++
	}
	return b
}

// funcName returns the receiver-qualified name: "Cache.Put" for methods
// (pointer receivers included), the bare name otherwise.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// ParseBaseline reads the committed baseline format: '#' comments and
// blank lines are skipped; data lines are tab-separated
// "pkg<TAB>function<TAB>count<TAB>message".
func ParseBaseline(r io.Reader) (Baseline, error) {
	b := Baseline{}
	sc := bufio.NewScanner(r)
	n := 0
	for sc.Scan() {
		n++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.SplitN(line, "\t", 4)
		if len(f) != 4 {
			return nil, fmt.Errorf("escapegate: baseline line %d: want 4 tab-separated fields, got %d", n, len(f))
		}
		c, err := strconv.Atoi(f[2])
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("escapegate: baseline line %d: bad count %q", n, f[2])
		}
		e := Entry{Pkg: f[0], Fn: f[1], Message: f[3]}
		if _, dup := b[e]; dup {
			return nil, fmt.Errorf("escapegate: baseline line %d: duplicate entry %v", n, e)
		}
		b[e] = c
	}
	return b, sc.Err()
}

// WriteBaseline writes the baseline sorted by (pkg, fn, message) so
// regeneration is deterministic and diffs stay reviewable.
func WriteBaseline(w io.Writer, b Baseline) error {
	entries := make([]Entry, 0, len(b))
	for e := range b {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Pkg != entries[j].Pkg {
			return entries[i].Pkg < entries[j].Pkg
		}
		if entries[i].Fn != entries[j].Fn {
			return entries[i].Fn < entries[j].Fn
		}
		return entries[i].Message < entries[j].Message
	})
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# escapegate baseline: compiler escape diagnostics for the kernel packages,")
	fmt.Fprintln(bw, "# aggregated per (package, function, message). Regenerate after a deliberate")
	fmt.Fprintln(bw, "# change with: go run ./cmd/riskvet -escape-update")
	fmt.Fprintln(bw, "# pkg\tfunction\tcount\tmessage")
	for _, e := range entries {
		fmt.Fprintf(bw, "%s\t%s\t%d\t%s\n", e.Pkg, e.Fn, b[e], e.Message)
	}
	return bw.Flush()
}

// Diff compares the current escape set against the baseline. New or
// grown entries mean a fresh heap escape; vanished or shrunk entries mean
// the baseline is stale. Both directions fail: the returned problems are
// empty exactly when current == baseline.
func Diff(current, baseline Baseline) []string {
	var problems []string
	keys := make([]Entry, 0, len(current)+len(baseline))
	seen := map[Entry]bool{}
	for e := range current {
		keys = append(keys, e)
		seen[e] = true
	}
	for e := range baseline {
		if !seen[e] {
			keys = append(keys, e)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pkg != keys[j].Pkg {
			return keys[i].Pkg < keys[j].Pkg
		}
		if keys[i].Fn != keys[j].Fn {
			return keys[i].Fn < keys[j].Fn
		}
		return keys[i].Message < keys[j].Message
	})
	for _, e := range keys {
		cur, base := current[e], baseline[e]
		switch {
		case cur > base:
			problems = append(problems, fmt.Sprintf(
				"new escape: %s %s: %q (%d, baseline %d)", e.Pkg, e.Fn, e.Message, cur, base))
		case cur < base:
			problems = append(problems, fmt.Sprintf(
				"stale baseline entry: %s %s: %q (%d, baseline %d) — rerun riskvet -escape-update",
				e.Pkg, e.Fn, e.Message, cur, base))
		}
	}
	return problems
}

// Check runs the gate end to end: compile, attribute, diff against the
// committed baseline. It returns the problem list (empty means the gate
// passes) and a hard error for operational failures (compile failed,
// baseline unreadable).
func Check(moduleRoot string) ([]string, error) {
	diags, err := Run(moduleRoot)
	if err != nil {
		return nil, err
	}
	current := Attribute(diags, moduleRoot)
	f, err := os.Open(filepath.Join(moduleRoot, BaselinePath))
	if err != nil {
		return nil, fmt.Errorf("escapegate: no committed baseline (run riskvet -escape-update to create one): %w", err)
	}
	defer f.Close()
	baseline, err := ParseBaseline(f)
	if err != nil {
		return nil, err
	}
	return Diff(current, baseline), nil
}

// Update regenerates the committed baseline from a fresh compile.
func Update(moduleRoot string) error {
	diags, err := Run(moduleRoot)
	if err != nil {
		return err
	}
	current := Attribute(diags, moduleRoot)
	path := filepath.Join(moduleRoot, BaselinePath)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBaseline(f, current); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
