package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, typechecked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Deps is the set of transitive import paths, used by the driver to
	// scope fact visibility: a pass may only import facts from packages it
	// depends on.
	Deps map[string]bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Deps       []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the given package patterns relative to dir (the module
// root), compiles their dependency export data via `go list -export`, and
// parses+typechecks each matched package's non-test sources. It is the
// offline stand-in for go/packages: dependencies are imported from the
// toolchain's export data, so only the target packages are typechecked from
// source.
//
// Test files (*_test.go) are excluded: the enforced invariants concern
// production code, and tests legitimately use wall clocks and ad-hoc
// randomness.
//
// The returned packages are in dependency order — every package comes after
// all packages it imports (`go list -deps` emits its union in that order) —
// which is what lets the driver flow analyzer facts from a package to its
// dependents in a single sweep.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency (and every target: targets may
	// import each other, and importing a target's export data is cheaper
	// and no less precise than typechecking it twice).
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Name,Export,GoFiles,Deps,DepOnly,Standard,Incomplete,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var listed []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, &lp)
	}
	return listed, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	deps := make(map[string]bool, len(lp.Deps))
	for _, d := range lp.Deps {
		deps[d] = true
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Deps:       deps,
	}, nil
}
