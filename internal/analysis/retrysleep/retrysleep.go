// Package retrysleep bans naked time.Sleep retry loops. A loop that sleeps
// a fixed interval between attempts is the degenerate retry policy: no
// exponential growth, no jitter, no context cancellation — under load every
// stalled caller wakes at the same moment and hammers the struggling
// dependency again (the thundering-herd shape riskclient's full-jitter
// backoff exists to prevent), and nothing interrupts the wait when the
// caller's budget expires.
//
// The rule: time.Sleep may not appear lexically inside a for/range
// statement. The sanctioned replacements are
//
//   - riskclient.Backoff (jittered exponential delays) together with a
//     context-bounded wait, for retry loops, and
//   - a time.Ticker or time.Timer inside a select, for polling loops that
//     must also observe cancellation (see Server.DrainWait).
//
// internal/riskclient itself is exempt (Exempt): it is the package that
// implements the sanctioned policy. One-shot sleeps outside loops are not
// flagged — a single delay is a delay, not a policy.
package retrysleep

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Exempt lists the import paths the rule does not cover: the packages that
// implement the sanctioned retry machinery. Tests substitute fixtures.
var Exempt = map[string]bool{
	"repro/internal/riskclient": true,
}

// Analyzer is the retrysleep check.
var Analyzer = &analysis.Analyzer{
	Name: "retrysleep",
	Doc: "time.Sleep inside a loop is a naked retry/poll policy; use riskclient.Backoff " +
		"with a context-bounded wait, or a Ticker in a select",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if Exempt[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		loops := collectLoops(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isTimeSleep(pass, call) {
				return true
			}
			for _, l := range loops {
				if l.pos <= call.Pos() && call.Pos() < l.end {
					pass.Reportf(call.Pos(),
						"time.Sleep inside a loop is a naked retry/poll: use riskclient.Backoff with a context-bounded wait, or a time.Ticker in a select")
					break
				}
			}
			return true
		})
	}
	return nil
}

type loopSpan struct{ pos, end token.Pos }

func collectLoops(f *ast.File) []loopSpan {
	var spans []loopSpan
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			spans = append(spans, loopSpan{n.Pos(), n.End()})
		}
		return true
	})
	return spans
}

func isTimeSleep(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Resolve through the types info: only the real time.Sleep counts, not
	// a local function that happens to be named Sleep.
	fn := pass.TypesInfo.Uses[sel.Sel]
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "time" && fn.Name() == "Sleep"
}
