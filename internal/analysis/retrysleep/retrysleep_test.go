package retrysleep

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, "../testdata/src/retrysleeptest", []*analysis.Analyzer{Analyzer}, nil)
}

func TestExemptPackageIsIgnored(t *testing.T) {
	// The same sources registered as exempt (the riskclient role) must
	// produce nothing: the fixture's want markers would fail analysistest,
	// so drive the analyzer directly.
	const fixture = "repro/internal/analysis/testdata/src/retrysleeptest"
	Exempt[fixture] = true
	defer delete(Exempt, fixture)
	pkgs, err := analysis.Load("../testdata/src/retrysleeptest", ".")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(pkgs, func(string) []*analysis.Analyzer {
		return []*analysis.Analyzer{Analyzer}
	}, []string{"retrysleep"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		if d.Check == Analyzer.Name {
			t.Errorf("exempt package got diagnostic: %s", analysis.Format(pkgs[0].Fset, d))
		}
	}
}
