// Package riskvet assembles the repo's analyzer suite and maps each
// analyzer onto the packages whose conventions it enforces. cmd/riskvet is
// a thin shell around this package; the tests drive it directly.
package riskvet

import (
	"go/token"

	"repro/internal/analysis"
	"repro/internal/analysis/cachetaint"
	"repro/internal/analysis/ctxbudget"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/errcmp"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/loopbudget"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/retrysleep"
	"repro/internal/analysis/streamticker"
)

// Analyzers is the full suite in reporting order. cachetaint runs first:
// it exports carrier/gate facts that must be in the store before dependent
// packages are checked (the driver's dependency-order sweep makes that
// ordering hold across packages; within one package the analyzer exports
// before it checks).
var Analyzers = []*analysis.Analyzer{
	cachetaint.Analyzer,
	ctxbudget.Analyzer,
	detrand.Analyzer,
	errcmp.Analyzer,
	floateq.Analyzer,
	loopbudget.Analyzer,
	maporder.Analyzer,
	retrysleep.Analyzer,
	streamticker.Analyzer,
}

// Names returns the analyzer names plus the driver's own "suppress" check,
// the set //lint:allow comments may legally name.
func Names() []string {
	names := []string{"suppress"}
	for _, a := range Analyzers {
		names = append(names, a.Name)
	}
	return names
}

// AnalyzersFor selects the suite for one package. Scoping lives in each
// analyzer (ctxbudget.RoleOf, detrand.Packages, ...): every analyzer is
// offered every package and cheaply no-ops outside its scope, so the
// mapping here stays trivially correct as packages are added.
func AnalyzersFor(importPath string) []*analysis.Analyzer {
	return Analyzers
}

// Check loads the patterns relative to dir and returns the suite's
// unsuppressed diagnostics.
func Check(dir string, patterns ...string) ([]analysis.Diagnostic, *token.FileSet, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	diags, err := analysis.Run(pkgs, AnalyzersFor, Names())
	return diags, fset, err
}
