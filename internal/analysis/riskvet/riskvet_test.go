package riskvet

import (
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSuppressionLedger(t *testing.T) {
	analysistest.Run(t, "../testdata/src/suppresstest", Analyzers, Names())
}

func TestCleanFixture(t *testing.T) {
	diags, fset, err := Check("../testdata/src/cleanpkg", ".")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for _, d := range diags {
		t.Errorf("clean fixture got diagnostic: %s", analysis.Format(fset, d))
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{
		"suppress": true, "cachetaint": true, "ctxbudget": true,
		"detrand": true, "errcmp": true, "floateq": true,
		"loopbudget": true, "maporder": true, "retrysleep": true,
		"streamticker": true,
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want the %d suite checks", got, len(want))
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("Names() includes unexpected check %q", n)
		}
	}
}

// TestBinarySmoke builds cmd/riskvet and runs it on the clean fixture: the
// shipped gate must exit zero where the library reports nothing.
func TestBinarySmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "riskvet")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/riskvet")
	build.Dir = "../../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/riskvet: %v\n%s", err, out)
	}
	run := exec.Command(bin, "./internal/analysis/testdata/src/cleanpkg")
	run.Dir = "../../.."
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("riskvet on clean fixture exited non-zero: %v\n%s", err, out)
	}
}
