// Package ctxbudget enforces the repo's budget-threading convention
// (DESIGN.md §10.1): expensive entry points must be cancelable.
//
// Three rules, selected by the package's role:
//
// Provider packages (the compute kernels: bipartite, matching, core,
// recipe, relation, itemsetrisk):
//
//  1. An exported function or method whose body contains a loop nest of
//     depth ≥ 2 — the mechanical signature of "iterates over the dataset or
//     graph, possibly superlinearly" — must either accept a
//     context.Context or have a sibling named <Name>Ctx that does.
//  2. context.Background()/context.TODO() may not originate inside a
//     provider: a kernel that invents its own context cannot be canceled
//     by its caller. The one blessed pattern is the compatibility wrapper
//     `func F(...)` forwarding to `FCtx(context.Background(), ...)`.
//
// Consumer packages (the serving layer: internal/server, cmd/riskd):
//
//  3. Calling a provider function F when a sibling FCtx exists forfeits the
//     request's deadline and work budget mid-call; the Ctx variant must be
//     used.
package ctxbudget

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Role describes how the analyzer treats a package.
type Role int

const (
	// RoleNone disables the analyzer for the package.
	RoleNone Role = iota
	// RoleProvider applies rules 1 and 2 (exported loopers need ctx;
	// contexts may not originate here).
	RoleProvider
	// RoleConsumer applies rule 3 (never call F where FCtx exists).
	RoleConsumer
)

// Providers and Consumers hold the import paths each role applies to.
// cmd/riskvet wires the real repo layout; tests substitute fixtures.
var (
	Providers = map[string]bool{
		"repro/internal/bipartite":   true,
		"repro/internal/matching":    true,
		"repro/internal/core":        true,
		"repro/internal/recipe":      true,
		"repro/internal/relation":    true,
		"repro/internal/itemsetrisk": true,
	}
	Consumers = map[string]bool{
		"repro/internal/server": true,
		"repro/cmd/riskd":       true,
	}
)

// RoleOf reports the role of an import path.
func RoleOf(path string) Role {
	switch {
	case Providers[path]:
		return RoleProvider
	case Consumers[path]:
		return RoleConsumer
	default:
		return RoleNone
	}
}

// Analyzer is the ctxbudget check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxbudget",
	Doc: "exported compute kernels with nested loops must accept a context.Context " +
		"(or have a ...Ctx sibling), kernels must not originate contexts, and the " +
		"serving layer must call the Ctx variant when one exists",
	Run: run,
}

func run(pass *analysis.Pass) error {
	switch RoleOf(pass.Pkg.Path()) {
	case RoleProvider:
		checkProvider(pass)
	case RoleConsumer:
		checkConsumer(pass)
	}
	return nil
}

// --- rule 1: exported loopers need a context or a Ctx sibling ---

func checkProvider(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Ctx") || hasContextParam(pass, fn) {
				continue
			}
			if maxLoopDepth(fn.Body) < 2 {
				continue
			}
			if hasCtxSibling(pass, fn) {
				continue
			}
			pass.Reportf(fn.Name.Pos(),
				"exported %s loops over its input (nest depth ≥ 2) but neither accepts a context.Context nor has a %sCtx sibling; heavy work must be budgetable",
				fn.Name.Name, fn.Name.Name)
		}
		checkNoContextOrigin(pass, f)
	}
}

// hasContextParam reports whether any parameter's type is context.Context.
func hasContextParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxSibling reports whether Name+"Ctx" exists: as a package-level
// function for functions, or as a method on the same receiver type for
// methods.
func hasCtxSibling(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	want := fn.Name.Name + "Ctx"
	if fn.Recv == nil {
		return pass.Pkg.Scope().Lookup(want) != nil
	}
	if len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	recv := tv.Type
	ms := types.NewMethodSet(recv)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == want {
			return true
		}
	}
	return false
}

// maxLoopDepth computes the deepest for/range nesting in a body. Function
// literals inherit the depth of the point where they appear: a loop inside
// a closure that is itself created inside a loop still runs many times.
func maxLoopDepth(body *ast.BlockStmt) int {
	max := 0
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch mm := m.(type) {
			case *ast.ForStmt:
				if depth+1 > max {
					max = depth + 1
				}
				walk(mm.Body, depth+1)
				return false
			case *ast.RangeStmt:
				if depth+1 > max {
					max = depth + 1
				}
				walk(mm.Body, depth+1)
				return false
			}
			return true
		})
	}
	walk(body, 0)
	return max
}

// --- rule 2: contexts may not originate inside providers ---

func checkNoContextOrigin(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Blessed wrapper: F forwarding to FCtx(context.Background(), ...).
			if calleeName(pass, call) == fn.Name.Name+"Ctx" {
				return false // don't descend into the forwarded arguments
			}
			if fnObj := callTarget(pass, call); fnObj != nil &&
				fnObj.Pkg() != nil && fnObj.Pkg().Path() == "context" &&
				(fnObj.Name() == "Background" || fnObj.Name() == "TODO") {
				pass.Reportf(call.Pos(),
					"context.%s originates inside a compute kernel; accept a context.Context from the caller (only the <F> → <F>Ctx compatibility wrapper may use it)",
					fnObj.Name())
			}
			return true
		})
	}
}

// --- rule 3: consumers must prefer the Ctx variant ---

func checkConsumer(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := callTarget(pass, call)
			if obj == nil || obj.Pkg() == nil || RoleOf(obj.Pkg().Path()) != RoleProvider {
				return true
			}
			name := obj.Name()
			if strings.HasSuffix(name, "Ctx") {
				return true
			}
			if ctxSiblingOf(pass, call, obj) {
				pass.Reportf(call.Pos(),
					"%s.%s has a %sCtx variant; the serving layer must pass its request context so the call honors the deadline and work budget",
					obj.Pkg().Name(), name, name)
			}
			return true
		})
	}
}

// ctxSiblingOf reports whether the called provider function has a Ctx
// sibling: same package scope for plain functions, same receiver method set
// for methods.
func ctxSiblingOf(pass *analysis.Pass, call *ast.CallExpr, obj *types.Func) bool {
	want := obj.Name() + "Ctx"
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		ms := types.NewMethodSet(recv.Type())
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == want {
				return true
			}
		}
		return false
	}
	return obj.Pkg().Scope().Lookup(want) != nil
}

// callTarget resolves the *types.Func a call invokes, or nil for calls of
// function values, conversions, and builtins.
func callTarget(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if f := callTarget(pass, call); f != nil {
		return f.Name()
	}
	return ""
}
