package ctxbudget

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

const (
	providerFixture = "repro/internal/analysis/testdata/src/ctxtest"
	consumerFixture = "repro/internal/analysis/testdata/src/ctxconsumer"
)

func TestProviderRules(t *testing.T) {
	Providers[providerFixture] = true
	defer delete(Providers, providerFixture)
	analysistest.Run(t, "../testdata/src/ctxtest", []*analysis.Analyzer{Analyzer}, nil)
}

func TestConsumerRule(t *testing.T) {
	Providers[providerFixture] = true
	Consumers[consumerFixture] = true
	defer delete(Providers, providerFixture)
	defer delete(Consumers, consumerFixture)
	analysistest.Run(t, "../testdata/src/ctxconsumer", []*analysis.Analyzer{Analyzer}, nil)
}

func TestRoleOf(t *testing.T) {
	if RoleOf("repro/internal/bipartite") != RoleProvider {
		t.Errorf("bipartite should be a provider")
	}
	if RoleOf("repro/internal/server") != RoleConsumer {
		t.Errorf("server should be a consumer")
	}
	if RoleOf("repro/internal/dataset") != RoleNone {
		t.Errorf("dataset should have no role")
	}
}
