// Package analysis is the repo's self-contained static-analysis framework:
// a deliberately small mirror of golang.org/x/tools/go/analysis, built only
// on the standard library so the module stays dependency-free.
//
// The repo's correctness story rests on conventions that the compiler cannot
// see — every hot path threads a context+budget, Monte-Carlo code draws only
// from seeded SplitMix64 streams, float comparisons on frequencies go
// through the eps helpers, budget sentinels are matched with errors.Is, and
// degraded verdicts never reach the cache or its snapshots. The analyzers
// under internal/analysis/... encode those conventions as mechanical checks;
// cmd/riskvet runs them as part of ci.sh so a new subsystem cannot silently
// regress the guarantees the O-estimate experiments depend on. Cross-package
// invariants ride on the fact layer (see Fact): the driver analyzes packages
// in dependency order and an analyzer's facts flow from a package to its
// dependents.
//
// The API shapes (Analyzer, Pass, Diagnostic) match x/tools so the checks
// can migrate to the real framework verbatim if the dependency ever becomes
// available; the loader (Load) stands in for go/packages by shelling out to
// `go list -export -deps -json` and typechecking the target sources against
// the toolchain's export data, which works fully offline.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the check in diagnostics and in //lint:allow
	// suppression comments. By convention it is a single lowercase word.
	Name string
	// Doc is the one-paragraph description printed by `riskvet -help`.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. It must not retain the pass after returning.
	Run func(pass *Pass) error
	// FactTypes lists the fact types (as pointer values, e.g.
	// []Fact{new(isGate)}) this analyzer may export; exporting an unlisted
	// type is a programming error. Analyzers with no FactTypes cannot
	// export facts.
	FactTypes []Fact
}

// A Pass presents one package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test sources, in file-name order
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *factStore      // shared across one driver Run; nil outside Run
	deps   map[string]bool // transitive imports of Pkg, for fact visibility
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Check is the reporting analyzer's name; the driver fills it in so
	// suppression comments can be matched per check.
	Check string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Check = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a diagnostic position against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }
