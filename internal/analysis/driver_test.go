package analysis_test

import (
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
)

type objMark struct{ Label string }

func (*objMark) AFact() {}

type pkgMark struct{ N int }

func (*pkgMark) AFact() {}

// TestFactPropagation drives the whole fact pipeline: a probe analyzer
// exports object facts (plain func + receiver-qualified method) and a
// package fact while analyzing the factdep fixture, then imports them while
// analyzing factuse, whose references to factdep's objects come from export
// data rather than source. It also pins the two driver guarantees the
// analyzers rely on: packages are processed in dependency order regardless
// of pattern order, and facts are invisible from packages that do not
// depend on the exporter.
func TestFactPropagation(t *testing.T) {
	probe := &analysis.Analyzer{
		Name:      "factprobe",
		Doc:       "test probe: exports facts in factdep, imports them in factuse",
		FactTypes: []analysis.Fact{new(objMark), new(pkgMark)},
		Run: func(pass *analysis.Pass) error {
			switch {
			case strings.HasSuffix(pass.Pkg.Path(), "factdep"):
				provide := pass.Pkg.Scope().Lookup("Provide")
				pass.ExportObjectFact(provide, &objMark{Label: "provide"})
				helper := pass.Pkg.Scope().Lookup("Helper").(*types.TypeName)
				do, _, _ := types.LookupFieldOrMethod(helper.Type(), true, pass.Pkg, "Do")
				pass.ExportObjectFact(do, &objMark{Label: "helper-do"})
				pass.ExportPackageFact(&pkgMark{N: 42})
				var m objMark
				if pass.ImportObjectFact(provide, &m) {
					pass.Reportf(provide.Pos(), "local fact %s", m.Label)
				}
				// factuse depends on us, not the other way round: its
				// facts (none exist yet anyway) must be invisible.
				var pm pkgMark
				if pass.ImportPackageFact(pass.Pkg.Path()+"x", &pm) {
					pass.Reportf(provide.Pos(), "BUG: fact from unknown package")
				}
			case strings.HasSuffix(pass.Pkg.Path(), "factuse"):
				for _, imp := range pass.Pkg.Imports() {
					if !strings.HasSuffix(imp.Path(), "factdep") {
						continue
					}
					pos := pass.Files[0].Name.Pos()
					provide := imp.Scope().Lookup("Provide")
					var m objMark
					if pass.ImportObjectFact(provide, &m) {
						pass.Reportf(pos, "dep fact %s", m.Label)
					}
					helper := imp.Scope().Lookup("Helper").(*types.TypeName)
					do, _, _ := types.LookupFieldOrMethod(helper.Type(), true, pass.Pkg, "Do")
					var mm objMark
					if pass.ImportObjectFact(do, &mm) {
						pass.Reportf(pos, "dep fact %s", mm.Label)
					}
					var pm pkgMark
					if pass.ImportPackageFact(imp.Path(), &pm) {
						pass.Reportf(pos, "dep pkgfact %d", pm.N)
					}
				}
				// A fact from a package factuse does not import must not
				// resolve, even though it is in the store.
				var pm pkgMark
				if pass.ImportPackageFact("repro/internal/matching", &pm) {
					pass.Reportf(pass.Files[0].Name.Pos(), "BUG: fact from non-dependency")
				}
			}
			return nil
		},
	}

	// Patterns deliberately name the dependent before the dependency: the
	// loader must still yield factdep first.
	pkgs, err := analysis.Load(".", "./testdata/src/factuse", "./testdata/src/factdep")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	if !strings.HasSuffix(pkgs[0].ImportPath, "factdep") || !strings.HasSuffix(pkgs[1].ImportPath, "factuse") {
		t.Fatalf("packages not in dependency order: %s, %s", pkgs[0].ImportPath, pkgs[1].ImportPath)
	}
	if !pkgs[1].Deps[pkgs[0].ImportPath] {
		t.Fatalf("factuse's Deps set does not contain factdep")
	}

	diags, err := analysis.Run(pkgs, func(string) []*analysis.Analyzer { return []*analysis.Analyzer{probe} }, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{"local fact provide", "dep fact provide", "dep fact helper-do", "dep pkgfact 42"}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %q, want %q", got, want)
	}
	seen := map[string]bool{}
	for _, g := range got {
		seen[g] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("missing diagnostic %q in %q", w, got)
		}
	}
}
