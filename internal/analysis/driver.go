package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Run applies, for each package, the analyzers selected by analyzersFor
// (keyed on the package's import path), then applies //lint:allow
// suppressions and stale-suppression checks. The returned diagnostics are
// sorted by position and are exactly the findings a clean tree must not
// have.
//
// Packages are processed in the order given, which Load guarantees is
// dependency order (every package after its imports); one fact store is
// shared by the whole call, so facts an analyzer exports while running on a
// package are visible to the same analyzer's passes over dependent
// packages — and to later checks within the same pass.
//
// Suppression semantics: an allow comment suppresses same-named diagnostics
// on its own line or the next line; unknown check names, missing reasons,
// and allows that suppress nothing are themselves diagnostics, so the
// suppression ledger can never rot silently. Every analyzer name that can
// run anywhere in the suite counts as "known" in every package — a
// suppression for an analyzer that is simply not enabled on that package is
// reported as stale rather than unknown.
func Run(pkgs []*Package, analyzersFor func(importPath string) []*Analyzer, allKnown []string) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, name := range allKnown {
		known[name] = true
	}
	facts := newFactStore()
	var all []Diagnostic
	for _, pkg := range pkgs {
		analyzers := analyzersFor(pkg.ImportPath)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				facts:     facts,
				deps:      pkg.Deps,
			}
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			known[a.Name] = true
		}
		allows := collectAllows(pkg)
		all = append(all, applyAllows(pkg, diags, allows, known)...)
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(all, func(i, j int) bool {
			pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return all[i].Check < all[j].Check
		})
	}
	return all, nil
}

// Format renders a diagnostic the way go vet does: file:line:col: message.
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: [%s] %s", fset.Position(d.Pos), d.Check, d.Message)
}
