// Package loopbudgettest exercises the loopbudget nest rules: budgeted and
// unbudgeted data-dependent nests, constant-trip exemption, depth-1
// exemption, ctx consults, consulting helpers, and a suppressed case.
package loopbudgettest

import (
	"context"

	"repro/internal/budget"
)

func budgeted(bud *budget.Budget, rows [][]int) (sum int, err error) {
	for _, row := range rows {
		if err := bud.Charge(int64(len(row))); err != nil {
			return 0, err
		}
		for _, v := range row {
			sum += v
		}
	}
	return sum, nil
}

func unbudgeted(rows [][]int) int { // the nest below must be flagged
	sum := 0
	for _, row := range rows { // want `never consults the work budget`
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// constantTrip nests only literal bounds: no budget needed.
func constantTrip() int {
	sum := 0
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			sum += i * j
		}
	}
	return sum
}

// mixedConstData has a constant outer loop but a data-sized inner loop:
// the nest is data-dependent.
func mixedConstData(xs []int) int {
	sum := 0
	for i := 0; i < 4; i++ { // want `never consults the work budget`
		for _, v := range xs {
			sum += i * v
		}
	}
	return sum
}

// depthOne is a single data-dependent loop: callers charge per call.
func depthOne(xs []int) int {
	sum := 0
	for _, v := range xs {
		sum += v
	}
	return sum
}

func ctxChecked(ctx context.Context, rows [][]int) int {
	sum := 0
	for _, row := range rows {
		if ctx.Err() != nil {
			return sum
		}
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

func viaHelper(w *budget.Worker, rows [][]int) (int, error) {
	sum := 0
	for _, row := range rows {
		if err := chargeRow(w, row); err != nil {
			return 0, err
		}
		for _, v := range row {
			sum += v
		}
	}
	return sum, nil
}

// chargeRow consults directly, so calls to it count as consults.
func chargeRow(w *budget.Worker, row []int) error {
	return w.Charge(int64(len(row)))
}

// closureScan's inner loop lives in a closure: the closure is its own
// region, so neither loop forms a nest.
func closureScan(rows [][]int) int {
	sum := 0
	for _, row := range rows {
		scan := func() {
			for _, v := range row {
				sum += v
			}
		}
		scan()
	}
	return sum
}

func suppressed(rows [][]int) int {
	sum := 0
	//lint:allow loopbudget fixture: deliberate unbudgeted nest
	for _, row := range rows {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}
