// Package ctxconsumer is the ctxbudget consumer fixture: tests register it
// in ctxbudget.Consumers (and ctxtest in Providers) before running the
// analyzer.
package ctxconsumer

import (
	"context"

	"repro/internal/analysis/testdata/src/ctxtest"
)

// Handle forfeits its request context by calling the non-Ctx variant.
func Handle(ctx context.Context, rows [][]int) (int, error) {
	bad := ctxtest.Blessed(rows) // want `ctxtest\.Blessed has a BlessedCtx variant`
	good, err := ctxtest.BlessedCtx(ctx, rows)
	return bad + good, err
}

// HandleMethod does the same through a method call.
func HandleMethod(ctx context.Context, t *ctxtest.Table) (int, error) {
	bad := t.Scan() // want `ctxtest\.Scan has a ScanCtx variant`
	good, err := t.ScanCtx(ctx)
	return bad + good, err
}

// NoSibling calls a provider function that has no Ctx variant; nothing to
// prefer, nothing flagged.
func NoSibling(rows [][]int) int {
	return ctxtest.HeavySweep(rows)
}
