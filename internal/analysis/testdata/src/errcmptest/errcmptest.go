// Package errcmptest is the errcmp fixture. errcmp scopes by module prefix,
// so the fixture's own package-level sentinel is in scope without any test
// wiring.
package errcmptest

import (
	"context"
	"errors"
)

// ErrBoom is a package-level sentinel of this module: wrap-prone.
var ErrBoom = errors.New("errcmptest: boom")

// Result is a provenance-bearing struct (Degraded/DegradedReason pair plus
// the cascade's Method tier record).
type Result struct {
	Method         string
	Value          float64
	Degraded       bool
	DegradedReason string
}

// Identity compares the sentinel by identity, which wrapped errors defeat.
func Identity(err error) bool {
	return err == ErrBoom // want `errcmptest\.ErrBoom compared with ==`
}

// CtxCompare does the same with a context sentinel.
func CtxCompare(err error) bool {
	return err != context.Canceled // want `context\.Canceled compared with !=`
}

// Wrapped is the correct form.
func Wrapped(err error) bool {
	return errors.Is(err, ErrBoom)
}

// StdlibSentinel is out of scope: not our module, not context.
func StdlibSentinel(err error) bool {
	return err == errors.ErrUnsupported
}

// BadLit drops both the reason and the tier from a degraded result.
func BadLit() Result {
	return Result{Degraded: true} // want `sets Degraded but drops DegradedReason` `sets Degraded but drops Method`
}

// GoodLit keeps full provenance.
func GoodLit(reason string) Result {
	return Result{Method: "oestimate", Degraded: true, DegradedReason: reason}
}

// CleanLit never claims degradation, so it owes no provenance.
func CleanLit(v float64) Result {
	return Result{Method: "exact", Value: v}
}

// BadAssign marks a result degraded but never says why.
func BadAssign(r *Result) {
	r.Degraded = true // want `r\.Degraded is set but r\.DegradedReason is never assigned`
}

// GoodAssign records the reason alongside the flag.
func GoodAssign(r *Result, reason string) {
	r.Degraded = true
	r.DegradedReason = reason
}

// ClearAssign clears the flag; clearing needs no reason.
func ClearAssign(r *Result) {
	r.Degraded = false
}

// CopyAssign copies provenance wholesale from another result.
func CopyAssign(dst, src *Result) {
	dst.Degraded = src.Degraded
}
