// Package detrandkernel is the fixture for detrand's rule 5: tests register
// it in detrand.KernelPackages (and Packages) before running the analyzer.
// Inside a kernel package, *rand.Rand methods are forbidden within loops —
// the sanctioned generator there is parallel.Stream.
package detrandkernel

import "math/rand"

// HotLoop draws per iteration through the Source interface: flagged.
func HotLoop(rng *rand.Rand, xs []int) int {
	s := 0
	for i := 0; i < len(xs); i++ {
		s += rng.Intn(10) // want `rand\.Intn inside a kernel loop`
	}
	return s
}

// HotRange is the range-loop variant.
func HotRange(rng *rand.Rand, xs []float64) float64 {
	s := 0.0
	for range xs {
		s += rng.Float64() // want `rand\.Float64 inside a kernel loop`
	}
	return s
}

// NestedLoop is flagged even when the draw hides a block deeper.
func NestedLoop(rng *rand.Rand, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s += rng.Intn(3) // want `rand\.Intn inside a kernel loop`
		}
	}
	return s
}

// SeedDraw draws once outside any loop — the sanctioned way to seed an
// internal stream from a caller's generator.
func SeedDraw(rng *rand.Rand) int64 {
	return rng.Int63()
}

// LoopCondition places the draw in the loop header rather than the body:
// still per-iteration, still flagged.
func LoopCondition(rng *rand.Rand) int {
	n := 0
	for rng.Intn(100) != 0 { // want `rand\.Intn inside a kernel loop`
		n++
	}
	return n
}

// ConstructorInLoop builds generators, not draws: constructors are
// top-level functions, not *rand.Rand methods, so rule 5 leaves them to
// rules 2 and 3 (which permit them).
func ConstructorInLoop(seeds []int64) []*rand.Rand {
	out := make([]*rand.Rand, 0, len(seeds))
	for _, s := range seeds {
		out = append(out, rand.New(rand.NewSource(s)))
	}
	return out
}
