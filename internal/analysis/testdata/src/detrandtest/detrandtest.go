// Package detrandtest is the detrand fixture: tests register it in
// detrand.Packages before running the analyzer.
package detrandtest

import (
	"math/rand"
	"time"
)

// Wallclock observes the wall clock.
func Wallclock() int64 {
	t := time.Now() // want `time\.Now in a deterministic package`
	return t.UnixNano()
}

// Elapsed measures with time.Since, which calls time.Now.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a deterministic package`
}

// GlobalStream draws from the process-global source.
func GlobalStream() int {
	return rand.Intn(10) // want `global rand\.Intn draws from the process-wide stream`
}

// WallclockSeed defeats reproducibility at the root. The embedded time.Now
// is part of this finding, not a second one.
func WallclockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the wall clock`
}

// FixedSeed builds a deterministic per-item generator: the sanctioned shape.
func FixedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Draw uses a *rand.Rand method, not the global stream.
func Draw(rng *rand.Rand) float64 {
	return rng.Float64()
}

// FloatAccum lets map order reach a float sum: addition is not associative.
func FloatAccum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want `map iteration order can reach an output`
		s += v
	}
	return s
}

// Collect appends in iteration order.
func Collect(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration order can reach an output`
		out = append(out, k)
	}
	return out
}

// CountSet only does commutative integer updates: order free.
func CountSet(m map[int]int, keep map[int]bool) int {
	n := 0
	for k, v := range m {
		if !keep[k] {
			continue
		}
		n += v
	}
	return n
}

// Invert writes a map keyed by the (unique) iterated keys: order free.
func Invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Suppressed shows the ledger idiom: the violation is deliberate, reasoned,
// and visible to the gate.
func Suppressed() time.Time {
	return time.Now() //lint:allow detrand fixture demonstrates a justified suppression
}
