// Package maporderrtest exercises the maporder sinks: ordered emission,
// channel sends, order-dependent calls, float accumulation, and the
// collect-then-sort idiom with and without its sort.
package maporderrtest

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func emit(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `ordered sink`
	}
}

func send(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `channel send`
	}
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `never sorted`
	}
	return keys
}

func floatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `not associative`
	}
	return s
}

// intSum is exact in any order: integer addition is associative.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// mapWrite rebuilds a map: writes keyed by the iterated key are
// order-insensitive.
func mapWrite(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

func buildWrite(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `ordered sink WriteString`
	}
}

func taintedCall(m map[string]int) {
	for k := range m {
		derived := k + "!"
		process(derived) // want `call to process depends on map iteration order`
	}
}

func process(string) {}

func adjacency(m map[int]int) [][]int {
	adj := make([][]int, 4)
	for k, v := range m {
		adj[k%4] = append(adj[k%4], v) // want `adj accumulates map-range values`
	}
	return adj
}

func adjacencySorted(m map[int]int) [][]int {
	adj := make([][]int, 4)
	for k, v := range m {
		adj[k%4] = append(adj[k%4], v)
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}

// suppressedEmit carries a reasoned ledger entry instead of a sort.
func suppressedEmit(m map[string]int, w io.Writer) {
	for k := range m {
		//lint:allow maporder fixture: emission order deliberately immaterial
		fmt.Fprintln(w, k)
	}
}
