// Package cachetainttest exercises the cachetaint sinks against gates,
// guards, and carriers declared both locally and in the cachetaintdep
// fixture (whose classifications arrive as facts).
package cachetainttest

import (
	"context"
	"io"

	dep "repro/internal/analysis/testdata/src/cachetaintdep"
	"repro/internal/riskcache"
)

func computes(ctx context.Context, c *riskcache.Cache[*dep.Verdict]) {
	c.GetOrCompute(ctx, "a", dep.Gate)
	c.GetOrCompute(ctx, "b", dep.Leak) // want `compute function can cache a degraded verdict`
	c.GetOrCompute(ctx, "c", func() (*dep.Verdict, bool, error) {
		return dep.Gate() // delegation to a cross-package gate
	})
	c.GetOrCompute(ctx, "d", func() (*dep.Verdict, bool, error) { // want `compute function can cache a degraded verdict`
		return &dep.Verdict{}, true, nil
	})
	c.GetOrCompute(ctx, "e", func() (*dep.Verdict, bool, error) {
		v, ok, err := dep.Gate()
		return v, ok, err // forwarded from a gate call
	})
	c.GetOrCompute(ctx, "f", func() (*dep.Verdict, bool, error) {
		v := &dep.Verdict{}
		return v, !v.Degraded, nil
	})
	c.GetOrCompute(ctx, "g", func() (*dep.Verdict, bool, error) {
		return nil, false, nil // never cacheable is trivially gated
	})
	//lint:allow cachetaint fixture: deliberately caches a degraded placeholder
	c.GetOrCompute(ctx, "h", dep.Leak)
}

func methodGate(ctx context.Context, c *riskcache.Cache[*dep.Verdict], st dep.Store) {
	c.GetOrCompute(ctx, "m", st.GateM)
}

func putUnguarded(c *riskcache.Cache[*dep.Verdict], v *dep.Verdict) {
	c.Put("k", v) // want `degraded-carrying value stored with Put`
}

func putGuarded(c *riskcache.Cache[*dep.Verdict], v *dep.Verdict) {
	if v.Degraded {
		return
	}
	c.Put("k", v)
}

func snapshots(c *riskcache.Cache[*dep.Verdict], w io.Writer, r io.Reader) {
	c.WriteSnapshot(w, encodeChecked)
	c.WriteSnapshot(w, func(v *dep.Verdict) ([]byte, error) { // want `snapshot encoder can write a degraded verdict`
		return []byte{byte(v.Value)}, nil
	})
	c.ReadSnapshot(r, func(b []byte) (*dep.Verdict, bool, error) { // want `snapshot decoder can load a degraded verdict`
		return &dep.Verdict{Value: int(b[0])}, true, nil
	})
	c.ReadSnapshot(r, decodeChecked)
}

func encodeChecked(v *dep.Verdict) ([]byte, error) {
	if v.Degraded {
		return nil, riskcache.ErrSkipEntry
	}
	return []byte{byte(v.Value)}, nil
}

func decodeChecked(b []byte) (*dep.Verdict, bool, error) {
	v := &dep.Verdict{Value: int(b[0])}
	if v.Degraded {
		return nil, false, nil
	}
	return v, true, nil
}

// nonCarrier caches plain ints: none of the sink rules apply.
func nonCarrier(ctx context.Context, c *riskcache.Cache[int]) {
	c.GetOrCompute(ctx, "x", func() (int, bool, error) { return 1, true, nil })
	c.Put("y", 2)
}
