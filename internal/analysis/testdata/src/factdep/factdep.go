// Package factdep is the dependency half of the driver's fact-propagation
// fixture: the probe analyzer in driver_test.go exports facts on this
// package's objects and imports them back while analyzing factuse, which
// imports this package.
package factdep

// Provide carries the probe's plain object fact.
func Provide() int { return 1 }

// Helper exists so a method object (receiver-qualified fact path) is
// exercised too.
type Helper struct{}

// Do carries the probe's method object fact.
func (Helper) Do() {}
