// Package streamtickertest is the streamticker fixture: time.After in loops
// must be flagged, hoisted tickers and one-shot timeouts left alone.
package streamtickertest

import (
	"context"
	"time"
)

// StreamLoop is the canonical offense: the SSE-pump shape where every
// iteration allocates a keep-alive timer and the busy arms abandon it.
func StreamLoop(events <-chan string, send func(string)) {
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			send(ev)
		case <-time.After(15 * time.Second): // want `time\.After inside a loop`
			send("keepalive")
		}
	}
}

// PollAfter is the other common shape: pacing a poll with a fresh timer.
func PollAfter(ready func() bool) {
	for !ready() {
		<-time.After(10 * time.Millisecond) // want `time\.After inside a loop`
	}
}

// RangeAfter paces per item — still one leaked timer per element.
func RangeAfter(items []int, send func(int)) {
	for _, it := range items {
		send(it)
		<-time.After(time.Millisecond) // want `time\.After inside a loop`
	}
}

// NestedLiteral: the call sits in a func literal the loop invokes; lexical
// containment still catches it.
func NestedLiteral(n int, wait func(<-chan time.Time)) {
	for i := 0; i < n; i++ {
		func() {
			wait(time.After(time.Millisecond)) // want `time\.After inside a loop`
		}()
	}
}

// OneShotTimeout is the call's intended use: a single timeout arm.
func OneShotTimeout(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	case <-time.After(time.Second):
		return false
	}
}

// TickerStream is the sanctioned shape: one Ticker serves the whole stream.
func TickerStream(ctx context.Context, events <-chan string, send func(string)) {
	keep := time.NewTicker(15 * time.Second)
	defer keep.Stop()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			send(ev)
		case <-keep.C:
			send("keepalive")
		case <-ctx.Done():
			return
		}
	}
}

// ResetTimer is the sanctioned per-iteration-deadline shape.
func ResetTimer(jobs <-chan func() time.Duration) {
	t := time.NewTimer(time.Hour)
	defer t.Stop()
	for job := range jobs {
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		t.Reset(job())
	}
}

// NamedAfter: a local function named After is not time.After.
func NamedAfter(after func(time.Duration) <-chan time.Time) {
	for i := 0; i < 3; i++ {
		<-after(time.Millisecond)
	}
}
