// Package floateqtest is the floateq fixture: tests register it in
// floateq.Packages before running the analyzer.
package floateqtest

import "sort"

const eps = 1e-12

// ExactEqual compares frequencies exactly.
func ExactEqual(a, b float64) bool {
	return a == b // want `== on float64 values`
}

// ExactNotEqual is the != form.
func ExactNotEqual(a, b float64) bool {
	return a != b // want `!= on float64 values`
}

// IsNaN is the portable NaN self-test; it cannot be off by ε.
func IsNaN(x float64) bool {
	return x != x
}

// Probe binary-searches frequencies without ε-widening.
func Probe(freqs []float64, f float64) int {
	return sort.SearchFloat64s(freqs, f) // want `sort\.SearchFloat64s outside an approved eps helper`
}

// EqualEps carries an approved helper name: the one place exact float
// comparison may live.
func EqualEps(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps || a == b
}

// groupRange is likewise approved.
func groupRange(freqs []float64, lo, hi float64) (int, int) {
	l := sort.SearchFloat64s(freqs, lo-eps)
	h := sort.Search(len(freqs), func(i int) bool { return freqs[i] > hi+eps }) - 1
	return l, h
}

// IntEqual compares integers; no ε involved.
func IntEqual(a, b int) bool {
	return a == b
}
