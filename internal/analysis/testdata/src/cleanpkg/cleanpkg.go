// Package cleanpkg is a trivially clean fixture: the smoke tests assert the
// suite (and the cmd/riskvet binary) report nothing here and exit zero.
package cleanpkg

import "errors"

// ErrClean is matched correctly everywhere.
var ErrClean = errors.New("cleanpkg: clean")

// Sum is a single linear pass.
func Sum(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

// IsClean uses errors.Is on the sentinel.
func IsClean(err error) bool {
	return errors.Is(err, ErrClean)
}
