// Package retrysleeptest is the retrysleep fixture: naked sleeps in loops
// must be flagged, everything else left alone.
package retrysleeptest

import (
	"context"
	"time"
)

// PollLoop is the canonical offense: a fixed-interval busy-wait.
func PollLoop(ready func() bool) {
	for !ready() {
		time.Sleep(10 * time.Millisecond) // want `time\.Sleep inside a loop`
	}
}

// RetryLoop is the other canonical offense: constant-delay retries.
func RetryLoop(attempt func() error) error {
	var err error
	for i := 0; i < 3; i++ {
		if err = attempt(); err == nil {
			return nil
		}
		time.Sleep(time.Second) // want `time\.Sleep inside a loop`
	}
	return err
}

// RangeSleep sleeps per item — still a pacing loop.
func RangeSleep(items []int, send func(int)) {
	for _, it := range items {
		send(it)
		time.Sleep(time.Millisecond) // want `time\.Sleep inside a loop`
	}
}

// NestedLiteral: the sleep sits in a func literal that the loop invokes;
// lexical containment still catches it.
func NestedLiteral(n int) {
	for i := 0; i < n; i++ {
		func() {
			time.Sleep(time.Millisecond) // want `time\.Sleep inside a loop`
		}()
	}
}

// OneShot is a delay, not a policy: allowed.
func OneShot() {
	time.Sleep(50 * time.Millisecond)
}

// TickerPoll is the sanctioned polling shape: cancellable, no naked sleep.
func TickerPoll(ctx context.Context, ready func() bool) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for !ready() {
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// NamedSleep: a local function named Sleep is not time.Sleep.
func NamedSleep(sleep func(time.Duration)) {
	for i := 0; i < 3; i++ {
		sleep(time.Millisecond)
	}
}
