// Package suppresstest exercises the suppression ledger's self-checks: the
// driver reports allows that are stale, name unknown checks, lack a reason,
// or are malformed. The want markers sit one line above because these
// diagnostics anchor on the allow comments themselves.
package suppresstest

// want+1 `stale //lint:allow detrand`
//lint:allow detrand nothing on this or the next line needs excusing
var A = 1

// want+1 `names unknown check nosuchcheck`
//lint:allow nosuchcheck the check does not exist
var B = 2

// want+1 `//lint:allow detrand has no reason`
//lint:allow detrand
var C = 3

// want+1 `malformed //lint:allow`
//lint:allow
var D = 4
