// Package cachetaintdep is the dependency half of the cachetaint fixture:
// it declares a degraded-carrying verdict type and gate functions whose
// classifications must reach the dependent fixture package as facts.
package cachetaintdep

// Verdict is a carrier: a named struct with a Degraded bool field.
type Verdict struct {
	Value    int
	Degraded bool
}

// Gate derives the cacheable flag from Degraded on every return, so
// dependent packages may pass it (or delegate to it) as a GetOrCompute
// compute function.
func Gate() (*Verdict, bool, error) {
	v := &Verdict{}
	return v, !v.Degraded, nil
}

// Leak hardwires cacheable=true, so it must not classify as a gate.
func Leak() (*Verdict, bool, error) {
	return &Verdict{Value: 1}, true, nil
}

// Store carries a gate method, exercising receiver-qualified fact paths.
type Store struct{}

// GateM is a gate, reachable cross-package as the fact "Store.GateM".
func (Store) GateM() (*Verdict, bool, error) {
	v := &Verdict{}
	return v, !v.Degraded, nil
}
