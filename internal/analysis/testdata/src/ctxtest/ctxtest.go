// Package ctxtest is the ctxbudget provider fixture: tests register it in
// ctxbudget.Providers before running the analyzer.
package ctxtest

import "context"

// HeavySweep loops over its matrix (nest depth 2) without accepting a
// context and without a HeavySweepCtx sibling.
func HeavySweep(rows [][]int) int { // want `HeavySweep loops over its input`
	total := 0
	for _, r := range rows {
		for _, v := range r {
			total += v
		}
	}
	return total
}

// Light does a single linear pass; no context needed.
func Light(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

// Direct accepts the context itself.
func Direct(ctx context.Context, rows [][]int) (int, error) {
	total := 0
	for _, r := range rows {
		for _, v := range r {
			total += v
		}
	}
	return total, ctx.Err()
}

// Blessed is the compatibility-wrapper pattern: heavy, but forwards to its
// Ctx sibling, and only there may a context originate.
func Blessed(rows [][]int) int {
	v, _ := BlessedCtx(context.Background(), rows)
	return v
}

// BlessedCtx is the cancelable variant.
func BlessedCtx(ctx context.Context, rows [][]int) (int, error) {
	total := 0
	for _, r := range rows {
		for _, v := range r {
			total += v
		}
	}
	return total, ctx.Err()
}

// Rogue originates a context outside the wrapper pattern.
func Rogue(xs []int) error {
	ctx := context.Background() // want `context\.Background originates inside a compute kernel`
	_ = xs
	return ctx.Err()
}

// Table exercises the method cases.
type Table struct{ rows [][]int }

// Scan is heavy and has a ScanCtx sibling: fine.
func (t *Table) Scan() int {
	v, _ := t.ScanCtx(context.Background())
	return v
}

// ScanCtx is the cancelable variant.
func (t *Table) ScanCtx(ctx context.Context) (int, error) {
	total := 0
	for _, r := range t.rows {
		for _, v := range r {
			total += v
		}
	}
	return total, ctx.Err()
}

// Grind is heavy with neither a context parameter nor a GrindCtx sibling.
func (t *Table) Grind() int { // want `Grind loops over its input`
	total := 0
	for _, r := range t.rows {
		for _, v := range r {
			total += v
		}
	}
	return total
}

// closure nests the loop inside a FuncLit created inside a loop; the
// analyzer counts the literal at the depth where it appears.
func Closure(rows [][]int) int { // want `Closure loops over its input`
	total := 0
	for _, r := range rows {
		f := func() {
			for _, v := range r {
				total += v
			}
		}
		f()
	}
	return total
}
