// Package factuse is the dependent half of the driver's fact-propagation
// fixture: it imports factdep, so the probe analyzer's facts on factdep's
// objects must be importable here — through export-data object identities,
// not source ones.
package factuse

import "repro/internal/analysis/testdata/src/factdep"

// Use references both fact-carrying objects of factdep.
func Use() int {
	var h factdep.Helper
	h.Do()
	return factdep.Provide()
}
