package errcmp

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	// errcmp scopes by module prefix; the fixture lives under repro/ and its
	// own package-level sentinel is therefore in scope without wiring.
	analysistest.Run(t, "../testdata/src/errcmptest", []*analysis.Analyzer{Analyzer}, nil)
}
