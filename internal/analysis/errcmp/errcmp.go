// Package errcmp enforces the repo's error-identity and degradation
// provenance conventions (DESIGN.md §10.4).
//
// Checks, in every package:
//
//  1. Comparing an error sentinel with == or != is flagged when the
//     sentinel is one of the module's own package-level error variables
//     (budget.ErrBudgetExceeded, budget.ErrCanceled, bipartite's
//     ErrInfeasible, ...) or a context sentinel. The degradation cascade
//     and the %w verbs wrap these errors, so identity comparison silently
//     stops matching; errors.Is is the only correct test.
//  2. Degraded results must carry their provenance. For any struct type
//     with the Degraded/DegradedReason field pair:
//     a composite literal setting Degraded without DegradedReason, and an
//     `x.Degraded = true` assignment with no x.DegradedReason assignment in
//     the same function, both lose the reason the cascade fell back — the
//     field the server and CLI surface to operators.
//     Types that also carry a Method field (the cascade's tier record)
//     must set Method in any literal that sets Degraded.
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Module is the import-path prefix under which package-level error vars
// count as wrap-prone sentinels of ours. Tests substitute the fixture
// prefix.
var Module = "repro"

// Analyzer is the errcmp check.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc: "budget and module error sentinels must be matched with errors.Is, " +
		"and degraded results must keep Method/Degraded/DegradedReason provenance",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, nn)
			case *ast.CompositeLit:
				checkDegradedLit(pass, nn)
			case *ast.FuncDecl:
				if nn.Body != nil {
					checkDegradedAssign(pass, nn.Body)
				}
			}
			return true
		})
	}
	return nil
}

// --- rule 1: sentinel identity comparisons ---

func checkSentinelCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, e := range []ast.Expr{b.X, b.Y} {
		if name := sentinelName(pass, e); name != "" {
			pass.Reportf(b.OpPos,
				"%s compared with %s: the cascade and %%w wrap this sentinel, so identity fails on wrapped errors; use errors.Is(err, %s)",
				name, b.Op, name)
			return
		}
	}
}

// sentinelName reports the qualified name of e when it is a package-level
// error variable belonging to this module or the context package.
func sentinelName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch ee := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = ee
	case *ast.SelectorExpr:
		id = ee.Sel
	default:
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	// Package-level error variables only.
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	if !isErrorType(obj.Type()) {
		return ""
	}
	path := obj.Pkg().Path()
	switch {
	case path == "context": // Canceled, DeadlineExceeded
	case path == Module || strings.HasPrefix(path, Module+"/"):
	default:
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

func isErrorType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

// --- rule 2: degradation provenance ---

// provenanceFields reports whether t is a provenance-bearing struct:
// hasPair when it has the Degraded+DegradedReason pair, hasMethod when it
// additionally records the cascade tier in a Method field.
func provenanceFields(t types.Type) (hasPair, hasMethod bool) {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false, false
	}
	var degraded, reason bool
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Degraded":
			degraded = true
		case "DegradedReason":
			reason = true
		case "Method":
			hasMethod = true
		}
	}
	return degraded && reason, hasMethod
}

func checkDegradedLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	hasPair, hasMethod := provenanceFields(tv.Type)
	if !hasPair {
		return
	}
	set := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal sets every field; nothing dropped
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			set[key.Name] = true
		}
	}
	if set["Degraded"] && !set["DegradedReason"] {
		pass.Reportf(lit.Pos(),
			"composite literal sets Degraded but drops DegradedReason; a degraded result must say which budget forced the fallback")
	}
	if set["Degraded"] && hasMethod && !set["Method"] {
		pass.Reportf(lit.Pos(),
			"composite literal sets Degraded but drops Method; provenance must record which cascade tier produced the numbers")
	}
}

// checkDegradedAssign flags `x.Degraded = true` with no x.DegradedReason
// assignment anywhere in the same function body.
func checkDegradedAssign(pass *analysis.Pass, body *ast.BlockStmt) {
	type site struct {
		pos  token.Pos
		recv string
	}
	var degradedSets []site
	reasonSets := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || a.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range a.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			recvTv, ok := pass.TypesInfo.Types[sel.X]
			if !ok {
				continue
			}
			if hasPair, _ := provenanceFields(derefType(recvTv.Type)); !hasPair {
				continue
			}
			recv := types.ExprString(sel.X)
			switch sel.Sel.Name {
			case "Degraded":
				// Only Degraded = true needs a reason; clearing the flag or
				// copying it from another result does not.
				if len(a.Rhs) == len(a.Lhs) {
					if id, ok := ast.Unparen(a.Rhs[i]).(*ast.Ident); !ok || id.Name != "true" {
						continue
					}
				}
				degradedSets = append(degradedSets, site{pos: sel.Pos(), recv: recv})
			case "DegradedReason":
				reasonSets[recv] = true
			}
		}
		return true
	})
	for _, s := range degradedSets {
		if !reasonSets[s.recv] {
			pass.Reportf(s.pos,
				"%s.Degraded is set but %s.DegradedReason is never assigned in this function; record why the cascade degraded",
				s.recv, s.recv)
		}
	}
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
