package detrand

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	const fixture = "repro/internal/analysis/testdata/src/detrandtest"
	Packages[fixture] = true
	defer delete(Packages, fixture)
	analysistest.Run(t, "../testdata/src/detrandtest", []*analysis.Analyzer{Analyzer}, nil)
}

func TestOutOfScopePackageIsIgnored(t *testing.T) {
	// Without registration the fixture is out of scope: the same sources
	// must produce no diagnostics (the fixture's want markers would fail the
	// run if the analyzer fired), so drive the analyzer directly.
	pkgs, err := analysis.Load("../testdata/src/detrandtest", ".")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(pkgs, func(string) []*analysis.Analyzer {
		return []*analysis.Analyzer{Analyzer}
	}, []string{"detrand"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		if d.Check == Analyzer.Name {
			t.Errorf("out-of-scope package got diagnostic: %s", analysis.Format(pkgs[0].Fset, d))
		}
	}
}

func TestKernelFixture(t *testing.T) {
	const fixture = "repro/internal/analysis/testdata/src/detrandkernel"
	KernelPackages[fixture] = true
	defer delete(KernelPackages, fixture)
	analysistest.Run(t, "../testdata/src/detrandkernel", []*analysis.Analyzer{Analyzer}, nil)
}

func TestKernelRuleNeedsKernelRegistration(t *testing.T) {
	// The same sources registered only as a *deterministic* package must not
	// produce kernel-loop diagnostics: rule 5 is scoped to KernelPackages,
	// and *rand.Rand methods stay sanctioned everywhere else.
	const fixture = "repro/internal/analysis/testdata/src/detrandkernel"
	Packages[fixture] = true
	defer delete(Packages, fixture)
	pkgs, err := analysis.Load("../testdata/src/detrandkernel", ".")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(pkgs, func(string) []*analysis.Analyzer {
		return []*analysis.Analyzer{Analyzer}
	}, []string{"detrand"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		if d.Check == Analyzer.Name {
			t.Errorf("non-kernel package got diagnostic: %s", analysis.Format(pkgs[0].Fset, d))
		}
	}
}
