// Package detrand enforces the determinism contract of the Monte-Carlo
// packages (DESIGN.md §8, §10.2): for a fixed seed the numbers must be
// bit-identical at any worker count, so those packages may not observe the
// wall clock, the global math/rand stream, or Go's randomized map iteration
// order in any way that can reach an output.
//
// Checks, in the deterministic packages (matching, recipe, experiments,
// parallel):
//
//  1. time.Now (and friends time.Since/time.Until, which call it) is
//     forbidden: wall-clock values must never mix into results. Timing
//     provenance fields are the one legitimate use and carry a
//     //lint:allow with that reason.
//  2. The global top-level math/rand functions (rand.Intn, rand.Float64,
//     rand.Perm, rand.Shuffle, ...) are forbidden: they draw from a shared
//     process-global stream, so concurrent workers interleave
//     nondeterministically. Constructors (rand.New, rand.NewSource,
//     rand.NewZipf) are fine — per-item generators seeded via
//     parallel.SplitSeed are exactly the sanctioned pattern.
//  3. rand.NewSource/rand.NewPCG seeded from time.Now is called out
//     specifically: a wall-clock seed defeats reproducibility at the root.
//  4. Iterating a map is allowed only when the loop body is order
//     insensitive: integer accumulation (x++, x += n), set/map writes,
//     delete, and control flow around those. Anything else — appends,
//     float accumulation (addition is not associative), calls, sends —
//     observes Go's randomized iteration order and must instead collect
//     keys, sort, then iterate the slice.
//  5. In the kernel packages (KernelPackages — the flat sampler hot path of
//     DESIGN.md §11), even the otherwise-sanctioned *rand.Rand methods are
//     forbidden inside loops: each call funnels through the Source interface
//     and a 63-bit shim, which is exactly the overhead the flat kernel
//     removed. Kernel loops draw from the whitelisted parallel.Stream
//     (inlined SplitMix64 + Lemire bounded rejection); *rand.Rand may still
//     appear outside loops, e.g. to draw the stream's seed once.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Packages holds the import paths the determinism contract covers.
// cmd/riskvet wires the real repo layout; tests substitute fixtures.
var Packages = map[string]bool{
	"repro/internal/matching":    true,
	"repro/internal/recipe":      true,
	"repro/internal/experiments": true,
	"repro/internal/parallel":    true,
}

// KernelPackages holds the import paths whose loops are flat-kernel hot
// paths (rule 5): random draws inside them must come from parallel.Stream,
// never from *rand.Rand. parallel itself is exempt — it implements Stream
// and the *rand.Rand constructors the non-kernel packages use.
var KernelPackages = map[string]bool{
	"repro/internal/matching": true,
}

// globalRand is the set of math/rand top-level functions that draw from the
// process-global source.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "deterministic packages must not observe wall clocks, the global math/rand " +
		"stream, or map iteration order; randomness comes from per-item SplitMix64 seeds",
	Run: run,
}

func run(pass *analysis.Pass) error {
	deterministic := Packages[pass.Pkg.Path()]
	kernel := KernelPackages[pass.Pkg.Path()]
	if !deterministic && !kernel {
		return nil
	}
	// time.Now calls already reported as part of a wall-clock-seed
	// diagnostic, so rule 1 does not double-report them.
	consumed := map[ast.Node]bool{}
	for _, f := range pass.Files {
		var loops []loopSpan
		if kernel {
			loops = collectLoops(f)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.CallExpr:
				if deterministic {
					checkCall(pass, nn, consumed)
				}
				if kernel {
					checkKernelCall(pass, nn, loops)
				}
			case *ast.RangeStmt:
				if deterministic {
					checkMapRange(pass, nn)
				}
			}
			return true
		})
	}
	return nil
}

// --- rule 5: *rand.Rand inside kernel loops ---

// loopSpan is the source extent of one for/range statement.
type loopSpan struct{ pos, end token.Pos }

func collectLoops(f *ast.File) []loopSpan {
	var spans []loopSpan
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			spans = append(spans, loopSpan{n.Pos(), n.End()})
		}
		return true
	})
	return spans
}

// checkKernelCall reports calls to math/rand methods lexically inside a
// for/range statement of a kernel package. The whitelisted replacement is
// parallel.Stream, whose methods live in this repo and therefore never
// match the math/rand package test below.
func checkKernelCall(pass *analysis.Pass, call *ast.CallExpr, loops []loopSpan) {
	obj := callTarget(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return // top-level functions are rule 2's business
	}
	for _, l := range loops {
		if l.pos <= call.Pos() && call.Pos() < l.end {
			pass.Reportf(call.Pos(),
				"rand.%s inside a kernel loop: the flat sampler kernel draws from the inlined parallel.Stream (SplitMix64 + Lemire); hoist the *rand.Rand call out of the loop or seed a Stream from it",
				obj.Name())
			return
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, consumed map[ast.Node]bool) {
	obj := callTarget(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			if !consumed[call] {
				pass.Reportf(call.Pos(),
					"time.%s in a deterministic package: wall-clock values must not reach Monte-Carlo outputs",
					obj.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		if obj.Type() != nil {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return // methods on *rand.Rand are the sanctioned per-item generators
			}
		}
		name := obj.Name()
		if globalRand[name] {
			pass.Reportf(call.Pos(),
				"global rand.%s draws from the process-wide stream and breaks worker-count determinism; use a *rand.Rand from parallel.RNG/SplitSeed",
				name)
			return
		}
		if name == "NewSource" || name == "NewPCG" {
			if now := findTimeCall(pass, call); now != nil {
				consumed[now] = true
				pass.Reportf(call.Pos(),
					"rand.%s seeded from the wall clock defeats reproducibility; derive the seed with parallel.SplitSeed from the run's root seed",
					name)
			}
		}
	}
}

// findTimeCall returns the first time.Now/Since/Until call in the call's
// argument subtrees, or nil.
func findTimeCall(pass *analysis.Pass, call *ast.CallExpr) ast.Node {
	var found ast.Node
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := callTarget(pass, inner); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "time" &&
				(obj.Name() == "Now" || obj.Name() == "Since" || obj.Name() == "Until") {
				found = inner
				return false
			}
			return true
		})
	}
	return found
}

// --- rule 4: order-sensitive map iteration ---

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if reason := orderSensitive(pass, rng.Body.List); reason != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order can reach an output here (%s); collect the keys, sort, and range over the slice instead",
			reason)
	}
}

// orderSensitive reports why a map-range body is not order insensitive, or
// "" if every statement is an allowed commutative update.
func orderSensitive(pass *analysis.Pass, stmts []ast.Stmt) string {
	for _, s := range stmts {
		if reason := stmtOrderSensitive(pass, s); reason != "" {
			return reason
		}
	}
	return ""
}

func stmtOrderSensitive(pass *analysis.Pass, s ast.Stmt) string {
	switch ss := s.(type) {
	case *ast.IncDecStmt:
		if isIntegerExpr(pass, ss.X) {
			return ""
		}
		return "non-integer ++/--"
	case *ast.AssignStmt:
		return assignOrderSensitive(pass, ss)
	case *ast.IfStmt:
		if ss.Init != nil {
			if r := stmtOrderSensitive(pass, ss.Init); r != "" {
				return r
			}
		}
		if r := orderSensitive(pass, ss.Body.List); r != "" {
			return r
		}
		if ss.Else != nil {
			return stmtOrderSensitive(pass, ss.Else)
		}
		return ""
	case *ast.BlockStmt:
		return orderSensitive(pass, ss.List)
	case *ast.BranchStmt:
		if ss.Tok == token.CONTINUE || ss.Tok == token.BREAK {
			return ""
		}
		return "goto/fallthrough"
	case *ast.ExprStmt:
		if call, ok := ss.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return ""
				}
			}
		}
		return "a call whose effects depend on visit order"
	default:
		return "a statement that observes iteration order"
	}
}

func assignOrderSensitive(pass *analysis.Pass, a *ast.AssignStmt) string {
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN:
		// Commutative only over integers: float addition rounds differently
		// under reordering.
		for _, lhs := range a.Lhs {
			if !isIntegerExpr(pass, lhs) {
				return "float/compound accumulation is not reorder-safe"
			}
		}
		return ""
	case token.ASSIGN, token.DEFINE:
		// Writing m2[k] = v builds a set keyed by the (unique) map keys —
		// order free. Anything else is a last-writer-wins race with the
		// iteration order.
		for _, lhs := range a.Lhs {
			if _, ok := lhs.(*ast.IndexExpr); !ok {
				return "plain assignment keeps the last visited value"
			}
		}
		return ""
	default:
		return "compound assignment " + a.Tok.String()
	}
}

func isIntegerExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func callTarget(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
