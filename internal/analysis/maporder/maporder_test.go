package maporder_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "../testdata/src/maporderrtest",
		[]*analysis.Analyzer{maporder.Analyzer}, nil)
}

// TestSkipMirrorsDetrand pins the no-double-reporting contract: every
// package detrand rule 4 already polices is skipped here.
func TestSkipMirrorsDetrand(t *testing.T) {
	for p := range detrand.Packages {
		if !maporder.Skip[p] {
			t.Errorf("maporder.Skip missing detrand-covered package %s", p)
		}
	}
	if len(maporder.Skip) == 0 {
		t.Fatal("maporder.Skip is empty")
	}
}
