// Package maporder defines an Analyzer enforcing the repo's determinism
// invariant at map-iteration sites: values produced in Go's randomized map
// order must not flow into ordered sinks — io/digest writes, channel sends,
// order-sensitive calls, or slice accumulations that are never sorted —
// without an intervening sort. Byte-identical output at any worker count is
// the correctness contract the experiment tables, content digests, and the
// run registry's bit-for-bit replay all rest on; one unsorted map range in
// an emit path breaks all three at once.
//
// detrand's rule 4 already polices map iteration inside the deterministic
// packages (matching, recipe, experiments, parallel) with a stricter
// whitelist, so this analyzer covers everything else and skips those
// packages to avoid double-reporting.
//
// Within a `for k, v := range m` over a map, the analyzer taints k, v, and
// locals derived from them, then reports:
//
//   - channel sends in the body;
//   - calls to io-like sinks (fmt.Print*/Fprint*, any Write* method);
//   - calls whose receiver or arguments are tainted (their effects happen
//     in map order);
//   - float accumulation from tainted values (not associative);
//   - appends of tainted values to a slice declared outside the loop that
//     is never passed to a sort afterwards in the same function — the
//     collect-then-sort idiom (dataset.GroupItems) passes, the missing
//     sort is the diagnostic.
//
// Integer accumulation, map writes, delete, and budget/context consults
// stay exempt: they are order-insensitive or required by other checks.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detrand"
)

// Skip lists import paths whose map-iteration discipline detrand rule 4
// already enforces; initialized from detrand.Packages before tests mutate
// it for fixture registration.
var Skip = func() map[string]bool {
	m := make(map[string]bool, len(detrand.Packages))
	for p := range detrand.Packages {
		m[p] = true
	}
	return m
}()

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach ordered sinks: no channel sends, io/digest writes, order-dependent calls, float accumulation, or never-sorted slice accumulation inside a range over a map. Collect keys and sort them first (dataset.GroupItems is the canonical shape). Packages covered by detrand rule 4 are skipped.",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if Skip[pass.Pkg.Path()] {
		return nil
	}
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd.Body)
			}
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// checkFunc checks every map range whose innermost enclosing function is
// this body; nested function literals recurse so their "sorted afterwards"
// search has the right scope.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkFunc(n.Body)
			return false
		case *ast.RangeStmt:
			if c.isMapRange(n) {
				c.checkRange(n, body)
			}
		}
		return true
	})
}

func (c *checker) isMapRange(rng *ast.RangeStmt) bool {
	tv, ok := c.pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkRange reports the ordered sinks inside one map range. fnBody is the
// innermost enclosing function body, the scope searched for a sort after
// the loop.
func (c *checker) checkRange(rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	tainted := c.taintedObjects(rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if c.isMapRange(n) {
				return false // checked on its own; avoid double reports
			}
		case *ast.SendStmt:
			c.pass.Reportf(n.Pos(), "map iteration order reaches a channel send; iterate over sorted keys")
		case *ast.AssignStmt:
			c.checkAssign(n, rng, fnBody, tainted)
		case *ast.CallExpr:
			c.checkCall(n, tainted)
		}
		return true
	})
}

// taintedObjects collects the range's key/value objects plus locals
// assigned from them (one-level-closed with a small fixed point).
func (c *checker) taintedObjects(rng *ast.RangeStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := c.objectOf(id); obj != nil {
				tainted[obj] = true
			}
		}
	}
	if rng.Key != nil {
		add(rng.Key)
	}
	if rng.Value != nil {
		add(rng.Value)
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.objectOf(id)
				if obj == nil || tainted[obj] {
					continue
				}
				// With a single multi-valued RHS, any tainted input
				// taints every output.
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				if c.mentionsTainted(rhs, tainted) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

func (c *checker) objectOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

func (c *checker) mentionsTainted(e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.objectOf(id); obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkAssign handles the two assignment-shaped sinks: float accumulation
// and never-sorted slice accumulation.
func (c *checker) checkAssign(as *ast.AssignStmt, rng *ast.RangeStmt, fnBody *ast.BlockStmt, tainted map[types.Object]bool) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && c.isFloat(as.Lhs[0]) && c.mentionsTainted(as.Rhs[0], tainted) {
			c.pass.Reportf(as.Pos(), "float accumulation in map iteration order is not associative; accumulate over sorted keys")
		}
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !c.isBuiltin(call, "append") || i >= len(as.Lhs) {
			continue
		}
		taintedArg := false
		for _, a := range call.Args[1:] {
			if c.mentionsTainted(a, tainted) {
				taintedArg = true
			}
		}
		if !taintedArg {
			continue
		}
		base := baseIdent(as.Lhs[i])
		if base == nil {
			continue
		}
		if ix, ok := as.Lhs[i].(*ast.IndexExpr); ok {
			if tv, ok := c.pass.TypesInfo.Types[ix.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					continue // map write: order-insensitive
				}
			}
		}
		obj := c.objectOf(base)
		if obj == nil || within(obj.Pos(), rng) {
			continue // loop-local accumulation: covered by the call rule at its use
		}
		if !c.sortedAfter(obj, rng, fnBody) {
			c.pass.Reportf(as.Pos(), "%s accumulates map-range values in iteration order and is never sorted in this function; sort it after the loop", base.Name)
		}
	}
}

// checkCall reports calls that are ordered sinks or whose effects depend on
// the iteration order through tainted receivers/arguments.
func (c *checker) checkCall(call *ast.CallExpr, tainted map[types.Object]bool) {
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if c.isAnyBuiltin(call) {
		return // append handled by checkAssign; delete/len/cap are exempt
	}
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn != nil {
		if exemptCallee(fn) {
			return
		}
		if ioSink(fn) {
			c.pass.Reportf(call.Pos(), "map iteration order reaches ordered sink %s; iterate over sorted keys", fn.Name())
			return
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.mentionsTainted(sel.X, tainted) {
		c.report(call, fn)
		return
	}
	for _, a := range call.Args {
		if c.mentionsTainted(a, tainted) {
			c.report(call, fn)
			return
		}
	}
}

func (c *checker) report(call *ast.CallExpr, fn *types.Func) {
	name := "function"
	if fn != nil {
		name = fn.Name()
	}
	c.pass.Reportf(call.Pos(), "call to %s depends on map iteration order; iterate over sorted keys or make the operation order-insensitive", name)
}

func (c *checker) isFloat(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func (c *checker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isB
}

func (c *checker) isAnyBuiltin(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isB := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isB
}

// sortedAfter reports whether, after the range statement, the enclosing
// function passes obj to a sort (sort.*/slices.* call or a Sort method).
func (c *checker) sortedAfter(obj types.Object, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if !c.isSortCall(call) {
			return true
		}
		for _, a := range call.Args {
			if c.mentionsObject(a, obj) {
				found = true
				return false
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.mentionsObject(sel.X, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (c *checker) isSortCall(call *ast.CallExpr) bool {
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort", "slices":
			return true
		}
	}
	return strings.HasPrefix(fn.Name(), "Sort")
}

func (c *checker) mentionsObject(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && c.objectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// exemptCallee lists callees whose presence in a map range is fine or
// mandated by other checks: budget/context consults and sorts.
func exemptCallee(fn *types.Func) bool {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch fn.Name() {
	case "Charge", "Check", "Ops", "Remaining":
		if strings.HasSuffix(pkg, "/budget") {
			return true
		}
	case "Err", "Done", "Deadline", "Value":
		if pkg == "context" || pkg == "" {
			return true
		}
	}
	if pkg == "sort" || pkg == "slices" {
		return true
	}
	return false
}

// ioSink reports whether fn emits to an ordered stream: the fmt print
// family or any Write-shaped method (io.Writer, hash.Hash, csv.Writer,
// strings.Builder, ...).
func ioSink(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		n := fn.Name()
		return strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint")
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return strings.HasPrefix(fn.Name(), "Write")
	}
	return false
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// baseIdent peels index/selector expressions down to the root identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// within reports whether pos lies inside the range statement's extent.
func within(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos >= rng.Pos() && pos <= rng.End()
}
