// Package analysistest runs analyzers over fixture packages and checks the
// produced diagnostics against expectations written in the fixture sources,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// offline loader.
//
// An expectation is a comment of the form
//
//	// want "regexp"            — a diagnostic on this line must match
//	// want `regexp` `regexp2`  — two diagnostics on this line, one per pattern
//	// want+1 "regexp"          — the diagnostic is on the following line
//
// Patterns are matched against "[check] message". The +N form exists for
// diagnostics that anchor on comment lines themselves (the suppress check
// reports stale //lint:allow comments at the comment's own position, where
// an inline marker cannot live).
//
// Every diagnostic must be claimed by exactly one expectation and every
// expectation must claim a diagnostic; surpluses on either side fail the
// test.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

const marker = "// want"

var tokenRe = regexp.MustCompile("^\\s*(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// Run loads the single fixture package in dir, applies the analyzers plus
// the //lint:allow suppression pass, and matches diagnostics against the
// fixture's want comments. known lists the check names //lint:allow may
// legally reference (analyzer names are added automatically by the driver).
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, known []string) {
	t.Helper()
	RunPatterns(t, dir, []string{"."}, analyzers, known)
}

// RunPatterns is Run for fixtures spanning several packages: it loads every
// pattern relative to dir (e.g. "." plus "../fixturedep") and checks want
// comments across all of them. The loader returns the packages in
// dependency order, so facts exported by an analyzer on one fixture package
// are importable in fixtures that import it — the cross-package analyzers'
// tests depend on exactly that.
func RunPatterns(t *testing.T, dir string, patterns []string, analyzers []*analysis.Analyzer, known []string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}

	var expects []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					expects = append(expects, parseWant(t, c.Text, pos.Filename, pos.Line)...)
				}
			}
		}
	}

	diags, err := analysis.Run(pkgs, func(string) []*analysis.Analyzer { return analyzers }, known)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		msg := "[" + d.Check + "] " + d.Message
		claimed := false
		for _, e := range expects {
			if !e.met && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(msg) {
				e.met = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", analysis.Format(fset, d))
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, e.raw)
		}
	}
}

// parseWant extracts the expectations of one comment's text, or nil when the
// comment carries no want marker.
func parseWant(t *testing.T, text, file string, line int) []*expectation {
	t.Helper()
	idx := strings.Index(text, marker)
	if idx < 0 {
		return nil
	}
	rest := text[idx+len(marker):]
	if strings.HasPrefix(rest, "+") {
		n := 1
		for n < len(rest) && rest[n] >= '0' && rest[n] <= '9' {
			n++
		}
		off, err := strconv.Atoi(rest[1:n])
		if err != nil {
			t.Fatalf("%s:%d: bad want offset in %q", file, line, text)
		}
		line += off
		rest = rest[n:]
	}
	var out []*expectation
	for {
		m := tokenRe.FindStringSubmatch(rest)
		if m == nil {
			break
		}
		rest = rest[len(m[0]):]
		tok := m[1]
		var pat string
		if tok[0] == '`' {
			pat = tok[1 : len(tok)-1]
		} else {
			var err error
			pat, err = strconv.Unquote(tok)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, tok, err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", file, line, pat, err)
		}
		out = append(out, &expectation{file: file, line: line, re: re, raw: pat})
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want marker with no patterns: %q", file, line, text)
	}
	return out
}
