package loopbudget_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/loopbudget"
)

const fixturePath = "repro/internal/analysis/testdata/src/loopbudgettest"

func TestLoopbudget(t *testing.T) {
	loopbudget.Packages[fixturePath] = true
	defer delete(loopbudget.Packages, fixturePath)
	analysistest.Run(t, "../testdata/src/loopbudgettest",
		[]*analysis.Analyzer{loopbudget.Analyzer}, nil)
}
